"""Autotune the blocked/pruned min-plus kernels for this machine.

Block sizes trade temporary-array footprint against Python-loop overhead,
and the sweet spot depends on cache sizes and the numpy build.  This tool
times candidate shapes on two representative workloads —

* a dense min-plus square (the late doubling rounds / 3-hop products), and
* a sparse one-hop-style matrix (~97% 0̄, the early doubling rounds) —

and persists the winners via :func:`repro.kernels.dispatch.save_tuning`, so
every later :func:`~repro.kernels.minplus.semiring_matmul` call picks them
up through :func:`~repro.kernels.dispatch.tuning_for`.

Usage: python tools/autotune_kernels.py [--size N] [--repeats R] [--dry-run]
"""

from __future__ import annotations

import argparse
import itertools
import time

import numpy as np

from repro.kernels import dispatch
from repro.kernels.minplus import semiring_matmul
from repro.core.semiring import MIN_PLUS

#: Candidate grids.  Kept small: the whole sweep is a few dozen timed calls.
BLOCKED_GRID = {
    "block_l": (16, 32, 64, 128),
    "block_k": (32, 64, 128, 256),
    "block_m": (64, 128, 256),
}
PRUNED_GRID = {
    "block_l": (16, 32, 48, 96),
    "dead_frac": (1 / 32, 1 / 16, 1 / 8),
}


def _dense_operand(n: int, rng: np.random.Generator) -> np.ndarray:
    a = rng.uniform(0.1, 10.0, size=(n, n))
    np.fill_diagonal(a, 0.0)
    return a


def _sparse_operand(n: int, rng: np.random.Generator, density: float = 0.03) -> np.ndarray:
    a = np.full((n, n), np.inf)
    m = int(density * n * n)
    a[rng.integers(0, n, m), rng.integers(0, n, m)] = rng.uniform(0.1, 10.0, m)
    np.fill_diagonal(a, 0.0)
    return a


def _time_call(a: np.ndarray, kernel: str, tuning: dict, repeats: int) -> float:
    out = np.empty_like(a)
    fn = dispatch._KERNELS[kernel]
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(a, a, MIN_PLUS, out, False, 1 << 22, tuning)
        best = min(best, time.perf_counter() - t0)
    return best


def _sweep(a: np.ndarray, kernel: str, grid: dict, repeats: int) -> tuple[dict, float]:
    names = sorted(grid)
    best_params, best_t = None, np.inf
    for combo in itertools.product(*(grid[k] for k in names)):
        params = dict(zip(names, combo))
        t = _time_call(a, kernel, params, repeats)
        if t < best_t:
            best_params, best_t = params, t
    return best_params, best_t


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=384, help="operand side length")
    parser.add_argument("--repeats", type=int, default=3, help="timings per candidate (min kept)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--dry-run", action="store_true", help="print winners, don't persist")
    args = parser.parse_args(argv)

    dispatch.available_kernels()  # force registration
    rng = np.random.default_rng(args.seed)
    n = args.size

    dense = _dense_operand(n, rng)
    sparse = _sparse_operand(n, rng)

    ref_dense = _time_call(dense, "reference", {}, args.repeats)
    ref_sparse = _time_call(sparse, "reference", {}, args.repeats)
    print(f"reference: dense {ref_dense * 1e3:.2f}ms  sparse {ref_sparse * 1e3:.2f}ms  (n={n})")

    blocked_params, blocked_t = _sweep(dense, "blocked", BLOCKED_GRID, args.repeats)
    print(f"blocked winner {blocked_params}: {blocked_t * 1e3:.2f}ms "
          f"({ref_dense / blocked_t:.2f}x vs reference on dense)")

    pruned_params, pruned_t = _sweep(sparse, "pruned", PRUNED_GRID, args.repeats)
    print(f"pruned winner {pruned_params}: {pruned_t * 1e3:.2f}ms "
          f"({ref_sparse / pruned_t:.2f}x vs reference on sparse)")

    winners = {"blocked": blocked_params, "pruned": pruned_params}
    if args.dry_run:
        print("dry run; not persisting")
        return 0
    path = dispatch.save_tuning(winners)
    print(f"persisted to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
