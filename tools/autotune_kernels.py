"""Autotune the blocked/pruned/jit min-plus kernels for this machine.

Block sizes trade temporary-array footprint against Python-loop overhead,
and the sweet spot depends on cache sizes and the numpy build.  This tool
times candidate shapes on two representative workloads —

* a dense min-plus square (the late doubling rounds / 3-hop products), and
* a sparse one-hop-style matrix (~97% 0̄, the early doubling rounds) —

and persists the winners via :func:`repro.kernels.dispatch.save_tuning`, so
every later :func:`~repro.kernels.minplus.semiring_matmul` call picks them
up through :func:`~repro.kernels.dispatch.tuning_for`.

When the compiled ``jit`` backend is importable it is timed too — *after*
an explicit :func:`repro.kernels.jit.warm_up`, so first-call compilation
never pollutes the steady-state numbers — and the ``auto`` policy's
``jit_min_ops`` threshold is fitted from the crossover against the best
numpy kernel.  A backend that fails to import (e.g. ``jit`` without the
``numba`` extra) is skipped with a log line, never a crash.

The tuning JSON's reserved ``meta`` key records provenance: numpy and
numba versions plus the measured warm-compile seconds.  A cache whose
recorded versions do not match the running interpreter is stale and worth
re-tuning (numba invalidates its own on-disk cache on version bumps, so
the recorded compile time is the honest re-pay cost).

Usage: python tools/autotune_kernels.py [--size N] [--repeats R] [--dry-run]
"""

from __future__ import annotations

import argparse
import itertools
import time

import numpy as np

from repro.kernels import dispatch
from repro.core.semiring import MIN_PLUS

#: Candidate grids.  Kept small: the whole sweep is a few dozen timed calls.
BLOCKED_GRID = {
    "block_l": (16, 32, 64, 128),
    "block_k": (32, 64, 128, 256),
    "block_m": (64, 128, 256),
}
PRUNED_GRID = {
    "block_l": (16, 32, 48, 96),
    "dead_frac": (1 / 32, 1 / 16, 1 / 8),
}


def _dense_operand(n: int, rng: np.random.Generator) -> np.ndarray:
    a = rng.uniform(0.1, 10.0, size=(n, n))
    np.fill_diagonal(a, 0.0)
    return a


def _sparse_operand(n: int, rng: np.random.Generator, density: float = 0.03) -> np.ndarray:
    a = np.full((n, n), np.inf)
    m = int(density * n * n)
    a[rng.integers(0, n, m), rng.integers(0, n, m)] = rng.uniform(0.1, 10.0, m)
    np.fill_diagonal(a, 0.0)
    return a


def _time_call(a: np.ndarray, kernel: str, tuning: dict, repeats: int) -> float:
    out = np.empty_like(a)
    fn = dispatch._KERNELS[kernel]
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(a, a, MIN_PLUS, out, False, 1 << 22, tuning)
        best = min(best, time.perf_counter() - t0)
    return best


def _sweep(a: np.ndarray, kernel: str, grid: dict, repeats: int) -> tuple[dict, float]:
    names = sorted(grid)
    best_params, best_t = None, np.inf
    for combo in itertools.product(*(grid[k] for k in names)):
        params = dict(zip(names, combo))
        t = _time_call(a, kernel, params, repeats)
        if t < best_t:
            best_params, best_t = params, t
    return best_params, best_t


def _jit_crossover(
    dense_t: float, numpy_t: float, n: int, repeats: int
) -> float:
    """Fit the ``auto`` policy's ``jit_min_ops`` threshold: the operation
    count where the compiled kernel starts beating the best numpy kernel.

    The compiled kernel's per-call fixed cost (dispatch + thread fork)
    dominates tiny products; both kernels scale ~linearly in ``l·k·m`` at
    the sizes that matter, so a sweep over shrinking squares finds the
    crossover within a factor of 8 — plenty for a policy knob with a safe
    default.
    """
    if dense_t >= numpy_t:  # compiled slower even at full size: never auto-pick
        return float(2**62)  # finite (strict JSON), unreachably large
    side = n
    threshold = float(side) ** 3
    while side >= 32:
        side //= 2
        rng = np.random.default_rng(side)
        a = _dense_operand(side, rng)
        jt = _time_call(a, "jit", {}, repeats)
        nt = min(
            _time_call(a, "pruned", {}, repeats),
            _time_call(a, "blocked", {}, repeats),
        )
        if jt >= nt:
            break
        threshold = float(side) ** 3
    return max(threshold, float(dispatch.AUTO_SMALL_OPS))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=384, help="operand side length")
    parser.add_argument("--repeats", type=int, default=3, help="timings per candidate (min kept)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--dry-run", action="store_true", help="print winners, don't persist")
    args = parser.parse_args(argv)

    dispatch.available_kernels()  # force registration
    rng = np.random.default_rng(args.seed)
    n = args.size

    dense = _dense_operand(n, rng)
    sparse = _sparse_operand(n, rng)

    ref_dense = _time_call(dense, "reference", {}, args.repeats)
    ref_sparse = _time_call(sparse, "reference", {}, args.repeats)
    print(f"reference: dense {ref_dense * 1e3:.2f}ms  sparse {ref_sparse * 1e3:.2f}ms  (n={n})")

    blocked_params, blocked_t = _sweep(dense, "blocked", BLOCKED_GRID, args.repeats)
    print(f"blocked winner {blocked_params}: {blocked_t * 1e3:.2f}ms "
          f"({ref_dense / blocked_t:.2f}x vs reference on dense)")

    pruned_params, pruned_t = _sweep(sparse, "pruned", PRUNED_GRID, args.repeats)
    print(f"pruned winner {pruned_params}: {pruned_t * 1e3:.2f}ms "
          f"({ref_sparse / pruned_t:.2f}x vs reference on sparse)")

    winners: dict[str, dict] = {"blocked": blocked_params, "pruned": pruned_params}
    meta: dict[str, object] = {
        "numpy": np.__version__,
        "tuned_size": n,
    }

    # ---- optional compiled backend: skip (never crash) when unimportable.
    try:
        from repro.kernels import jit as jit_mod

        jit_ok = jit_mod.jit_available()
        if not jit_ok:
            print(f"jit backend unavailable, skipping ({jit_mod.NUMBA_IMPORT_ERROR})")
    except Exception as exc:  # pragma: no cover - broken partial install
        jit_ok = False
        print(f"jit backend failed to import, skipping ({type(exc).__name__}: {exc})")

    if jit_ok:
        import numba

        compile_s = jit_mod.warm_up()
        meta["numba"] = numba.__version__
        meta["jit_compile_s"] = round(compile_s, 3)
        print(f"jit warm-up (compile): {compile_s:.2f}s")

        jit_dense = _time_call(dense, "jit", {}, args.repeats)
        jit_sparse = _time_call(sparse, "jit", {}, args.repeats)
        print(f"jit: dense {jit_dense * 1e3:.2f}ms ({ref_dense / jit_dense:.2f}x ref)  "
              f"sparse {jit_sparse * 1e3:.2f}ms ({ref_sparse / jit_sparse:.2f}x ref)")

        jit_min_ops = _jit_crossover(
            jit_dense, min(blocked_t, pruned_t), n, args.repeats
        )
        winners["auto"] = {"jit_min_ops": jit_min_ops}
        print(f"auto policy: jit_min_ops = {jit_min_ops:.3g}")

    winners["meta"] = meta
    if args.dry_run:
        print("dry run; not persisting")
        return 0
    path = dispatch.save_tuning(winners)
    print(f"persisted to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
