#!/usr/bin/env python
"""Shared-memory leak checker for the ``shm`` backend.

The zero-copy plane (:mod:`repro.pram.shm`) promises that every segment it
creates in ``/dev/shm`` is unlinked when its arena closes — even across
worker crashes.  This tool verifies that promise on a live machine:

* ``--scan`` (default): list any ``psp*`` segments currently present and
  exit non-zero if any exist.  Run it after a test session or a bench run;
  a clean tree prints nothing.  Plain arenas name segments
  ``psp_<pid>_<hex>``; shard-fleet workers name theirs
  ``psps<shard>_<pid>_<hex>`` (see :class:`repro.pram.shm.ShmArena`'s
  ``tag``) — the report annotates which shard and owner pid a leaked
  segment belonged to.
* ``--exercise``: run a full augmentation + batched-query workload on the
  ``shm`` backend (including a deliberately crashing task), then scan.
* ``--clean``: unlink whatever stale ``psp_*`` segments are found (e.g.
  after a SIGKILL'd orchestrator, where no finalizer could run).
* ``--cache-dir DIR``: also scan the augmentation store (:mod:`repro.cache`)
  for *stale* ``<key>.lock`` build locks (owner pid dead, or older than the
  staleness bound) and orphaned ``*.tmp-*`` write files — the debris a
  SIGKILL'd builder leaves behind; ``--clean`` removes those too.

Exit code 0 = no leaks (after cleaning, if requested).
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


#: Segment-name shape: ``psp[s<shard>|g<epoch>]_<pid>_<hex>`` (plain arenas
#: carry no tag; shard-fleet workers tag theirs with the shard id; query
#: engines tag each arena *generation* with its weights epoch, so a leaked
#: segment tells you which reweight generation failed to unlink).
_SEGMENT_RE = re.compile(r"^psp(?:s(\d+))?(?:g(\d+))?_(\d+)_[0-9a-f]+$")


def scan() -> list[str]:
    from repro.pram.shm import orphaned_segments

    return orphaned_segments()


def describe(name: str) -> str:
    """Human-readable provenance of a segment name: its owner pid, for
    per-shard fleet arenas which shard's worker created it, and for query
    engines which reweight generation the arena belonged to."""
    m = _SEGMENT_RE.match(name)
    if not m:
        return name
    shard, epoch, pid = m.groups()
    who = f"shard {shard} worker" if shard is not None else "arena owner"
    if epoch is not None:
        who += f", epoch {epoch} generation"
    return f"{name} ({who} pid {pid})"


def scan_cache(cache_dir: str | None) -> list[str]:
    """Paths of stale build locks and orphaned temp files under the store.

    A ``<key>.lock`` counts only when :class:`repro.cache.AugmentationCache`
    itself would break it (dead pid or over-age) — a live builder's lock is
    healthy, not a leak.  Any ``*.tmp-*`` counts: atomic writes rename or
    unlink theirs before returning, so a survivor is a crashed writer's.
    """
    import pathlib

    from repro.cache import AugmentationCache

    store = AugmentationCache(cache_dir)
    base = pathlib.Path(store.dir)
    if not base.is_dir():
        return []
    stale: list[str] = []
    for path in sorted(base.iterdir()):
        name = path.name
        if ".tmp-" in name:
            stale.append(str(path))
        elif name.endswith(".lock") and name != "index.lock":
            if store._lock_is_stale(path):
                stale.append(str(path))
    return stale


def clean_cache(paths: list[str]) -> None:
    for p in paths:
        try:
            os.unlink(p)
            print(f"removed stale cache file {p}")
        except FileNotFoundError:
            pass


def clean(names: list[str]) -> None:
    from multiprocessing import shared_memory

    for name in names:
        try:
            seg = shared_memory.SharedMemory(name=name)
            seg.unlink()
            seg.close()
            print(f"unlinked stale segment {name}")
        except FileNotFoundError:
            pass


def exercise() -> None:
    import numpy as np

    from repro.core.api import ShortestPathOracle
    from repro.pram.executor import get_executor
    from repro.separators.grid import decompose_grid
    from repro.workloads.generators import grid_digraph

    rng = np.random.default_rng(0)
    g = grid_digraph((12, 12), rng)
    tree = decompose_grid(g, (12, 12))
    oracle = ShortestPathOracle.build(g, tree, method="leaves_up", executor="shm:2")
    with oracle.query_engine(executor="shm:2") as eng:
        eng.query(rng.integers(0, g.n, size=64))
    # A crashing worker task must not take any segment down with it.
    exe = get_executor("shm:2")
    try:
        exe.map(_crash, [None])
    except RuntimeError:
        pass
    finally:
        exe.close()
    print("exercise complete (augmentation + 64-source batch + worker crash)")


def _crash(payload):
    raise RuntimeError("deliberate crash for leak check")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--exercise", action="store_true",
                    help="run an shm workload (incl. a worker crash) first")
    ap.add_argument("--clean", action="store_true",
                    help="unlink any stale segments / cache files found")
    ap.add_argument("--cache-dir", dest="cache_dir", default=None,
                    help="also scan this augmentation-store directory "
                         "(pass '' for the default store) for stale locks "
                         "and orphaned *.tmp-* files")
    args = ap.parse_args(argv)
    if args.exercise:
        exercise()
    leaks = scan()
    if leaks and args.clean:
        clean(leaks)
        leaks = scan()
    cache_leaks: list[str] = []
    if args.cache_dir is not None:
        cache_leaks = scan_cache(args.cache_dir or None)
        if cache_leaks and args.clean:
            clean_cache(cache_leaks)
            cache_leaks = scan_cache(args.cache_dir or None)
    rc = 0
    if leaks:
        print(f"LEAK: {len(leaks)} stale segment(s) in /dev/shm: "
              f"{[describe(name) for name in leaks]}")
        rc = 1
    else:
        print("no leaked shared-memory segments")
    if args.cache_dir is not None:
        if cache_leaks:
            print(f"LEAK: {len(cache_leaks)} stale cache file(s): {cache_leaks}")
            rc = 1
        else:
            print("no stale cache locks or temp files")
    return rc


if __name__ == "__main__":
    sys.exit(main())
