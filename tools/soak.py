"""Soak fuzzer: thousands of randomized end-to-end cases beyond the unit
suites' hypothesis budgets.  Exits nonzero on the first counterexample.

Usage: python tools/soak.py [iterations] [base_seed]
"""

import sys

import numpy as np

from repro.core.digraph import WeightedDigraph
from repro.core.doubling import augment_doubling
from repro.core.doubling_shared import augment_doubling_shared
from repro.core.leaves_up import augment_leaves_up
from repro.core.shortcuts import is_bitonic_with_pairs, shortcut_chain
from repro.core.sssp import measured_diameter, sssp_scheduled
from repro.core.witnesses import WitnessOracle
from repro.core.paths import path_weight
from repro.kernels.floyd_warshall import floyd_warshall
from repro.separators.spectral import decompose_spectral
from repro.workloads.synthetic import separator_programmable_family

BUILDERS = [augment_leaves_up, augment_doubling, augment_doubling_shared]


def random_graph(rng):
    n = int(rng.integers(2, 40))
    m = int(rng.integers(0, 5 * n))
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src != dst
    w = rng.uniform(0.1, 9.0, size=int(keep.sum()))
    g = WeightedDigraph(n, src[keep], dst[keep], w)
    if rng.uniform() < 0.5:
        p = rng.uniform(0, 5, size=n)
        g = WeightedDigraph(n, g.src, g.dst, g.weight + p[g.src] - p[g.dst])
    return g


def one_case(i, rng):
    kind = i % 4
    if kind == 0:  # random digraph through every builder
        g = random_graph(rng)
        tree = decompose_spectral(g, leaf_size=int(rng.integers(2, 7)))
        tree.validate(g)
        ref = floyd_warshall(g.dense_weights())
        for build in BUILDERS:
            aug = build(g, tree, keep_node_distances=False)
            got = sssp_scheduled(aug, list(range(g.n)))
            both_inf = np.isinf(got) & np.isinf(ref)
            assert (both_inf | np.isclose(got, ref, atol=1e-8)).all(), build.__name__
            assert measured_diameter(aug) <= aug.diameter_bound, build.__name__
    elif kind == 1:  # synthetic family at random mu
        mu = float(rng.uniform(0, 0.85))
        g, tree = separator_programmable_family(int(rng.integers(20, 150)), mu, rng)
        tree.validate(g)
        aug = augment_leaves_up(g, tree, keep_node_distances=False)
        got = sssp_scheduled(aug, 0)
        ref = floyd_warshall(g.dense_weights())[0]
        both_inf = np.isinf(got) & np.isinf(ref)
        assert (both_inf | np.isclose(got, ref)).all()
    elif kind == 2:  # witness paths
        g = random_graph(rng)
        tree = decompose_spectral(g, leaf_size=4)
        oracle = WitnessOracle(g, tree)
        ref = floyd_warshall(g.dense_weights())
        for _ in range(10):
            u, v = int(rng.integers(g.n)), int(rng.integers(g.n))
            p = oracle.path(u, v)
            if np.isinf(ref[u, v]):
                assert p is None
            else:
                assert abs(path_weight(g, p) - ref[u, v]) < 1e-8
    else:  # shortcut chain lemma on random levels
        levels = rng.integers(-1, 8, size=int(rng.integers(1, 60)))
        chain = shortcut_chain(levels)
        if chain:
            assert is_bitonic_with_pairs([int(levels[j]) for j in chain])
            d = int(levels.max())
            assert len(chain) - 1 <= 4 * max(d, 0) + 1


def main():
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    base = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    for i in range(iterations):
        rng = np.random.default_rng(base + i)
        try:
            one_case(i, rng)
        except Exception:
            print(f"COUNTEREXAMPLE at iteration {i} (seed {base + i})")
            raise
        if (i + 1) % 50 == 0:
            print(f"{i + 1}/{iterations} ok", flush=True)
    print("SOAK PASSED")


if __name__ == "__main__":
    main()
