"""Persistence for graphs, separator trees, and augmentations.

Paper comment (iv): the decomposition "needs to be computed only once for a
group of instances which differ in the weights and direction on edges" —
which only pays off if it can be *stored*.  Everything serializes to a
single ``.npz`` (numpy archive): portable, compressed, no pickle of code
objects.

Augmentation archives carry a versioned header (format 2):

* ``version`` — the :data:`AUG_FORMAT_VERSION` that wrote the file (absent
  in legacy format-1 archives, which still load);
* ``validated`` — whether the decomposition validity check ran at build
  time, letting a cache hit skip re-validation (``repro.cache``);
* ``config_json`` — the build's :class:`~repro.core.config.OracleConfig`,
  so ``save → load → query_engine`` keeps the original ``kernel`` /
  ``executor`` choices instead of silently reverting to defaults.

``load_augmentation(..., arena=...)`` streams the edge arrays from the
archive directly into a :class:`~repro.pram.shm.ShmArena` — the shared
pages are the *only* destination buffer (no private intermediate copy), so
a cache hit warm-starts shm serving with one disk→arena copy per array.
"""

from __future__ import annotations

import json

import numpy as np

from .core.augment import Augmentation, NodeDistances
from .core.digraph import WeightedDigraph
from .core.semiring import SEMIRINGS
from .core.septree import SeparatorTree, SepTreeNode

__all__ = [
    "AUG_FORMAT_VERSION",
    "save_graph",
    "load_graph",
    "save_tree",
    "load_tree",
    "save_augmentation",
    "load_augmentation",
]

#: Version written into every new augmentation archive.  Readers accept
#: ``<=`` this (1 = legacy headerless payload) and refuse newer files
#: loudly instead of misreading them.
AUG_FORMAT_VERSION = 2


def save_graph(path, g: WeightedDigraph) -> None:
    """Write a graph to ``path`` (.npz)."""
    np.savez_compressed(path, kind="graph", n=g.n, src=g.src, dst=g.dst, weight=g.weight)


def load_graph(path) -> WeightedDigraph:
    """Read a graph written by :func:`save_graph`."""
    with np.load(path, allow_pickle=False) as z:
        if str(z["kind"]) != "graph":
            raise ValueError(f"{path} is not a saved graph")
        return WeightedDigraph(int(z["n"]), z["src"], z["dst"], z["weight"])


def save_tree(path, tree: SeparatorTree) -> None:
    """Write a separator tree to ``path`` (.npz).

    Node arrays are stored flattened with offset tables (npz holds flat
    arrays best); parent/level/children are small int arrays.
    """
    verts, seps, bounds = [], [], []
    voff, soff, boff = [0], [0], [0]
    parents, levels, child0, child1 = [], [], [], []
    for t in tree.nodes:
        verts.append(t.vertices)
        seps.append(t.separator)
        bounds.append(t.boundary)
        voff.append(voff[-1] + t.vertices.shape[0])
        soff.append(soff[-1] + t.separator.shape[0])
        boff.append(boff[-1] + t.boundary.shape[0])
        parents.append(t.parent)
        levels.append(t.level)
        kids = list(t.children) + [-1, -1]
        child0.append(kids[0])
        child1.append(kids[1])
    np.savez_compressed(
        path,
        kind="septree",
        n=tree.n,
        vertices=np.concatenate(verts) if verts else np.empty(0, np.int64),
        separators=np.concatenate(seps) if seps else np.empty(0, np.int64),
        boundaries=np.concatenate(bounds) if bounds else np.empty(0, np.int64),
        voff=np.array(voff), soff=np.array(soff), boff=np.array(boff),
        parents=np.array(parents), levels=np.array(levels),
        child0=np.array(child0), child1=np.array(child1),
    )


def load_tree(path) -> SeparatorTree:
    """Read a separator tree written by :func:`save_tree`."""
    with np.load(path, allow_pickle=False) as z:
        if str(z["kind"]) != "septree":
            raise ValueError(f"{path} is not a saved separator tree")
        # Materialize every member exactly once: ``NpzFile.__getitem__``
        # decompresses the whole member per access, so indexing ``z[...]``
        # inside the node loop is quadratic (tens of seconds for a few
        # thousand nodes — the cache's whole win would drown in it).
        n = int(z["n"])
        vertices, separators, boundaries = z["vertices"], z["separators"], z["boundaries"]
        voff, soff, boff = z["voff"], z["soff"], z["boff"]
        parents, levels = z["parents"], z["levels"]
        child0, child1 = z["child0"], z["child1"]
    nodes = []
    for i in range(parents.shape[0]):
        kids = tuple(int(c) for c in (child0[i], child1[i]) if c >= 0)
        nodes.append(
            SepTreeNode(
                idx=i,
                level=int(levels[i]),
                parent=int(parents[i]),
                vertices=vertices[voff[i] : voff[i + 1]],
                separator=separators[soff[i] : soff[i + 1]],
                boundary=boundaries[boff[i] : boff[i + 1]],
                children=kids,
            )
        )
    return SeparatorTree(nodes, n)


def _serializable_config(config) -> dict | None:
    """A JSON-able ``OracleConfig.to_dict()``, degrading the two fields
    that may hold live objects (an executor instance, a callable
    separator) to their spec-string defaults instead of failing the save."""
    if config is None:
        return None
    sanitized = config
    if not (config.executor is None or isinstance(config.executor, str)):
        sanitized = sanitized.replace(executor="serial")
    if config.separator is not None and not isinstance(config.separator, str):
        sanitized = sanitized.replace(separator="auto")
    return sanitized.to_dict()


def save_augmentation(path, aug: Augmentation, *, config=None, validated: bool = False) -> None:
    """Write an augmentation's edge set (not the per-node matrices) plus the
    owning graph and tree — enough to rebuild schedules and query.

    ``config`` (an :class:`~repro.core.config.OracleConfig`) and
    ``validated`` go into the format-2 header so loads can restore the
    build's knobs and skip already-paid validation.
    """
    tree = aug.tree
    payload = dict(
        kind="augmentation",
        version=np.int64(AUG_FORMAT_VERSION),
        validated=np.bool_(validated),
        method=aug.method,
        semiring=aug.semiring.name,
        aug_src=aug.src, aug_dst=aug.dst, aug_weight=aug.weight,
        leaf_idx=np.array(sorted(aug.leaf_diameters)),
        leaf_diam=np.array([aug.leaf_diameters[k] for k in sorted(aug.leaf_diameters)]),
        g_n=aug.graph.n, g_src=aug.graph.src, g_dst=aug.graph.dst,
        g_weight=aug.graph.weight,
    )
    cfg_dict = _serializable_config(config)
    if cfg_dict is not None:
        payload["config_json"] = json.dumps(cfg_dict, sort_keys=True)
    hopset = getattr(aug, "hopset", None)
    if hopset is not None:
        # Hopset augmentations persist the construction record alongside the
        # shortcut arrays (which already travel as aug_src/dst/weight), so a
        # cache hit can replay the same pivots on reweight.
        payload["hopset_json"] = json.dumps(
            {
                "eps": hopset.eps,
                "beta": hopset.beta,
                "rounded": hopset.rounded,
                "hop_cap": hopset.hop_cap,
                "seed": hopset.seed,
                "build_wall_s": hopset.build_wall_s,
                "budgets": [int(b) for b in hopset.budgets],
            },
            sort_keys=True,
        )
        pivots = list(hopset.pivots)
        payload["hopset_pivots"] = (
            np.concatenate(pivots) if pivots else np.empty(0, np.int64)
        )
        poff = np.zeros(len(pivots) + 1, dtype=np.int64)
        for i, p in enumerate(pivots):
            poff[i + 1] = poff[i] + p.shape[0]
        payload["hopset_poff"] = poff
    import io as _io

    buf = _io.BytesIO()
    save_tree(buf, tree)
    payload["tree_blob"] = np.frombuffer(buf.getvalue(), dtype=np.uint8)
    np.savez_compressed(path, **payload)


def _stream_member_into_arena(z, name: str, arena):
    """Decompress one ``.npy`` archive member straight into a fresh arena
    allocation — the shared pages are the only destination buffer.

    Falls back to load-then-copy for exotic headers (fortran order,
    object dtypes never occur in our payloads but cost nothing to guard).
    """
    from numpy.lib import format as npf

    try:
        with z.zip.open(name + ".npy") as fp:
            version = npf.read_magic(fp)
            if version == (1, 0):
                shape, fortran, dtype = npf.read_array_header_1_0(fp)
            elif version == (2, 0):
                shape, fortran, dtype = npf.read_array_header_2_0(fp)
            else:
                raise ValueError(f"unknown npy version {version}")
            if fortran or dtype.hasobject:
                raise ValueError("non-C layout")
            _, view = arena.alloc(shape, dtype)
            mv = memoryview(view).cast("B") if view.nbytes else memoryview(b"")
            filled = 0
            while filled < view.nbytes:
                got = fp.readinto(mv[filled:])
                if not got:
                    raise EOFError(f"truncated archive member {name}")
                filled += got
            return view
    except (ValueError, KeyError):
        _, view = arena.alloc(z[name].shape, z[name].dtype)
        view[...] = z[name]
        return view


def load_augmentation(path, *, arena=None, with_meta: bool = False):
    """Read an augmentation written by :func:`save_augmentation`.

    Per-node distance matrices are not persisted (rebuild with
    ``keep_node_distances=True`` when the k-pair oracle is needed).

    Parameters
    ----------
    arena:
        A :class:`~repro.pram.shm.ShmArena`: the graph and augmentation
        edge arrays are streamed into shared memory (see module docs) and
        the returned augmentation records the arena on ``aug.arena``.  The
        arena must outlive the augmentation's use by worker processes.
    with_meta:
        Also return the header dict ``{"version", "validated", "config"}``
        (``config`` is the saved build-config dict, or ``None`` for
        legacy archives).
    """
    import io as _io

    with np.load(path, allow_pickle=False) as z:
        if str(z["kind"]) != "augmentation":
            raise ValueError(f"{path} is not a saved augmentation")
        version = int(z["version"]) if "version" in z.files else 1
        if version > AUG_FORMAT_VERSION:
            raise ValueError(
                f"{path} has augmentation format {version}; this build reads "
                f"<= {AUG_FORMAT_VERSION}"
            )
        meta = {
            "version": version,
            "validated": bool(z["validated"]) if "validated" in z.files else False,
            "config": json.loads(str(z["config_json"])) if "config_json" in z.files else None,
        }
        semiring = SEMIRINGS[str(z["semiring"])]
        if arena is not None:
            g_src = _stream_member_into_arena(z, "g_src", arena)
            g_dst = _stream_member_into_arena(z, "g_dst", arena)
            g_weight = _stream_member_into_arena(z, "g_weight", arena)
            aug_src = _stream_member_into_arena(z, "aug_src", arena)
            aug_dst = _stream_member_into_arena(z, "aug_dst", arena)
            aug_weight = _stream_member_into_arena(z, "aug_weight", arena)
        else:
            g_src, g_dst, g_weight = z["g_src"], z["g_dst"], z["g_weight"]
            aug_src, aug_dst, aug_weight = z["aug_src"], z["aug_dst"], z["aug_weight"]
        graph = WeightedDigraph(int(z["g_n"]), g_src, g_dst, g_weight)
        tree = load_tree(_io.BytesIO(z["tree_blob"].tobytes()))
        leaf_diameters = {
            int(k): int(d) for k, d in zip(z["leaf_idx"], z["leaf_diam"])
        }
        weight = np.asarray(aug_weight).astype(semiring.dtype, copy=False)
        if "hopset_json" in z.files:
            from .hopset import Hopset, HopsetAugmentation  # local: avoids cycle

            rec = json.loads(str(z["hopset_json"]))
            flat, poff = z["hopset_pivots"], z["hopset_poff"]
            pivots = tuple(
                flat[poff[i] : poff[i + 1]].astype(np.int64)
                for i in range(poff.shape[0] - 1)
            )
            aug = HopsetAugmentation(
                graph=graph,
                tree=tree,
                semiring=semiring,
                src=aug_src,
                dst=aug_dst,
                weight=weight,
                leaf_diameters=leaf_diameters,
                node_distances={},
                method=str(z["method"]),
                hopset=Hopset(
                    src=aug_src,
                    dst=aug_dst,
                    weight=weight,
                    pivots=pivots,
                    budgets=tuple(int(b) for b in rec["budgets"]),
                    eps=float(rec["eps"]),
                    beta=int(rec["beta"]),
                    rounded=bool(rec["rounded"]),
                    hop_cap=int(rec["hop_cap"]),
                    seed=int(rec["seed"]),
                    build_wall_s=float(rec["build_wall_s"]),
                ),
            )
        else:
            aug = Augmentation(
                graph=graph,
                tree=tree,
                semiring=semiring,
                src=aug_src,
                dst=aug_dst,
                weight=weight,
                leaf_diameters=leaf_diameters,
                node_distances={},
                method=str(z["method"]),
            )
        aug.arena = arena
        return (aug, meta) if with_meta else aug
