"""Persistence for graphs, separator trees, and augmentations.

Paper comment (iv): the decomposition "needs to be computed only once for a
group of instances which differ in the weights and direction on edges" —
which only pays off if it can be *stored*.  Everything serializes to a
single ``.npz`` (numpy archive): portable, compressed, no pickle of code
objects.
"""

from __future__ import annotations

import pathlib

import numpy as np

from .core.augment import Augmentation, NodeDistances
from .core.digraph import WeightedDigraph
from .core.semiring import SEMIRINGS
from .core.septree import SeparatorTree, SepTreeNode

__all__ = [
    "save_graph",
    "load_graph",
    "save_tree",
    "load_tree",
    "save_augmentation",
    "load_augmentation",
]


def save_graph(path, g: WeightedDigraph) -> None:
    """Write a graph to ``path`` (.npz)."""
    np.savez_compressed(path, kind="graph", n=g.n, src=g.src, dst=g.dst, weight=g.weight)


def load_graph(path) -> WeightedDigraph:
    """Read a graph written by :func:`save_graph`."""
    with np.load(path, allow_pickle=False) as z:
        if str(z["kind"]) != "graph":
            raise ValueError(f"{path} is not a saved graph")
        return WeightedDigraph(int(z["n"]), z["src"], z["dst"], z["weight"])


def save_tree(path, tree: SeparatorTree) -> None:
    """Write a separator tree to ``path`` (.npz).

    Node arrays are stored flattened with offset tables (npz holds flat
    arrays best); parent/level/children are small int arrays.
    """
    verts, seps, bounds = [], [], []
    voff, soff, boff = [0], [0], [0]
    parents, levels, child0, child1 = [], [], [], []
    for t in tree.nodes:
        verts.append(t.vertices)
        seps.append(t.separator)
        bounds.append(t.boundary)
        voff.append(voff[-1] + t.vertices.shape[0])
        soff.append(soff[-1] + t.separator.shape[0])
        boff.append(boff[-1] + t.boundary.shape[0])
        parents.append(t.parent)
        levels.append(t.level)
        kids = list(t.children) + [-1, -1]
        child0.append(kids[0])
        child1.append(kids[1])
    np.savez_compressed(
        path,
        kind="septree",
        n=tree.n,
        vertices=np.concatenate(verts) if verts else np.empty(0, np.int64),
        separators=np.concatenate(seps) if seps else np.empty(0, np.int64),
        boundaries=np.concatenate(bounds) if bounds else np.empty(0, np.int64),
        voff=np.array(voff), soff=np.array(soff), boff=np.array(boff),
        parents=np.array(parents), levels=np.array(levels),
        child0=np.array(child0), child1=np.array(child1),
    )


def load_tree(path) -> SeparatorTree:
    """Read a separator tree written by :func:`save_tree`."""
    with np.load(path, allow_pickle=False) as z:
        if str(z["kind"]) != "septree":
            raise ValueError(f"{path} is not a saved separator tree")
        count = z["parents"].shape[0]
        nodes = []
        for i in range(count):
            kids = tuple(
                int(c) for c in (z["child0"][i], z["child1"][i]) if c >= 0
            )
            nodes.append(
                SepTreeNode(
                    idx=i,
                    level=int(z["levels"][i]),
                    parent=int(z["parents"][i]),
                    vertices=z["vertices"][z["voff"][i] : z["voff"][i + 1]],
                    separator=z["separators"][z["soff"][i] : z["soff"][i + 1]],
                    boundary=z["boundaries"][z["boff"][i] : z["boff"][i + 1]],
                    children=kids,
                )
            )
        return SeparatorTree(nodes, int(z["n"]))


def save_augmentation(path, aug: Augmentation) -> None:
    """Write an augmentation's edge set (not the per-node matrices) plus the
    owning graph and tree — enough to rebuild schedules and query."""
    tree = aug.tree
    payload = dict(
        kind="augmentation",
        method=aug.method,
        semiring=aug.semiring.name,
        aug_src=aug.src, aug_dst=aug.dst, aug_weight=aug.weight,
        leaf_idx=np.array(sorted(aug.leaf_diameters)),
        leaf_diam=np.array([aug.leaf_diameters[k] for k in sorted(aug.leaf_diameters)]),
        g_n=aug.graph.n, g_src=aug.graph.src, g_dst=aug.graph.dst,
        g_weight=aug.graph.weight,
    )
    import io as _io

    buf = _io.BytesIO()
    save_tree(buf, tree)
    payload["tree_blob"] = np.frombuffer(buf.getvalue(), dtype=np.uint8)
    np.savez_compressed(path, **payload)


def load_augmentation(path) -> Augmentation:
    """Read an augmentation written by :func:`save_augmentation`.

    Per-node distance matrices are not persisted (rebuild with
    ``keep_node_distances=True`` when the k-pair oracle is needed).
    """
    import io as _io

    with np.load(path, allow_pickle=False) as z:
        if str(z["kind"]) != "augmentation":
            raise ValueError(f"{path} is not a saved augmentation")
        graph = WeightedDigraph(int(z["g_n"]), z["g_src"], z["g_dst"], z["g_weight"])
        tree = load_tree(_io.BytesIO(z["tree_blob"].tobytes()))
        semiring = SEMIRINGS[str(z["semiring"])]
        leaf_diameters = {
            int(k): int(d) for k, d in zip(z["leaf_idx"], z["leaf_diam"])
        }
        return Augmentation(
            graph=graph,
            tree=tree,
            semiring=semiring,
            src=z["aug_src"],
            dst=z["aug_dst"],
            weight=z["aug_weight"].astype(semiring.dtype),
            leaf_diameters=leaf_diameters,
            node_distances={},
            method=str(z["method"]),
        )
