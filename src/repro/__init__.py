"""repro — Efficient Parallel Shortest-Paths in Digraphs with a Separator
Decomposition (Edith Cohen, SPAA 1993 / J. Algorithms 21(2), 1996).

Full reproduction of the paper's system: separator decomposition trees, the
distance-preserving augmentation E⁺ (Algorithms 4.1 and 4.3), the
level-scheduled parallel Bellman–Ford query engine (§3.2), the boolean
reachability specialization, planar/hammock machinery (§6), applications
(path algebras over semirings, two-variable linear inequalities) and a PRAM
work/depth cost model that makes the paper's Table 1 measurable.

Quick start::

    import numpy as np
    from repro import ShortestPathOracle
    from repro.workloads.generators import grid_digraph
    from repro.separators.grid import decompose_grid

    g = grid_digraph((32, 32), np.random.default_rng(0))
    tree = decompose_grid(g, (32, 32))
    oracle = ShortestPathOracle.build(g, tree)
    dist = oracle.distances([0, 17, 513])
"""

from .core.api import ShortestPathOracle
from .core.augment import Augmentation, NegativeCycleDetected, NodeDistances
from .core.config import OracleConfig
from .core.digraph import WeightedDigraph
from .core.doubling import augment_doubling
from .core.doubling_shared import augment_doubling_shared
from .core.leaves_up import augment_leaves_up
from .core.negcycle import find_negative_cycle, has_negative_cycle
from .core.paths import reconstruct_path, shortest_path_tree
from .core.query import QueryEngine
from .core.reach import reachability_augmentation, reachable_from, transitive_closure
from .core.scheduler import PhaseSchedule, build_schedule
from .core.semiring import BOOLEAN, MAX_MIN, MIN_MAX, MIN_PLUS, SEMIRINGS, Semiring
from .core.septree import (
    DecompositionError,
    SeparatorTree,
    SepTreeNode,
    build_separator_tree,
)
from .core.sssp import measured_diameter, sssp_naive, sssp_scheduled
from .core.validation import ValidationReport, validate_pipeline
from .core.witnesses import WitnessOracle
from .pram.machine import Ledger

__version__ = "1.0.0"

__all__ = [
    "ShortestPathOracle",
    "OracleConfig",
    "WeightedDigraph",
    "SeparatorTree",
    "SepTreeNode",
    "build_separator_tree",
    "DecompositionError",
    "Augmentation",
    "NodeDistances",
    "NegativeCycleDetected",
    "augment_leaves_up",
    "augment_doubling",
    "augment_doubling_shared",
    "PhaseSchedule",
    "build_schedule",
    "sssp_naive",
    "sssp_scheduled",
    "QueryEngine",
    "measured_diameter",
    "WitnessOracle",
    "ValidationReport",
    "validate_pipeline",
    "shortest_path_tree",
    "reconstruct_path",
    "has_negative_cycle",
    "find_negative_cycle",
    "reachability_augmentation",
    "reachable_from",
    "transitive_closure",
    "Semiring",
    "SEMIRINGS",
    "MIN_PLUS",
    "BOOLEAN",
    "MAX_MIN",
    "MIN_MAX",
    "Ledger",
]
