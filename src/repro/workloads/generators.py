"""Workload generators for the experiments.

Every generator takes an explicit ``numpy.random.Generator`` and returns a
:class:`~repro.core.digraph.WeightedDigraph` (plus family-specific extras).
Negative weights are produced with the *potential trick*: sample a vertex
potential ``p`` and set ``w(u→v) = base(u→v) + p[u] − p[v]`` with
``base ≥ 0``; every cycle then has nonnegative total weight, so instances
are negative-edge-rich yet guaranteed free of negative cycles (the shape the
paper's algorithms must handle, per its §1 scope: "real-valued edge
weights").
"""

from __future__ import annotations

import numpy as np

from ..core.digraph import WeightedDigraph

__all__ = [
    "grid_digraph",
    "path_digraph",
    "random_tree_digraph",
    "gnm_digraph",
    "expander_digraph",
    "delaunay_digraph",
    "overlap_digraph",
    "apply_potential_weights",
]


def _random_weights(m: int, rng: np.random.Generator, lo: float, hi: float) -> np.ndarray:
    return rng.uniform(lo, hi, size=m)


def apply_potential_weights(
    g: WeightedDigraph, rng: np.random.Generator, *, scale: float = 5.0
) -> WeightedDigraph:
    """Reweight ``g`` so many edges are negative but no cycle is
    (``w' = w + p[u] − p[v]`` for a random potential ``p``)."""
    p = rng.uniform(0.0, scale, size=g.n)
    return WeightedDigraph(g.n, g.src, g.dst, g.weight + p[g.src] - p[g.dst])


def grid_digraph(
    shape: tuple[int, ...],
    rng: np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1.0, 10.0),
    symmetric_weights: bool = False,
) -> WeightedDigraph:
    """d-dimensional grid with both orientations of every lattice edge.

    With ``symmetric_weights`` the two orientations share a weight;
    otherwise each direction draws independently (a genuinely directed
    instance, which the paper's digraph setting requires).
    """
    shape = tuple(int(s) for s in shape)
    n = int(np.prod(shape))
    idx = np.arange(n).reshape(shape)
    srcs, dsts = [], []
    for axis in range(len(shape)):
        if shape[axis] < 2:
            continue
        lo = np.take(idx, range(shape[axis] - 1), axis=axis).ravel()
        hi = np.take(idx, range(1, shape[axis]), axis=axis).ravel()
        srcs.extend([lo, hi])
        dsts.extend([hi, lo])
    src = np.concatenate(srcs) if srcs else np.empty(0, dtype=np.int64)
    dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=np.int64)
    if rng is None:
        w = np.ones(src.shape[0])
    elif symmetric_weights:
        # Draw one weight per undirected edge via a canonical key.
        key = np.minimum(src, dst) * n + np.maximum(src, dst)
        uniq, inverse = np.unique(key, return_inverse=True)
        per_edge = _random_weights(uniq.shape[0], rng, *weight_range)
        w = per_edge[inverse]
    else:
        w = _random_weights(src.shape[0], rng, *weight_range)
    return WeightedDigraph(n, src, dst, w)


def path_digraph(
    n: int,
    rng: np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1.0, 10.0),
) -> WeightedDigraph:
    """Bidirected path — the μ = 0 (single-vertex separator) family."""
    return grid_digraph((n,), rng, weight_range=weight_range)


def random_tree_digraph(
    n: int,
    rng: np.random.Generator,
    *,
    weight_range: tuple[float, float] = (1.0, 10.0),
) -> WeightedDigraph:
    """Bidirected random recursive tree — another μ = 0 family (treewidth 1)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    kids = np.arange(1, n)
    parents = np.array([int(rng.integers(0, k)) for k in range(1, n)], dtype=np.int64)
    src = np.concatenate([parents, kids])
    dst = np.concatenate([kids, parents])
    w = _random_weights(src.shape[0], rng, *weight_range)
    return WeightedDigraph(n, src, dst, w)


def gnm_digraph(
    n: int,
    m: int,
    rng: np.random.Generator,
    *,
    weight_range: tuple[float, float] = (1.0, 10.0),
) -> WeightedDigraph:
    """Uniform random digraph with ``m`` edges (no structure — the regime
    where separator methods should *not* win; used as a control)."""
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src != dst
    return WeightedDigraph(n, src[keep], dst[keep], _random_weights(int(keep.sum()), rng, *weight_range))


def expander_digraph(
    n: int,
    rng: np.random.Generator,
    *,
    degree: int = 8,
    weight_range: tuple[float, float] = (1.0, 10.0),
) -> WeightedDigraph:
    """Random ``degree``-out digraph plus a Hamiltonian cycle — an expander
    whp, i.e. *no* sublinear separator exists.  The regime where E⁺ blows
    up and the hopset mode (:mod:`repro.hopset`) earns its keep; the cycle
    guarantees strong connectivity so every distance is finite."""
    if n < 2:
        raise ValueError("n must be >= 2")
    degree = min(int(degree), n - 1)
    src = np.repeat(np.arange(n, dtype=np.int64), degree)
    dst = rng.integers(0, n - 1, size=n * degree)
    dst[dst >= src] += 1  # uniform over the n-1 non-self targets
    cyc_src = np.arange(n, dtype=np.int64)
    cyc_dst = np.roll(cyc_src, -1)
    src = np.concatenate([src, cyc_src])
    dst = np.concatenate([dst, cyc_dst])
    # Drop parallel duplicates (a resampled target may repeat).
    key = src * n + dst
    _, keep = np.unique(key, return_index=True)
    keep.sort()
    src, dst = src[keep], dst[keep]
    w = _random_weights(src.shape[0], rng, *weight_range)
    return WeightedDigraph(n, src, dst, w)


def delaunay_digraph(
    n: int,
    rng: np.random.Generator,
    *,
    euclidean_weights: bool = True,
    weight_range: tuple[float, float] = (1.0, 10.0),
) -> tuple[WeightedDigraph, np.ndarray]:
    """Random planar digraph: Delaunay triangulation of ``n`` uniform points
    (both orientations per edge).  Returns ``(graph, points)`` — the points
    feed the geometric separator oracle.
    """
    from scipy.spatial import Delaunay

    pts = rng.uniform(0.0, 1.0, size=(n, 2))
    tri = Delaunay(pts)
    edges = set()
    for simplex in tri.simplices:
        a, b, c = int(simplex[0]), int(simplex[1]), int(simplex[2])
        for u, v in ((a, b), (b, c), (a, c)):
            edges.add((min(u, v), max(u, v)))
    und = np.array(sorted(edges), dtype=np.int64)
    src = np.concatenate([und[:, 0], und[:, 1]])
    dst = np.concatenate([und[:, 1], und[:, 0]])
    if euclidean_weights:
        d = np.linalg.norm(pts[und[:, 0]] - pts[und[:, 1]], axis=1)
        w = np.concatenate([d, d])
    else:
        w = _random_weights(src.shape[0], rng, *weight_range)
    return WeightedDigraph(n, src, dst, w), pts


def overlap_digraph(
    n: int,
    rng: np.random.Generator,
    *,
    dim: int = 2,
    degree_target: float = 6.0,
    weight_range: tuple[float, float] = (1.0, 10.0),
) -> tuple[WeightedDigraph, np.ndarray]:
    """Geometric (r-overlap-style) digraph: connect points within radius
    ``r`` chosen so expected degree ≈ ``degree_target``.  Returns
    ``(graph, points)``.  In d dimensions this family has
    O(n^{(d−1)/d}) separators (Miller–Teng–Vavasis, paper §1).
    """
    import math

    from scipy.spatial import cKDTree

    pts = rng.uniform(0.0, 1.0, size=(n, dim))
    # Expected neighbors within radius r is n·V_d·r^d; solve for r.
    vd = math.pi ** (dim / 2) / math.gamma(dim / 2 + 1)
    r = (degree_target / (n * vd)) ** (1.0 / dim)
    tree = cKDTree(pts)
    pairs = tree.query_pairs(r, output_type="ndarray")
    if pairs.shape[0] == 0:
        pairs = np.empty((0, 2), dtype=np.int64)
    src = np.concatenate([pairs[:, 0], pairs[:, 1]])
    dst = np.concatenate([pairs[:, 1], pairs[:, 0]])
    w = _random_weights(src.shape[0], rng, *weight_range)
    return WeightedDigraph(n, src, dst, w), pts
