"""Separator-programmable synthetic graphs: any μ you want, by construction.

Table 1 is parameterized by μ, but natural families only realize a few
values (grids: (d−1)/d; trees: 0; planar: 1/2).  This generator *builds the
decomposition first*: a recursive construction places a separator of
exactly ``⌈k^μ⌉`` vertices at every node and splits the rest in half —
with full separator inclusion, so separator vertices keep riding down both
subtrees until they land in leaves.

Edges are created **only inside leaf vertex sets**.  That placement is the
key invariant: a leaf's vertices lie on a single side of *every* ancestor
split (the leaf's root-path picks one child at each level), so an
intra-leaf edge can never cross any separator and never pierce any
boundary shield — the programmed tree is a valid separator decomposition
of the emitted graph by construction, with |S(t)| = Θ(|V(t)|^μ) at every
scale.  Distances stay non-trivial because leaves share their boundary
vertices (ancestor separators), which is exactly how the paper's model
routes anything anywhere.

This lets the benches sweep the whole μ axis of Table 1 — in particular
the boundary rows 3μ = 1 (preprocessing n·log² n) and 2μ = 1 (per-source
n·log n) that no standard family hits exactly.  The decomposition is
*input* in the paper's model (comment iv), so programming it is a
legitimate way to measure the μ-dependence of the algorithms' costs.
"""

from __future__ import annotations

import numpy as np

from ..core.digraph import WeightedDigraph
from ..core.septree import SeparatorTree, SepTreeNode

__all__ = ["separator_programmable_family"]


def separator_programmable_family(
    n: int,
    mu: float,
    rng: np.random.Generator,
    *,
    leaf_size: int = 8,
    extra_degree: float = 1.5,
    weight_range: tuple[float, float] = (1.0, 10.0),
) -> tuple[WeightedDigraph, SeparatorTree]:
    """Build ``(graph, tree)`` with programmed separator exponent ``mu``.

    Parameters
    ----------
    leaf_size:
        Recursion stops at this many *fresh* vertices; actual leaf label
        sets also carry the boundary chain, so leaves are O(leaf_size +
        local boundary) — the paper's O(1) with the usual constants.
    extra_degree:
        Random extra intra-leaf edges per leaf vertex on top of the leaf's
        spanning path (controls density; all edges are leaf-internal).
    """
    if not 0.0 <= mu < 1.0:
        raise ValueError("mu must be in [0, 1)")
    if n < 1:
        raise ValueError("n must be positive")
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    nodes: list[SepTreeNode] = []

    def add_leaf_edges(verts: np.ndarray, boundary: np.ndarray) -> None:
        """Leaf-internal edges with ≥1 *fresh* (non-boundary) endpoint.

        Two boundary vertices coexist in other subtrees too, where later
        splits may put them on opposite sides — an edge between them would
        pierce that split.  A fresh vertex exists on this leaf's root path
        only, so fresh-incident edges can never cross any separator.
        """
        fresh = np.setdiff1d(verts, boundary, assume_unique=False)
        if fresh.size == 0:
            return
        srcs, dsts = [], []
        if fresh.size >= 2:  # spanning path over the fresh vertices
            perm = rng.permutation(fresh)
            srcs += [perm[:-1], perm[1:]]
            dsts += [perm[1:], perm[:-1]]
        if boundary.size:  # hook every boundary vertex to a fresh one
            anchors = fresh[rng.integers(0, fresh.size, size=boundary.size)]
            srcs += [boundary, anchors]
            dsts += [anchors, boundary]
        extras = int(round(extra_degree * verts.size))
        if extras:
            eu = fresh[rng.integers(0, fresh.size, size=extras)]
            ev = verts[rng.integers(0, verts.size, size=extras)]
            keep = eu != ev
            srcs += [eu[keep], ev[keep]]
            dsts += [ev[keep], eu[keep]]
        if srcs:
            src_parts.append(np.concatenate(srcs))
            dst_parts.append(np.concatenate(dsts))

    def build(verts: np.ndarray, boundary: np.ndarray, parent: int, level: int) -> None:
        idx = len(nodes)
        if parent >= 0:
            p = nodes[parent]
            p.children = p.children + (idx,)
        k = verts.shape[0]
        if k <= leaf_size + boundary.shape[0]:
            nodes.append(
                SepTreeNode(
                    idx=idx, level=level, parent=parent, vertices=np.sort(verts),
                    separator=np.empty(0, dtype=np.int64), boundary=np.sort(boundary),
                )
            )
            add_leaf_edges(verts, boundary)
            return
        sep_size = min(k - 2, max(1, int(round(k ** mu))))
        perm = rng.permutation(verts)
        sep = perm[:sep_size]
        rest = perm[sep_size:]
        half = rest.shape[0] // 2
        v1, v2 = rest[:half], rest[half:]
        nodes.append(
            SepTreeNode(
                idx=idx, level=level, parent=parent, vertices=np.sort(verts),
                separator=np.sort(sep), boundary=np.sort(boundary),
            )
        )
        new_pool = np.union1d(sep, boundary)
        for side in (v1, v2):
            child_verts = np.union1d(side, sep)
            child_boundary = np.intersect1d(new_pool, child_verts)
            build(child_verts, child_boundary, idx, level + 1)

    build(np.arange(n, dtype=np.int64), np.empty(0, dtype=np.int64), -1, 0)
    src = np.concatenate(src_parts) if src_parts else np.empty(0, dtype=np.int64)
    dst = np.concatenate(dst_parts) if dst_parts else np.empty(0, dtype=np.int64)
    w = rng.uniform(*weight_range, size=src.shape[0])
    graph = WeightedDigraph(n, src, dst, w)
    tree = SeparatorTree(nodes, n)
    return graph, tree
