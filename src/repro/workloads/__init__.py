"""Reproducible workload generators for every experiment family."""
