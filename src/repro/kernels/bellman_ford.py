"""Parallel (Jacobi-style) Bellman–Ford relaxation.

Paper §2.2: on a graph with minimum-weight diameter ``diam(G)``, single
source shortest paths take O(diam·log n) PRAM time and O(m·diam) work by
running ``diam`` synchronous phases, each scanning every edge.  This module
implements that phase engine in vectorized form:

* one phase = extend all edges from current distances and ⊕-reduce
  per head vertex (``reduceat`` over a dst-sorted edge permutation);
* all sources are relaxed simultaneously as rows of an ``(s, n)`` matrix,
  which is exactly the PRAM's per-source independence.

The *scheduled* variant of §3.2 — which scans different edge subsets in
different phases — reuses :class:`EdgeRelaxer` with one relaxer per phase
group (see :mod:`repro.core.scheduler`).

A phase charges ``work = s·(edges scanned)`` and ``depth = ⌈log₂ n⌉`` to the
ledger (the ⊕-reduction tree per head vertex).
"""

from __future__ import annotations

import numpy as np

from ..core.digraph import WeightedDigraph
from ..core.semiring import MIN_PLUS, Semiring
from ..pram.machine import NULL_LEDGER, Ledger, log2ceil, reduce_depth

__all__ = [
    "EdgeRelaxer",
    "bellman_ford",
    "initial_distances",
    "phases_to_convergence",
    "min_weight_diameter",
    "run_phases",
    "NegativeCycleError",
]


class NegativeCycleError(ValueError):
    """Raised when a relaxation is asked to certify distances but a negative
    cycle is reachable from some source."""


class EdgeRelaxer:
    """Relaxation engine for a fixed edge set, grouped by head vertex.

    The dst-sorted permutation and the ``reduceat`` segment boundaries are
    precomputed once so each phase is two gathers, one ⊗, one segmented ⊕
    and one ⊕-assignment — no Python-level per-edge work.

    ``kernel`` selects the phase implementation the same way it does for
    the matmuls (:mod:`repro.kernels.dispatch`): ``None`` defers to the
    process default (``$REPRO_KERNEL`` / :func:`~repro.kernels.dispatch.
    set_default_kernel`), ``"jit"`` forces the compiled CSR core of
    :mod:`repro.kernels.jit` (raising the numba-extra error when
    unavailable), ``"auto"`` takes the compiled core when it is importable
    and the phase clears the (autotunable) ``jit_min_relax_ops`` scan
    floor, and any numpy matmul name keeps the ``reduceat`` path.  Every
    choice is bit-identical: the compiled phase buffers its grouped ⊕
    before writing (synchronous Jacobi, like ``reduceat``) and every
    shipped ⊕ is an exact selection.
    """

    __slots__ = ("semiring", "m", "kernel", "_src", "_w", "_starts", "_targets")

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        weight: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        kernel: str | None = None,
    ) -> None:
        self.semiring = semiring
        self.kernel = kernel
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        weight = np.asarray(weight, dtype=semiring.dtype)
        self.m = int(src.shape[0])
        order = np.argsort(dst, kind="stable")
        self._src = src[order]
        self._w = weight[order]
        dst_sorted = dst[order]
        if self.m:
            new_group = np.ones(self.m, dtype=bool)
            new_group[1:] = dst_sorted[1:] != dst_sorted[:-1]
            self._starts = np.nonzero(new_group)[0]
            self._targets = dst_sorted[self._starts]
        else:
            self._starts = np.empty(0, dtype=np.int64)
            self._targets = np.empty(0, dtype=np.int64)

    @classmethod
    def from_graph(
        cls,
        g: WeightedDigraph,
        semiring: Semiring = MIN_PLUS,
        kernel: str | None = None,
    ) -> "EdgeRelaxer":
        """Relaxer over all edges of ``g``."""
        return cls(g.src, g.dst, g.weight, semiring, kernel=kernel)

    def compiled(self) -> dict[str, np.ndarray]:
        """The precomputed (dst-sorted) arrays of this relaxer, for shipping
        across a process boundary without redoing the argsort — feed to
        :meth:`from_compiled` on the other side.  The arrays may be
        published to shared memory and passed as descriptors."""
        return {
            "src": self._src,
            "w": self._w,
            "starts": self._starts,
            "targets": self._targets,
        }

    @classmethod
    def from_compiled(
        cls,
        arrays: dict[str, np.ndarray],
        semiring: Semiring = MIN_PLUS,
        kernel: str | None = None,
    ) -> "EdgeRelaxer":
        """Rebuild a relaxer from :meth:`compiled` output (zero sorting; the
        arrays are used as-is, so shared-memory views stay zero-copy)."""
        obj = cls.__new__(cls)
        obj.semiring = semiring
        obj.kernel = kernel
        obj._src = arrays["src"]
        obj._w = arrays["w"]
        obj._starts = arrays["starts"]
        obj._targets = arrays["targets"]
        obj.m = int(obj._src.shape[0])
        return obj

    def _use_jit(self, nrows: int) -> bool:
        """Whether this phase should run on the compiled CSR core (see the
        class docstring for the resolution rules)."""
        name = self.kernel
        if name is None:
            from .dispatch import get_default_kernel

            name = get_default_kernel()
        if name == "jit":
            from . import jit
            from .dispatch import _kernel_error

            if not jit.jit_available():
                raise _kernel_error("jit", via_env=self.kernel is None)
            return jit.relax_supported(self.semiring)
        if name == "auto":
            from . import jit

            if not (jit.jit_available() and jit.relax_supported(self.semiring)):
                return False
            from .dispatch import relax_jit_threshold

            return float(nrows) * self.m >= relax_jit_threshold()
        return False

    def relax(self, dist: np.ndarray, *, ledger: Ledger = NULL_LEDGER) -> bool:
        """One synchronous phase over ``dist`` of shape ``(..., n)``, in
        place.  Returns whether any entry strictly improved."""
        if not self.m:
            return False
        sr = self.semiring
        rows = int(np.prod(dist.shape[:-1], dtype=np.int64)) if dist.ndim > 1 else 1
        if dist.ndim <= 2 and self._use_jit(rows):
            from . import jit

            view = dist if dist.ndim == 2 else dist[None, :]
            row_changed = jit.relax_phase(
                view, self._src, self._w, self._starts, self._targets, sr
            )
            ledger.charge(
                work=float(rows) * self.m,
                depth=reduce_depth(dist.shape[-1]),
                label="bf-phase",
            )
            return bool(row_changed.any())
        cand = sr.mul(dist[..., self._src], self._w)
        grouped = sr.add.reduceat(cand, self._starts, axis=-1)
        cur = dist[..., self._targets]
        changed = bool(sr.improves(grouped, cur).any())
        if changed:
            dist[..., self._targets] = sr.add(cur, grouped)
        ledger.charge(
            work=float(rows) * self.m,
            depth=reduce_depth(dist.shape[-1]),
            label="bf-phase",
        )
        return changed

    def relax_rows(
        self, dist: np.ndarray, rows: np.ndarray, *, ledger: Ledger = NULL_LEDGER
    ) -> np.ndarray:
        """One phase restricted to the given source rows of a 2-D ``dist``;
        returns the (global) indices of rows that strictly improved.

        This is the frontier-pruning primitive: rows are independent
        single-source relaxations, so a row this relaxer did not improve is
        at this relaxer's fixpoint and re-relaxing it can never change it —
        iterate with ``rows = relax_rows(dist, rows)`` until empty and only
        still-converging rows are ever scanned.  The ledger is charged the
        *actual* scanned work ``|rows|·m`` (not ``total rows·m``).
        """
        rows = np.asarray(rows, dtype=np.int64)
        if not self.m or rows.size == 0:
            return rows[:0]
        sr = self.semiring
        full = rows.size == dist.shape[0] and bool(
            (rows == np.arange(dist.shape[0])).all()
        )
        sub = dist if full else dist[rows]  # full frontier: in place, no gather
        if self._use_jit(rows.size):
            from . import jit

            row_changed = jit.relax_phase(
                sub, self._src, self._w, self._starts, self._targets, sr
            )
            ledger.charge(
                work=float(rows.size) * self.m,
                depth=reduce_depth(dist.shape[-1]),
                label="bf-phase",
            )
            if not row_changed.any():
                return rows[:0]
            if sub is not dist:
                dist[rows[row_changed]] = sub[row_changed]
            return rows[row_changed]
        cand = sr.mul(sub[:, self._src], self._w)
        grouped = sr.add.reduceat(cand, self._starts, axis=-1)
        cur = sub[:, self._targets]
        row_changed = sr.improves(grouped, cur).any(axis=-1)
        ledger.charge(
            work=float(rows.size) * self.m,
            depth=reduce_depth(dist.shape[-1]),
            label="bf-phase",
        )
        if not row_changed.any():
            return rows[:0]
        if sub is dist:
            dist[:, self._targets] = sr.add(cur, grouped)
        else:
            sub[:, self._targets] = sr.add(cur, grouped)
            dist[rows[row_changed]] = sub[row_changed]
        return rows[row_changed]


def run_phases(
    relaxers: list["EdgeRelaxer"],
    dist: np.ndarray,
    *,
    ledger: Ledger = NULL_LEDGER,
) -> np.ndarray:
    """Run a sequence of relaxation phases over ``dist`` in place, frontier-
    pruning *consecutive runs of the same relaxer object*.

    Within such a run (e.g. the ℓ prefix/suffix full-edge phases of the
    §3.2 schedule, or a Bellman–Ford fixpoint loop) a row the relaxer left
    unchanged is at that relaxer's fixpoint — rows are independent — so it
    is dropped from the frontier for the rest of the run; results are
    bit-identical to relaxing every row every phase, but the ledger is
    charged only the work actually scanned.  Distinct relaxers reset the
    frontier (a row converged under one edge subset may still improve under
    another).
    """
    if dist.ndim == 1:
        view = dist[None, :]
    elif dist.ndim == 2:
        view = dist
    else:  # pragma: no cover - no caller relaxes >2-D stacks today
        for r in relaxers:
            r.relax(dist, ledger=ledger)
        return dist
    i, n_phases = 0, len(relaxers)
    while i < n_phases:
        r = relaxers[i]
        j = i + 1
        while j < n_phases and relaxers[j] is r:
            j += 1
        if j - i == 1:
            r.relax(view, ledger=ledger)
        else:
            active = np.arange(view.shape[0])
            for _ in range(i, j):
                if not active.size:
                    break
                active = r.relax_rows(view, active, ledger=ledger)
        i = j
    return dist


def initial_distances(
    n: int, sources: np.ndarray | list[int], semiring: Semiring = MIN_PLUS
) -> np.ndarray:
    """``(s, n)`` matrix with 1̄ at each source column, 0̄ elsewhere."""
    sources = np.asarray(sources, dtype=np.int64)
    dist = np.full((sources.shape[0], n), semiring.zero, dtype=semiring.dtype)
    dist[np.arange(sources.shape[0]), sources] = semiring.one
    return dist


def bellman_ford(
    g: WeightedDigraph,
    sources: np.ndarray | list[int] | int,
    *,
    semiring: Semiring = MIN_PLUS,
    max_phases: int | None = None,
    check_negative_cycle: bool = False,
    ledger: Ledger = NULL_LEDGER,
) -> np.ndarray:
    """Distances from each source, shape ``(s, n)`` (or ``(n,)`` for a single
    int source).

    Runs until a fixpoint or ``max_phases``.  With ``max_phases=None`` the
    phase count is capped at ``n`` (fixpoint is reached within ``n-1`` phases
    unless a negative cycle is reachable; the extra phase is the standard
    detection margin when ``check_negative_cycle`` is set).
    """
    single = isinstance(sources, (int, np.integer))
    srcs = [int(sources)] if single else list(sources)
    dist = initial_distances(g.n, srcs, semiring)
    relaxer = EdgeRelaxer.from_graph(g, semiring)
    cap = g.n if max_phases is None else max_phases
    # Frontier pruning: only rows that improved last phase can improve again
    # under the same (full) edge set, so converged rows are never rescanned.
    active = np.arange(dist.shape[0])
    phase = 0
    while active.size and phase < cap:
        active = relaxer.relax_rows(dist, active, ledger=ledger)
        phase += 1
    if check_negative_cycle and active.size and relaxer.relax(dist.copy()):
        raise NegativeCycleError("negative-weight cycle reachable from a source")
    return dist[0] if single else dist


def phases_to_convergence(
    g: WeightedDigraph,
    dist: np.ndarray,
    *,
    semiring: Semiring = MIN_PLUS,
    cap: int | None = None,
    ledger: Ledger = NULL_LEDGER,
) -> int:
    """Number of full-scan phases until ``dist`` (modified in place) stops
    improving.  ``cap`` guards against negative cycles (default ``n + 1``).

    With ``dist = initial_distances(n, range(n))`` this measures the
    *minimum-weight diameter* of §2.2: the Jacobi iteration after ``h``
    phases holds exactly the best weight over ≤h-edge paths, so the first
    all-pairs fixpoint phase count equals ``diam(G)``.
    """
    relaxer = EdgeRelaxer.from_graph(g, semiring)
    cap = g.n + 1 if cap is None else cap
    phases = 0
    view = dist if dist.ndim == 2 else dist[None, :]
    active = np.arange(view.shape[0])
    while phases < cap:
        active = relaxer.relax_rows(view, active, ledger=ledger)
        if not active.size:
            break
        phases += 1
    if phases >= cap:
        raise NegativeCycleError("no fixpoint within cap (negative cycle?)")
    return phases


def min_weight_diameter(g: WeightedDigraph, *, semiring: Semiring = MIN_PLUS) -> int:
    """Empirical minimum-weight diameter diam(G) of §2.2 (max over all
    ordered pairs of the fewest edges among optimal paths).

    O(n·m·diam) work — intended for validation at test/bench scale, not as a
    production primitive.
    """
    dist = initial_distances(g.n, np.arange(g.n), semiring)
    return phases_to_convergence(g, dist, semiring=semiring)
