"""Binary-heap Dijkstra — the sequential baseline of the paper's comparison.

Paper §1: "the best known sequential time bound for computing shortest-paths
from s sources is O(mn + n² log n), using a Fibonacci heap implementation of
Johnson's algorithm."  We implement the heap-based variant (Python's heapq
is a binary heap; the O(m log n) vs O(m + n log n) difference is irrelevant
to the measured shapes) plus a multi-source wrapper used by benchmark E-seq.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.digraph import WeightedDigraph

__all__ = ["dijkstra", "dijkstra_multi", "dijkstra_with_parents"]


def dijkstra(g: WeightedDigraph, source: int) -> np.ndarray:
    """Distances from ``source``; requires nonnegative weights."""
    dist, _ = dijkstra_with_parents(g, source)
    return dist


def dijkstra_with_parents(g: WeightedDigraph, source: int) -> tuple[np.ndarray, np.ndarray]:
    """Distances and shortest-path-tree parents (-1 for source/unreached)."""
    if g.has_negative_weights():
        raise ValueError("Dijkstra requires nonnegative edge weights")
    adj = g.out_adj
    dist = np.full(g.n, np.inf)
    parent = np.full(g.n, -1, dtype=np.int64)
    dist[source] = 0.0
    done = np.zeros(g.n, dtype=bool)
    heap: list[tuple[float, int]] = [(0.0, source)]
    indptr, indices, weights = adj.indptr, adj.indices, adj.weights
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        lo, hi = indptr[u], indptr[u + 1]
        for v, w in zip(indices[lo:hi].tolist(), weights[lo:hi].tolist()):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent


def dijkstra_multi(g: WeightedDigraph, sources) -> np.ndarray:
    """Distances from each source, shape ``(s, n)`` — repeated Dijkstra,
    the sequential per-source baseline."""
    return np.stack([dijkstra(g, int(s)) for s in sources])
