"""Compiled (numba) backend for the min-plus inner loops.

Every expensive path in the system — the 3-hop products of Algorithm 4.1,
the squaring rounds of Algorithm 4.3, the spine Bellman–Ford and every
served query — bottoms out in two loops: the dense semiring matrix product
(:func:`repro.kernels.minplus.semiring_matmul`) and the CSR-style frontier
relaxation (:meth:`repro.kernels.bellman_ford.EdgeRelaxer.relax_rows`).
The numpy kernels must materialize ⊕-reduction temporaries; the compiled
kernels here keep the running ⊕ in a register (an ``i,k,j`` loop with a
row accumulator, parallelized over output rows), so they beat the best
vectorized kernel by roughly the temporary-traffic ratio once warm.

numba is a **strictly optional** dependency (``pip install repro[jit]``).
When it is absent this module still imports — ``@njit`` degrades to an
identity decorator and ``prange`` to ``range`` — so the *logic* of every
kernel stays importable and testable in pure Python, but the backend does
**not** register with :mod:`repro.kernels.dispatch`: ``auto`` never picks
``jit`` and requesting it explicitly raises a :class:`ValueError` naming
the missing extra.  :data:`HAVE_NUMBA` / :func:`jit_available` report
which mode the process is in.

**Why the outputs are bit-identical.**  Every shipped ⊕ (min / max / or)
is an exact, order-independent *selection* — it never rounds — so the
register accumulation here re-associates the same reduction the numpy
kernels perform and cannot change a single bit.  Skipping 0̄ terms
(``a[i, k] == 0̄``) is exact for the same reason pruning is: 0̄ is the
⊗-annihilator and the ⊕-identity.  (This argument fails for semirings
whose ⊕ rounds, e.g. plus-times over floats; unknown semirings therefore
fall back to the numpy ``pruned`` kernel — see :func:`matmul_supported`.)

Compilation cost is paid once per (function, signature) pair and is cached
on disk by numba (``cache=True``; set ``NUMBA_CACHE_DIR`` to relocate or
share the cache).  ``tools/autotune_kernels.py`` measures the warm-compile
time separately from the steady-state timings so first-call JIT cost never
pollutes block-size tuning, and persists it for staleness detection.

The PRAM ledger is unaffected by any of this: kernels are execution
detail, the ledger charges model quantities (see
:mod:`repro.kernels.dispatch`).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "NUMBA_IMPORT_ERROR",
    "jit_available",
    "matmul_supported",
    "relax_supported",
    "matmul_jit",
    "relax_phase",
    "hop_limited_jit",
    "warm_up",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    HAVE_NUMBA = True
    NUMBA_IMPORT_ERROR: str | None = None
except Exception as _exc:  # ImportError, or a broken numba/llvmlite install
    HAVE_NUMBA = False
    NUMBA_IMPORT_ERROR = f"{type(_exc).__name__}: {_exc}"

    def njit(*args, **kwargs):  # noqa: D103 - shim, documented above
        """Identity decorator standing in for ``numba.njit`` (pure-Python
        mode): kernels below run as ordinary interpreted loops."""
        if args and callable(args[0]):
            return args[0]

        def deco(fn):
            return fn

        return deco

    prange = range


def jit_available() -> bool:
    """Whether the compiled backend can actually run (numba imported).

    Tests monkeypatch :data:`HAVE_NUMBA` to simulate a missing install;
    always consult this function, never the flag captured at import."""
    return HAVE_NUMBA


#: Semiring names with a compiled matmul / relax core.  ``hops`` shares the
#: min-plus ops (⊕ = min, ⊗ = +).
_SUPPORTED = frozenset({"min-plus", "hops", "max-min", "min-max", "boolean"})


def matmul_supported(semiring) -> bool:
    """Whether ``semiring`` has a compiled matmul (shipped selections only)."""
    return semiring.name in _SUPPORTED


def relax_supported(semiring) -> bool:
    """Whether ``semiring`` has a compiled relaxation core."""
    return semiring.name in _SUPPORTED


# ------------------------------------------------------------------ #
# Matrix product cores: i (parallel) / k / j with a register-resident
# output row; the k loop skips 0̄ A-entries (exact, see module docstring).
# ------------------------------------------------------------------ #


@njit(parallel=True, cache=True)
def _mm_min_plus(a, b, out, accumulate):
    l, kk = a.shape
    m = b.shape[1]
    for i in prange(l):
        row = np.empty(m, np.float64)
        if accumulate:
            for j in range(m):
                row[j] = out[i, j]
        else:
            for j in range(m):
                row[j] = np.inf
        for k in range(kk):
            aik = a[i, k]
            if aik == np.inf:  # 0̄ ⊗ x = 0̄, the ⊕-identity: skip exactly
                continue
            for j in range(m):
                cand = aik + b[k, j]
                if cand < row[j]:
                    row[j] = cand
        for j in range(m):
            out[i, j] = row[j]


@njit(parallel=True, cache=True)
def _mm_max_min(a, b, out, accumulate):
    l, kk = a.shape
    m = b.shape[1]
    for i in prange(l):
        row = np.empty(m, np.float64)
        if accumulate:
            for j in range(m):
                row[j] = out[i, j]
        else:
            for j in range(m):
                row[j] = -np.inf
        for k in range(kk):
            aik = a[i, k]
            if aik == -np.inf:
                continue
            for j in range(m):
                bkj = b[k, j]
                cand = aik if aik < bkj else bkj
                if cand > row[j]:
                    row[j] = cand
        for j in range(m):
            out[i, j] = row[j]


@njit(parallel=True, cache=True)
def _mm_min_max(a, b, out, accumulate):
    l, kk = a.shape
    m = b.shape[1]
    for i in prange(l):
        row = np.empty(m, np.float64)
        if accumulate:
            for j in range(m):
                row[j] = out[i, j]
        else:
            for j in range(m):
                row[j] = np.inf
        for k in range(kk):
            aik = a[i, k]
            if aik == np.inf:
                continue
            for j in range(m):
                bkj = b[k, j]
                cand = aik if aik > bkj else bkj
                if cand < row[j]:
                    row[j] = cand
        for j in range(m):
            out[i, j] = row[j]


@njit(parallel=True, cache=True)
def _mm_bool(a, b, out, accumulate):
    l, kk = a.shape
    m = b.shape[1]
    for i in prange(l):
        row = np.empty(m, np.bool_)
        if accumulate:
            for j in range(m):
                row[j] = out[i, j]
        else:
            for j in range(m):
                row[j] = False
        for k in range(kk):
            if not a[i, k]:
                continue
            for j in range(m):
                if b[k, j]:
                    row[j] = True
        for j in range(m):
            out[i, j] = row[j]


#: semiring name -> (compiled core, operand dtype).
_MM_CORES = {
    "min-plus": (_mm_min_plus, np.float64),
    "hops": (_mm_min_plus, np.float64),
    "max-min": (_mm_max_min, np.float64),
    "min-max": (_mm_min_max, np.float64),
    "boolean": (_mm_bool, np.bool_),
}


def matmul_jit(a, b, semiring, out, accumulate, budget, tuning):
    """The ``jit`` kernel for the dispatch registry (uniform signature).

    ``budget`` and ``tuning`` are accepted for signature compatibility but
    unused: the compiled core's only temporary is one output row per
    thread, so there is nothing to block or budget.  Unknown semirings
    fall back to the numpy ``pruned`` kernel (bit-identity is only argued
    for the shipped selections).
    """
    core = _MM_CORES.get(semiring.name)
    if core is None:
        from .dispatch import _KERNELS, tuning_for

        return _KERNELS["pruned"](
            a, b, semiring, out, accumulate, budget, tuning_for("pruned")
        )
    fn, dt = core
    fn(np.ascontiguousarray(a, dtype=dt), np.ascontiguousarray(b, dtype=dt),
       out, accumulate)
    return out


def hop_limited_jit(base, hops, semiring, out_pool=None):
    """Best weights over ≤``hops``-edge paths with ping-pong buffers.

    ``base`` must already have its diagonal ⊕-combined with 1̄ (the caller,
    :func:`repro.kernels.minplus.hop_limited_product`, does this).  Each
    step is ``acc ← acc ⊗ base`` through the compiled core — bit-identical
    to ``hops - 1`` dispatched ``semiring_matmul(..., kernel="jit")``
    calls, without the per-hop allocation and dispatch overhead.
    """
    fn, dt = _MM_CORES[semiring.name]
    acc = np.ascontiguousarray(base, dtype=dt)
    bb = acc
    scratch = np.empty_like(acc)
    for _ in range(hops - 1):
        fn(acc, bb, scratch, False)
        acc, scratch = scratch, acc if acc is not bb else np.empty_like(acc)
    return acc


# ------------------------------------------------------------------ #
# Relaxation cores: one Jacobi phase over dst-grouped edges.  Rows are
# independent single-source problems (the PRAM's per-source parallelism),
# so the phase parallelizes over rows; per row the grouped ⊕ is buffered
# before any write so the semantics stay synchronous (Jacobi), exactly
# like the numpy ``reduceat`` path.
# ------------------------------------------------------------------ #


@njit(parallel=True, cache=True)
def _relax_min_plus(dist, src, w, starts, targets):
    rows = dist.shape[0]
    ngroups = starts.shape[0]
    m = src.shape[0]
    changed = np.zeros(rows, np.bool_)
    for r in prange(rows):
        grouped = np.empty(ngroups, np.float64)
        for gi in range(ngroups):
            e1 = starts[gi + 1] if gi + 1 < ngroups else m
            e = starts[gi]
            acc = dist[r, src[e]] + w[e]
            for e in range(starts[gi] + 1, e1):
                cand = dist[r, src[e]] + w[e]
                if cand < acc:
                    acc = cand
            grouped[gi] = acc
        rowch = False
        for gi in range(ngroups):
            t = targets[gi]
            if grouped[gi] < dist[r, t]:
                dist[r, t] = grouped[gi]
                rowch = True
        changed[r] = rowch
    return changed


@njit(parallel=True, cache=True)
def _relax_max_min(dist, src, w, starts, targets):
    rows = dist.shape[0]
    ngroups = starts.shape[0]
    m = src.shape[0]
    changed = np.zeros(rows, np.bool_)
    for r in prange(rows):
        grouped = np.empty(ngroups, np.float64)
        for gi in range(ngroups):
            e1 = starts[gi + 1] if gi + 1 < ngroups else m
            e = starts[gi]
            d = dist[r, src[e]]
            acc = d if d < w[e] else w[e]
            for e in range(starts[gi] + 1, e1):
                d = dist[r, src[e]]
                cand = d if d < w[e] else w[e]
                if cand > acc:
                    acc = cand
            grouped[gi] = acc
        rowch = False
        for gi in range(ngroups):
            t = targets[gi]
            if grouped[gi] > dist[r, t]:
                dist[r, t] = grouped[gi]
                rowch = True
        changed[r] = rowch
    return changed


@njit(parallel=True, cache=True)
def _relax_min_max(dist, src, w, starts, targets):
    rows = dist.shape[0]
    ngroups = starts.shape[0]
    m = src.shape[0]
    changed = np.zeros(rows, np.bool_)
    for r in prange(rows):
        grouped = np.empty(ngroups, np.float64)
        for gi in range(ngroups):
            e1 = starts[gi + 1] if gi + 1 < ngroups else m
            e = starts[gi]
            d = dist[r, src[e]]
            acc = d if d > w[e] else w[e]
            for e in range(starts[gi] + 1, e1):
                d = dist[r, src[e]]
                cand = d if d > w[e] else w[e]
                if cand < acc:
                    acc = cand
            grouped[gi] = acc
        rowch = False
        for gi in range(ngroups):
            t = targets[gi]
            if grouped[gi] < dist[r, t]:
                dist[r, t] = grouped[gi]
                rowch = True
        changed[r] = rowch
    return changed


@njit(parallel=True, cache=True)
def _relax_bool(dist, src, w, starts, targets):
    rows = dist.shape[0]
    ngroups = starts.shape[0]
    m = src.shape[0]
    changed = np.zeros(rows, np.bool_)
    for r in prange(rows):
        grouped = np.empty(ngroups, np.bool_)
        for gi in range(ngroups):
            e1 = starts[gi + 1] if gi + 1 < ngroups else m
            acc = False
            for e in range(starts[gi], e1):
                if dist[r, src[e]] and w[e]:
                    acc = True
                    break
            grouped[gi] = acc
        rowch = False
        for gi in range(ngroups):
            t = targets[gi]
            if grouped[gi] and not dist[r, t]:
                dist[r, t] = True
                rowch = True
        changed[r] = rowch
    return changed


_RELAX_CORES = {
    "min-plus": _relax_min_plus,
    "hops": _relax_min_plus,
    "max-min": _relax_max_min,
    "min-max": _relax_min_max,
    "boolean": _relax_bool,
}


def relax_phase(dist, src, w, starts, targets, semiring):
    """One synchronous relaxation phase over ``dist`` (2-D, in place).

    Returns the per-row strictly-improved mask.  Bit-identical to the
    numpy ``reduceat`` path of :class:`~repro.kernels.bellman_ford.
    EdgeRelaxer`: the grouped ⊕ is computed from the pre-phase values
    before any write, and every ⊕ is an exact selection.
    """
    core = _RELAX_CORES[semiring.name]
    return core(dist, src, w, starts, targets)


# ------------------------------------------------------------------ #
# Warm-up / compile-cost measurement
# ------------------------------------------------------------------ #


def warm_up(include_bool: bool = True) -> float:
    """Force-compile every core on tiny operands; returns the wall seconds
    spent (≈0 when numba's on-disk cache is warm or numba is absent).

    The autotuner calls this *before* timing so block-size sweeps never
    include first-call JIT cost, and persists the returned figure so a
    stale ``NUMBA_CACHE_DIR`` is detectable from the tuning file.
    """
    import time

    t0 = time.perf_counter()
    a = np.array([[0.0, np.inf], [1.0, 0.0]])
    out = np.empty((2, 2))
    for fn in (_mm_min_plus, _mm_max_min, _mm_min_max):
        fn(a, a, out, False)
    src = np.array([0, 1], dtype=np.int64)
    starts = np.array([0, 1], dtype=np.int64)
    targets = np.array([0, 1], dtype=np.int64)
    d = np.array([[0.0, np.inf]])
    for fn in (_relax_min_plus, _relax_max_min, _relax_min_max):
        fn(d.copy(), src, np.array([1.0, 2.0]), starts, targets)
    if include_bool:
        ab = np.array([[True, False], [False, True]])
        outb = np.empty((2, 2), np.bool_)
        _mm_bool(ab, ab, outb, False)
        _relax_bool(
            np.array([[True, False]]), src,
            np.array([True, True]), starts, targets,
        )
    return time.perf_counter() - t0


# Registration: only a *working* compiled backend enters the registry, so
# ``auto`` can never select ``jit`` on a numba-less install and
# ``available_kernels()`` reflects what can actually run.  (The helpful
# "requires the numba extra" error for an explicit request lives in
# ``dispatch.resolve_kernel``.)
if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    from .dispatch import register_kernel

    register_kernel("jit")(matmul_jit)
