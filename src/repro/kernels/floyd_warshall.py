"""Floyd–Warshall all-pairs shortest paths over an arbitrary semiring.

Used (a) for the separator-clique APSP in step (ii) of Algorithm 4.1, (b) on
O(1)-size leaf subgraphs, and (c) as a brute-force baseline/oracle in tests
and benchmarks.  The paper notes step (ii) can run in O(log²n) parallel time
with O(|S|³) work (Han–Pan–Reif); the ledger is charged with exactly those
model quantities while the host executes the vectorized cubic loop.
"""

from __future__ import annotations

import numpy as np

from ..core.semiring import MIN_PLUS, Semiring
from ..pram.machine import NULL_LEDGER, Ledger, log2ceil

__all__ = ["floyd_warshall", "floyd_warshall_with_hops", "min_weight_diameter_dense", "floyd_warshall_with_parents"]


def floyd_warshall(
    w: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    *,
    ledger: Ledger = NULL_LEDGER,
    copy: bool = True,
) -> np.ndarray:
    """APSP matrix for the one-hop matrix ``w`` (1̄ is forced on the diagonal
    only through paths; callers wanting reflexive closure should pre-⊕ the
    identity, which :func:`repro.core.digraph.WeightedDigraph.dense_weights`
    already does for min-plus).

    With a min-plus negative cycle, diagonal entries come out strictly below
    1̄ for the vertices on the cycle — callers detect that, this kernel does
    not raise.
    """
    if semiring.name == "boolean":
        # Reachability specialization (paper §5): use the M(r) kernel —
        # repeated boolean squaring — instead of the cubic FW recurrence.
        from .boolmat import bool_closure

        d = bool_closure(np.asarray(w, dtype=bool), ledger=ledger)
        if not copy:
            w[...] = d
            return w
        return d
    d = np.array(w, dtype=semiring.dtype, copy=True) if copy else w
    n = d.shape[0]
    for k in range(n):
        # d[i,j] ⊕= d[i,k] ⊗ d[k,j], fully vectorized over (i, j).
        semiring.add(d, semiring.mul(d[:, k][:, None], d[k, :][None, :]), out=d)
    ledger.charge(work=float(n) ** 3, depth=log2ceil(n) ** 2, label="apsp")
    return d


def floyd_warshall_with_hops(w: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Min-plus APSP plus the *minimum hop count among optimal paths* —
    ``hops[i, j] = min{|p| : w(p) = dist(i, j)}``.

    The maximum finite entry of ``hops`` is the §2.2 minimum-weight
    diameter; computing it here (three extra vectorized ops per pivot)
    replaces a per-graph Bellman–Ford fixpoint loop on the hot leaf path.
    """
    d = np.array(w, dtype=np.float64, copy=True)
    n = d.shape[0]
    hops = np.where(np.isfinite(d), 1, np.inf)
    np.fill_diagonal(hops, 0)
    hops[d == np.inf] = np.inf
    for k in range(n):
        cand = d[:, k][:, None] + d[k, :][None, :]
        cand_h = hops[:, k][:, None] + hops[k, :][None, :]
        better = cand < d
        tie = cand == d
        d[better] = cand[better]
        hops[better] = cand_h[better]
        np.minimum(hops, np.where(tie, cand_h, np.inf), out=hops)
    return d, hops


def min_weight_diameter_dense(w: np.ndarray) -> int:
    """Minimum-weight diameter of a dense one-hop matrix (finite pairs)."""
    _, hops = floyd_warshall_with_hops(w)
    finite = np.isfinite(hops)
    return int(hops[finite].max(initial=0.0))


def floyd_warshall_with_parents(
    w: np.ndarray,
    semiring: Semiring = MIN_PLUS,
) -> tuple[np.ndarray, np.ndarray]:
    """APSP plus a via-vertex matrix for path reconstruction.

    ``via[i, j]`` is an intermediate vertex strictly inside some optimal
    ``i→j`` path, or ``-1`` when the direct edge (or no path) is optimal.
    Expanding recursively on ``via`` yields an explicit optimal path.
    """
    d = np.array(w, dtype=semiring.dtype, copy=True)
    n = d.shape[0]
    via = np.full((n, n), -1, dtype=np.int64)
    for k in range(n):
        cand = semiring.mul(d[:, k][:, None], d[k, :][None, :])
        better = semiring.improves(cand, d)
        via[better] = k
        semiring.add(d, cand, out=d)
    return d, via


def expand_via_path(via: np.ndarray, i: int, j: int) -> list[int]:
    """Expand a ``via`` matrix into the full vertex sequence ``i..j``
    (endpoints included).  Assumes a path exists and no negative cycle."""
    if i == j:
        return [i]

    def rec(a: int, b: int, out: list[int]) -> None:
        k = via[a, b]
        if k < 0:
            out.append(b)
        else:
            rec(a, int(k), out)
            rec(int(k), b, out)

    path = [i]
    rec(i, j, path)
    return path
