"""Johnson's algorithm: multi-source shortest paths with real (possibly
negative) edge weights, the O(mn + n² log n)-style sequential baseline the
paper compares against (§1).

A Bellman–Ford pass from a virtual super-source computes a potential
``h(v)``; reweighting ``w'(u,v) = w(u,v) + h(u) - h(v)`` is nonnegative, so
each requested source runs Dijkstra on the reweighted graph and distances are
recovered as ``d(s,v) = d'(s,v) - h(s) + h(v)``.
"""

from __future__ import annotations

import numpy as np

from ..core.digraph import WeightedDigraph
from .bellman_ford import NegativeCycleError, bellman_ford
from .dijkstra import dijkstra

__all__ = ["johnson", "johnson_potential"]


def johnson_potential(g: WeightedDigraph) -> np.ndarray:
    """Feasible potential ``h`` with ``w + h[u] - h[v] >= 0`` on every edge.

    Raises :class:`NegativeCycleError` when none exists.
    """
    # Virtual source n with a zero-weight edge to every vertex.
    aug = WeightedDigraph(
        g.n + 1,
        np.concatenate([g.src, np.full(g.n, g.n, dtype=np.int64)]),
        np.concatenate([g.dst, np.arange(g.n, dtype=np.int64)]),
        np.concatenate([g.weight, np.zeros(g.n)]),
    )
    h = bellman_ford(aug, g.n, check_negative_cycle=True)
    return h[: g.n]


def johnson(g: WeightedDigraph, sources) -> np.ndarray:
    """Distances from each source, shape ``(s, n)``; supports negative
    weights, raises :class:`NegativeCycleError` on a negative cycle."""
    sources = [int(s) for s in sources]
    if not g.has_negative_weights():
        h = np.zeros(g.n)
        rew = g
    else:
        h = johnson_potential(g)
        # Edges out of vertices unreachable from the super-source cannot
        # exist (every vertex is reachable), so h is finite everywhere.
        rew = WeightedDigraph(g.n, g.src, g.dst, g.weight + h[g.src] - h[g.dst])
    out = np.empty((len(sources), g.n))
    for i, s in enumerate(sources):
        d = dijkstra(rew, s)
        out[i] = d - h[s] + h
    return out
