"""Kernel registry and dispatch for the dense semiring matrix product.

:func:`repro.kernels.minplus.semiring_matmul` is the cubic inner loop of
both augmentation algorithms (the 3-hop products of Algorithm 4.1 and the
squaring rounds of Algorithm 4.3).  This module makes that loop swappable:
several *bit-identical* implementations register here under short names and
a dispatch policy picks one per call.

Registered kernels (implemented in :mod:`repro.kernels.minplus`):

``reference``
    The broadcast kernel: one ``(rows, k, m)`` temporary per row block,
    ⊕-reduced densely.  Simple, always correct, memory-bandwidth bound.
``blocked``
    Cache-blocked panels over ``(l, k, m)`` with a running ⊕-accumulator:
    the temporary is bounded by ``block_l·block_k·block_m`` elements
    instead of ``rows·k·m``, so panels stay cache-resident.
``pruned``
    Sparsity-aware: per row panel, columns ``k`` whose ``A``-entries are
    all 0̄ (or whose ``B``-row is all 0̄) are compressed away before the
    product — 0̄ is ⊗-annihilating and the ⊕-identity, so dropping such
    terms is exact.  Early doubling iterates of Algorithm 4.3 are mostly
    +inf, so whole panels skip.  Falls back to blocked accumulation on
    dense panels.

A fourth kernel, ``jit`` (:mod:`repro.kernels.jit`), registers **only when
numba imports**: compiled register-accumulating loops that avoid the
⊕-reduction temporaries entirely.  numba is a strictly optional extra
(``pip install repro[jit]``); without it ``auto`` never selects ``jit``
and an explicit request raises a :class:`ValueError` naming the extra.

All kernels produce bit-identical outputs for the registered semirings
because every shipped ``⊕`` (min / max / or) is an exact, order-independent
selection — re-associating the reduction over ``k`` cannot change a single
bit (see ``tests/test_kernel_dispatch.py``).

Selection
---------

* explicit per call: ``semiring_matmul(..., kernel="blocked")``;
* process default: :func:`set_default_kernel` or the ``REPRO_KERNEL``
  environment variable (``reference`` | ``blocked`` | ``pruned`` | ``auto``);
* ``auto`` (the default): ``reference`` for small products (dispatch and
  masking overhead dominates below ~32k ⊗-operations); above that,
  ``jit`` when the compiled backend is importable and the product clears
  the (autotunable) ``jit_min_ops`` threshold, else ``pruned`` (which
  degrades gracefully to blocked panels when nothing is prunable).

Autotuned block sizes
---------------------

Block sizes are machine-dependent (cache sizes, numpy build).
``tools/autotune_kernels.py`` times candidate shapes on this machine and
persists the winners to a small JSON file; :func:`tuning_for` merges that
file over the defaults.  The file lives at ``$REPRO_KERNEL_TUNE`` or
``~/.cache/repro/kernel_tuning.json``.

The PRAM ledger is *not* affected by kernel choice: a dense product always
charges the model quantities ``work = l·k·m`` and ``depth = ⌈log₂ k⌉``
regardless of how much scanning the execution skipped — the kernels are
execution detail, the ledger is the cost model.  (Frontier-pruned
*relaxation* is different: there the scanned work is the model quantity,
see :mod:`repro.kernels.bellman_ford`.)
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Callable

__all__ = [
    "register_kernel",
    "available_kernels",
    "resolve_kernel",
    "choose_kernel",
    "get_default_kernel",
    "set_default_kernel",
    "jit_available",
    "DEFAULT_TUNING",
    "tuning_for",
    "tuning_path",
    "load_tuning",
    "save_tuning",
    "reload_tuning",
    "relax_jit_threshold",
]

#: name -> kernel callable ``fn(a, b, semiring, out, accumulate, budget, tuning)``.
_KERNELS: dict[str, Callable] = {}

#: Below this many ⊗-operations ``auto`` picks ``reference`` (dispatch,
#: mask and Python-loop overhead beat any cache savings on tiny products).
AUTO_SMALL_OPS = 1 << 15

#: Fallback block shapes (and ``auto``-policy thresholds; the ``jit``
#: entries only matter where numba is installed); the autotuner overrides
#: these per machine.  The reserved ``meta`` key of the tuning file holds
#: provenance (numpy/numba versions, measured compile time) and is never a
#: kernel name.
DEFAULT_TUNING: dict[str, dict] = {
    "blocked": {"block_l": 32, "block_k": 128, "block_m": 128},
    "pruned": {"block_l": 48, "dead_frac": 0.0625},
    "auto": {"jit_min_ops": AUTO_SMALL_OPS, "jit_min_relax_ops": 1 << 13},
}

_ENV_KERNEL = "REPRO_KERNEL"
_ENV_TUNE = "REPRO_KERNEL_TUNE"

_default_kernel: str | None = None
_tuning_cache: dict | None = None


def register_kernel(name: str):
    """Decorator: register a kernel implementation under ``name``."""

    def deco(fn: Callable) -> Callable:
        _KERNELS[name] = fn
        return fn

    return deco


def _ensure_registered() -> None:
    if not _KERNELS:  # populate via minplus's module-level decorators
        from . import minplus  # noqa: F401
        from . import jit  # noqa: F401  (self-registers only when numba imports)


def available_kernels() -> list[str]:
    """Names of the registered kernels (sorted).  ``jit`` appears only
    when numba is importable — the registry lists what can actually run."""
    _ensure_registered()
    return sorted(_KERNELS)


def jit_available() -> bool:
    """Whether the compiled ``jit`` backend can run in this process."""
    try:
        from . import jit

        return jit.jit_available()
    except Exception:  # pragma: no cover - a broken partial install
        return False


def _kernel_error(name: str, via_env: bool) -> ValueError:
    """A helpful error for an unresolvable kernel name: lists what is
    registered, names the ``numba`` extra when ``jit`` was asked for, and
    points at ``$REPRO_KERNEL`` when that is where the name came from."""
    origin = f" (from ${_ENV_KERNEL})" if via_env else ""
    have = available_kernels()
    if name == "jit":
        from . import jit

        detail = f": {jit.NUMBA_IMPORT_ERROR}" if jit.NUMBA_IMPORT_ERROR else ""
        return ValueError(
            f"kernel 'jit'{origin} requires the optional numba dependency "
            f"(pip install 'repro[jit]'){detail}; registered kernels: {have}"
        )
    return ValueError(
        f"unknown kernel {name!r}{origin}; registered kernels: {have} "
        f"(or 'auto'; select via kernel=, OracleConfig.kernel, or ${_ENV_KERNEL})"
    )


def get_default_kernel() -> str:
    """Process-wide default kernel name (``auto`` unless overridden by
    :func:`set_default_kernel` or ``$REPRO_KERNEL``)."""
    if _default_kernel is not None:
        return _default_kernel
    return os.environ.get(_ENV_KERNEL, "auto")


def set_default_kernel(name: str | None) -> None:
    """Override the process default (``None`` restores env/auto)."""
    global _default_kernel
    if name is not None and name != "auto":
        _ensure_registered()
        if name not in _KERNELS or (name == "jit" and not jit_available()):
            raise _kernel_error(name, via_env=False)
    _default_kernel = name


def choose_kernel(l: int, k: int, m: int) -> str:
    """The ``auto`` policy: pick a concrete kernel for an ``l×k ⊗ k×m``
    product.  Small products take the broadcast reference; past the
    (autotunable) ``jit_min_ops`` threshold the compiled backend wins when
    it is importable; everything else takes ``pruned``, which
    self-degrades to blocked panels when dense."""
    ops = float(l) * k * m
    if ops <= AUTO_SMALL_OPS:
        return "reference"
    if jit_available() and ops >= float(
        tuning_for("auto").get("jit_min_ops", AUTO_SMALL_OPS)
    ):
        return "jit"
    return "pruned"


def resolve_kernel(name: str | None, l: int, k: int, m: int) -> tuple[str, Callable]:
    """Resolve a kernel spec (explicit name, ``"auto"`` or ``None`` for the
    process default) to ``(concrete name, callable)``.

    An unresolvable name — unknown, or ``jit`` on a numba-less install,
    whether passed explicitly or arriving via ``$REPRO_KERNEL`` — raises a
    :class:`ValueError` listing the registered kernels."""
    _ensure_registered()
    via_env = False
    if name is None:
        name = get_default_kernel()
        via_env = _default_kernel is None and name != "auto"
    if name == "auto":
        name = choose_kernel(l, k, m)
    fn = _KERNELS.get(name)
    if fn is None or (name == "jit" and not jit_available()):
        raise _kernel_error(name, via_env=via_env)
    return name, fn


# ------------------------------------------------------------------ #
# Tuned block-size persistence
# ------------------------------------------------------------------ #


def tuning_path() -> pathlib.Path:
    """Where tuned block sizes live on this machine."""
    env = os.environ.get(_ENV_TUNE)
    if env:
        return pathlib.Path(env)
    cache = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return pathlib.Path(cache) / "repro" / "kernel_tuning.json"


def load_tuning() -> dict:
    """The persisted tuning file as a dict (``{}`` when absent/corrupt);
    cached after the first read — :func:`reload_tuning` re-reads."""
    global _tuning_cache
    if _tuning_cache is None:
        path = tuning_path()
        try:
            _tuning_cache = json.loads(path.read_text())
        except (OSError, ValueError):
            _tuning_cache = {}
    return _tuning_cache


def reload_tuning() -> dict:
    """Drop the cache and re-read the tuning file."""
    global _tuning_cache
    _tuning_cache = None
    return load_tuning()


def save_tuning(tuning: dict, path: pathlib.Path | None = None) -> pathlib.Path:
    """Persist autotuner winners (merged over any existing file) and refresh
    the in-process cache.  Returns the path written."""
    path = tuning_path() if path is None else pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        existing = json.loads(path.read_text())
    except (OSError, ValueError):
        existing = {}
    existing.update(tuning)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    global _tuning_cache
    _tuning_cache = existing
    return path


def tuning_for(kernel: str) -> dict:
    """Effective parameters for ``kernel``: defaults overlaid with any
    persisted autotuner winners.  (``"auto"`` holds the policy thresholds;
    the tuning file's ``"meta"`` key is provenance, not a kernel.)"""
    params = dict(DEFAULT_TUNING.get(kernel, {}))
    params.update(load_tuning().get(kernel, {}))
    return params


def relax_jit_threshold() -> float:
    """``auto``-policy floor, in row·edge scans, below which a relaxation
    phase stays on the numpy ``reduceat`` path (compiled-call overhead
    dominates tiny phases).  Autotunable as ``auto.jit_min_relax_ops``."""
    return float(tuning_for("auto").get("jit_min_relax_ops", 1 << 13))
