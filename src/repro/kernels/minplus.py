"""Dense semiring matrix products (min-plus "distance product" and friends).

These are the inner kernels of the augmentation algorithms (paper §4): step
(iv) of Algorithm 4.1 is a 3-hop product, and step ii(1) of Algorithm 4.3 is
a path-doubling (squaring) step.  The paper plugs in Han–Pan–Reif parallel
APSP for O(|S|³) work; we substitute numpy-vectorized cubic kernels, which
have the same work exponent (DESIGN.md §5), and charge the PRAM ledger with
the model quantities: ``work = l·k·m`` scalar ⊕/⊗ operations and
``depth = ⌈log₂ k⌉`` for the reduction tree — independent of which concrete
kernel executed (the ledger is the cost model; kernels are execution detail).

Three interchangeable, bit-identical implementations register with
:mod:`repro.kernels.dispatch` (see that module for the selection policy and
the exactness argument):

* ``reference`` — the broadcast product: an ``(rows, k, m)`` intermediate
  per row block sized to a memory budget, ⊕-reduced densely;
* ``blocked`` — cache-blocked panels over ``(l, k, m)`` with a running
  ⊕-accumulator, temporary bounded by ``block_l·block_k·block_m``;
* ``pruned`` — per row panel, ``k`` columns that are all 0̄ in ``A`` (or
  whose ``B`` row is all 0̄) are compressed away before multiplying; 0̄ is
  ⊗-annihilating and the ⊕-identity, so the result is unchanged bit for bit.

A fourth, ``jit`` (:mod:`repro.kernels.jit`), is compiled via numba and
registers only when that optional dependency imports.
"""

from __future__ import annotations

import numpy as np

from ..core.semiring import MIN_PLUS, Semiring
from ..pram.machine import NULL_LEDGER, Ledger, reduce_depth
from .dispatch import register_kernel, resolve_kernel, tuning_for

__all__ = ["semiring_matmul", "semiring_square", "semiring_closure", "hop_limited_product"]

#: Default cap on the broadcast temporary, in float64 elements (~64 MiB).
_DEFAULT_BUDGET = 8 * 1024 * 1024


def _row_block(k: int, m: int, budget: int) -> int:
    denom = max(1, k * m)
    return max(1, budget // denom)


def _bool_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Boolean product via a witness-count GEMM, thresholded.

    Counts are accumulated in a float dtype wide enough to be exact: float32
    represents integers exactly up to 2²⁴, float64 up to 2⁵³.  (A uint8 GEMM
    accumulates mod 256, so a vertex pair with a multiple-of-256 witness
    count would silently test ``> 0`` as False — the k ≥ 256 overflow bug.)
    """
    dt = np.float32 if a.shape[1] < (1 << 24) else np.float64
    return (a.astype(dt) @ b.astype(dt)) > 0


def _panel_product(ablk: np.ndarray, bblk: np.ndarray, semiring: Semiring) -> np.ndarray:
    """⊕-reduced ``ablk ⊗ bblk`` of one panel pair (the shared primitive of
    the blocked and pruned kernels)."""
    if semiring.name == "boolean":
        return _bool_gemm(ablk, bblk)
    ext = semiring.mul(ablk[:, :, None], bblk[None, :, :])
    return semiring.add_reduce(ext, axis=1)


def _combine(out_view: np.ndarray, red: np.ndarray, semiring: Semiring, accumulate: bool) -> None:
    if accumulate:
        semiring.add(out_view, red, out=out_view)
    else:
        out_view[...] = red


# ------------------------------------------------------------------ #
# Kernel implementations (uniform signature, registered with dispatch)
# ------------------------------------------------------------------ #


@register_kernel("reference")
def _matmul_reference(
    a: np.ndarray,
    b: np.ndarray,
    semiring: Semiring,
    out: np.ndarray,
    accumulate: bool,
    budget: int,
    tuning: dict,
) -> np.ndarray:
    l, k = a.shape
    m = b.shape[1]
    if semiring.name == "boolean":
        _combine(out, _bool_gemm(a, b), semiring, accumulate)
        return out
    block = _row_block(k, m, budget)
    for start in range(0, l, block):
        stop = min(l, start + block)
        # (rows, k, m) broadcast of A-rows against all of B, then ⊕-reduce
        # over the middle (path-concatenation) axis.
        ext = semiring.mul(a[start:stop, :, None], b[None, :, :])
        red = semiring.add_reduce(ext, axis=1)
        _combine(out[start:stop], red, semiring, accumulate)
    return out


def _accumulate_panels(
    a: np.ndarray,
    b: np.ndarray,
    semiring: Semiring,
    out: np.ndarray,
    accumulate: bool,
    bk: int,
    bm: int,
) -> None:
    """⊕-accumulate ``a ⊗ b`` into ``out`` over (k, m) panels; ``a`` is one
    row panel.  Re-associating the ⊕ over k panels is exact for the shipped
    semirings (min/max/or select a value, they never round)."""
    k = a.shape[1]
    m = b.shape[1]
    for j0 in range(0, m, bm):
        j1 = min(m, j0 + bm)
        acc: np.ndarray | None = None
        for k0 in range(0, k, bk):
            k1 = min(k, k0 + bk)
            red = _panel_product(a[:, k0:k1], b[k0:k1, j0:j1], semiring)
            if acc is None:
                acc = red
            else:
                semiring.add(acc, red, out=acc)
        _combine(out[:, j0:j1], acc, semiring, accumulate)


@register_kernel("blocked")
def _matmul_blocked(
    a: np.ndarray,
    b: np.ndarray,
    semiring: Semiring,
    out: np.ndarray,
    accumulate: bool,
    budget: int,
    tuning: dict,
) -> np.ndarray:
    l = a.shape[0]
    bl = max(1, int(tuning.get("block_l", 32)))
    bk = max(1, int(tuning.get("block_k", 128)))
    bm = max(1, int(tuning.get("block_m", 128)))
    while bl * bk * bm > budget and bm > 1:  # never exceed the memory budget
        bm = max(1, bm // 2)
    for i0 in range(0, l, bl):
        i1 = min(l, i0 + bl)
        _accumulate_panels(a[i0:i1], b, semiring, out[i0:i1], accumulate, bk, bm)
    return out


@register_kernel("pruned")
def _matmul_pruned(
    a: np.ndarray,
    b: np.ndarray,
    semiring: Semiring,
    out: np.ndarray,
    accumulate: bool,
    budget: int,
    tuning: dict,
) -> np.ndarray:
    l, k = a.shape
    m = b.shape[1]
    bl = max(1, int(tuning.get("block_l", 48)))
    dead_frac = float(tuning.get("dead_frac", 0.0625))
    blocked_params = tuning_for("blocked")
    bk = max(1, int(blocked_params.get("block_k", 128)))
    bm = max(1, int(blocked_params.get("block_m", 128)))
    zero = semiring.zero
    # Liveness masks: a k term contributes 0̄ to every ⊕ (hence nothing)
    # whenever A[:, k] is 0̄ for the whole row panel or B[k, :] is all 0̄.
    if semiring.dtype == np.dtype(bool):
        nz_a = a
        b_live = b.any(axis=1)
    else:
        nz_a = a != zero
        b_live = (b != zero).any(axis=1)
    for i0 in range(0, l, bl):
        i1 = min(l, i0 + bl)
        panel_nz = nz_a[i0:i1]
        live = panel_nz.any(axis=0) & b_live
        kk = int(live.sum())
        if kk == 0:
            # Empty ⊕ over k: the whole output panel is 0̄.
            if not accumulate:
                out[i0:i1] = zero
            continue
        if kk <= (1.0 - dead_frac) * k:
            idx = np.nonzero(live)[0]
            a2 = a[i0:i1][:, idx]  # fancy index: a fresh contiguous copy
            b2 = b[idx]
            rows = i1 - i0
            mchunk = max(1, min(m, budget // max(1, rows * kk)))
            for j0 in range(0, m, mchunk):
                j1 = min(m, j0 + mchunk)
                red = _panel_product(a2, b2[:, j0:j1], semiring)
                _combine(out[i0:i1, j0:j1], red, semiring, accumulate)
        else:
            # Dense panel: nothing worth pruning, use blocked accumulation.
            _accumulate_panels(a[i0:i1], b, semiring, out[i0:i1], accumulate, bk, bm)
    return out


# ------------------------------------------------------------------ #
# Public entry points
# ------------------------------------------------------------------ #


def semiring_matmul(
    a: np.ndarray,
    b: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    *,
    out: np.ndarray | None = None,
    accumulate: bool = False,
    ledger: Ledger = NULL_LEDGER,
    budget: int = _DEFAULT_BUDGET,
    kernel: str | None = None,
) -> np.ndarray:
    """``C = A ⊗ B`` in the given semiring: ``C[i,j] = ⊕_k A[i,k] ⊗ B[k,j]``.

    Parameters
    ----------
    out:
        Optional output array; with ``accumulate=True`` the product is
        ⊕-combined into ``out`` instead of overwriting it (the idiom for
        ``W ← W ⊕ (W ⊗ W)`` doubling steps).
    kernel:
        ``"reference"``, ``"blocked"``, ``"pruned"``, ``"jit"`` (numba,
        optional extra), ``"auto"`` or ``None`` (the process default — see
        :mod:`repro.kernels.dispatch`).  Every choice is bit-identical;
        they trade temporaries and scanned work.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
    l, k = a.shape
    m = b.shape[1]
    if out is None:
        out = semiring.empty_matrix(l, m)
        accumulate = True  # combining into all-zero is plain assignment
    name, fn = resolve_kernel(kernel, l, k, m)
    fn(a, b, semiring, out, accumulate, budget, tuning_for(name))
    ledger.charge(work=float(l) * k * m, depth=reduce_depth(k), label="semiring-matmul")
    return out


def semiring_square(
    w: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    *,
    ledger: Ledger = NULL_LEDGER,
    budget: int = _DEFAULT_BUDGET,
    kernel: str | None = None,
) -> np.ndarray:
    """One path-doubling step ``W ← W ⊕ (W ⊗ W)``, in place, returning ``W``.

    If ``W`` holds best weights over paths of ≤h hops (with 1̄ diagonal), the
    result holds best weights over ≤2h hops.
    """
    prod = semiring_matmul(w, w, semiring, ledger=ledger, budget=budget, kernel=kernel)
    semiring.add(w, prod, out=w)
    return w


def semiring_closure(
    w: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    *,
    ledger: Ledger = NULL_LEDGER,
    budget: int = _DEFAULT_BUDGET,
    kernel: str | None = None,
) -> np.ndarray:
    """Reflexive-transitive closure by repeated squaring: ⌈log₂ n⌉ doublings
    of the one-hop matrix (diagonal forced to 1̄).  Returns a new matrix.

    For min-plus with a negative cycle the closure is not well defined; the
    caller should check for a ⊕-improving diagonal afterwards
    (:func:`repro.core.negcycle.diagonal_witnesses`).
    """
    n = w.shape[0]
    c = np.array(w, dtype=semiring.dtype, copy=True)
    diag = np.einsum("ii->i", c)
    semiring.add(diag, np.full(n, semiring.one, dtype=semiring.dtype), out=diag)
    steps = max(1, int(np.ceil(np.log2(max(2, n)))))
    for _ in range(steps):
        semiring_square(c, semiring, ledger=ledger, budget=budget, kernel=kernel)
    return c


def hop_limited_product(
    w: np.ndarray,
    hops: int,
    semiring: Semiring = MIN_PLUS,
    *,
    ledger: Ledger = NULL_LEDGER,
    budget: int = _DEFAULT_BUDGET,
    kernel: str | None = None,
) -> np.ndarray:
    """Best weights over paths of at most ``hops`` edges.

    ``w`` is the one-hop matrix; its diagonal is ⊕-combined with 1̄ first so
    shorter paths are included.  This is step (iv) of Algorithm 4.1 with
    ``hops = 3`` (the "3-limited shortest-paths computation").
    """
    if hops < 1:
        raise ValueError("hops must be >= 1")
    base = np.array(w, dtype=semiring.dtype, copy=True)
    n = base.shape[0]
    diag = np.einsum("ii->i", base)
    semiring.add(diag, np.full(n, semiring.one, dtype=semiring.dtype), out=diag)
    if hops > 1:
        # Compiled fast path: when the resolved kernel is ``jit``, run the
        # whole hop loop through the compiled cores with ping-pong buffers
        # (bit-identical to ``hops - 1`` dispatched jit matmuls; skips the
        # per-hop allocation and dispatch overhead of Algorithm 4.1's
        # 3-limited computation).  The ledger still sees one model-cost
        # product per hop — kernels are execution detail.
        from . import jit as _jit

        if (
            resolve_kernel(kernel, n, n, n)[0] == "jit"
            and _jit.matmul_supported(semiring)
        ):
            acc = _jit.hop_limited_jit(base, hops, semiring)
            for _ in range(hops - 1):
                ledger.charge(
                    work=float(n) * n * n,
                    depth=reduce_depth(n),
                    label="semiring-matmul",
                )
            return acc
    acc = base
    for _ in range(hops - 1):
        acc = semiring_matmul(acc, base, semiring, ledger=ledger, budget=budget, kernel=kernel)
    return acc
