"""Dense semiring matrix products (min-plus "distance product" and friends).

These are the inner kernels of the augmentation algorithms (paper §4): step
(iv) of Algorithm 4.1 is a 3-hop product, and step ii(1) of Algorithm 4.3 is
a path-doubling (squaring) step.  The paper plugs in Han–Pan–Reif parallel
APSP for O(|S|³) work; we substitute a numpy-vectorized cubic kernel, which
has the same work exponent (DESIGN.md §5), and charge the PRAM ledger with
the model quantities: ``work = l·k·m`` scalar ⊕/⊗ operations and
``depth = ⌈log₂ k⌉`` for the reduction tree.

The broadcast product materializes an ``(l, k, m)`` intermediate, so rows are
processed in blocks sized to a memory budget (guides: bound temporaries,
prefer in-place updates).
"""

from __future__ import annotations

import numpy as np

from ..core.semiring import MIN_PLUS, Semiring
from ..pram.machine import NULL_LEDGER, Ledger, log2ceil, reduce_depth

__all__ = ["semiring_matmul", "semiring_square", "semiring_closure", "hop_limited_product"]

#: Default cap on the broadcast temporary, in float64 elements (~64 MiB).
_DEFAULT_BUDGET = 8 * 1024 * 1024


def _row_block(k: int, m: int, budget: int) -> int:
    denom = max(1, k * m)
    return max(1, budget // denom)


def semiring_matmul(
    a: np.ndarray,
    b: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    *,
    out: np.ndarray | None = None,
    accumulate: bool = False,
    ledger: Ledger = NULL_LEDGER,
    budget: int = _DEFAULT_BUDGET,
) -> np.ndarray:
    """``C = A ⊗ B`` in the given semiring: ``C[i,j] = ⊕_k A[i,k] ⊗ B[k,j]``.

    Parameters
    ----------
    out:
        Optional output array; with ``accumulate=True`` the product is
        ⊕-combined into ``out`` instead of overwriting it (the idiom for
        ``W ← W ⊕ (W ⊗ W)`` doubling steps).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
    l, k = a.shape
    m = b.shape[1]
    if out is None:
        out = semiring.empty_matrix(l, m)
        accumulate = True  # combining into all-zero is plain assignment

    if semiring.name == "boolean":
        # Specialized fast path: uint8 GEMM then threshold.
        prod = (a.astype(np.uint8) @ b.astype(np.uint8)) > 0
        if accumulate:
            np.logical_or(out, prod, out=out)
        else:
            out[...] = prod
    else:
        block = _row_block(k, m, budget)
        for start in range(0, l, block):
            stop = min(l, start + block)
            # (rows, k, m) broadcast of A-row against all of B, then ⊕-reduce
            # over the middle (path-concatenation) axis.
            ext = semiring.mul(a[start:stop, :, None], b[None, :, :])
            red = semiring.add_reduce(ext, axis=1)
            if accumulate:
                semiring.add(out[start:stop], red, out=out[start:stop])
            else:
                out[start:stop] = red
    ledger.charge(work=float(l) * k * m, depth=reduce_depth(k), label="semiring-matmul")
    return out


def semiring_square(
    w: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    *,
    ledger: Ledger = NULL_LEDGER,
    budget: int = _DEFAULT_BUDGET,
) -> np.ndarray:
    """One path-doubling step ``W ← W ⊕ (W ⊗ W)``, in place, returning ``W``.

    If ``W`` holds best weights over paths of ≤h hops (with 1̄ diagonal), the
    result holds best weights over ≤2h hops.
    """
    prod = semiring_matmul(w, w, semiring, ledger=ledger, budget=budget)
    semiring.add(w, prod, out=w)
    return w


def semiring_closure(
    w: np.ndarray,
    semiring: Semiring = MIN_PLUS,
    *,
    ledger: Ledger = NULL_LEDGER,
    budget: int = _DEFAULT_BUDGET,
) -> np.ndarray:
    """Reflexive-transitive closure by repeated squaring: ⌈log₂ n⌉ doublings
    of the one-hop matrix (diagonal forced to 1̄).  Returns a new matrix.

    For min-plus with a negative cycle the closure is not well defined; the
    caller should check for a ⊕-improving diagonal afterwards
    (:func:`repro.core.negcycle.diagonal_witnesses`).
    """
    n = w.shape[0]
    c = np.array(w, dtype=semiring.dtype, copy=True)
    diag = np.einsum("ii->i", c)
    semiring.add(diag, np.full(n, semiring.one, dtype=semiring.dtype), out=diag)
    steps = max(1, int(np.ceil(np.log2(max(2, n)))))
    for _ in range(steps):
        semiring_square(c, semiring, ledger=ledger, budget=budget)
    return c


def hop_limited_product(
    w: np.ndarray,
    hops: int,
    semiring: Semiring = MIN_PLUS,
    *,
    ledger: Ledger = NULL_LEDGER,
    budget: int = _DEFAULT_BUDGET,
) -> np.ndarray:
    """Best weights over paths of at most ``hops`` edges.

    ``w`` is the one-hop matrix; its diagonal is ⊕-combined with 1̄ first so
    shorter paths are included.  This is step (iv) of Algorithm 4.1 with
    ``hops = 3`` (the "3-limited shortest-paths computation").
    """
    if hops < 1:
        raise ValueError("hops must be >= 1")
    base = np.array(w, dtype=semiring.dtype, copy=True)
    diag = np.einsum("ii->i", base)
    semiring.add(diag, np.full(base.shape[0], semiring.one, dtype=semiring.dtype), out=diag)
    acc = base
    for _ in range(hops - 1):
        acc = semiring_matmul(acc, base, semiring, ledger=ledger, budget=budget)
    return acc
