"""Boolean matrix kernels for the reachability specialization.

Paper §4–§5: for reachability / transitive closure, the semiring products in
Algorithms 4.1/4.3 become boolean matrix multiplications, so preprocessing
work drops to Õ(M(n^μ)) where ``M(r) = O(r^ω)`` is the matrix-multiplication
work bound.  We substitute numpy's uint8 GEMM (ω = 3 on the host) and charge
the ledger ``r^ω`` with a configurable exponent so Table-1 reachability rows
can be reported for any ω (DESIGN.md §5).
"""

from __future__ import annotations

import numpy as np

from ..pram.machine import NULL_LEDGER, Ledger, reduce_depth

__all__ = ["bool_matmul", "bool_closure", "set_charged_omega", "charged_omega"]

_OMEGA = 3.0


def set_charged_omega(omega: float) -> None:
    """Set the exponent ω used when charging M(r) = r^ω to ledgers."""
    global _OMEGA
    if not 2.0 <= omega <= 3.0:
        raise ValueError("omega must be in [2, 3]")
    _OMEGA = float(omega)


def charged_omega() -> float:
    """Current ω used for M(r) ledger charges."""
    return _OMEGA


def bool_matmul(a: np.ndarray, b: np.ndarray, *, ledger: Ledger = NULL_LEDGER) -> np.ndarray:
    """Boolean matrix product ``C[i,j] = ∨_k A[i,k] ∧ B[k,j]``."""
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
    out = (a.astype(np.uint8) @ b.astype(np.uint8)) > 0
    r = max(a.shape[0], a.shape[1], b.shape[1])
    ledger.charge(work=float(r) ** _OMEGA, depth=reduce_depth(r), label="bool-matmul")
    return out


def bool_closure(a: np.ndarray, *, ledger: Ledger = NULL_LEDGER) -> np.ndarray:
    """Reflexive-transitive closure by repeated squaring (⌈log₂ n⌉ rounds)."""
    n = a.shape[0]
    c = a.astype(bool).copy()
    np.fill_diagonal(c, True)
    for _ in range(max(1, int(np.ceil(np.log2(max(2, n)))))):
        nxt = bool_matmul(c, c, ledger=ledger)
        if np.array_equal(nxt, c):
            break
        c = nxt
    return c
