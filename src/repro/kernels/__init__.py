"""Dense and edge-relaxation kernels: semiring matrix products,
Floyd–Warshall, boolean closure, Bellman–Ford, Dijkstra/Johnson baselines."""
