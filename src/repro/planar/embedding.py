"""Combinatorial planar embeddings and face enumeration (§6 substrate).

Thin layer over networkx's left-right planarity test: we need (a) a
certificate embedding, (b) the face set, and (c) the number of faces needed
to cover all vertices — the ``q`` of the paper's q-face bounds.  Finding the
minimum ``q`` is NP-complete (Frederickson); like his approximation we settle
for a greedy cover, whose size upper-bounds the true ``q``.
"""

from __future__ import annotations

import numpy as np

from ..core.digraph import WeightedDigraph

__all__ = [
    "planar_embedding",
    "enumerate_faces",
    "greedy_face_cover",
    "NotPlanarError",
]


class NotPlanarError(ValueError):
    """The graph skeleton admits no planar embedding."""


def planar_embedding(g: WeightedDigraph):
    """networkx PlanarEmbedding of the undirected skeleton, or raise."""
    import networkx as nx

    und = nx.Graph()
    und.add_nodes_from(range(g.n))
    und.add_edges_from(zip(g.src.tolist(), g.dst.tolist()))
    ok, emb = nx.check_planarity(und)
    if not ok:
        raise NotPlanarError("graph skeleton is not planar")
    return emb


def enumerate_faces(embedding) -> list[list[int]]:
    """All faces of the embedding, each as the vertex cycle of its boundary
    traversal.  Every half-edge belongs to exactly one face."""
    seen: set[tuple[int, int]] = set()
    faces: list[list[int]] = []
    for u, v in embedding.edges():
        if (u, v) in seen:
            continue
        face_halfedges = embedding.traverse_face(u, v, mark_half_edges=seen)
        faces.append(list(face_halfedges))
    return faces


def greedy_face_cover(faces: list[list[int]], n: int) -> list[int]:
    """Indices of a greedy set of faces covering every non-isolated vertex —
    an upper bound on the paper's ``q``."""
    on_some_face = np.zeros(n, dtype=bool)
    for f in faces:
        on_some_face[list(set(f))] = True
    uncovered = on_some_face.copy()
    chosen: list[int] = []
    face_sets = [np.unique(np.array(f, dtype=np.int64)) for f in faces]
    while uncovered.any():
        gains = [int(uncovered[fs].sum()) for fs in face_sets]
        best = int(np.argmax(gains))
        if gains[best] == 0:  # pragma: no cover - defensive
            break
        chosen.append(best)
        uncovered[face_sets[best]] = False
    return chosen
