"""Paper §6 machinery: planar embeddings, outerplanar tools, hammock
decompositions, and the q-face pipeline oracle."""
