"""The q-face pipeline (paper §6): hammocks → G′ → separator oracle.

For a planar digraph whose vertices lie on ``q`` faces, with a hammock
decomposition:

1. per hammock ``H``: exact distances between its ≤4 attachment vertices
   *within* ``H`` (outerplanar ⇒ the μ = 0 machinery), plus the
   attachment→all / all→attachment vectors used to answer endpoint queries;
2. ``G′``: the digraph on all attachment vertices with one complete
   weighted digraph per hammock — distances in ``G′`` between attachments
   equal distances in ``G`` (any path decomposes into hammock traversals);
3. a separator decomposition + augmentation of ``G′`` (the paper routes
   through a planarized ``G″`` into Gazit–Miller; we hand ``G′`` to the
   spectral engine — DESIGN.md §5);
4. queries: ``dist(u, v) = min(within-hammock term, attachment-route
   term)``, the attachment route being ``u →(H_u) a₁ →(G′) a₂ →(H_v) v``.

The paper's shape to reproduce: preprocessing ~ Õ(n + q^{1.5}), per-source
work ~ Õ(n + q) — i.e. the hammock count ``q``, not ``n``, pays the
separator costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.api import ShortestPathOracle
from ..core.digraph import WeightedDigraph
from ..core.semiring import MIN_PLUS
from ..kernels.bellman_ford import bellman_ford
from ..kernels.floyd_warshall import floyd_warshall
from ..pram.machine import Ledger
from ..separators.spectral import decompose_spectral
from .hammock import HammockDecomposition

__all__ = ["QFaceOracle"]


@dataclass
class _HammockTables:
    vertices: np.ndarray  # global ids, sorted
    attachments: np.ndarray  # global ids, sorted (subset of vertices)
    att_to_all: np.ndarray  # (a, k): dist within hammock, attachment → vertex
    all_to_att: np.ndarray  # (k, a): vertex → attachment
    apsp: np.ndarray  # (k, k) within-hammock all-pairs


class QFaceOracle:
    """Distance oracle for q-face planar digraphs via hammocks + G′."""

    def __init__(
        self,
        graph: WeightedDigraph,
        decomposition: HammockDecomposition,
        tables: list[_HammockTables],
        attachments: np.ndarray,
        gprime: WeightedDigraph,
        gprime_oracle: ShortestPathOracle,
        ledger: Ledger,
    ) -> None:
        self.graph = graph
        self.decomposition = decomposition
        self._tables = tables
        self.attachments = attachments  # global ids, sorted
        self.gprime = gprime
        self.gprime_oracle = gprime_oracle
        self.ledger = ledger
        self._att_index = {int(a): i for i, a in enumerate(attachments.tolist())}
        self._hammocks_of: dict[int, list[int]] = {}
        for hi, t in enumerate(tables):
            for v in t.vertices.tolist():
                self._hammocks_of.setdefault(v, []).append(hi)
        #: distances in G′ between all attachment pairs (q is small).
        self._dprime = gprime_oracle.distances(np.arange(gprime.n))

    # -------------------------------------------------------------- #

    @classmethod
    def build(
        cls,
        graph: WeightedDigraph,
        decomposition: HammockDecomposition,
        *,
        leaf_size: int = 8,
    ) -> "QFaceOracle":
        ledger = Ledger()
        attachments = decomposition.attachment_vertices()
        att_pos = {int(a): i for i, a in enumerate(attachments.tolist())}
        tables: list[_HammockTables] = []
        src_p, dst_p, w_p = [], [], []
        with ledger.parallel("hammock-tables") as region:
            for h in decomposition.hammocks:
                branch = region.branch()
                sub, mapping = graph.induced_subgraph(h.vertices)
                local_att = np.searchsorted(mapping, h.attachments)
                # Within-hammock APSP: hammocks are outerplanar hence small
                # treewidth; dense FW is exact and (for bench accounting)
                # charged as the μ=0 alternative would be.
                apsp = floyd_warshall(sub.dense_weights(), MIN_PLUS, ledger=branch)
                att_to_all = apsp[local_att, :]
                all_to_att = apsp[:, local_att]
                tables.append(
                    _HammockTables(
                        vertices=mapping,
                        attachments=h.attachments,
                        att_to_all=att_to_all,
                        all_to_att=all_to_att,
                        apsp=apsp,
                    )
                )
                # G′ edges: complete digraph on this hammock's attachments.
                a = h.attachments.shape[0]
                for x in range(a):
                    for y in range(a):
                        if x == y or not np.isfinite(att_to_all[x, local_att[y]]):
                            continue
                        src_p.append(att_pos[int(h.attachments[x])])
                        dst_p.append(att_pos[int(h.attachments[y])])
                        w_p.append(float(att_to_all[x, local_att[y]]))
        gprime = WeightedDigraph(
            attachments.shape[0],
            np.array(src_p, dtype=np.int64),
            np.array(dst_p, dtype=np.int64),
            np.array(w_p),
        )
        tree = decompose_spectral(gprime, leaf_size=leaf_size)
        oracle = ShortestPathOracle.build(gprime, tree)
        ledger.merge_parallel([oracle.preprocess_ledger], label="gprime-augmentation")
        return cls(graph, decomposition, tables, attachments, gprime, oracle, ledger)

    # -------------------------------------------------------------- #

    def _endpoint_tables(self, v: int) -> list[tuple[_HammockTables, int]]:
        """(tables, local index) for every hammock containing ``v``."""
        out = []
        for hi in self._hammocks_of.get(int(v), []):
            t = self._tables[hi]
            out.append((t, int(np.searchsorted(t.vertices, v))))
        return out

    def distance(self, u: int, v: int) -> float:
        """Exact ``dist_G(u, v)``."""
        best = np.inf
        u_tabs = self._endpoint_tables(u)
        v_tabs = self._endpoint_tables(v)
        # Same-hammock direct term.
        for tu, iu in u_tabs:
            for tv, iv in v_tabs:
                if tu is tv:
                    best = min(best, float(tu.apsp[iu, iv]))
        # Attachment route.
        for tu, iu in u_tabs:
            a1 = np.array([self._att_index[int(a)] for a in tu.attachments.tolist()])
            head = tu.all_to_att[iu, :]  # u → att(H_u) within H_u
            for tv, iv in v_tabs:
                a2 = np.array([self._att_index[int(a)] for a in tv.attachments.tolist()])
                mid = self._dprime[np.ix_(a1, a2)]
                tail = tv.att_to_all[:, iv]
                cand = (head[:, None] + mid + tail[None, :]).min(initial=np.inf)
                best = min(best, float(cand))
        return best

    def distances_from(self, source: int) -> np.ndarray:
        """Full distance vector from one source (the §6 s-source shape:
        O(n + q log q)-ish work after preprocessing)."""
        n = self.graph.n
        out = np.full(n, np.inf)
        out[source] = 0.0
        # Distances from the source to every attachment (via G′).
        d_att = np.full(self.attachments.shape[0], np.inf)
        for tu, iu in self._endpoint_tables(source):
            a1 = np.array([self._att_index[int(a)] for a in tu.attachments.tolist()])
            head = tu.all_to_att[iu, :]
            cand = head[:, None] + self._dprime[a1, :]
            np.minimum(d_att, cand.min(axis=0), out=d_att)
            # Same-hammock direct rows.
            np.minimum.at(out, tu.vertices, tu.apsp[iu, :])
        # Push attachment distances into every hammock.
        for t in self._tables:
            a2 = np.array([self._att_index[int(a)] for a in t.attachments.tolist()])
            rows = d_att[a2][:, None] + t.att_to_all
            np.minimum.at(out, t.vertices, rows.min(axis=0))
        return out

    def shortest_path_tree(self, source: int) -> np.ndarray:
        """Parent array of a shortest-path tree from ``source`` in the
        original graph (§6: "shortest-paths trees from s sources") — one
        O(m) tight-edge pass over the exact distance vector."""
        from ..core.paths import shortest_path_tree

        return shortest_path_tree(self.graph, int(source), self.distances_from(int(source)))

    def apsp_encoding(self) -> dict:
        """Frederickson's "alternate encoding of all-pairs shortest-paths":
        per-hammock APSP tables plus APSP on G′ — O(n + q²) numbers instead
        of n².  Returned as the structures this oracle already maintains."""
        return {
            "hammock_apsp": [(t.vertices, t.apsp) for t in self._tables],
            "attachments": self.attachments,
            "gprime_apsp": self._dprime,
        }

    def stats(self) -> dict:
        """Pipeline sizes: q, attachments, G′, preprocessing work."""
        return {
            "n": self.graph.n,
            "q": self.decomposition.q,
            "attachments": int(self.attachments.shape[0]),
            "gprime_edges": self.gprime.m,
            "preprocess_work": self.ledger.work,
            "gprime_eplus": self.gprime_oracle.augmentation.size,
        }
