"""Outerplanar graphs: recognition, generation, and shortest paths.

Frederickson's hammocks are outerplanar; the paper's §6 pipeline needs
within-hammock all-pairs/attachment distances.  Outerplanar graphs have
treewidth ≤ 2, so the paper's own machinery with a k⁰-separator
decomposition (μ = 0 row of Table 1) computes those distances in
Õ(k) work — that is the substitution for Frederickson's linear-time compact
routing tables (DESIGN.md §5).
"""

from __future__ import annotations

import numpy as np

from ..core.digraph import WeightedDigraph
from ..core.septree import SeparatorTree
from ..separators.treewidth import decompose_treewidth

__all__ = [
    "is_outerplanar",
    "random_outerplanar_digraph",
    "outerplanar_tree",
    "outerplanar_sssp",
]


def is_outerplanar(g: WeightedDigraph) -> bool:
    """Classic apex test: G is outerplanar iff G plus a vertex adjacent to
    everything is planar."""
    import networkx as nx

    und = nx.Graph()
    und.add_nodes_from(range(g.n))
    und.add_edges_from(zip(g.src.tolist(), g.dst.tolist()))
    apex = g.n
    und.add_edges_from((apex, v) for v in range(g.n))
    ok, _ = nx.check_planarity(und)
    return bool(ok)


def random_outerplanar_digraph(
    k: int,
    rng: np.random.Generator,
    *,
    chord_fraction: float = 0.5,
    weight_range: tuple[float, float] = (1.0, 10.0),
) -> WeightedDigraph:
    """Random maximal-ish outerplanar digraph on the cycle ``0..k-1``:
    the outer cycle plus random non-crossing chords (drawn by recursive
    interval splitting), both edge orientations weighted independently."""
    if k < 2:
        return WeightedDigraph(k, [], [], [])
    und: list[tuple[int, int]] = [(i, (i + 1) % k) for i in range(k)]
    # Non-crossing chords: split intervals recursively.
    stack = [(0, k - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo < 2:
            continue
        if rng.uniform() > chord_fraction:
            continue
        mid = int(rng.integers(lo + 1, hi))
        if (lo, mid) not in und and mid - lo >= 2:
            und.append((lo, mid))
        if (mid, hi) not in und and hi - mid >= 2:
            und.append((mid, hi))
        stack.append((lo, mid))
        stack.append((mid, hi))
    arr = np.array(und, dtype=np.int64)
    src = np.concatenate([arr[:, 0], arr[:, 1]])
    dst = np.concatenate([arr[:, 1], arr[:, 0]])
    w = rng.uniform(*weight_range, size=src.shape[0])
    return WeightedDigraph(k, src, dst, w)


def outerplanar_tree(g: WeightedDigraph, *, leaf_size: int = 8) -> SeparatorTree:
    """Separator decomposition of an outerplanar graph (treewidth ≤ 2 ⇒
    O(1)-size separators, μ = 0)."""
    return decompose_treewidth(g, leaf_size=leaf_size)


def outerplanar_sssp(g: WeightedDigraph, sources, *, tree: SeparatorTree | None = None) -> np.ndarray:
    """Multi-source distances in an outerplanar digraph via the μ = 0
    pipeline."""
    from ..core.leaves_up import augment_leaves_up
    from ..core.sssp import sssp_scheduled

    tree = tree or outerplanar_tree(g)
    aug = augment_leaves_up(g, tree, keep_node_distances=False)
    return sssp_scheduled(aug, sources)
