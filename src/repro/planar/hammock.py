"""Hammock decompositions (Frederickson; paper §6).

A *hammock decomposition* splits a planar graph with all vertices on ``q``
faces into O(q) *hammocks*: outerplanar subgraphs attached to the rest of
the graph through at most four *attachment vertices* each, with total size
O(n).  The paper plugs its separator machinery into the O(q)-size graph
``G'`` built from hammock-contracted distances.

Full Frederickson machinery (linear-time decomposition of arbitrary
embedded graphs) is out of scope; per the substitution rule we (a) provide a
*generator* that composes explicit hammock structures — so the q-face family
is available with ground truth — and (b) recover decompositions of
cut-vertex-glued instances via biconnected components, verifying the
defining invariants (coverage, ≤4 attachments, outerplanar interiors) in
:meth:`HammockDecomposition.validate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.digraph import WeightedDigraph
from .outerplanar import is_outerplanar, random_outerplanar_digraph

__all__ = [
    "Hammock",
    "HammockDecomposition",
    "ring_of_hammocks",
    "chain_of_hammocks",
    "recover_hammocks",
]


@dataclass
class Hammock:
    """One hammock: its vertex set and ≤4 attachment vertices (global ids).
    Non-attachment vertices are *interior* and belong to no other hammock."""

    vertices: np.ndarray
    attachments: np.ndarray

    @property
    def interior(self) -> np.ndarray:
        return np.setdiff1d(self.vertices, self.attachments, assume_unique=False)


@dataclass
class HammockDecomposition:
    graph: WeightedDigraph
    hammocks: list[Hammock]

    @property
    def q(self) -> int:
        return len(self.hammocks)

    def attachment_vertices(self) -> np.ndarray:
        """Sorted union of all hammocks' attachment vertices."""
        if not self.hammocks:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([h.attachments for h in self.hammocks]))

    def validate(self) -> list[str]:
        """Check the defining invariants; returns the violations."""
        problems: list[str] = []
        g = self.graph
        covered = np.zeros(g.n, dtype=np.int64)
        interior_owner = np.full(g.n, -1, dtype=np.int64)
        for i, h in enumerate(self.hammocks):
            if h.attachments.shape[0] > 4:
                problems.append(f"hammock {i}: {h.attachments.shape[0]} > 4 attachments")
            if not np.isin(h.attachments, h.vertices).all():
                problems.append(f"hammock {i}: attachments not in vertex set")
            covered[h.vertices] += 1
            inter = h.interior
            owned = interior_owner[inter]
            if (owned >= 0).any():
                problems.append(f"hammock {i}: interior overlaps hammock {owned.max()}")
            interior_owner[inter] = i
            sub, _ = g.induced_subgraph(h.vertices)
            if not is_outerplanar(sub):
                problems.append(f"hammock {i}: not outerplanar")
        if (covered == 0).any():
            problems.append("some vertices belong to no hammock")
        # Interiors must touch the rest of the graph only through attachments.
        member = np.full(g.n, -1, dtype=np.int64)
        for i, h in enumerate(self.hammocks):
            member[h.interior] = i
        for u, v in zip(g.src.tolist(), g.dst.tolist()):
            mu, mv = member[u], member[v]
            if mu >= 0 and mv >= 0 and mu != mv:
                problems.append(f"edge {u}->{v} joins interiors of hammocks {mu} and {mv}")
            if mu >= 0 and mv < 0 and interior_owner[v] < 0:
                # v is an attachment (interior nowhere); it must be an
                # attachment *of hammock mu*.
                if v not in self.hammocks[mu].attachments:
                    problems.append(f"edge {u}->{v} leaves hammock {mu} off-attachment")
        return problems


def ring_of_hammocks(
    q: int,
    hammock_size: int,
    rng: np.random.Generator,
    *,
    chord_fraction: float = 0.5,
    weight_range: tuple[float, float] = (1.0, 10.0),
) -> tuple[WeightedDigraph, HammockDecomposition]:
    """Compose ``q`` random outerplanar hammocks into a ring, adjacent
    hammocks sharing one attachment vertex.

    The result is planar with all vertices on O(q) faces (each hammock's
    outer face plus the ring face), which is exactly the §6 input family;
    the ground-truth decomposition is returned alongside.
    """
    if q < 2:
        raise ValueError("need at least two hammocks")
    if hammock_size < 3:
        raise ValueError("hammock_size must be >= 3")
    blocks = [random_outerplanar_digraph(hammock_size, rng, chord_fraction=chord_fraction, weight_range=weight_range) for _ in range(q)]
    # Global ids: hammock i occupies a contiguous chunk, then adjacent
    # chunks are glued by identifying the last vertex of block i with the
    # first vertex of block i+1 (mod q).
    sizes = [b.n for b in blocks]
    offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
    total = int(sum(sizes))
    # Union-find style identification of shared attachment vertices.
    alias = np.arange(total, dtype=np.int64)
    for i in range(q):
        last_of_i = offsets[i] + sizes[i] - 1
        first_of_next = offsets[(i + 1) % q]
        alias[last_of_i] = first_of_next if (i + 1) % q != 0 else offsets[0]
    # The wrap-around gluing aliases the last vertex of the last block to
    # the first vertex of block 0.
    # Compact relabeling.
    roots = alias.copy()
    for _ in range(2):  # alias chains have length ≤ 2
        roots = alias[roots]
    uniq, compact = np.unique(roots, return_inverse=True)
    n = uniq.shape[0]
    src_parts, dst_parts, w_parts = [], [], []
    hammocks: list[Hammock] = []
    for i, b in enumerate(blocks):
        glob = compact[offsets[i] : offsets[i] + b.n]
        src_parts.append(glob[b.src])
        dst_parts.append(glob[b.dst])
        w_parts.append(b.weight)
        att = np.unique(np.array([glob[0], glob[b.n - 1]], dtype=np.int64))
        hammocks.append(Hammock(vertices=np.unique(glob), attachments=att))
    g = WeightedDigraph(
        n, np.concatenate(src_parts), np.concatenate(dst_parts), np.concatenate(w_parts)
    )
    return g, HammockDecomposition(graph=g, hammocks=hammocks)


def chain_of_hammocks(
    q: int,
    hammock_size: int,
    rng: np.random.Generator,
    *,
    chord_fraction: float = 0.5,
    weight_range: tuple[float, float] = (1.0, 10.0),
) -> tuple[WeightedDigraph, HammockDecomposition]:
    """Like :func:`ring_of_hammocks` but glued in an open chain.

    Shared vertices of a *chain* are articulation points, so this is the
    family :func:`recover_hammocks` can rediscover without hints (in a ring
    the whole graph is biconnected and block decomposition sees one block).
    """
    if q < 1:
        raise ValueError("need at least one hammock")
    blocks = [
        random_outerplanar_digraph(
            hammock_size, rng, chord_fraction=chord_fraction, weight_range=weight_range
        )
        for _ in range(q)
    ]
    sizes = [b.n for b in blocks]
    offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
    total = int(sum(sizes))
    alias = np.arange(total, dtype=np.int64)
    for i in range(q - 1):
        alias[offsets[i] + sizes[i] - 1] = offsets[i + 1]
    roots = alias[alias]
    uniq, compact = np.unique(roots, return_inverse=True)
    n = uniq.shape[0]
    src_parts, dst_parts, w_parts = [], [], []
    hammocks: list[Hammock] = []
    for i, b in enumerate(blocks):
        glob = compact[offsets[i] : offsets[i] + b.n]
        src_parts.append(glob[b.src])
        dst_parts.append(glob[b.dst])
        w_parts.append(b.weight)
        att: list[int] = []
        if i > 0:
            att.append(int(glob[0]))
        if i < q - 1:
            att.append(int(glob[b.n - 1]))
        if not att:
            att = [int(glob[0])]
        hammocks.append(
            Hammock(vertices=np.unique(glob), attachments=np.unique(np.array(att, dtype=np.int64)))
        )
    graph = WeightedDigraph(
        n, np.concatenate(src_parts), np.concatenate(dst_parts), np.concatenate(w_parts)
    )
    return graph, HammockDecomposition(graph=graph, hammocks=hammocks)


def recover_hammocks(g: WeightedDigraph) -> HammockDecomposition:
    """Recover a hammock decomposition of a planar graph whose hammocks are
    glued at cut vertices (the :func:`chain_of_hammocks` family): hammocks
    are the biconnected blocks, attachments their articulation vertices.
    Ring-glued instances are biconnected as a whole, so block decomposition
    cannot split them — use the generator's ground truth there."""
    import networkx as nx

    und = nx.Graph()
    und.add_nodes_from(range(g.n))
    und.add_edges_from(zip(g.src.tolist(), g.dst.tolist()))
    arts = set(nx.articulation_points(und))
    hammocks = []
    for block in nx.biconnected_components(und):
        verts = np.array(sorted(block), dtype=np.int64)
        att = np.array(sorted(set(block) & arts), dtype=np.int64)
        if att.size == 0:
            # A lone block (whole component); treat up to 4 arbitrary
            # vertices as attachments so the G' pipeline stays uniform.
            att = verts[: min(4, verts.shape[0])]
        hammocks.append(Hammock(vertices=verts, attachments=att))
    return HammockDecomposition(graph=g, hammocks=hammocks)
