"""Approximate serving engine: :class:`~repro.core.query.QueryEngine` over
a :class:`~repro.hopset.augment.HopsetAugmentation`.

The inherited machinery needs no changes — the hopset augmentation already
caps both engine modes at ``hop_cap`` and serves ``G ∪ H`` — so this
subclass only (a) refuses to be built over an exact augmentation by
accident, and (b) surfaces ``approx``/``eps``/hopset size through
``stats()`` for the server's stats RPC and the CLI.

Being a ``QueryEngine`` subclass, it satisfies the
:class:`~repro.core.protocols.ServingBackend` protocol and takes the
server's ``isinstance(engine, QueryEngine)`` reweight path as-is.
"""

from __future__ import annotations

from typing import Any

from ..core.query import QueryEngine
from .augment import HopsetAugmentation

__all__ = ["ApproxEngine"]


class ApproxEngine(QueryEngine):
    """Batched ``(1+ε)``-approximate distance queries over ``G ∪ H``.

    Every served row satisfies ``d ≤ d̂ ≤ (1+ε)·d`` (soundness is
    deterministic; the upper bound holds with the construction's
    whp window-coverage guarantee — see :mod:`repro.hopset.construct`).
    """

    def __init__(self, aug, config=None, **kwargs) -> None:
        if not isinstance(aug, HopsetAugmentation):
            raise TypeError(
                "ApproxEngine serves HopsetAugmentation objects; for an exact "
                "E⁺ augmentation use QueryEngine (or oracle.query_engine(), "
                "which dispatches on the augmentation type)"
            )
        super().__init__(aug, config, **kwargs)

    @property
    def eps(self) -> float:
        return float(self.aug.eps)

    def stats(self) -> dict[str, Any]:
        """Inherited serving stats plus the approximate-mode fields
        (``approx``/``mode``/``eps``/``hopset_edges``/``hop_cap``)."""
        base = super().stats()
        hopset = self.aug.hopset
        base.update({
            "approx": True,
            "mode": "approx",
            "eps": self.eps,
            "hopset_edges": hopset.size if hopset is not None else 0,
            "hop_cap": int(self.aug.diameter_bound),
        })
        return base
