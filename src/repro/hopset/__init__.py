"""``repro.hopset`` — the (1+ε) approximate-distance subsystem.

For digraphs with no good separator decomposition (dense, expander,
social-graph-like), ``api.build`` swaps the exact E⁺ augmentation for a
sampled-pivot hopset ``H`` (``mode="approx"``, or ``mode="auto"`` below the
``approx_gate`` quality threshold) and serves bounded-hop Bellman–Ford over
``G ∪ H`` with a ``d ≤ d̂ ≤ (1+ε)·d`` guarantee.

* :mod:`.construct` — pivot sampling, hop-limited ball growing, geometric
  weight rounding (:func:`build_hopset` / :func:`replay_hopset`).
* :mod:`.augment` — :class:`HopsetAugmentation`, the E⁺-shaped adapter the
  whole serving stack consumes unchanged.
* :mod:`.engine` — :class:`ApproxEngine`, the
  :class:`~repro.core.protocols.ServingBackend`-conforming query engine.
"""

from .augment import HopsetAugmentation, HopSchedule, trivial_tree
from .construct import (
    Hopset,
    build_hopset,
    default_hop_budget,
    hop_cap_for,
    replay_hopset,
)
from .engine import ApproxEngine

__all__ = [
    "ApproxEngine",
    "Hopset",
    "HopSchedule",
    "HopsetAugmentation",
    "build_hopset",
    "default_hop_budget",
    "hop_cap_for",
    "replay_hopset",
    "trivial_tree",
]
