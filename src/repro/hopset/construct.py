"""Sampled-pivot (1+ε) hopset construction for non-separable digraphs.

When the separator engines report poor quality (dense digraphs, expanders,
social-graph-like inputs), E⁺ blows up and the Cohen pipeline is a bad fit.
This module builds a *hopset* ``H`` instead — a set of weighted shortcut
edges such that bounded-hop Bellman–Ford over ``G ∪ H`` answers every query
within a ``(1+ε)`` multiplicative error:

* **Pivot sampling** (Ullman–Yannakakis / Fineman-style): sample ``P₀`` at
  rate ``min(1, 3·ln n / k)`` so that every ``k``-hop window of every
  shortest path contains a pivot with high probability, then nest
  geometrically coarser scales ``P_{j+1} ⊂ P_j`` (rate ½) with doubled hop
  budgets ``k_{j+1} = 2·k_j`` — the coarse scales shorten chains on long
  paths without re-paying the dense scale-0 balls.
* **Ball growing**: per scale, ``k_j`` frontier-pruned multi-source
  Bellman–Ford phases from ``P_j`` (one shared
  :class:`~repro.kernels.bellman_ford.EdgeRelaxer` over ``G``, so the whole
  kernel suite — ``reference``/``blocked``/``pruned``/``jit`` — applies).
  After ``h`` phases row ``p`` holds exactly the best weight over ≤h-edge
  paths from ``p``, so each emitted ``p → q`` shortcut carries a *real path
  weight*: ``H`` can never underestimate a distance, giving ``d ≤ d̂``
  deterministically.
* **Geometric rounding**: with non-negative weights each positive shortcut
  weight is rounded *up* to the next power of ``(1+ε)``.  Per-edge
  multiplicative rounding does not compound along a chain
  (``Σ (1+ε)·wᵢ = (1+ε)·Σ wᵢ``), so the shortcut chain covering a shortest
  path weighs at most ``(1+ε)·d`` — that is the entire error budget, hence
  ``d̂ ≤ (1+ε)·d``.  Rounding is disabled when any weight is negative (the
  multiplicative bound is meaningless against ``d ≤ 0``); the shortcuts are
  then exact and the observed error is 0.

Query side: a shortest path decomposes into ≤k hops to the first pivot, a
pivot→pivot shortcut chain, and ≤k hops from the last pivot; every window
of ``k`` hops contains a pivot, so the chain has ≤ ``⌈n/k⌉`` shortcut hops
(fewer with the coarse scales).  :func:`hop_cap_for` turns that into the
phase budget ``β_q = min(n+1, 2k + 2⌈n/k⌉ + 2)`` — the ``n+1`` fallback is
plain Bellman–Ford convergence, so the cap is always safe.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..core.augment import dedupe_edges
from ..core.digraph import WeightedDigraph
from ..core.semiring import MIN_PLUS, Semiring
from ..kernels.bellman_ford import EdgeRelaxer, initial_distances

__all__ = [
    "Hopset",
    "build_hopset",
    "replay_hopset",
    "default_hop_budget",
    "hop_cap_for",
]

#: Oversampling constant: pivot rate ``C·ln n / k`` ⇒ a fixed k-hop window
#: misses every pivot with probability ≤ n^{-C}.
PIVOT_OVERSAMPLE = 3.0

#: Stop nesting coarser scales once a pivot set is this small (a handful of
#: pivots cannot shorten chains enough to pay for another ball pass).
MIN_SCALE_PIVOTS = 4


@dataclass(frozen=True)
class Hopset:
    """A built ``(1+ε)`` hopset: the shortcut edges plus everything needed
    to *replay* the construction under new weights (same pivots, same
    budgets — the reweight analogue of :class:`~repro.core.reweight.
    ReweightPlan`'s provenance capture)."""

    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray
    #: Per-scale pivot vertex sets, finest (P₀) first; nested.
    pivots: tuple[np.ndarray, ...]
    #: Per-scale hop budgets ``k_j`` (doubles per scale).
    budgets: tuple[int, ...]
    eps: float
    #: The base hop budget ``k`` actually used (resolved from
    #: ``hopset_beta`` or the ``√(n·ln n)`` default).
    beta: int
    #: Whether geometric weight rounding was applied (False ⇒ shortcuts are
    #: exact hop-limited distances; happens for eps=0 or negative weights).
    rounded: bool
    #: Query-side phase budget over G ∪ H (see :func:`hop_cap_for`).
    hop_cap: int
    seed: int
    build_wall_s: float

    @property
    def size(self) -> int:
        """|H| after deduplication."""
        return int(self.src.shape[0])

    def stats(self) -> dict:
        """Size/shape record: edge count, per-scale pivot counts and hop
        budgets, the ε/β/seed knobs, and the build wall-clock."""
        return {
            "edges": self.size,
            "scales": len(self.pivots),
            "pivots": [int(p.shape[0]) for p in self.pivots],
            "budgets": [int(b) for b in self.budgets],
            "eps": self.eps,
            "beta": self.beta,
            "rounded": self.rounded,
            "hop_cap": self.hop_cap,
            "seed": self.seed,
            "build_wall_s": self.build_wall_s,
        }


def default_hop_budget(n: int) -> int:
    """The work-balancing default ``k ≈ √(n·ln n)``: |P₀| ≈ 3·ln n·n/k ≈ 3k
    pivots each grow a k-phase ball, so construction work ≈ 3k²·m/n ≈
    3·m·ln n — near-linear — while ``hop_cap`` stays O(√(n·ln n))."""
    return max(4, math.ceil(math.sqrt(n * max(1.0, math.log(max(2, n))))))


def hop_cap_for(n: int, k: int) -> int:
    """Phase budget for queries over ``G ∪ H``: ≤k hops into the pivot
    chain, ≤⌈n/k⌉ shortcut hops (one per k-hop window), ≤k hops out, with
    a 2× safety margin on each term, never exceeding plain Bellman–Ford
    convergence (``n+1`` phases)."""
    if n <= 1:
        return 2
    k = max(1, int(k))
    return int(min(n + 1, 2 * k + 2 * math.ceil(n / k) + 2))


def _sample_scales(
    n: int, k: int, rng: np.random.Generator
) -> tuple[tuple[np.ndarray, ...], tuple[int, ...]]:
    """Nested pivot scales: P₀ at rate ``min(1, C·ln n / k)``, then halve
    the set and double the budget while the set stays useful."""
    rate = min(1.0, PIVOT_OVERSAMPLE * math.log(max(2, n)) / k)
    base = np.flatnonzero(rng.random(n) < rate).astype(np.int64)
    if base.size == 0:
        return (), ()
    pivots = [base]
    budgets = [k]
    while pivots[-1].size > MIN_SCALE_PIVOTS and budgets[-1] < n:
        nxt = pivots[-1][rng.random(pivots[-1].size) < 0.5]
        if nxt.size == 0:
            break
        pivots.append(nxt)
        budgets.append(min(n, budgets[-1] * 2))
    return tuple(pivots), tuple(budgets)


def _ball_distances(
    relaxer: EdgeRelaxer,
    n: int,
    pivots: np.ndarray,
    hops: int,
    semiring: Semiring,
) -> np.ndarray:
    """Hop-limited multi-source Bellman–Ford: after the loop,
    ``dist[i, v]`` is the exact best weight over ≤``hops``-edge paths
    ``pivots[i] → v`` (frontier-pruned; converged rows drop out early)."""
    dist = initial_distances(n, pivots, semiring)
    rows = np.arange(pivots.shape[0])
    for _ in range(hops):
        rows = relaxer.relax_rows(dist, rows)
        if rows.size == 0:
            break
    return dist


def _round_weights(weight: np.ndarray, eps: float) -> np.ndarray:
    """Round each positive weight *up* to the next integer power of
    ``(1+ε)`` (geometric buckets).  Guarantees ``w ≤ w' ≤ (1+ε)·w`` —
    ``np.maximum`` guards the lower bound against log/pow float error."""
    base = 1.0 + eps
    out = weight.astype(np.float64).copy()
    pos = out > 0
    if pos.any():
        exp = np.ceil(np.log(out[pos]) / math.log(base))
        out[pos] = np.maximum(out[pos], np.power(base, exp))
    return out


def _construct(
    graph: WeightedDigraph,
    semiring: Semiring,
    *,
    eps: float,
    k: int,
    pivots: tuple[np.ndarray, ...],
    budgets: tuple[int, ...],
    seed: int,
    kernel: str | None,
) -> Hopset:
    t0 = time.perf_counter()
    relaxer = EdgeRelaxer.from_graph(graph, semiring, kernel=kernel)
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    w_parts: list[np.ndarray] = []
    for pv, budget in zip(pivots, budgets):
        dist = _ball_distances(relaxer, graph.n, pv, budget, semiring)
        block = dist[:, pv]
        keep = np.isfinite(block)
        np.fill_diagonal(keep, False)
        rows, cols = np.nonzero(keep)
        src_parts.append(pv[rows])
        dst_parts.append(pv[cols])
        w_parts.append(block[rows, cols])
    if src_parts:
        h_src = np.concatenate(src_parts)
        h_dst = np.concatenate(dst_parts)
        h_w = np.concatenate(w_parts).astype(semiring.dtype)
    else:
        h_src = np.empty(0, dtype=np.int64)
        h_dst = np.empty(0, dtype=np.int64)
        h_w = np.empty(0, dtype=semiring.dtype)
    rounded = bool(
        eps > 0.0 and graph.m > 0 and float(graph.weight.min()) >= 0.0
    )
    if rounded and h_w.size:
        h_w = _round_weights(h_w, eps)
    h_src, h_dst, h_w = dedupe_edges(graph.n, h_src, h_dst, h_w, semiring)
    return Hopset(
        src=h_src,
        dst=h_dst,
        weight=h_w,
        pivots=pivots,
        budgets=budgets,
        eps=float(eps),
        beta=int(k),
        rounded=rounded,
        hop_cap=hop_cap_for(graph.n, k),
        seed=int(seed),
        build_wall_s=time.perf_counter() - t0,
    )


def _check_semiring(semiring: Semiring) -> None:
    if semiring.name != MIN_PLUS.name:
        raise ValueError(
            f"hopset construction supports only the {MIN_PLUS.name!r} semiring "
            f"(got {semiring.name!r}); the (1+ε) bound is a statement about "
            f"numeric path weights"
        )


def build_hopset(
    graph: WeightedDigraph,
    semiring: Semiring = MIN_PLUS,
    *,
    eps: float = 0.1,
    beta: int = 0,
    seed: int = 0,
    kernel: str | None = None,
) -> Hopset:
    """Build a ``(1+ε)`` hopset over ``graph``.

    ``beta`` overrides the base hop budget ``k`` (0 ⇒
    :func:`default_hop_budget`); ``seed`` fixes the pivot sample so builds
    are reproducible and cacheable; ``kernel`` flows into the ball-growing
    relaxer exactly as it does for E⁺ builds.
    """
    _check_semiring(semiring)
    if eps < 0:
        raise ValueError(f"eps must be >= 0 (got {eps})")
    k = int(beta) if beta else default_hop_budget(graph.n)
    k = max(1, min(k, max(1, graph.n)))
    rng = np.random.default_rng(seed)
    pivots, budgets = _sample_scales(graph.n, k, rng)
    # With no pivots sampled (tiny graph) H is empty and hop_cap_for
    # degrades to plain capped Bellman–Ford over G, which is exact.
    return _construct(
        graph, semiring, eps=eps, k=k, pivots=pivots, budgets=budgets,
        seed=seed, kernel=kernel,
    )


def replay_hopset(
    graph: WeightedDigraph,
    prior: Hopset,
    *,
    semiring: Semiring = MIN_PLUS,
    kernel: str | None = None,
) -> Hopset:
    """Rebuild shortcut weights under new edge weights, *reusing the prior
    pivot sample and budgets* — the hopset analogue of an incremental
    reweight: the expensive structural decision (which pivots, which
    scales) is replayed, only the ball growing re-runs."""
    _check_semiring(semiring)
    return _construct(
        graph,
        semiring,
        eps=prior.eps,
        k=prior.beta,
        pivots=prior.pivots,
        budgets=prior.budgets,
        seed=prior.seed,
        kernel=kernel,
    )
