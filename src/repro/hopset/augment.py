"""Hopset-as-augmentation: slotting ``H`` into the E⁺-shaped pipeline.

The entire serving stack — ``augmented_graph()``, :class:`~repro.kernels.
bellman_ford.EdgeRelaxer`, :class:`~repro.core.query.QueryEngine`, the shm
workers, the server's reweight RPC — consumes an :class:`~repro.core.
augment.Augmentation` through three touch points: the extra edge arrays,
``diameter_bound`` (the naive-phase cap) and ``schedule()`` (the scheduled
path).  :class:`HopsetAugmentation` is therefore a small subclass that

* stores the hopset's shortcuts as the ``src``/``dst``/``weight`` arrays
  (``G⁺ = G ∪ H`` falls out of the inherited ``augmented_graph()``),
* hangs the augmentation off a :func:`trivial_tree` (one all-vertex leaf —
  there *is* no useful separator decomposition, that is the point),
* caps both query paths at ``hopset.hop_cap`` — ``diameter_bound`` for the
  naive engine, a :class:`HopSchedule` of ``hop_cap`` repeated full-edge
  phases for the scheduled engine.  ``run_phases`` frontier-prunes the
  repeated relaxer, so the schedule is a capped Bellman–Ford fixpoint loop
  over G ∪ H that early-exits on convergence; both engine modes produce
  identical distances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.augment import Augmentation
from ..core.septree import SeparatorTree, SepTreeNode
from ..kernels.bellman_ford import run_phases
from ..pram.machine import NULL_LEDGER, Ledger
from .construct import Hopset

__all__ = ["HopSchedule", "HopsetAugmentation", "trivial_tree"]


def trivial_tree(n: int) -> SeparatorTree:
    """The degenerate one-node decomposition (a single all-vertex leaf):
    the honest tree for a graph we decided not to separate."""
    empty = np.empty(0, dtype=np.int64)
    root = SepTreeNode(
        idx=0,
        level=0,
        parent=-1,
        vertices=np.arange(n, dtype=np.int64),
        separator=empty,
        boundary=empty.copy(),
    )
    return SeparatorTree([root], n)


@dataclass
class HopSchedule:
    """Schedule-shaped wrapper over a capped Bellman–Ford fixpoint loop:
    ``hop_cap`` phases of one shared full-edge relaxer over G ∪ H.  Mirrors
    :class:`~repro.core.scheduler.PhaseSchedule` (``relaxers``/``labels``/
    ``edge_scans``/``run``) so ``sssp_scheduled`` and the query engine's
    scheduled path run it unmodified."""

    relaxers: list
    labels: list[str]
    #: worst-case edge scans of one pass (frontier pruning usually stops
    #: far earlier — this is the budget, not the typical cost).
    edge_scans: int
    aug_edge_phase_counts: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    @property
    def num_phases(self) -> int:
        return len(self.relaxers)

    def run(self, dist: np.ndarray, *, ledger: Ledger = NULL_LEDGER) -> np.ndarray:
        """Relax ``dist`` to the hop-capped fixpoint (``run_phases`` groups
        the identical relaxers and frontier-prunes with early exit)."""
        return run_phases(self.relaxers, dist, ledger=ledger)


@dataclass
class HopsetAugmentation(Augmentation):
    """An :class:`~repro.core.augment.Augmentation` whose extra edges are a
    ``(1+ε)`` hopset rather than exact E⁺ shortcuts — every inherited
    consumer works unchanged, but served distances are approximate:
    ``d ≤ d̂ ≤ (1+ε)·d`` (see :mod:`repro.hopset.construct`)."""

    hopset: Hopset | None = None

    @property
    def eps(self) -> float:
        return self.hopset.eps if self.hopset is not None else 0.0

    @property
    def diameter_bound(self) -> int:
        """The query-phase cap: ``β_q`` hop-limited phases over G ∪ H
        instead of Theorem 3.1's exact-diameter bound."""
        if self.hopset is None:  # pragma: no cover - defensive
            return super().diameter_bound
        return self.hopset.hop_cap

    def schedule(self):
        """The cached :class:`HopSchedule`: ``hop_cap`` phases of one
        shared G∪H relaxer (shared *by identity*, so pickled workers keep
        the frontier-pruning fast path after dedup)."""
        if self._schedule is None:
            relaxer = self.relaxer()
            cap = self.diameter_bound
            self._schedule = HopSchedule(
                relaxers=[relaxer] * cap,
                labels=[f"hop-{i + 1}" for i in range(cap)],
                edge_scans=cap * (self.graph.m + self.size),
            )
        return self._schedule

    def stats(self) -> dict:
        """Inherited augmentation stats plus ``mode``/``eps`` and the
        hopset's own record (pivot counts, budgets, hop_cap, build wall)."""
        out = super().stats()
        out["mode"] = "approx"
        out["eps"] = self.eps
        out["hopset"] = self.hopset.stats() if self.hopset is not None else None
        return out

    def verify_edges(self, sample_size: int = 64, rng=None) -> float:
        """Hopset shortcuts are hop-limited (they may legitimately
        *over*estimate when the budget truncates a ball), so the exact-E⁺
        verifier's overestimate check does not apply; check soundness only:
        no shortcut may underestimate the true distance."""
        from ..kernels.bellman_ford import bellman_ford

        if self.size == 0:
            return 0.0
        rng = rng or np.random.default_rng(0)
        idx = rng.choice(self.size, size=min(sample_size, self.size), replace=False)
        sources = np.unique(self.src[idx])
        dist = bellman_ford(self.graph, sources)
        pos = np.searchsorted(sources, self.src[idx])
        under = np.maximum(
            0.0, dist[pos, self.dst[idx]] - self.weight[idx].astype(np.float64)
        )
        return float(under.max(initial=0.0))
