"""Reachability and transitive closure via the boolean specialization.

Paper §5: "the computation of the set E⁺ for the reachability problem can be
performed in O(log²n) time and O(n log³n) work if ωμ = 1, and
O(M(n^μ)log²n + n log²n) work otherwise."  All of Algorithms 4.1/4.3 run
unchanged over the boolean semiring; the node-level APSPs become boolean
closures computed by repeated squaring on numpy's uint8 GEMM (the M(r)
kernel, see :mod:`repro.kernels.boolmat`).
"""

from __future__ import annotations

import numpy as np

from ..pram.machine import NULL_LEDGER, Ledger
from .augment import Augmentation
from .digraph import WeightedDigraph
from .doubling import augment_doubling
from .leaves_up import augment_leaves_up
from .scheduler import build_schedule
from .semiring import BOOLEAN
from .septree import SeparatorTree
from .sssp import sssp_scheduled

__all__ = ["reachability_augmentation", "reachable_from", "transitive_closure"]


def reachability_augmentation(
    graph: WeightedDigraph,
    tree: SeparatorTree,
    *,
    method: str = "leaves_up",
    executor="serial",
    ledger: Ledger = NULL_LEDGER,
) -> Augmentation:
    """Boolean E⁺ for ``graph`` (edge weights are ignored)."""
    build = augment_leaves_up if method == "leaves_up" else augment_doubling
    return build(graph, tree, BOOLEAN, executor=executor, ledger=ledger)


def reachable_from(
    aug: Augmentation,
    sources,
    *,
    ledger: Ledger = NULL_LEDGER,
) -> np.ndarray:
    """Boolean matrix ``(s, n)``: which vertices each source reaches (the
    scheduled query engine over the boolean semiring)."""
    if aug.semiring.name != "boolean":
        raise ValueError("augmentation must be boolean; use reachability_augmentation")
    return sssp_scheduled(aug, sources, ledger=ledger)


def transitive_closure(
    graph: WeightedDigraph,
    tree: SeparatorTree,
    *,
    method: str = "leaves_up",
    ledger: Ledger = NULL_LEDGER,
) -> np.ndarray:
    """Full n×n reachability matrix (reflexive)."""
    aug = reachability_augmentation(graph, tree, method=method, ledger=ledger)
    closure = reachable_from(aug, np.arange(graph.n), ledger=ledger)
    np.fill_diagonal(closure, True)
    return closure
