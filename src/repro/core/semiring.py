"""Path-algebra semirings.

Paper comment (iii): "Our algorithm is applicable to general path algebra
problems over semirings (see Pan and Reif)."  Every distance kernel in this
package (Floyd–Warshall, min-plus products, Bellman–Ford relaxation, the
augmentation algorithms) is parameterized by a :class:`Semiring` so the same
code answers shortest paths (min-plus), reachability (boolean), widest
bottleneck paths (max-min) and minimax paths (min-max).

A semiring here is ``(S, ⊕, ⊗, 0̄, 1̄)`` where ``⊕`` aggregates alternative
paths and ``⊗`` extends a path by an edge.  ``zero`` is the ⊕-identity
("no path") and ``one`` the ⊗-identity ("empty path").  All operations are
supplied as vectorized numpy callables; the dense semiring matrix product is
implemented in :mod:`repro.kernels.minplus` on top of these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "Semiring",
    "MIN_PLUS",
    "BOOLEAN",
    "MAX_MIN",
    "MIN_MAX",
    "COUNTING_HOPS",
    "SEMIRINGS",
]


@dataclass(frozen=True)
class Semiring:
    """A numpy-vectorized semiring.

    Attributes
    ----------
    name:
        Human-readable identifier.
    zero, one:
        The ⊕- and ⊗-identities as Python scalars.
    dtype:
        Numpy dtype used for distance matrices in this algebra.
    add:
        Elementwise ``⊕`` of two arrays.
    add_reduce:
        ``⊕``-reduction of an array along an axis.
    mul:
        Elementwise ``⊗`` of two (broadcastable) arrays.
    improves:
        ``improves(a, b)`` — boolean mask where ``a`` is *strictly better*
        than ``b`` (i.e. ``a ⊕ b != b``).  Used for convergence detection.
    idempotent:
        Whether ``a ⊕ a = a``; all shipped semirings are idempotent, which is
        what makes fixpoint iteration (Bellman–Ford, path doubling) converge.
    """

    name: str
    zero: float
    one: float
    dtype: np.dtype
    add: Callable[[np.ndarray, np.ndarray], np.ndarray]
    add_reduce: Callable[..., np.ndarray]
    mul: Callable[[np.ndarray, np.ndarray], np.ndarray]
    improves: Callable[[np.ndarray, np.ndarray], np.ndarray]
    idempotent: bool = True

    # -------------------------------------------------------------- #
    # Convenience constructors for matrices in this algebra
    # -------------------------------------------------------------- #

    def empty_matrix(self, rows: int, cols: int) -> np.ndarray:
        """Matrix filled with ``zero`` (no path)."""
        return np.full((rows, cols), self.zero, dtype=self.dtype)

    def identity_matrix(self, n: int) -> np.ndarray:
        """``zero`` off-diagonal, ``one`` on the diagonal (empty paths)."""
        a = self.empty_matrix(n, n)
        np.fill_diagonal(a, self.one)
        return a

    def scatter_min(self, target: np.ndarray, index, values: np.ndarray) -> None:
        """In-place ``target[index] ⊕= values`` with duplicate indices
        aggregated (the relaxation primitive of parallel Bellman–Ford)."""
        self._scatter(target, index, values)

    @property
    def _scatter(self):
        # ufunc.at handles duplicate indices with repeated application,
        # which is exactly ⊕-aggregation for idempotent, associative ⊕.
        if self.name in ("min-plus", "min-max", "hops"):
            return np.minimum.at
        if self.name == "max-min":
            return np.maximum.at
        if self.name == "boolean":
            return np.logical_or.at
        raise NotImplementedError(f"no scatter for semiring {self.name}")


def _strictly_less(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a < b


def _strictly_greater(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a > b


def _bool_improves(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.logical_and(a, np.logical_not(b))


#: Shortest paths: ⊕ = min, ⊗ = +, 0̄ = +inf, 1̄ = 0.
MIN_PLUS = Semiring(
    name="min-plus",
    zero=np.inf,
    one=0.0,
    dtype=np.dtype(np.float64),
    add=np.minimum,
    add_reduce=np.minimum.reduce,
    mul=np.add,
    improves=_strictly_less,
)

#: Reachability / transitive closure: ⊕ = or, ⊗ = and, 0̄ = False, 1̄ = True.
BOOLEAN = Semiring(
    name="boolean",
    zero=False,
    one=True,
    dtype=np.dtype(bool),
    add=np.logical_or,
    add_reduce=np.logical_or.reduce,
    mul=np.logical_and,
    improves=_bool_improves,
)

#: Widest (bottleneck) paths: ⊕ = max, ⊗ = min, 0̄ = -inf, 1̄ = +inf.
MAX_MIN = Semiring(
    name="max-min",
    zero=-np.inf,
    one=np.inf,
    dtype=np.dtype(np.float64),
    add=np.maximum,
    add_reduce=np.maximum.reduce,
    mul=np.minimum,
    improves=_strictly_greater,
)

#: Minimax paths (minimize the largest edge): ⊕ = min, ⊗ = max.
MIN_MAX = Semiring(
    name="min-max",
    zero=np.inf,
    one=-np.inf,
    dtype=np.dtype(np.float64),
    add=np.minimum,
    add_reduce=np.minimum.reduce,
    mul=np.maximum,
    improves=_strictly_less,
)

#: Fewest hops (min-plus over unit weights); useful for diameter probes.
COUNTING_HOPS = Semiring(
    name="hops",
    zero=np.inf,
    one=0.0,
    dtype=np.dtype(np.float64),
    add=np.minimum,
    add_reduce=np.minimum.reduce,
    mul=np.add,
    improves=_strictly_less,
)

SEMIRINGS: dict[str, Semiring] = {
    s.name: s for s in (MIN_PLUS, BOOLEAN, MAX_MIN, MIN_MAX, COUNTING_HOPS)
}
