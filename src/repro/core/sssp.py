"""Shortest-path queries over the augmented graph (paper §3.2).

Two query strategies, both O(polylog) parallel time once E⁺ exists:

* :func:`sssp_naive` — generic Bellman–Ford on G⁺ run for (at most) the
  Theorem 3.1 diameter bound of phases, scanning every edge each phase:
  O((ℓ + d_G)·(|E| + |E⁺|)) work per source.
* :func:`sssp_scheduled` — the level schedule, scanning each E⁺ edge O(1)
  times: O(ℓ·|E| + |E⁺|) work per source (ablation A3 measures the gap).

Both accept many sources at once; rows of the distance matrix relax
simultaneously (the PRAM's per-source independence).
"""

from __future__ import annotations

import numpy as np

from ..kernels.bellman_ford import initial_distances, phases_to_convergence
from ..pram.machine import NULL_LEDGER, Ledger
from .augment import Augmentation
from .scheduler import PhaseSchedule

__all__ = [
    "sssp_naive",
    "sssp_scheduled",
    "measured_diameter",
]


def _as_source_array(sources) -> tuple[np.ndarray, bool]:
    single = isinstance(sources, (int, np.integer))
    arr = np.atleast_1d(np.asarray([sources] if single else sources, dtype=np.int64))
    return arr, single


def sssp_naive(
    aug: Augmentation,
    sources,
    *,
    phases: int | None = None,
    ledger: Ledger = NULL_LEDGER,
) -> np.ndarray:
    """Distances from each source via full-scan Bellman–Ford on G⁺.

    ``phases`` defaults to the Theorem 3.1 diameter bound; convergence can
    (and usually does) stop the loop earlier.  G⁺ and its relaxer are cached
    on the augmentation, so repeated calls skip reconstruction.
    """
    srcs, single = _as_source_array(sources)
    semiring = aug.semiring
    dist = initial_distances(aug.graph.n, srcs, semiring)
    relaxer = aug.relaxer()
    cap = aug.diameter_bound if phases is None else phases
    # Row frontier: a source row the full-edge relaxer stopped improving is
    # at its fixpoint (rows are independent) and is never rescanned.
    active = np.arange(dist.shape[0])
    for _ in range(cap):
        if not active.size:
            break
        active = relaxer.relax_rows(dist, active, ledger=ledger)
    return dist[0] if single else dist


#: Default number of sources relaxed together.  One phase materializes an
#: (s_block, edges-in-phase) candidate array; blocking keeps that temporary
#: cache-sized so large batches don't thrash memory bandwidth.
SOURCE_BLOCK = 64


def sssp_scheduled(
    aug: Augmentation,
    sources,
    *,
    schedule: PhaseSchedule | None = None,
    ledger: Ledger = NULL_LEDGER,
    source_block: int = SOURCE_BLOCK,
) -> np.ndarray:
    """Distances from each source via the §3.2 level schedule (one pass).

    Sources are processed in blocks of ``source_block`` (PRAM semantics are
    unaffected — rows are independent; the blocking only bounds the
    per-phase temporaries).  When ``schedule`` is omitted the augmentation's
    cached schedule is used, so repeated calls compile it exactly once."""
    srcs, single = _as_source_array(sources)
    if schedule is None:
        schedule = aug.schedule()
    dist = initial_distances(aug.graph.n, srcs, aug.semiring)
    for start in range(0, srcs.shape[0], max(1, source_block)):
        schedule.run(dist[start : start + source_block], ledger=ledger)
    return dist[0] if single else dist


def measured_diameter(aug: Augmentation) -> int:
    """Empirical minimum-weight diameter of G⁺ — the quantity Theorem
    3.1(ii) bounds by ``4·d_G + 2ℓ + 1``.

    Runs the all-pairs Jacobi iteration to its fixpoint; O(n·|E∪E⁺|·diam)
    work, intended for validation scale.
    """
    gplus = aug.augmented_graph()
    dist = initial_distances(gplus.n, np.arange(gplus.n), aug.semiring)
    return phases_to_convergence(gplus, dist, semiring=aug.semiring)
