"""Explicit shortest paths and shortest-path trees (paper comment (ii)).

"The algorithm as stated computes only distances, but it can be easily
adapted to explicitly find minimum weight paths."  Given exact distances
``d(s, ·)`` (which the augmented queries produce), a shortest-path *tree in
the original graph* is recovered from the *tight* original edges — those
with ``d(s,u) + w(u,v) = d(s,v)``: every reachable vertex has a tight
incoming edge lying on an actual shortest path, and a BFS over tight edges
avoids the zero-weight-cycle trap of picking tight parents independently.
This costs one O(m) pass per source on top of the distance query, preserving
the paper's per-source work bound.
"""

from __future__ import annotations

import numpy as np

from .digraph import WeightedDigraph

__all__ = [
    "tight_edge_mask",
    "shortest_path_tree",
    "reconstruct_path",
    "path_weight",
]

_RTOL = 1e-9
_ATOL = 1e-9


def tight_edge_mask(g: WeightedDigraph, dist: np.ndarray) -> np.ndarray:
    """Edges on *some* shortest path from the (implicit) source of ``dist``:
    finite ``dist[src]`` and ``dist[src] + w ≈ dist[dst]``."""
    with np.errstate(invalid="ignore"):
        cand = dist[g.src] + g.weight
    finite = np.isfinite(dist[g.src]) & np.isfinite(dist[g.dst])
    return finite & np.isclose(cand, dist[g.dst], rtol=_RTOL, atol=_ATOL)


def shortest_path_tree(g: WeightedDigraph, source: int, dist: np.ndarray) -> np.ndarray:
    """Parent array of a shortest-path tree rooted at ``source``.

    ``parent[v]`` is the predecessor of ``v`` on a shortest ``source→v``
    path (−1 for the source and for unreachable vertices).  ``dist`` must be
    the exact distance vector from ``source``.
    """
    if dist.shape != (g.n,):
        raise ValueError("dist must be a single-source distance vector")
    mask = tight_edge_mask(g, dist)
    src = g.src[mask]
    dst = g.dst[mask]
    # CSR over tight edges, outgoing.
    order = np.argsort(src, kind="stable")
    src_s, dst_s = src[order], dst[order]
    indptr = np.zeros(g.n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src_s, minlength=g.n), out=indptr[1:])
    parent = np.full(g.n, -1, dtype=np.int64)
    visited = np.zeros(g.n, dtype=bool)
    visited[source] = True
    frontier = [source]
    while frontier:
        nxt: list[int] = []
        for u in frontier:
            for v in dst_s[indptr[u] : indptr[u + 1]].tolist():
                if not visited[v]:
                    visited[v] = True
                    parent[v] = u
                    nxt.append(v)
        frontier = nxt
    # Sanity: everything with a finite distance must have been reached.
    reachable = np.isfinite(dist)
    reachable[source] = False
    if not visited[reachable].all():
        raise AssertionError("tight-edge BFS failed to cover all reachable vertices")
    return parent


def reconstruct_path(parent: np.ndarray, source: int, target: int) -> list[int] | None:
    """Vertex sequence ``source..target`` from a parent array, or ``None``
    when the target was not reached."""
    if target == source:
        return [source]
    if parent[target] < 0:
        return None
    path = [int(target)]
    v = int(target)
    for _ in range(parent.shape[0]):
        v = int(parent[v])
        path.append(v)
        if v == source:
            path.reverse()
            return path
    raise AssertionError("parent array contains a cycle")


def path_weight(g: WeightedDigraph, path: list[int]) -> float:
    """Weight of a vertex walk, using minimum-weight parallel edges;
    raises ``KeyError`` when a step has no edge."""
    best: dict[tuple[int, int], float] = {}
    for u, v, w in zip(g.src.tolist(), g.dst.tolist(), g.weight.tolist()):
        key = (u, v)
        if key not in best or w < best[key]:
            best[key] = w
    return sum(best[(a, b)] for a, b in zip(path[:-1], path[1:]))
