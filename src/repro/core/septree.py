"""Separator decomposition trees (paper §2.3).

A separator decomposition tree ``T_G`` of (the undirected skeleton of) a
graph ``G`` is a rooted binary tree whose nodes ``t`` carry two vertex sets:
``V(t)`` (the subgraph at the node; the root carries all of ``V``) and a
separator ``S(t) ⊆ V(t)`` of the induced subgraph ``G(t)``.  The children of
``t`` carry the two sides of the partition induced by ``S(t)``.  Each node
also has a *boundary* ``B(t)``: ``B(root) = ∅`` and
``B(t) = (S(parent) ∪ B(parent)) ∩ V(t)`` — the ancestors' separator
vertices still present in ``V(t)`` (Proposition 2.1 i), which separate
``V(t) ∖ B(t)`` from the rest of ``G`` (Proposition 2.1 ii).

Following the paper's terminology, graph vertices are "vertices" and tree
vertices are "nodes".

Child inclusion rule
--------------------
The paper defines ``V(t_i) = V_i ∪ (S(t) ∩ N(V_i))``; Algorithm 4.1's
correctness argument, however, uses ``S(t) ⊆ B(t₁) ∩ B(t₂)``.  We therefore
default to including *all* of ``S(t)`` in both children (the standard nested
dissection convention, which makes that precondition unconditional) and keep
the neighborhood-restricted rule as an option for the A1 ablation — with a
safety net that re-adds any separator vertex that would otherwise be missing
from both children.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

from .digraph import WeightedDigraph

__all__ = [
    "SepTreeNode",
    "SeparatorTree",
    "SeparatorFn",
    "build_separator_tree",
    "DecompositionError",
    "split_components",
]

#: A separator oracle: given the induced (sub)graph and the global ids of its
#: vertices, return *local* indices (into the subgraph) of a separator.
SeparatorFn = Callable[[WeightedDigraph, np.ndarray], np.ndarray]


class DecompositionError(ValueError):
    """Raised when a separator oracle fails to make progress or an invariant
    of the decomposition is violated."""


class InseparableSubgraph(Exception):
    """Signal from a separator oracle: the subgraph has *no* separator (its
    skeleton is complete — removing any vertex subset leaves the rest
    connected).  The builder then makes the subgraph a leaf even though it
    exceeds ``leaf_size``; the theory degrades gracefully (the leaf-diameter
    term ℓ absorbs it), which is the honest behavior of the paper's
    algorithm outside its separator-friendly families."""


@dataclass
class SepTreeNode:
    """One node ``t`` of the tree with its ``V(t)``, ``S(t)``, ``B(t)``
    labels (sorted global vertex ids).  Leaves have an empty separator."""

    idx: int
    level: int
    parent: int
    vertices: np.ndarray
    separator: np.ndarray
    boundary: np.ndarray
    children: tuple[int, ...] = ()

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def size(self) -> int:
        return int(self.vertices.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SepTreeNode(idx={self.idx}, level={self.level}, |V|={self.size}, "
            f"|S|={self.separator.shape[0]}, |B|={self.boundary.shape[0]})"
        )


class SeparatorTree:
    """A fully-labeled separator decomposition tree.

    The constructor derives the paper's ``level: V → {0..d_G}`` and
    ``node: V → T_G`` functions (§3.1): ``level(v)`` is the minimum level of
    a node whose separator contains ``v`` (−1 encodes *undefined*, i.e. the
    vertex never appears in a separator), and ``node(v)`` is the unique node
    realizing the minimum, or the leaf containing ``v`` when undefined.
    """

    def __init__(self, nodes: Sequence[SepTreeNode], n: int) -> None:
        if not nodes or nodes[0].parent != -1:
            raise DecompositionError("nodes[0] must be the root (parent == -1)")
        self.nodes: list[SepTreeNode] = list(nodes)
        self.n = int(n)
        self.height: int = max(t.level for t in self.nodes)
        #: Stats record left by the flow refinement pass (None = unrefined).
        self.refinement: dict | None = None
        #: Engine-selection record left by multi-engine builders
        #: (``quality.best_first_pass``, ``api.build`` auto-mode gating):
        #: per-candidate scores plus why this tree won (None = direct build).
        self.selection: dict | None = None
        self.vertex_level = np.full(n, -1, dtype=np.int64)
        self.vertex_node = np.full(n, -1, dtype=np.int64)
        # Scan top-down (nodes are created parent-before-child) so the first
        # separator containing a vertex wins — that is the min level.
        for t in sorted(self.nodes, key=lambda t: t.level):
            s = t.separator
            fresh = self.vertex_level[s] < 0
            self.vertex_level[s[fresh]] = t.level
            self.vertex_node[s[fresh]] = t.idx
        for t in self.nodes:
            if t.is_leaf:
                undef = t.vertices[self.vertex_level[t.vertices] < 0]
                self.vertex_node[undef] = t.idx

    # -------------------------------------------------------------- #
    # Traversal helpers
    # -------------------------------------------------------------- #

    @property
    def root(self) -> SepTreeNode:
        return self.nodes[0]

    def leaves(self) -> list[SepTreeNode]:
        """All leaf nodes."""
        return [t for t in self.nodes if t.is_leaf]

    def levels_desc(self) -> Iterator[list[SepTreeNode]]:
        """Node groups by level, deepest first — the bottom-up processing
        order of Algorithm 4.1 (all nodes of a level are independent, hence a
        parallel phase)."""
        by_level: dict[int, list[SepTreeNode]] = {}
        for t in self.nodes:
            by_level.setdefault(t.level, []).append(t)
        for lvl in sorted(by_level, reverse=True):
            yield by_level[lvl]

    def max_leaf_size(self) -> int:
        """Largest |V(t)| over leaves (the paper's O(1) constant)."""
        return max(t.size for t in self.leaves())

    def ell_bound(self) -> int:
        """Upper bound on ℓ (max min-weight diameter over leaf subgraphs):
        a leaf with ``k`` vertices has diameter ≤ ``k − 1`` absent negative
        cycles."""
        return max(0, self.max_leaf_size() - 1)

    def separator_sizes(self) -> np.ndarray:
        """|S(t)| of every internal node."""
        return np.array([t.separator.shape[0] for t in self.nodes if not t.is_leaf], dtype=np.int64)

    def total_label_size(self) -> int:
        """Σ_t |V(t)| — the storage the decomposition itself occupies."""
        return sum(t.size for t in self.nodes)

    def separator_stats(self) -> dict:
        """JSON-safe separator-quality summary: per-level |S| histogram,
        achieved balance α (worst and mean child/parent vertex ratio over
        internal nodes), separator totals, and — when the tree went through
        the flow refiner — the refinement delta record."""
        per_level: dict[str, dict] = {}
        ratios: list[float] = []
        for t in self.nodes:
            if t.is_leaf:
                continue
            lvl = per_level.setdefault(
                str(t.level), {"nodes": 0, "sep_total": 0, "sep_max": 0}
            )
            lvl["nodes"] += 1
            s = int(t.separator.shape[0])
            lvl["sep_total"] += s
            lvl["sep_max"] = max(lvl["sep_max"], s)
            for c in t.children:
                ratios.append(self.nodes[c].size / t.size)
        sizes = self.separator_sizes()
        return {
            "levels": per_level,
            "sep_total": int(sizes.sum()) if sizes.size else 0,
            "sep_max": int(sizes.max()) if sizes.size else 0,
            "internal_nodes": int(sizes.shape[0]),
            "balance_worst": float(max(ratios)) if ratios else 0.0,
            "balance_mean": float(np.mean(ratios)) if ratios else 0.0,
            "refinement": self.refinement,
            "selection": self.selection,
        }

    # -------------------------------------------------------------- #
    # Validation (Proposition 2.1 and construction invariants)
    # -------------------------------------------------------------- #

    def validate(self, g: WeightedDigraph, *, strict: bool = True) -> list[str]:
        """Check structural invariants against the graph; returns the list
        of violations (and raises on any, unless ``strict=False``)."""
        problems: list[str] = []
        skel = g.skeleton
        root = self.root
        if root.size != self.n or not np.array_equal(root.vertices, np.arange(self.n)):
            problems.append("root must carry every vertex exactly once")
        for t in self.nodes:
            in_v = np.zeros(self.n, dtype=bool)
            in_v[t.vertices] = True
            if t.separator.size and not in_v[t.separator].all():
                problems.append(f"node {t.idx}: S(t) ⊄ V(t)")
            if t.boundary.size and not in_v[t.boundary].all():
                problems.append(f"node {t.idx}: B(t) ⊄ V(t)")
            if t.parent >= 0:
                p = self.nodes[t.parent]
                expected = np.intersect1d(
                    np.union1d(p.separator, p.boundary), t.vertices, assume_unique=False
                )
                if not np.array_equal(expected, t.boundary):
                    problems.append(f"node {t.idx}: B(t) != (S(p) ∪ B(p)) ∩ V(t)")
            if not t.is_leaf:
                kids = [self.nodes[c] for c in t.children]
                covered = np.union1d(kids[0].vertices, kids[1].vertices) if len(kids) == 2 else kids[0].vertices
                if not np.array_equal(np.union1d(covered, t.separator), t.vertices):
                    problems.append(f"node {t.idx}: children ∪ S(t) != V(t)")
                for k in kids:
                    if k.size >= t.size:
                        problems.append(f"node {t.idx}: child {k.idx} did not shrink")
                # S(t) must separate the child interiors inside G(t).
                if len(kids) == 2:
                    side = np.zeros(self.n, dtype=np.int8)
                    interior0 = np.setdiff1d(kids[0].vertices, t.separator, assume_unique=False)
                    interior1 = np.setdiff1d(kids[1].vertices, t.separator, assume_unique=False)
                    side[interior0] = 1
                    side[interior1] = 2
                    if np.intersect1d(interior0, interior1).size:
                        problems.append(f"node {t.idx}: child interiors overlap")
                    u, v = _skeleton_edges(skel)
                    cross = (side[u] == 1) & (side[v] == 2)
                    if cross.any():
                        problems.append(f"node {t.idx}: S(t) does not separate the children")
            # Prop 2.1(ii): B(t) separates V(t) ∖ B(t) from V ∖ V(t) in G.
            inside = np.zeros(self.n, dtype=bool)
            inside[t.vertices] = True
            inside[t.boundary] = False
            outside = ~np.zeros(self.n, dtype=bool)
            outside[t.vertices] = False
            u, v = _skeleton_edges(skel)
            leak = (inside[u] & outside[v]) | (outside[u] & inside[v])
            if leak.any():
                problems.append(f"node {t.idx}: B(t) does not shield V(t) from the rest of G")
        if problems and strict:
            raise DecompositionError("; ".join(problems))
        return problems

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SeparatorTree(n={self.n}, nodes={len(self.nodes)}, height={self.height}, "
            f"max_leaf={self.max_leaf_size()})"
        )


def _skeleton_edges(skel) -> tuple[np.ndarray, np.ndarray]:
    """Skeleton CSR back to (u, v) arrays (each undirected edge appears in
    both orientations, which is fine for separation checks)."""
    indptr, indices = skel.indptr, skel.indices
    u = np.repeat(np.arange(indptr.shape[0] - 1), np.diff(indptr))
    return u, indices


# ------------------------------------------------------------------ #
# Construction
# ------------------------------------------------------------------ #


def split_components(
    sub: WeightedDigraph, local_separator: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Partition the non-separator vertices of ``sub`` into two groups
    ``(V₁, V₂)`` of local indices, each a union of connected components of
    ``sub ∖ S`` balanced greedily by size (largest component first).

    Raises :class:`DecompositionError` when ``S`` leaves a single component
    covering everything (the oracle made no progress).
    """
    import scipy.sparse as sp
    from scipy.sparse.csgraph import connected_components

    n = sub.n
    keep = np.ones(n, dtype=bool)
    keep[local_separator] = False
    rest = np.nonzero(keep)[0]
    if rest.size == 0:
        return rest, rest.copy()
    mask = keep[sub.src] & keep[sub.dst]
    adj = sp.csr_matrix(
        (np.ones(int(mask.sum())), (sub.src[mask], sub.dst[mask])), shape=(n, n)
    )
    ncomp, labels = connected_components(adj, directed=False)
    comp_of_rest = labels[rest]
    comp_ids, counts = np.unique(comp_of_rest, return_counts=True)
    if comp_ids.shape[0] == 1 and local_separator.size == 0:
        raise DecompositionError("empty separator on a connected subgraph")
    order = np.argsort(counts)[::-1]
    side = {}
    load = [0, 0]
    for ci in order:
        pick = 0 if load[0] <= load[1] else 1
        side[comp_ids[ci]] = pick
        load[pick] += int(counts[ci])
    which = np.array([side[c] for c in comp_of_rest])
    return rest[which == 0], rest[which == 1]


def build_separator_tree(
    g: WeightedDigraph,
    separator_fn: SeparatorFn,
    *,
    leaf_size: int = 8,
    full_separator_inclusion: bool = True,
    alpha: float = 0.95,
) -> SeparatorTree:
    """Recursively decompose ``g`` with ``separator_fn``.

    Parameters
    ----------
    leaf_size:
        Subgraphs of at most this many vertices become leaves (the paper
        assumes O(1)-size leaves; this is the constant).
    full_separator_inclusion:
        Children get all of ``S(t)`` (default; see module docstring) versus
        only ``S(t) ∩ N(V_i)`` (paper's literal rule, ablation A1).
    alpha:
        Sanity bound: each child must satisfy ``|V(child)| ≤ α·|V(t)| +
        |S(t)|``; a violation means the oracle is not producing balanced
        separators and raises.
    """
    if leaf_size < 1:
        raise ValueError("leaf_size must be >= 1")
    nodes: list[SepTreeNode] = []
    # Work stack of (parent_idx, level, global_vertices, boundary).
    stack: list[tuple[int, int, np.ndarray, np.ndarray]] = [
        (-1, 0, np.arange(g.n, dtype=np.int64), np.empty(0, dtype=np.int64))
    ]
    while stack:
        parent, level, verts, boundary = stack.pop()
        idx = len(nodes)
        if parent >= 0:
            p = nodes[parent]
            p.children = p.children + (idx,)
        if verts.shape[0] <= leaf_size:
            nodes.append(
                SepTreeNode(
                    idx=idx,
                    level=level,
                    parent=parent,
                    vertices=verts,
                    separator=np.empty(0, dtype=np.int64),
                    boundary=boundary,
                )
            )
            continue
        sub, mapping = g.induced_subgraph(verts)
        try:
            local_sep = np.unique(np.asarray(separator_fn(sub, mapping), dtype=np.int64))
        except InseparableSubgraph:
            # No separator exists (complete skeleton): oversized leaf.
            nodes.append(
                SepTreeNode(
                    idx=idx,
                    level=level,
                    parent=parent,
                    vertices=verts,
                    separator=np.empty(0, dtype=np.int64),
                    boundary=boundary,
                )
            )
            continue
        if local_sep.size and (local_sep.min() < 0 or local_sep.max() >= sub.n):
            raise DecompositionError("separator oracle returned out-of-range local index")
        v1_local, v2_local = split_components(sub, local_sep)
        sep_global = mapping[local_sep]
        node = SepTreeNode(
            idx=idx,
            level=level,
            parent=parent,
            vertices=verts,
            separator=sep_global,
            boundary=boundary,
        )
        nodes.append(node)
        sides_local = [v1_local, v2_local]
        if full_separator_inclusion:
            attach = [local_sep, local_sep]
        else:
            attach = [_adjacent_separator(sub, local_sep, s) for s in sides_local]
            # Safety net: a separator vertex must land in at least one child,
            # or its distances would be lost to the parent's Algorithm 4.1.
            seen = np.union1d(attach[0], attach[1])
            orphans = np.setdiff1d(local_sep, seen, assume_unique=False)
            if orphans.size:
                attach = [np.union1d(attach[0], orphans), np.union1d(attach[1], orphans)]
        new_bound_pool = np.union1d(sep_global, boundary)
        for side_local, att in zip(sides_local, attach):
            child_verts = np.union1d(mapping[side_local], mapping[att])
            if child_verts.shape[0] >= verts.shape[0]:
                raise DecompositionError(
                    f"node {idx}: child of size {child_verts.shape[0]} does not shrink "
                    f"parent of size {verts.shape[0]} (bad separator oracle)"
                )
            if child_verts.shape[0] > alpha * verts.shape[0] + sep_global.shape[0]:
                raise DecompositionError(
                    f"node {idx}: unbalanced split ({child_verts.shape[0]} of {verts.shape[0]})"
                )
            child_boundary = np.intersect1d(new_bound_pool, child_verts, assume_unique=False)
            stack.append((idx, level + 1, child_verts, child_boundary))
    return SeparatorTree(nodes, g.n)


def _adjacent_separator(
    sub: WeightedDigraph, local_sep: np.ndarray, side: np.ndarray
) -> np.ndarray:
    """``S ∩ N(side)`` in local indices (paper's literal inclusion rule)."""
    in_side = np.zeros(sub.n, dtype=bool)
    in_side[side] = True
    in_sep = np.zeros(sub.n, dtype=bool)
    in_sep[local_sep] = True
    touched = np.zeros(sub.n, dtype=bool)
    hits = in_sep[sub.src] & in_side[sub.dst]
    touched[sub.src[hits]] = True
    hits = in_sep[sub.dst] & in_side[sub.src]
    touched[sub.dst[hits]] = True
    return np.nonzero(touched)[0]
