"""Right shortcuts — the combinatorial core of Theorem 3.1's proof.

The proof assigns to each position ``j`` of a path (with level labels from
the separator tree) a *right shortcut*: a later position ``k`` such that the
subpath ``p_{jk}`` is guaranteed a shortcut edge in E⁺ by Proposition 3.2.
Following right shortcuts from the first labeled vertex reaches the last one
in at most ``4·d_G + 1`` hops, and the level sequence along the chain is
bitonic (nonincreasing then nondecreasing, with ≤2 consecutive equals).

This module reproduces that machinery verbatim — it regenerates the paper's
Figure 2 and powers property-based tests of the diameter bound: for *any*
level sequence the chain must exist, be bitonic, and respect the length
bound.  Undefined levels are passed as negative numbers and treated as +∞,
exactly as the proof prescribes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["right_shortcut", "shortcut_chain", "is_bitonic_with_pairs"]


def _lv(levels: np.ndarray) -> np.ndarray:
    """Levels with the undefined sentinel (<0) mapped to +inf."""
    out = np.asarray(levels, dtype=np.float64).copy()
    out[out < 0] = np.inf
    return out


def right_shortcut(levels: np.ndarray, j: int) -> int | None:
    """The right shortcut of position ``j`` (None at the last labeled
    position).  ``levels[j]`` must be defined (non-negative)."""
    lv = _lv(levels)
    r = lv.shape[0]
    if not np.isfinite(lv[j]):
        raise ValueError("right shortcuts are defined only for labeled vertices")
    # Rule (i): furthest k > j with lv[k] == lv[j] and no dip below lv[j]
    # in between (Prop 3.2 i: the whole window stays at level >= lv[j]).
    k_i = None
    for i in range(j + 1, r):
        if lv[i] < lv[j]:
            break
        if lv[i] == lv[j]:
            k_i = i
    if k_i is not None:
        return k_i
    # Rule (ii): first k > j with a *lower* level (a drop; Prop 3.2 ii).
    for i in range(j + 1, r):
        if lv[i] < lv[j]:
            return i
    # Rule (iii): all later levels are higher; furthest k such that every
    # intermediate level exceeds lv[k] (a rise; Prop 3.2 iii).
    k_iii = None
    for i in range(j + 1, r):
        window = lv[j + 1 : i]
        if np.isfinite(lv[i]) and (window > lv[i]).all():
            k_iii = i
    return k_iii


def shortcut_chain(levels: np.ndarray) -> list[int]:
    """Indices visited when following right shortcuts from the first labeled
    position to the last one (both included).  Empty if no labeled vertex.

    The proof of Theorem 3.1 shows ``len(chain) - 1 ≤ 4·d_G + 1`` where
    ``d_G ≥ max(levels)``.
    """
    lv = _lv(levels)
    labeled = np.nonzero(np.isfinite(lv))[0]
    if labeled.size == 0:
        return []
    i1, i2 = int(labeled[0]), int(labeled[-1])
    chain = [i1]
    guard = 0
    while chain[-1] != i2:
        nxt = right_shortcut(levels, chain[-1])
        if nxt is None or nxt <= chain[-1]:
            raise AssertionError("right-shortcut chain failed to progress")
        chain.append(int(nxt))
        guard += 1
        if guard > lv.shape[0]:
            raise AssertionError("right-shortcut chain cycled")
    return chain


def is_bitonic_with_pairs(chain_levels: list[float]) -> bool:
    """Check the proof's structural claim: the level sequence along the
    chain is nonincreasing then nondecreasing, and any run of equal levels
    has length at most 2."""
    seq = list(chain_levels)
    # Runs of equals at most 2.
    run = 1
    for a, b in zip(seq, seq[1:]):
        run = run + 1 if a == b else 1
        if run > 2:
            return False
    # Bitonic: once it increases, it may never decrease again.
    increased = False
    for a, b in zip(seq, seq[1:]):
        if b > a:
            increased = True
        elif b < a and increased:
            return False
    return True
