"""Remark 4.4 — path doubling with a shared edge table.

Algorithm 4.3 "as stated performs some redundant work": two edges
``(u₁,u₂)``, ``(u₂,u₃)`` are paired once per node whose ``V_H`` contains all
three vertices, each time against that node's private weights.  Remark 4.4
observes it suffices to keep *one* copy of every edge in ``⋃_t E_H(t)`` and
pair each qualifying triple once, against the minimum weight over nodes —
the pairing table depends only on the ``V_H(t)`` sets and is built once.

Our realization: a single global weight vector over the deduplicated edge
set; per node, a precomputed index matrix mapping its ``V_H(t)²`` block into
the global vector.  A round gathers each block, min-plus squares it, and
scatter-mins the result back — child→parent merging disappears entirely
because shared pairs share storage.

The converged weights satisfy ``dist_G(u,v) ≤ w(u,v) ≤ min_t dist_{G(t)}(u,v)``
(pairing across nodes can only combine true G-walks), so the assembled E⁺ is
still sound (never below a true distance) and complete (no worse than any
node's certificate) — Theorem 3.1 holds verbatim, with possibly *tighter*
shortcut weights than the per-node algorithms.  Tests verify exact query
results and the diameter bound; the ablation bench reports the redundancy
eliminated (Σ_t h_t³ vs distinct-triple work).
"""

from __future__ import annotations

import numpy as np

from ..kernels.minplus import semiring_matmul
from ..pram.machine import NULL_LEDGER, Ledger, log2ceil
from .augment import Augmentation, NegativeCycleDetected, NodeDistances, assemble_augmentation
from .digraph import WeightedDigraph
from .leaves_up import _leaf_worker
from .semiring import MIN_PLUS, Semiring
from .septree import SeparatorTree

__all__ = ["augment_doubling_shared", "SharedEdgeTable"]


class SharedEdgeTable:
    """Deduplicated ``⋃_t V_H(t)²`` edge set with per-node block indexes."""

    def __init__(self, graph: WeightedDigraph, tree: SeparatorTree, semiring: Semiring):
        self.semiring = semiring
        vhs: dict[int, np.ndarray] = {}
        keys_parts = []
        n = graph.n
        for t in tree.nodes:
            if t.is_leaf:
                vh = t.boundary
            else:
                vh = np.union1d(t.separator, t.boundary)
            vhs[t.idx] = vh
            if vh.size:
                # All ordered pairs (u, v) over vh, as u*n + v keys.
                keys_parts.append((vh[:, None] * n + vh[None, :]).ravel())
        keys = (
            np.unique(np.concatenate(keys_parts))
            if keys_parts
            else np.empty(0, dtype=np.int64)
        )
        self.keys = keys
        self.src = keys // n
        self.dst = keys % n
        self.weights = np.full(keys.shape[0], semiring.zero, dtype=semiring.dtype)
        # Diagonal pairs get 1̄ (empty path).
        diag = self.src == self.dst
        self.weights[diag] = semiring.one
        # Original one-hop edges ⊕ in.
        if graph.m and keys.size:
            ekeys = graph.src * n + graph.dst
            pos = np.searchsorted(keys, ekeys)
            hit = (pos < keys.shape[0]) & (keys[np.minimum(pos, keys.shape[0] - 1)] == ekeys)
            semiring.scatter_min(
                self.weights, pos[hit], graph.weight[hit].astype(semiring.dtype)
            )
        # Per-node block index matrices (h×h positions into self.weights).
        self.blocks: dict[int, np.ndarray] = {}
        for idx, vh in vhs.items():
            if vh.size == 0:
                continue
            bkeys = (vh[:, None] * n + vh[None, :]).ravel()
            self.blocks[idx] = np.searchsorted(keys, bkeys).reshape(vh.size, vh.size)
        self.vhs = vhs

    # -------------------------------------------------------------- #

    def absorb_matrix(self, node_idx: int, vertices: np.ndarray, matrix: np.ndarray) -> None:
        """⊕ a node's dense matrix (e.g. a leaf APSP restricted to its
        block vertices) into the shared weights."""
        vh = self.vhs[node_idx]
        if vh.size == 0:
            return
        pos = np.searchsorted(vertices, vh)
        block = matrix[np.ix_(pos, pos)]
        idx = self.blocks[node_idx]
        self.semiring.scatter_min(self.weights, idx.ravel(), block.ravel())

    def square_round(self, *, ledger: Ledger = NULL_LEDGER) -> bool:
        """One Remark-4.4 round: every node's block is gathered, min-plus
        squared against the *shared* weights, and scattered back.  Returns
        whether anything improved."""
        sr = self.semiring
        changed = False
        work = 0.0
        max_depth = 0.0
        for idx_matrix in self.blocks.values():
            h = idx_matrix.shape[0]
            if h == 0:
                continue
            block = self.weights[idx_matrix]
            prod = semiring_matmul(block, block, sr)
            better = sr.improves(prod, block)
            if better.any():
                changed = True
                sr.scatter_min(self.weights, idx_matrix.ravel(), prod.ravel())
            work += float(h) ** 3
            max_depth = max(max_depth, log2ceil(h))
        ledger.charge(work=max(1.0, work), depth=max(1.0, max_depth), label="shared-square")
        return changed

    def node_matrix(self, node_idx: int) -> tuple[np.ndarray, np.ndarray]:
        """(vertices, converged weight block) of one node."""
        vh = self.vhs[node_idx]
        if vh.size == 0:
            return vh, self.semiring.empty_matrix(0, 0)
        return vh, self.weights[self.blocks[node_idx]]

    def distinct_pair_count(self) -> int:
        """Number of deduplicated pairs in ⋃_t V_H(t)²."""
        return int(self.keys.shape[0])

    def redundant_pair_count(self) -> int:
        """Σ_t |V_H(t)|² — what per-node storage/pairing would touch."""
        return int(sum(v.size ** 2 for v in self.vhs.values()))


def augment_doubling_shared(
    graph: WeightedDigraph,
    tree: SeparatorTree,
    semiring: Semiring = MIN_PLUS,
    *,
    executor="serial",  # accepted for interface parity; rounds are global
    ledger: Ledger = NULL_LEDGER,
    keep_node_distances: bool = True,
    raise_on_negative_cycle: bool = True,
    early_stop: bool = True,
) -> Augmentation:
    """Compute the augmentation with the Remark-4.4 shared-table doubling.

    Shortcut weights may be strictly tighter than the per-node algorithms'
    (they converge to ``min_t dist_{G(t)}``, bounded below by ``dist_G``);
    all Theorem 3.1 guarantees hold unchanged.
    """
    table = SharedEdgeTable(graph, tree, semiring)
    # Leaves: exact APSP absorbed once (their boundary blocks seed the table).
    leaf_results: dict[int, NodeDistances] = {}
    leaf_diameters: dict[int, int] = {}
    for t in tree.leaves():
        sub, mapping = graph.induced_subgraph(t.vertices)
        out = _leaf_worker(
            {
                "idx": t.idx,
                "semiring": semiring.name,
                "vertices": mapping,
                "n_local": sub.n,
                "sub_src": sub.src,
                "sub_dst": sub.dst,
                "sub_weight": sub.weight,
            }
        )
        if out["neg_vertex"] >= 0 and semiring.name in ("min-plus", "hops"):
            raise NegativeCycleDetected(t.idx, out["neg_vertex"])
        leaf_results[t.idx] = NodeDistances(
            node_idx=t.idx, vertices=out["vertices"], matrix=out["matrix"]
        )
        leaf_diameters[t.idx] = out["leaf_diameter"]
        table.absorb_matrix(t.idx, out["vertices"], out["matrix"])
        b = Ledger()
        b.charge(out["work"], out["depth"], label="node")
        ledger.merge_parallel([b], label="shared-init-leaf")
    rounds = 2 * max(1, int(np.ceil(np.log2(max(2, graph.n))))) + 2 * tree.height
    for _ in range(rounds):
        if not table.square_round(ledger=ledger) and early_stop:
            break
    results: dict[int, NodeDistances] = dict(leaf_results)
    for t in tree.nodes:
        if t.is_leaf:
            continue
        vh, matrix = table.node_matrix(t.idx)
        diag = np.einsum("ii->i", matrix) if vh.size else np.empty(0)
        if vh.size:
            bad = semiring.improves(
                diag, np.full(diag.shape[0], semiring.one, dtype=semiring.dtype)
            )
            if bad.any() and raise_on_negative_cycle and semiring.name in ("min-plus", "hops"):
                raise NegativeCycleDetected(t.idx, int(vh[int(np.argmax(bad))]))
        results[t.idx] = NodeDistances(node_idx=t.idx, vertices=vh, matrix=matrix)
    return assemble_augmentation(
        graph,
        tree,
        results,
        leaf_diameters,
        semiring,
        method="doubling_shared",
        keep_node_distances=keep_node_distances,
        ledger=ledger,
    )
