"""Remark 4.4 — path doubling with a shared edge table.

Algorithm 4.3 "as stated performs some redundant work": two edges
``(u₁,u₂)``, ``(u₂,u₃)`` are paired once per node whose ``V_H`` contains all
three vertices, each time against that node's private weights.  Remark 4.4
observes it suffices to keep *one* copy of every edge in ``⋃_t E_H(t)`` and
pair each qualifying triple once, against the minimum weight over nodes —
the pairing table depends only on the ``V_H(t)`` sets and is built once.

Our realization: a single global weight vector over the deduplicated edge
set; per node, a precomputed index matrix mapping its ``V_H(t)²`` block into
the global vector.  A round gathers each block, min-plus squares it, and
scatter-mins the result back — child→parent merging disappears entirely
because shared pairs share storage.

The converged weights satisfy ``dist_G(u,v) ≤ w(u,v) ≤ min_t dist_{G(t)}(u,v)``
(pairing across nodes can only combine true G-walks), so the assembled E⁺ is
still sound (never below a true distance) and complete (no worse than any
node's certificate) — Theorem 3.1 holds verbatim, with possibly *tighter*
shortcut weights than the per-node algorithms.  Tests verify exact query
results and the diameter bound; the ablation bench reports the redundancy
eliminated (Σ_t h_t³ vs distinct-triple work).
"""

from __future__ import annotations

import numpy as np

from typing import Any

from ..kernels.minplus import semiring_matmul
from ..pram.executor import SerialExecutor, get_executor
from ..pram.machine import NULL_LEDGER, Ledger, log2ceil
from .augment import Augmentation, NegativeCycleDetected, NodeDistances, assemble_augmentation
from .digraph import WeightedDigraph
from .leaves_up import _leaf_payload, _leaf_worker
from .semiring import MIN_PLUS, SEMIRINGS, Semiring
from .septree import SeparatorTree

__all__ = ["augment_doubling_shared", "SharedEdgeTable"]


def _shared_square_worker(payload: dict[str, Any]) -> dict[str, Any]:
    """One node's gather → square step of a Remark-4.4 round, against the
    *shared* weight vector (module level for pickling).

    Shared-memory protocol: ``weights`` and ``block`` (the node's index
    matrix into the weight vector) are descriptor-resolved views; the
    min-plus square of the gathered block is written to the node's private
    ``scratch`` block and the orchestrator ⊕-scatters every improved
    scratch back into the weights between rounds, so concurrent workers
    only ever read the shared vector."""
    sr = SEMIRINGS[payload["semiring"]]
    ledger = Ledger()
    weights = payload["weights"]
    idx_matrix = payload["block"]
    block = weights[idx_matrix]
    prod = semiring_matmul(block, block, sr, ledger=ledger, kernel=payload.get("kernel"))
    changed = bool(sr.improves(prod, block).any())
    if changed:
        payload["scratch"][...] = prod
    return {
        "idx": payload["idx"],
        "changed": changed,
        "work": ledger.work,
        "depth": ledger.depth,
    }


class SharedEdgeTable:
    """Deduplicated ``⋃_t V_H(t)²`` edge set with per-node block indexes."""

    def __init__(self, graph: WeightedDigraph, tree: SeparatorTree, semiring: Semiring):
        self.semiring = semiring
        vhs: dict[int, np.ndarray] = {}
        keys_parts = []
        n = graph.n
        for t in tree.nodes:
            if t.is_leaf:
                vh = t.boundary
            else:
                vh = np.union1d(t.separator, t.boundary)
            vhs[t.idx] = vh
            if vh.size:
                # All ordered pairs (u, v) over vh, as u*n + v keys.
                keys_parts.append((vh[:, None] * n + vh[None, :]).ravel())
        keys = (
            np.unique(np.concatenate(keys_parts))
            if keys_parts
            else np.empty(0, dtype=np.int64)
        )
        self.keys = keys
        self.src = keys // n
        self.dst = keys % n
        self.weights = np.full(keys.shape[0], semiring.zero, dtype=semiring.dtype)
        # Diagonal pairs get 1̄ (empty path).
        diag = self.src == self.dst
        self.weights[diag] = semiring.one
        # Original one-hop edges ⊕ in.
        if graph.m and keys.size:
            ekeys = graph.src * n + graph.dst
            pos = np.searchsorted(keys, ekeys)
            hit = (pos < keys.shape[0]) & (keys[np.minimum(pos, keys.shape[0] - 1)] == ekeys)
            semiring.scatter_min(
                self.weights, pos[hit], graph.weight[hit].astype(semiring.dtype)
            )
        # Per-node block index matrices (h×h positions into self.weights).
        self.blocks: dict[int, np.ndarray] = {}
        for idx, vh in vhs.items():
            if vh.size == 0:
                continue
            bkeys = (vh[:, None] * n + vh[None, :]).ravel()
            self.blocks[idx] = np.searchsorted(keys, bkeys).reshape(vh.size, vh.size)
        self.vhs = vhs

    # -------------------------------------------------------------- #

    def absorb_matrix(self, node_idx: int, vertices: np.ndarray, matrix: np.ndarray) -> None:
        """⊕ a node's dense matrix (e.g. a leaf APSP restricted to its
        block vertices) into the shared weights."""
        vh = self.vhs[node_idx]
        if vh.size == 0:
            return
        pos = np.searchsorted(vertices, vh)
        block = matrix[np.ix_(pos, pos)]
        idx = self.blocks[node_idx]
        self.semiring.scatter_min(self.weights, idx.ravel(), block.ravel())

    def square_round(self, *, ledger: Ledger = NULL_LEDGER, kernel: str | None = None) -> bool:
        """One Remark-4.4 round: every node's block is gathered, min-plus
        squared against the *shared* weights, and scattered back.  Returns
        whether anything improved."""
        sr = self.semiring
        changed = False
        work = 0.0
        max_depth = 0.0
        for idx_matrix in self.blocks.values():
            h = idx_matrix.shape[0]
            if h == 0:
                continue
            block = self.weights[idx_matrix]
            prod = semiring_matmul(block, block, sr, kernel=kernel)
            better = sr.improves(prod, block)
            if better.any():
                changed = True
                sr.scatter_min(self.weights, idx_matrix.ravel(), prod.ravel())
            work += float(h) ** 3
            max_depth = max(max_depth, log2ceil(h))
        ledger.charge(work=max(1.0, work), depth=max(1.0, max_depth), label="shared-square")
        return changed

    def node_matrix(self, node_idx: int) -> tuple[np.ndarray, np.ndarray]:
        """(vertices, converged weight block) of one node."""
        vh = self.vhs[node_idx]
        if vh.size == 0:
            return vh, self.semiring.empty_matrix(0, 0)
        return vh, self.weights[self.blocks[node_idx]]

    def distinct_pair_count(self) -> int:
        """Number of deduplicated pairs in ⋃_t V_H(t)²."""
        return int(self.keys.shape[0])

    def redundant_pair_count(self) -> int:
        """Σ_t |V_H(t)|² — what per-node storage/pairing would touch."""
        return int(sum(v.size ** 2 for v in self.vhs.values()))


def augment_doubling_shared(
    graph: WeightedDigraph,
    tree: SeparatorTree,
    semiring: Semiring = MIN_PLUS,
    *,
    executor="serial",
    ledger: Ledger = NULL_LEDGER,
    keep_node_distances: bool = True,
    raise_on_negative_cycle: bool = True,
    early_stop: bool = True,
    kernel: str | None = None,
) -> Augmentation:
    """Compute the augmentation with the Remark-4.4 shared-table doubling.

    ``kernel`` selects the min-plus matmul implementation for the per-node
    squares (see :mod:`repro.kernels.dispatch`).

    Shortcut weights may be strictly tighter than the per-node algorithms'
    (they converge to ``min_t dist_{G(t)}``, bounded below by ``dist_G``);
    all Theorem 3.1 guarantees hold unchanged.

    On the ``shm`` backend the shared weight vector lives in a
    shared-memory block read concurrently by all workers: a round fans the
    per-node gather→square steps out over the pool (descriptors only) and
    the orchestrator ⊕-scatters the improved products back — the iteration
    reaches the same unique fixpoint as the sequential rounds, within the
    same Proposition 4.5 round bound.  Other executors keep the sequential
    rounds (a round is read-modify-write on one vector, so thread/process
    pools without shared pages have nothing to win).
    """
    exe = get_executor(executor)
    owns_executor = isinstance(executor, str) and not isinstance(exe, SerialExecutor)
    use_shm = getattr(exe, "uses_shared_memory", False)
    arena = None
    if use_shm:
        from ..pram.shm import ShmArena

        arena = ShmArena()
    try:
        table = SharedEdgeTable(graph, tree, semiring)
        # Leaves: exact APSP absorbed once (their boundary blocks seed the
        # table); on shm the APSPs run on the pool and land in arena blocks.
        leaf_results: dict[int, NodeDistances] = {}
        leaf_diameters: dict[int, int] = {}
        leaf_payloads, leaf_views, leaf_verts = [], {}, {}
        for t in tree.leaves():
            payload, mapping, out_view = _leaf_payload(graph, t, semiring, arena)
            leaf_payloads.append(payload)
            if arena is not None:
                leaf_views[t.idx] = out_view
                leaf_verts[t.idx] = mapping
        outs = exe.map(_leaf_worker, leaf_payloads) if use_shm else [
            _leaf_worker(p) for p in leaf_payloads
        ]
        branches = []
        for out in outs:
            if out["neg_vertex"] >= 0 and semiring.name in ("min-plus", "hops"):
                raise NegativeCycleDetected(out["idx"], out["neg_vertex"])
            idx = out["idx"]
            vertices = leaf_verts[idx] if use_shm else out["vertices"]
            matrix = leaf_views[idx] if use_shm else out["matrix"]
            leaf_results[idx] = NodeDistances(node_idx=idx, vertices=vertices, matrix=matrix)
            leaf_diameters[idx] = out["leaf_diameter"]
            table.absorb_matrix(idx, vertices, matrix)
            b = Ledger()
            b.charge(out["work"], out["depth"], label="node")
            branches.append(b)
        ledger.merge_parallel(branches, label="shared-init-leaf")
        rounds = 2 * max(1, int(np.ceil(np.log2(max(2, graph.n))))) + 2 * tree.height
        if use_shm and table.blocks:
            _parallel_rounds(table, exe, arena, rounds, early_stop, ledger, kernel=kernel)
        else:
            for _ in range(rounds):
                if not table.square_round(ledger=ledger, kernel=kernel) and early_stop:
                    break
        results: dict[int, NodeDistances] = dict(leaf_results)
        for t in tree.nodes:
            if t.is_leaf:
                continue
            vh, matrix = table.node_matrix(t.idx)
            diag = np.einsum("ii->i", matrix) if vh.size else np.empty(0)
            if vh.size:
                bad = semiring.improves(
                    diag, np.full(diag.shape[0], semiring.one, dtype=semiring.dtype)
                )
                if bad.any() and raise_on_negative_cycle and semiring.name in ("min-plus", "hops"):
                    raise NegativeCycleDetected(t.idx, int(vh[int(np.argmax(bad))]))
            results[t.idx] = NodeDistances(node_idx=t.idx, vertices=vh, matrix=matrix)
        if use_shm and keep_node_distances:
            # Leaf matrices are arena views; the arena dies with this call.
            for idx in leaf_results:
                results[idx].matrix = np.array(results[idx].matrix, copy=True)
        return assemble_augmentation(
            graph,
            tree,
            results,
            leaf_diameters,
            semiring,
            method="doubling_shared",
            keep_node_distances=keep_node_distances,
            ledger=ledger,
        )
    finally:
        if arena is not None:
            arena.close()
        if owns_executor:
            exe.close()


def _parallel_rounds(
    table: SharedEdgeTable,
    exe,
    arena,
    rounds: int,
    early_stop: bool,
    ledger: Ledger,
    *,
    kernel: str | None = None,
) -> None:
    """Run the Remark-4.4 rounds on the shm pool: the weight vector and the
    per-node index/scratch blocks are published once; each round ships only
    (idx, descriptor) payloads, workers square against the shared weights,
    and improved products are ⊕-scattered back between rounds."""
    sr = table.semiring
    weights_ref, weights_view = arena.alloc(table.weights.shape, table.weights.dtype)
    weights_view[...] = table.weights
    table.weights = weights_view
    block_refs = {idx: arena.publish(b) for idx, b in table.blocks.items()}
    scratch: dict[int, tuple] = {
        idx: arena.alloc(b.shape, sr.dtype) for idx, b in table.blocks.items()
    }
    payloads = [
        {
            "idx": idx,
            "semiring": sr.name,
            "kernel": kernel,
            "weights": weights_ref,
            "block": block_refs[idx],
            "scratch": scratch[idx][0],
        }
        for idx in table.blocks
    ]
    for _ in range(rounds):
        outs = exe.map(_shared_square_worker, payloads)
        changed = False
        branches = []
        for out in outs:
            if out["changed"]:
                changed = True
                idx_matrix = table.blocks[out["idx"]]
                sr.scatter_min(
                    table.weights, idx_matrix.ravel(), scratch[out["idx"]][1].ravel()
                )
            b = Ledger()
            b.charge(max(1.0, out["work"]), max(1.0, out["depth"]), label="node")
            branches.append(b)
        ledger.merge_parallel(branches, label="shared-square")
        if early_stop and not changed:
            break
    # Converged weights must outlive the arena.
    table.weights = np.array(table.weights, copy=True)
