"""Algorithm 4.3 — simultaneous path doubling on all tree nodes (paper §4.2).

Instead of finishing each tree level before starting its parent (Algorithm
4.1), every node ``t`` maintains a dense matrix ``W_t`` over
``V_H(t) = S(t) ∪ B(t)`` and all nodes advance together:

* initialization: leaves get exact ``dist_{G(t)}`` (an O(1) APSP); internal
  nodes get the one-hop weights of original edges inside ``V_H(t)²``;
* each round applies one min-plus squaring ``W_t ← W_t ⊕ W_t⊗W_t`` to every
  node in parallel, then ⊕-merges each child's matrix into its parent on the
  shared vertex pairs;
* after ``2⌈log₂ n⌉ + 2·d_G`` rounds every entry equals ``dist_{G(t)}``
  (Proposition 4.5 — the pairing-phase induction).

This trades a factor-O(log n) of work for a factor-O(d_G) less parallel
time than Algorithm 4.1 (Table 1's two preprocessing rows).  We stop early
when a full round changes nothing, which the monotone fixpoint argument
makes safe and which is the common case well before the worst-case round
count.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..kernels.minplus import semiring_matmul
from ..pram.machine import NULL_LEDGER, Ledger
from ..pram.executor import SerialExecutor, get_executor
from .augment import (
    Augmentation,
    NegativeCycleDetected,
    NodeDistances,
    assemble_augmentation,
)
from .digraph import WeightedDigraph
from .leaves_up import _check_diagonal, _leaf_payload, _leaf_worker
from .semiring import MIN_PLUS, SEMIRINGS, Semiring
from .septree import SeparatorTree

__all__ = ["augment_doubling"]


def _square_worker(payload: dict[str, Any]) -> dict[str, Any]:
    """One doubling step on one node's matrix (module level for pickling).

    With ``inplace`` set the matrix is a shared-memory view owned solely by
    this node: the squared result is written back through it and the reply
    carries only scalars (the shm backend's zero-copy round).
    """
    semiring = SEMIRINGS[payload["semiring"]]
    ledger = Ledger()
    w = payload["matrix"]
    prod = semiring_matmul(w, w, semiring, ledger=ledger, kernel=payload.get("kernel"))
    new = semiring.add(w, prod)
    changed = bool(semiring.improves(new, w).any())
    out = {
        "idx": payload["idx"],
        "changed": changed,
        "work": ledger.work,
        "depth": ledger.depth,
    }
    if payload.get("inplace"):
        w[...] = new
    else:
        out["matrix"] = new
    return out


def augment_doubling(
    graph: WeightedDigraph,
    tree: SeparatorTree,
    semiring: Semiring = MIN_PLUS,
    *,
    executor="serial",
    ledger: Ledger = NULL_LEDGER,
    keep_node_distances: bool = True,
    raise_on_negative_cycle: bool = True,
    early_stop: bool = True,
    kernel: str | None = None,
) -> Augmentation:
    """Compute the augmentation with Algorithm 4.3.

    ``kernel`` selects the min-plus matmul implementation for the squaring
    rounds (see :mod:`repro.kernels.dispatch`); the ``pruned`` kernel skips
    the all-+inf panels that dominate early rounds.

    On the ``shm`` backend every node matrix is a shared-memory block:
    rounds send (idx, descriptor) pairs, workers square their block in
    place, and the orchestrator's child→parent merges mutate the same
    pages — matrices cross the process boundary zero times.
    """
    exe = get_executor(executor)
    owns_executor = isinstance(executor, str) and not isinstance(exe, SerialExecutor)
    use_shm = getattr(exe, "uses_shared_memory", False)
    arena = None
    if use_shm:
        from ..pram.shm import ShmArena

        arena = ShmArena()
    matrices: dict[int, np.ndarray] = {}
    mat_refs: dict[int, Any] = {}
    vh_of: dict[int, np.ndarray] = {}
    leaf_results: dict[int, NodeDistances] = {}
    leaf_diameters: dict[int, int] = {}
    try:
        _initialize(
            graph, tree, semiring, exe, ledger,
            matrices, vh_of, leaf_results, leaf_diameters,
            arena=arena, mat_refs=mat_refs,
        )
        rounds = 2 * max(1, int(np.ceil(np.log2(max(2, graph.n))))) + 2 * tree.height
        internal = [t for t in tree.nodes if not t.is_leaf]
        for _ in range(rounds):
            if use_shm:
                payloads = [
                    {
                        "idx": t.idx,
                        "semiring": semiring.name,
                        "kernel": kernel,
                        "matrix": mat_refs[t.idx],
                        "inplace": True,
                    }
                    for t in internal
                ]
            else:
                payloads = [
                    {
                        "idx": t.idx,
                        "semiring": semiring.name,
                        "kernel": kernel,
                        "matrix": matrices[t.idx],
                    }
                    for t in internal
                ]
            outs = exe.map(_square_worker, payloads)
            changed = False
            branches = []
            for out in outs:
                if "matrix" in out:
                    matrices[out["idx"]] = out["matrix"]
                changed |= out["changed"]
                b = Ledger()
                b.charge(out["work"], out["depth"], label="node")
                branches.append(b)
            ledger.merge_parallel(branches, label="doubling-square")
            # Child → parent merge on the shared vertex pairs (step ii(2)).
            merge_changed = _merge_children(tree, semiring, matrices, vh_of, leaf_results, ledger)
            changed |= merge_changed
            if early_stop and not changed:
                break
        results: dict[int, NodeDistances] = dict(leaf_results)
        for t in tree.nodes:
            if t.is_leaf:
                continue
            m = matrices[t.idx]
            bad = _check_diagonal(m, vh_of[t.idx], semiring)
            if bad >= 0 and raise_on_negative_cycle and semiring.name in ("min-plus", "hops"):
                raise NegativeCycleDetected(t.idx, bad)
            results[t.idx] = NodeDistances(node_idx=t.idx, vertices=vh_of[t.idx], matrix=m)
        if use_shm and keep_node_distances:
            # The arena dies with this call; surviving matrices need to own
            # their memory.
            for nd in results.values():
                nd.matrix = np.array(nd.matrix, copy=True)
        return assemble_augmentation(
            graph,
            tree,
            results,
            leaf_diameters,
            semiring,
            method="doubling",
            keep_node_distances=keep_node_distances,
            ledger=ledger,
        )
    finally:
        if arena is not None:
            arena.close()
        if owns_executor:
            exe.close()


def _initialize(
    graph: WeightedDigraph,
    tree: SeparatorTree,
    semiring: Semiring,
    exe,
    ledger: Ledger,
    matrices: dict[int, np.ndarray],
    vh_of: dict[int, np.ndarray],
    leaf_results: dict[int, NodeDistances],
    leaf_diameters: dict[int, int],
    *,
    arena=None,
    mat_refs: dict[int, Any] | None = None,
) -> None:
    """Step (i): leaf APSPs (in parallel) and internal one-hop matrices.

    With an arena, internal matrices are allocated as shared blocks (filled
    in place here) and leaf payloads/results travel as descriptors."""
    leaf_payloads = []
    leaf_views: dict[int, np.ndarray] = {}
    leaf_verts: dict[int, np.ndarray] = {}
    for t in tree.nodes:
        if t.is_leaf:
            payload, mapping, out_view = _leaf_payload(graph, t, semiring, arena)
            leaf_payloads.append(payload)
            if arena is not None:
                leaf_views[t.idx] = out_view
                leaf_verts[t.idx] = mapping
        else:
            vh = np.union1d(t.separator, t.boundary)
            vh_of[t.idx] = vh
            h = vh.shape[0]
            if arena is None:
                w = semiring.empty_matrix(h, h)
            else:
                ref, w = arena.alloc((h, h), semiring.dtype)
                mat_refs[t.idx] = ref
                w[...] = semiring.zero
            np.fill_diagonal(w, semiring.one)
            # One-hop weights of original edges with both endpoints in V_H(t).
            member = np.zeros(graph.n, dtype=bool)
            member[vh] = True
            mask = member[graph.src] & member[graph.dst]
            if mask.any():
                local = np.full(graph.n, -1, dtype=np.int64)
                local[vh] = np.arange(h)
                semiring.scatter_min(
                    w,
                    (local[graph.src[mask]], local[graph.dst[mask]]),
                    graph.weight[mask].astype(semiring.dtype),
                )
            matrices[t.idx] = w
    outs = exe.map(_leaf_worker, leaf_payloads)
    branches = []
    for out in outs:
        if out["neg_vertex"] >= 0 and semiring.name in ("min-plus", "hops"):
            raise NegativeCycleDetected(out["idx"], out["neg_vertex"])
        idx = out["idx"]
        leaf_results[idx] = NodeDistances(
            node_idx=idx,
            vertices=leaf_verts[idx] if arena is not None else out["vertices"],
            matrix=leaf_views[idx] if arena is not None else out["matrix"],
        )
        leaf_diameters[idx] = out["leaf_diameter"]
        b = Ledger()
        b.charge(out["work"], out["depth"], label="node")
        branches.append(b)
    ledger.merge_parallel(branches, label="doubling-init-leaves")


def _merge_children(
    tree: SeparatorTree,
    semiring: Semiring,
    matrices: dict[int, np.ndarray],
    vh_of: dict[int, np.ndarray],
    leaf_results: dict[int, NodeDistances],
    ledger: Ledger,
) -> bool:
    changed = False
    work = 0.0
    for t in tree.nodes:
        if t.is_leaf:
            continue
        vh = vh_of[t.idx]
        w = matrices[t.idx]
        for c in t.children:
            child = tree.nodes[c]
            if child.is_leaf:
                nd = leaf_results[c]
                child_vertices, child_matrix = nd.vertices, nd.matrix
            else:
                child_vertices, child_matrix = vh_of[c], matrices[c]
            common, pos_vh, pos_child = np.intersect1d(
                vh, child_vertices, assume_unique=True, return_indices=True
            )
            if common.size == 0:
                continue
            block = child_matrix[np.ix_(pos_child, pos_child)]
            tgt = w[np.ix_(pos_vh, pos_vh)]
            merged = semiring.add(tgt, block)
            if not changed and semiring.improves(merged, tgt).any():
                changed = True
            w[np.ix_(pos_vh, pos_vh)] = merged
            work += float(common.size) ** 2
    ledger.charge(work=max(1.0, work), depth=1.0, label="doubling-merge")
    return changed
