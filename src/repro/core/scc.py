"""Strongly connected components and condensation-based reachability.

The paper situates its reachability result against Kao–Klein's planar
single-source reachability, which rests on Kao–Shannon's strongly-connected
-components machinery.  This module provides that substrate from scratch —
an iterative Tarjan SCC, the condensation DAG, and a bitset closure over the
condensation — used as (a) an independent baseline for benchmark E-reach and
(b) a fast path for reachability on graphs with large cyclic cores (the
closure only pays for the number of components).
"""

from __future__ import annotations

import numpy as np

from .digraph import WeightedDigraph

__all__ = [
    "strongly_connected_components",
    "condensation",
    "condensation_closure",
    "reachability_via_condensation",
]


def strongly_connected_components(g: WeightedDigraph) -> tuple[int, np.ndarray]:
    """Iterative Tarjan: returns ``(count, labels)`` with labels in reverse
    topological order of the condensation (a component's label is larger
    than those of the components it can reach — the classic property of
    Tarjan's completion order)."""
    n = g.n
    adj = g.out_adj
    indptr, indices = adj.indptr, adj.indices
    index = np.full(n, -1, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    label = np.full(n, -1, dtype=np.int64)
    stack: list[int] = []
    counter = 0
    comp = 0
    for root in range(n):
        if index[root] >= 0:
            continue
        # Explicit DFS stack of (vertex, next-edge-offset).
        work = [(root, indptr[root])]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            v, ptr = work[-1]
            if ptr < indptr[v + 1]:
                work[-1] = (v, ptr + 1)
                w = int(indices[ptr])
                if index[w] < 0:
                    index[w] = low[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append((w, indptr[w]))
                elif on_stack[w]:
                    low[v] = min(low[v], index[w])
            else:
                work.pop()
                if work:
                    pv = work[-1][0]
                    low[pv] = min(low[pv], low[v])
                if low[v] == index[v]:
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        label[w] = comp
                        if w == v:
                            break
                    comp += 1
    return comp, label


def condensation(g: WeightedDigraph) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """``(ncomp, labels, dag_src, dag_dst)`` — the component DAG with
    deduplicated edges (no self loops)."""
    ncomp, labels = strongly_connected_components(g)
    cs, cd = labels[g.src], labels[g.dst]
    keep = cs != cd
    if keep.any():
        key = cs[keep] * ncomp + cd[keep]
        uniq = np.unique(key)
        dag_src = (uniq // ncomp).astype(np.int64)
        dag_dst = (uniq % ncomp).astype(np.int64)
    else:
        dag_src = np.empty(0, dtype=np.int64)
        dag_dst = np.empty(0, dtype=np.int64)
    return ncomp, labels, dag_src, dag_dst


def condensation_closure(ncomp: int, dag_src: np.ndarray, dag_dst: np.ndarray) -> np.ndarray:
    """Reflexive-transitive closure of the condensation DAG as an
    ``(ncomp, ncomp)`` boolean matrix, by one OR sweep in topological order
    (Tarjan labels *are* reverse-topological: every edge goes from a higher
    label to a lower one, so ascending label order is topological from
    sinks up)."""
    closure = np.eye(ncomp, dtype=bool)
    if dag_src.size:
        order = np.argsort(dag_src, kind="stable")
        src_s, dst_s = dag_src[order], dag_dst[order]
        indptr = np.zeros(ncomp + 1, dtype=np.int64)
        np.cumsum(np.bincount(src_s, minlength=ncomp), out=indptr[1:])
        for u in range(ncomp):  # ascending labels = sinks first
            lo, hi = indptr[u], indptr[u + 1]
            if hi > lo:
                closure[u] |= closure[dst_s[lo:hi]].any(axis=0)
    return closure


def reachability_via_condensation(g: WeightedDigraph, sources) -> np.ndarray:
    """Per-source reachable sets via SCC condensation — the baseline /
    fast path: O(m) SCC + O(ncomp·m_dag/word) closure instead of paying for
    the cyclic cores.  Row convention matches
    :func:`repro.core.reach.reachable_from`: the source itself is always
    marked (the scheduled engine starts from 1̄ at the source)."""
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    ncomp, labels, dag_src, dag_dst = condensation(g)
    closure = condensation_closure(ncomp, dag_src, dag_dst)
    comp_reach = closure[labels[sources]]  # (s, ncomp)
    out = comp_reach[:, labels]  # expand to vertices
    out[np.arange(sources.shape[0]), sources] = True
    return out
