"""Negative-weight cycle detection and extraction (paper comment (i)).

"Note that if negative weight cycles are present, some of the distances are
not defined.  It is simple, however, to adopt the algorithm to detect
negative weight cycles within the same resource bounds."

Detection happens in two places:

* *inside the augmentation* — every node-level APSP checks its diagonal
  (:class:`repro.core.augment.NegativeCycleDetected` carries the tree node
  and a witness vertex); a negative cycle always shows up on the diagonal of
  the lowest node whose separator (or leaf) the cycle touches, so the check
  costs nothing extra;
* *standalone* — :func:`has_negative_cycle` is the classic n-phase
  Bellman–Ford criterion, used as the independent oracle in tests, and
  :func:`find_negative_cycle` extracts an explicit cycle for diagnostics.
"""

from __future__ import annotations

import numpy as np

from ..kernels.bellman_ford import EdgeRelaxer, initial_distances
from .digraph import WeightedDigraph
from .semiring import MIN_PLUS

__all__ = ["has_negative_cycle", "find_negative_cycle", "cycle_weight"]


def has_negative_cycle(g: WeightedDigraph) -> bool:
    """True iff ``g`` contains a negative-weight cycle (anywhere — every
    vertex is a source, so reachability from a particular vertex does not
    mask the cycle)."""
    dist = initial_distances(g.n, np.arange(g.n), MIN_PLUS)
    relaxer = EdgeRelaxer.from_graph(g, MIN_PLUS)
    for _ in range(g.n - 1):
        if not relaxer.relax(dist):
            return False
    return relaxer.relax(dist)


def find_negative_cycle(g: WeightedDigraph) -> list[int] | None:
    """An explicit negative cycle as a vertex list ``[v₀, …, v_k ≡ v₀]``, or
    ``None``.  Scalar Bellman–Ford with parent pointers — diagnostic use."""
    dist = np.zeros(g.n)  # virtual super-source: every vertex starts at 0
    parent = np.full(g.n, -1, dtype=np.int64)
    src, dst, w = g.src, g.dst, g.weight
    candidate = -1
    for it in range(g.n):
        improved = False
        cand = dist[src] + w
        better = cand < dist[dst] - 1e-12
        if not better.any():
            break
        # Sequential application keeps parent pointers consistent.
        for e in np.nonzero(better)[0].tolist():
            if dist[src[e]] + w[e] < dist[dst[e]] - 1e-12:
                dist[dst[e]] = dist[src[e]] + w[e]
                parent[dst[e]] = src[e]
                improved = True
                if it == g.n - 1:
                    candidate = int(dst[e])
        if not improved:
            break
    if candidate < 0:
        return None
    # Walk parents n times to guarantee landing inside the cycle.
    v = candidate
    for _ in range(g.n):
        v = int(parent[v])
    cycle = [v]
    u = int(parent[v])
    while u != v:
        cycle.append(u)
        u = int(parent[u])
    cycle.append(v)
    cycle.reverse()
    return cycle


def cycle_weight(g: WeightedDigraph, cycle: list[int]) -> float:
    """Total weight of a closed vertex walk, using minimum parallel edges."""
    best: dict[tuple[int, int], float] = {}
    for u, v, w in zip(g.src.tolist(), g.dst.tolist(), g.weight.tolist()):
        key = (u, v)
        if key not in best or w < best[key]:
            best[key] = w
    return sum(best[(a, b)] for a, b in zip(cycle[:-1], cycle[1:]))
