"""The level schedule for Bellman–Ford on G⁺ (paper §3.2).

Theorem 3.1's proof exhibits, for every pair, an optimal path in G⁺ of a
rigid shape: at most ℓ original edges, then a run of shortcut edges whose
endpoint *levels* form a bitonic sequence (nonincreasing, then
nondecreasing, with at most two consecutive equal levels), then at most ℓ
original edges.  It therefore suffices to run ``2ℓ + 4·d_G + 1`` phases that
each scan only the edges that can appear at that position:

* phases ``1..ℓ``: all original edges (the leaf-interior prefix);
* descending half, ``i = 1..2d_G+1`` (phase ``ℓ+i``):
  - odd ``i``: edges with ``level(v₁) = level(v₂) = d_G − (i−1)/2``;
  - even ``i``: edges with ``level(v₁) = d_G − i/2 + 1`` and
    ``level(v₂) < level(v₁)`` (a drop);
* ascending half, ``i = 1..2d_G`` (phase ``ℓ+2d_G+1+i``):
  - odd ``i``: edges with ``level(v₁) = (i−1)/2 < level(v₂)`` (a rise);
  - even ``i``: edges with ``level(v₁) = level(v₂) = i/2``;
* final ℓ phases: all original edges (the suffix).

Each E⁺ edge matches at most two of the middle filters (its endpoint levels
are fixed), so per-source work is O(ℓ·|E| + |E ∪ E⁺|) — invariant I10.
Undefined levels (vertices never in any separator) are encoded as −1 and
never match a middle filter; such vertices are only entered/left through
the ℓ end phases, exactly as in the proof.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.bellman_ford import EdgeRelaxer, run_phases
from ..pram.machine import NULL_LEDGER, Ledger
from .augment import Augmentation
from .semiring import Semiring

__all__ = ["PhaseSchedule", "build_schedule"]


@dataclass
class PhaseSchedule:
    """Precompiled phase relaxers, reusable across any number of sources."""

    relaxers: list[EdgeRelaxer]
    labels: list[str]
    #: total edge scans of one pass — the per-source work of §3.2.
    edge_scans: int
    #: how many middle phases each augmented edge participates in (diagnostic
    #: for invariant I10).
    aug_edge_phase_counts: np.ndarray

    @property
    def num_phases(self) -> int:
        return len(self.relaxers)

    def run(self, dist: np.ndarray, *, ledger: Ledger = NULL_LEDGER) -> np.ndarray:
        """One full pass over the schedule; ``dist`` has shape ``(..., n)``
        and is updated in place (and returned).

        The ℓ prefix and suffix phases reuse one full-edge relaxer, so
        :func:`~repro.kernels.bellman_ford.run_phases` frontier-prunes
        within those runs: source rows the shared relaxer stopped improving
        skip its remaining repetitions (bit-identical — rows are
        independent), and the ledger records the work actually scanned."""
        return run_phases(self.relaxers, dist, ledger=ledger)


def build_schedule(aug: Augmentation) -> PhaseSchedule:
    """Compile the §3.2 schedule for an augmentation."""
    tree = aug.tree
    semiring = aug.semiring
    g = aug.graph
    d_g = tree.height
    ell = aug.ell
    lv = tree.vertex_level  # -1 = undefined
    src, dst, w, is_aug = aug.combined_edges()
    lv1 = lv[src]
    lv2 = lv[dst]

    relaxers: list[EdgeRelaxer] = []
    labels: list[str] = []
    scans = 0
    aug_counts = np.zeros(src.shape[0], dtype=np.int64)

    kern = aug.kernel
    original = EdgeRelaxer(
        g.src, g.dst, g.weight.astype(semiring.dtype), semiring, kernel=kern
    )

    def add_filtered(mask: np.ndarray, label: str) -> None:
        nonlocal scans
        aug_counts[mask] += 1
        relaxers.append(
            EdgeRelaxer(src[mask], dst[mask], w[mask], semiring, kernel=kern)
        )
        labels.append(label)
        scans += int(mask.sum())

    for i in range(ell):
        relaxers.append(original)
        labels.append(f"prefix-E-{i + 1}")
        scans += g.m

    # Descending half: levels d_G, d_G, d_G-1, d_G-1, ..., 0.
    for i in range(1, 2 * d_g + 2):
        if i % 2 == 1:
            lam = d_g - (i - 1) // 2
            mask = (lv1 == lam) & (lv2 == lam)
            add_filtered(mask, f"desc-same-{lam}")
        else:
            lam = d_g - i // 2 + 1
            mask = (lv1 == lam) & (lv2 >= 0) & (lv2 < lam)
            add_filtered(mask, f"desc-drop-{lam}")

    # Ascending half: rises from 0, 1, ..., interleaved with same-level.
    for i in range(1, 2 * d_g + 1):
        if i % 2 == 1:
            lam = (i - 1) // 2
            mask = (lv1 == lam) & (lv2 > lam)
            add_filtered(mask, f"asc-rise-{lam}")
        else:
            lam = i // 2
            mask = (lv1 == lam) & (lv2 == lam)
            add_filtered(mask, f"asc-same-{lam}")

    for i in range(ell):
        relaxers.append(original)
        labels.append(f"suffix-E-{i + 1}")
        scans += g.m

    return PhaseSchedule(
        relaxers=relaxers,
        labels=labels,
        edge_scans=scans,
        aug_edge_phase_counts=aug_counts[is_aug],
    )
