"""Algorithm 4.1 — computing E⁺ from the leaves up (paper §4.1).

The tree is processed one level at a time, deepest first; all nodes of a
level are independent and run as one parallel phase (on the chosen
executor, and as a fork-join region on the PRAM ledger).

Per leaf: APSP of the O(1)-size leaf subgraph (Floyd–Warshall), plus the
leaf's exact minimum-weight diameter (the ℓ of Theorem 3.1).

Per internal node ``t`` with children ``t₁, t₂`` (paper Algorithm 4.1):

i.   ``H_S``: complete graph on ``S(t)`` weighted with the ⊕ of the two
     children's distances (every separator vertex is a boundary vertex of
     both children, so those distances are available).
ii.  APSP on ``H_S`` → exact ``dist_{G(t)}`` on ``S×S`` (Prop 4.2).
iii. The tripartite graph ``H`` on ``B(t) ∪ S(t)`` with child distances as
     ``B↔S`` edge weights and ``dist_{H_S}`` as ``S×S`` weights.
iv.  3-limited distances in ``H`` — realized as the dense triple product
     ``Direct[:,S] ⊗ D_S ⊗ Direct[S,:]`` (one row/column per boundary
     vertex, exactly the paper's per-vertex 3-phase Bellman–Ford).
v.   ⊕ with the direct child distances → exact ``dist_{G(t)}`` on ``B×B``.

As a byproduct the same products make *every* pair of ``B(t) ∪ S(t)`` exact
(the first/last-separator-hit decomposition in the proof of Prop 4.2 covers
the cross pairs too), which the planar pipeline and path reconstruction
reuse; Algorithm 4.3 certifies the same matrix, which test I3 exploits.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..kernels.bellman_ford import min_weight_diameter
from ..kernels.floyd_warshall import floyd_warshall, floyd_warshall_with_hops
from ..kernels.minplus import semiring_matmul
from ..pram.machine import NULL_LEDGER, Ledger
from ..pram.executor import SerialExecutor, get_executor
from .augment import (
    Augmentation,
    NegativeCycleDetected,
    NodeDistances,
    assemble_augmentation,
)
from .digraph import WeightedDigraph
from .semiring import MIN_PLUS, SEMIRINGS, Semiring
from .septree import SeparatorTree

__all__ = ["augment_leaves_up", "dense_semiring_weights"]


def dense_semiring_weights(g: WeightedDigraph, semiring: Semiring) -> np.ndarray:
    """Dense one-hop matrix of ``g`` in the given semiring: 1̄ diagonal, ⊕ of
    parallel edges, 0̄ where no edge."""
    w = semiring.empty_matrix(g.n, g.n)
    np.fill_diagonal(w, semiring.one)
    if g.m:
        semiring.scatter_min(w, (g.src, g.dst), g.weight.astype(semiring.dtype))
    return w


def _check_diagonal(matrix: np.ndarray, vertices: np.ndarray, semiring: Semiring) -> int:
    """Return a global vertex id on a negative cycle (diagonal strictly
    better than 1̄), or -1."""
    diag = np.einsum("ii->i", matrix)
    bad = semiring.improves(diag, np.full(diag.shape[0], semiring.one, dtype=semiring.dtype))
    if bad.any():
        return int(vertices[int(np.argmax(bad))])
    return -1


# ------------------------------------------------------------------ #
# Per-node workers (module level so the process backends can pickle them)
#
# Two payload styles share these functions: the classic style carries the
# arrays themselves (serial/thread/process), while the shm style carries
# ArrayRef descriptors that the ShmExecutor resolves to zero-copy views
# before dispatch, plus an ``out`` block the worker fills in place so the
# result matrix is never pickled either (see repro.pram.shm).
# ------------------------------------------------------------------ #


def _leaf_payload(
    graph: WeightedDigraph, t, semiring: Semiring, arena=None
) -> tuple[dict[str, Any], np.ndarray, np.ndarray | None]:
    """Build one leaf task payload; returns ``(payload, vertices, out_view)``.

    With an arena, the subgraph arrays are published as descriptors and an
    output block for the APSP matrix is pre-allocated (``out_view`` is the
    orchestrator's view of it); without one, the arrays ride in the payload.
    """
    sub, mapping = graph.induced_subgraph(t.vertices)
    payload: dict[str, Any] = {
        "kind": "leaf",
        "idx": t.idx,
        "semiring": semiring.name,
        "vertices": mapping,
        "n_local": sub.n,
        "sub_src": sub.src,
        "sub_dst": sub.dst,
        "sub_weight": sub.weight,
    }
    if arena is None:
        return payload, mapping, None
    out_ref, out_view = arena.alloc((mapping.shape[0], mapping.shape[0]), semiring.dtype)
    payload.update(
        vertices=arena.publish(mapping),
        sub_src=arena.publish(sub.src),
        sub_dst=arena.publish(sub.dst),
        sub_weight=arena.publish(sub.weight),
        out=out_ref,
    )
    return payload, mapping, out_view


def _emit(payload: dict[str, Any], out: dict[str, Any]) -> dict[str, Any]:
    """Return path shared by both payload styles: with an ``out`` block the
    matrix is written in place and stripped from the (pickled) result."""
    if "out" in payload:
        payload["out"][...] = out.pop("matrix")
        out.pop("vertices", None)
    return out


def _leaf_worker(payload: dict[str, Any]) -> dict[str, Any]:
    semiring = SEMIRINGS[payload["semiring"]]
    sub = WeightedDigraph(
        payload["n_local"], payload["sub_src"], payload["sub_dst"], payload["sub_weight"]
    )
    ledger = Ledger()
    dense = dense_semiring_weights(sub, semiring)
    if semiring.name in ("min-plus", "hops"):
        # One pass computes APSP *and* the leaf's min-weight diameter (the
        # ℓ of Theorem 3.1) — replacing a per-leaf Bellman–Ford fixpoint
        # loop that dominated the preprocessing profile.
        apsp, hop_counts = floyd_warshall_with_hops(dense)
        from ..pram.machine import log2ceil

        ledger.charge(work=float(sub.n) ** 3, depth=log2ceil(sub.n) ** 2, label="apsp")
        bad = _check_diagonal(apsp, payload["vertices"], semiring)
        finite = np.isfinite(hop_counts)
        diam = 0 if bad >= 0 else int(hop_counts[finite].max(initial=0.0))
        return _emit(payload, {
            "idx": payload["idx"],
            "vertices": payload["vertices"],
            "matrix": apsp,
            "leaf_diameter": diam,
            "neg_vertex": bad,
            "work": ledger.work,
            "depth": ledger.depth,
        })
    apsp = floyd_warshall(dense, semiring, ledger=ledger, copy=False)
    bad = _check_diagonal(apsp, payload["vertices"], semiring)
    diam = 0
    if bad < 0 and sub.n > 1:
        diam = min_weight_diameter(sub, semiring=semiring)
    return _emit(payload, {
        "idx": payload["idx"],
        "vertices": payload["vertices"],
        "matrix": apsp,
        "leaf_diameter": diam,
        "neg_vertex": bad,
        "work": ledger.work,
        "depth": ledger.depth,
    })


def _internal_worker(payload: dict[str, Any]) -> dict[str, Any]:
    semiring = SEMIRINGS[payload["semiring"]]
    kernel = payload.get("kernel")
    ledger = Ledger()
    vh: np.ndarray = payload["vh"]
    h = vh.shape[0]
    direct = semiring.empty_matrix(h, h)
    np.fill_diagonal(direct, semiring.one)
    # ⊕-combine each child's distance matrix into the shared positions.
    # Classic entries are (vertices, matrix) pre-restricted by the
    # orchestrator; shm entries are (vertices, positions, full-matrix view)
    # and the certified-boundary restriction happens here, against shared
    # pages, so the orchestrator never copies child matrices into payloads.
    for child in payload["children"]:
        if len(child) == 3:
            child_vertices, pos, full = child
            child_matrix = full[np.ix_(pos, pos)]
        else:
            child_vertices, child_matrix = child
        common, pos_vh, pos_child = np.intersect1d(
            vh, child_vertices, assume_unique=True, return_indices=True
        )
        if common.size == 0:
            continue
        block = child_matrix[np.ix_(pos_child, pos_child)]
        tgt = direct[np.ix_(pos_vh, pos_vh)]
        direct[np.ix_(pos_vh, pos_vh)] = semiring.add(tgt, block)
    pos_s: np.ndarray = payload["pos_s"]
    if pos_s.size == 0:
        # No separator (degenerate); the direct matrix is already exact.
        matrix = direct
    else:
        w_s = direct[np.ix_(pos_s, pos_s)]
        d_s = floyd_warshall(w_s, semiring, ledger=ledger, copy=True)
        left = semiring_matmul(direct[:, pos_s], d_s, semiring, ledger=ledger, kernel=kernel)
        right = semiring_matmul(d_s, direct[pos_s, :], semiring, ledger=ledger, kernel=kernel)
        three_hop = semiring_matmul(left, direct[pos_s, :], semiring, ledger=ledger, kernel=kernel)
        matrix = semiring.add(direct, three_hop)
        matrix[:, pos_s] = semiring.add(matrix[:, pos_s], left)
        matrix[pos_s, :] = semiring.add(matrix[pos_s, :], right)
    bad = _check_diagonal(matrix, vh, semiring)
    return _emit(payload, {
        "idx": payload["idx"],
        "vertices": vh,
        "matrix": matrix,
        "neg_vertex": bad,
        "work": ledger.work,
        "depth": ledger.depth,
    })


# ------------------------------------------------------------------ #
# Orchestration
# ------------------------------------------------------------------ #


def augment_leaves_up(
    graph: WeightedDigraph,
    tree: SeparatorTree,
    semiring: Semiring = MIN_PLUS,
    *,
    executor="serial",
    ledger: Ledger = NULL_LEDGER,
    keep_node_distances: bool = True,
    raise_on_negative_cycle: bool = True,
    kernel: str | None = None,
) -> Augmentation:
    """Compute the augmentation with Algorithm 4.1 (one parallel phase per
    tree level, deepest first).

    ``kernel`` selects the min-plus matmul implementation used by the
    per-node 3-hop products (see :mod:`repro.kernels.dispatch`); all
    choices are bit-identical.

    On the ``shm`` backend the per-node matrices live in a shared-memory
    arena: inputs travel as descriptors, workers write their output blocks
    in place, and internal nodes read their children's blocks directly from
    shared pages — no matrix is ever pickled.
    """
    if semiring.name not in SEMIRINGS:
        raise ValueError("semiring must be one of the registered instances")
    exe = get_executor(executor)
    owns_executor = isinstance(executor, str) and not isinstance(exe, SerialExecutor)
    use_shm = getattr(exe, "uses_shared_memory", False)
    arena = None
    if use_shm:
        from ..pram.shm import ShmArena

        arena = ShmArena()
    results: dict[int, NodeDistances] = {}
    leaf_diameters: dict[int, int] = {}
    #: node idx -> descriptor of its matrix block (shm path only).
    mat_refs: dict[int, Any] = {}
    try:
        for level_nodes in tree.levels_desc():
            payloads = []
            views: dict[int, np.ndarray] = {}
            verts: dict[int, np.ndarray] = {}
            for t in level_nodes:
                if t.is_leaf:
                    payload, mapping, out_view = _leaf_payload(graph, t, semiring, arena)
                    payloads.append(payload)
                    if use_shm:
                        mat_refs[t.idx] = payload["out"]
                        views[t.idx] = out_view
                        verts[t.idx] = mapping
                else:
                    vh = np.union1d(t.separator, t.boundary)
                    pos_s = np.searchsorted(vh, t.separator)
                    children = []
                    for c in t.children:
                        nd = results[c]
                        b = tree.nodes[c].boundary
                        # Only the child's boundary rows/cols are certified;
                        # the restriction to them happens orchestrator-side
                        # for array payloads, worker-side (against shared
                        # pages) for descriptor payloads.
                        idx = nd.index_of(b)
                        if use_shm:
                            children.append(
                                (arena.publish(b), arena.publish(idx), mat_refs[c])
                            )
                        else:
                            children.append((b, nd.matrix[np.ix_(idx, idx)]))
                    payload = {
                        "kind": "internal",
                        "idx": t.idx,
                        "semiring": semiring.name,
                        "kernel": kernel,
                        "vh": vh,
                        "pos_s": pos_s,
                        "children": children,
                    }
                    if use_shm:
                        out_ref, out_view = arena.alloc((vh.shape[0], vh.shape[0]), semiring.dtype)
                        payload.update(
                            vh=arena.publish(vh), pos_s=arena.publish(pos_s), out=out_ref
                        )
                        mat_refs[t.idx] = out_ref
                        views[t.idx] = out_view
                        verts[t.idx] = vh
                    payloads.append(payload)
            outs = exe.map(_dispatch_worker, payloads)
            branch_ledgers = []
            for out in outs:
                if out["neg_vertex"] >= 0:
                    if raise_on_negative_cycle and semiring.name in ("min-plus", "hops"):
                        raise NegativeCycleDetected(out["idx"], out["neg_vertex"])
                idx = out["idx"]
                results[idx] = NodeDistances(
                    node_idx=idx,
                    vertices=verts[idx] if use_shm else out["vertices"],
                    matrix=views[idx] if use_shm else out["matrix"],
                )
                if "leaf_diameter" in out:
                    leaf_diameters[idx] = out["leaf_diameter"]
                b = Ledger()
                b.charge(out["work"], out["depth"], label="node")
                branch_ledgers.append(b)
            ledger.merge_parallel(branch_ledgers, label="leaves-up-level")
        if use_shm and keep_node_distances:
            # The arena dies with this call; surviving matrices need to own
            # their memory.
            for nd in results.values():
                nd.matrix = np.array(nd.matrix, copy=True)
        return assemble_augmentation(
            graph,
            tree,
            results,
            leaf_diameters,
            semiring,
            method="leaves_up",
            keep_node_distances=keep_node_distances,
            ledger=ledger,
        )
    finally:
        if arena is not None:
            arena.close()
        if owns_executor:
            exe.close()


def _dispatch_worker(payload: dict[str, Any]) -> dict[str, Any]:
    if payload["kind"] == "leaf":
        return _leaf_worker(payload)
    return _internal_worker(payload)
