"""High-level facade: :class:`ShortestPathOracle`.

One object bundles the whole paper pipeline: separator decomposition (given
or computed), augmentation E⁺ (Algorithm 4.1 or 4.3), the §3.2 phase
schedule, and query methods for distances, trees, paths and reachability —
with PRAM work/depth accounting throughout.

    >>> from repro import ShortestPathOracle
    >>> from repro.workloads.generators import grid_digraph
    >>> import numpy as np
    >>> g = grid_digraph((16, 16), np.random.default_rng(0))
    >>> oracle = ShortestPathOracle.build(g, separator="auto")
    >>> d = oracle.distances([0, 5])          # (2, 256) distance matrix
    >>> tree = oracle.shortest_path_tree(0)   # parent array
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..pram.machine import Ledger
from .augment import Augmentation
from .config import UNSET, OracleConfig, resolve_config
from .digraph import WeightedDigraph
from .doubling import augment_doubling
from .leaves_up import augment_leaves_up
from .negcycle import has_negative_cycle
from .paths import reconstruct_path, shortest_path_tree
from .scheduler import PhaseSchedule
from .semiring import Semiring
from .septree import SeparatorTree, build_separator_tree
from .sssp import measured_diameter, sssp_naive, sssp_scheduled

__all__ = ["ShortestPathOracle"]


def _resolve_tree(
    graph: WeightedDigraph,
    tree,
    separator,
    leaf_size: int,
) -> SeparatorTree:
    if tree is not None:
        return tree
    if callable(separator):
        return build_separator_tree(graph, separator, leaf_size=leaf_size)
    if separator in (None, "auto", "spectral"):
        from ..separators.spectral import decompose_spectral

        return decompose_spectral(graph, leaf_size=leaf_size)
    if separator == "planar":
        from ..separators.planar import decompose_planar

        return decompose_planar(graph, leaf_size=leaf_size)
    if separator == "treewidth":
        from ..separators.treewidth import decompose_treewidth

        return decompose_treewidth(graph, leaf_size=leaf_size)
    if separator == "multilevel":
        from ..separators.multilevel import decompose_multilevel

        return decompose_multilevel(graph, leaf_size=leaf_size)
    if separator == "lipton_tarjan":
        from ..separators.lipton_tarjan import decompose_lipton_tarjan

        return decompose_lipton_tarjan(graph, leaf_size=leaf_size)
    raise ValueError(f"unknown separator spec {separator!r}")


class ShortestPathOracle:
    """Preprocessed multi-source shortest-path oracle for a digraph with a
    separator decomposition (the paper's end-to-end system)."""

    def __init__(
        self,
        graph: WeightedDigraph,
        tree: SeparatorTree,
        augmentation: Augmentation,
        schedule: PhaseSchedule,
        *,
        preprocess_ledger: Ledger,
        config: OracleConfig | None = None,
    ) -> None:
        self.graph = graph
        self.tree = tree
        self.augmentation = augmentation
        self.schedule = schedule
        self.preprocess_ledger = preprocess_ledger
        self.query_ledger = Ledger()
        #: The resolved build configuration — reused by
        #: :meth:`with_new_weights` so rebuilds keep the original
        #: ``executor`` / ``kernel`` choices, and serializable for the
        #: server/CLI (``config.to_dict()``).
        self.config = config if config is not None else OracleConfig()

    # -------------------------------------------------------------- #

    @classmethod
    def build(
        cls,
        graph: WeightedDigraph,
        tree: SeparatorTree | None = None,
        *,
        config: OracleConfig | None = None,
        separator: str | Callable | None = UNSET,
        method: str = UNSET,
        semiring: Semiring = UNSET,
        leaf_size: int = UNSET,
        executor=UNSET,
        validate: bool = UNSET,
        keep_node_distances: bool = UNSET,
        kernel: str | None = UNSET,
    ) -> "ShortestPathOracle":
        """Run the full preprocessing pipeline.

        All knobs live on one :class:`~repro.core.config.OracleConfig`
        (pass ``config=``); the individual kwargs remain as a back-compat
        overlay with their historical defaults (``method="leaves_up"``,
        ``semiring=MIN_PLUS``, ``leaf_size=8``, ``executor="serial"``,
        ``validate=False``, ``keep_node_distances=False``,
        ``kernel=None``).  A kwarg that contradicts an explicit ``config``
        emits a :class:`DeprecationWarning` and wins.

        Parameters
        ----------
        tree:
            A precomputed separator decomposition (paper comment (iv): it
            depends only on the skeleton and can be reused across weight /
            direction changes).  When omitted, ``config.separator`` selects
            an engine: ``"auto"``/``"spectral"``, ``"planar"``,
            ``"treewidth"``, or a callable oracle.
        config:
            See :class:`~repro.core.config.OracleConfig` for the full knob
            inventory (``method``, ``separator``, ``semiring``,
            ``leaf_size``, ``executor``, ``kernel``,
            ``keep_node_distances``, ``validate`` are consumed here; the
            serving fields ride along untouched for
            :meth:`query_engine`).
        """
        cfg = resolve_config(
            config,
            separator=separator,
            method=method,
            semiring=semiring,
            leaf_size=leaf_size,
            executor=executor,
            validate=validate,
            keep_node_distances=keep_node_distances,
            kernel=kernel,
        )
        ledger = Ledger()
        tree = _resolve_tree(graph, tree, cfg.separator, cfg.leaf_size)
        if cfg.validate:
            tree.validate(graph)
        if cfg.method == "doubling_shared":
            from .doubling_shared import augment_doubling_shared as build_fn
        else:
            build_fn = (
                augment_leaves_up if cfg.method == "leaves_up" else augment_doubling
            )
        aug = build_fn(
            graph,
            tree,
            cfg.resolved_semiring,
            executor=cfg.executor,
            ledger=ledger,
            keep_node_distances=cfg.keep_node_distances,
            kernel=cfg.kernel,
        )
        return cls(graph, tree, aug, aug.schedule(), preprocess_ledger=ledger, config=cfg)

    # -------------------------------------------------------------- #
    # Queries
    # -------------------------------------------------------------- #

    @property
    def semiring(self) -> Semiring:
        return self.augmentation.semiring

    @property
    def diameter_bound(self) -> int:
        """Theorem 3.1(ii) bound on diam(G⁺)."""
        return self.augmentation.diameter_bound

    def distances(self, sources, *, engine: str = "scheduled") -> np.ndarray:
        """Distance rows for each source (``(s, n)``, or ``(n,)`` for a bare
        int).  ``engine`` is ``"scheduled"`` (§3.2) or ``"naive"`` (A3)."""
        if engine == "scheduled":
            return sssp_scheduled(
                self.augmentation, sources, schedule=self.schedule, ledger=self.query_ledger
            )
        if engine == "naive":
            return sssp_naive(self.augmentation, sources, ledger=self.query_ledger)
        raise ValueError("engine must be 'scheduled' or 'naive'")

    def query_engine(
        self,
        config: OracleConfig | None = None,
        *,
        executor=UNSET,
        engine: str = UNSET,
        source_block: int | None = UNSET,
    ):
        """A persistent :class:`~repro.core.query.QueryEngine` over this
        oracle's augmentation.

        Takes the same ``(config, *, executor, engine, source_block)``
        parameter set as :class:`~repro.core.query.QueryEngine` itself;
        the only difference is the serving default ``executor="shm"``
        when neither ``config`` nor the kwarg chooses one (a fresh build
        defaults to ``"serial"``).  The engine reuses the oracle's cached
        G⁺ / relaxer / schedule and (on the ``"shm"`` backend) publishes
        the compiled phase arrays to shared memory once, so every
        subsequent batched query ships only row-range descriptors to a
        warm worker pool.  Close it (or use it as a context manager) when
        done serving.
        """
        from .query import QueryEngine

        if config is None:
            changes = {
                k: v
                for k, v in (
                    ("executor", executor),
                    ("engine", engine),
                    ("source_block", source_block),
                )
                if v is not UNSET
            }
            cfg = OracleConfig(executor="shm").replace(**changes)
        else:
            cfg = resolve_config(
                config, executor=executor, engine=engine, source_block=source_block
            )
        return QueryEngine(self.augmentation, cfg)

    def distance(self, u: int, v: int) -> float:
        """Exact ``dist_G(u, v)`` (one scheduled pass from ``u``)."""
        return float(self.distances(int(u))[v])

    def distance_matrix(self, sources, targets) -> np.ndarray:
        """``(s, t)`` distances — one scheduled pass per source, columns
        selected (for many targets per source this beats pair queries)."""
        targets = np.asarray(targets, dtype=np.int64)
        return self.distances(sources)[:, targets]

    def nearest_source(self, sources) -> tuple[np.ndarray, np.ndarray]:
        """For every vertex, the closest of ``sources`` and its distance —
        the multi-depot assignment pattern (§1's s-source workload).
        Returns ``(assigned source id, distance)`` arrays of length n;
        unreachable vertices get source −1 and distance +inf."""
        srcs = np.asarray(list(sources), dtype=np.int64)
        dist = self.distances(srcs)
        best = np.argmin(dist, axis=0)
        d = dist[best, np.arange(self.graph.n)]
        assigned = srcs[best]
        assigned = np.where(np.isfinite(d), assigned, -1)
        return assigned, d

    def validate(self, **kwargs):
        """Run the consolidated invariant battery on this oracle's build
        (see :func:`repro.core.validation.validate_pipeline`)."""
        from .validation import validate_pipeline

        return validate_pipeline(self.augmentation, **kwargs)

    def shortest_path_tree(self, source: int) -> np.ndarray:
        """Parent array of a shortest-path tree in the *original* graph."""
        dist = self.distances(int(source))
        return shortest_path_tree(self.graph, int(source), dist)

    def shortest_path_forest(self, sources) -> np.ndarray:
        """Shortest-path trees from each source, shape ``(s, n)`` of parent
        ids — the paper's "shortest-path trees from s sources" deliverable
        (one O(m) tight-edge pass per source on top of the batched
        distance query)."""
        srcs = [int(s) for s in sources]
        dist = self.distances(srcs)
        return np.stack(
            [shortest_path_tree(self.graph, s, dist[i]) for i, s in enumerate(srcs)]
        )

    def with_new_weights(
        self, weight: np.ndarray | None = None, *, graph: WeightedDigraph | None = None
    ) -> "ShortestPathOracle":
        """Rebuild the oracle for new weights and/or edge directions while
        reusing the separator decomposition — paper comment (iv): "the
        separator decomposition ... depends only on the undirected
        unweighted skeleton of G, and hence needs to be computed only once
        for a group of instances which differ in the weights and direction
        on edges."

        Pass ``weight`` (same edge order) for a reweighting, or ``graph``
        for any graph sharing the skeleton (e.g. ``self.graph.reverse()``).
        """
        if (weight is None) == (graph is None):
            raise ValueError("pass exactly one of weight= or graph=")
        if graph is None:
            graph = WeightedDigraph(self.graph.n, self.graph.src, self.graph.dst, weight)
        if graph.n != self.tree.n:
            raise ValueError("new graph must have the same vertex set")
        method = self.augmentation.method
        if method not in ("leaves_up", "doubling", "doubling_shared"):
            method = "leaves_up"
        # Rebuild with the *original* build config — in particular its
        # executor and kernel choices, which earlier versions silently
        # dropped back to the defaults here — updating only what the new
        # instance dictates (method/semiring follow the augmentation,
        # keep_node_distances follows whether matrices were retained).
        cfg = self.config.replace(
            method=method,
            semiring=self.semiring,
            keep_node_distances=bool(self.augmentation.node_distances),
        )
        return ShortestPathOracle.build(graph, self.tree, config=cfg)

    def path(self, u: int, v: int) -> list[int] | None:
        """An explicit minimum-weight ``u→v`` path (original edges only)."""
        parent = self.shortest_path_tree(u)
        return reconstruct_path(parent, int(u), int(v))

    def measured_diameter(self) -> int:
        """Empirical diam(G⁺); validation-scale only."""
        return measured_diameter(self.augmentation)

    def stats(self) -> dict:
        """Key pipeline numbers: sizes, bounds, ledger work/depth."""
        s = self.augmentation.stats()
        s.update(
            preprocess_work=self.preprocess_ledger.work,
            preprocess_depth=self.preprocess_ledger.depth,
            schedule_phases=self.schedule.num_phases,
            schedule_edge_scans=self.schedule.edge_scans,
        )
        return s

    def save(self, path) -> None:
        """Persist graph + tree + E⁺ to one ``.npz`` (see :mod:`repro.io`);
        reload with :meth:`load` — the schedule is recompiled on load."""
        from ..io import save_augmentation

        save_augmentation(path, self.augmentation)

    @classmethod
    def load(cls, path) -> "ShortestPathOracle":
        """Rebuild an oracle persisted with :meth:`save`.

        Per-node distance matrices are not persisted; use
        ``with_new_weights(weight=graph.weight)`` style rebuilds when the
        k-pair oracle is needed afterwards.
        """
        from ..io import load_augmentation

        aug = load_augmentation(path)
        method = aug.method
        if method not in ("leaves_up", "doubling", "doubling_shared"):
            method = "leaves_up"
        cfg = OracleConfig(
            method=method,
            semiring=aug.semiring,
            keep_node_distances=bool(aug.node_distances),
        )
        return cls(
            aug.graph, aug.tree, aug, aug.schedule(),
            preprocess_ledger=Ledger(), config=cfg,
        )

    def check_no_negative_cycle(self) -> bool:
        """Independent Bellman–Ford certificate (the build already raises on
        a negative cycle; this is the cross-check)."""
        return not has_negative_cycle(self.graph)
