"""High-level facade: :class:`ShortestPathOracle`.

One object bundles the whole paper pipeline: separator decomposition (given
or computed), augmentation E⁺ (Algorithm 4.1 or 4.3), the §3.2 phase
schedule, and query methods for distances, trees, paths and reachability —
with PRAM work/depth accounting throughout.

    >>> from repro import ShortestPathOracle
    >>> from repro.workloads.generators import grid_digraph
    >>> import numpy as np
    >>> g = grid_digraph((16, 16), np.random.default_rng(0))
    >>> oracle = ShortestPathOracle.build(g, separator="auto")
    >>> d = oracle.distances([0, 5])          # (2, 256) distance matrix
    >>> tree = oracle.shortest_path_tree(0)   # parent array
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable

import numpy as np

from ..pram.machine import Ledger
from .augment import Augmentation
from .config import UNSET, OracleConfig, resolve_config
from .digraph import WeightedDigraph
from .doubling import augment_doubling
from .leaves_up import augment_leaves_up
from .negcycle import has_negative_cycle
from .paths import reconstruct_path, shortest_path_tree
from .scheduler import PhaseSchedule
from .semiring import Semiring
from .septree import SeparatorTree, build_separator_tree
from .sssp import measured_diameter, sssp_naive, sssp_scheduled

__all__ = ["ShortestPathOracle"]


def _resolve_tree(
    graph: WeightedDigraph,
    tree,
    separator,
    leaf_size: int,
) -> SeparatorTree:
    if tree is not None:
        return tree
    if callable(separator):
        return build_separator_tree(graph, separator, leaf_size=leaf_size)
    from ..separators import decompose

    return decompose(graph, separator, leaf_size=leaf_size)


def _is_shm_spec(executor) -> bool:
    """Whether an executor spec names the shared-memory backend (the case
    where a cache hit warm-starts an arena for the loaded edge arrays)."""
    return isinstance(executor, str) and (executor == "shm" or executor.startswith("shm:"))


class ShortestPathOracle:
    """Preprocessed multi-source shortest-path oracle for a digraph with a
    separator decomposition (the paper's end-to-end system)."""

    def __init__(
        self,
        graph: WeightedDigraph,
        tree: SeparatorTree,
        augmentation: Augmentation,
        schedule: PhaseSchedule,
        *,
        preprocess_ledger: Ledger,
        config: OracleConfig | None = None,
    ) -> None:
        self.graph = graph
        self.tree = tree
        self.augmentation = augmentation
        self.schedule = schedule
        self.preprocess_ledger = preprocess_ledger
        self.query_ledger = Ledger()
        #: The resolved build configuration — reused by
        #: :meth:`with_new_weights` so rebuilds keep the original
        #: ``executor`` / ``kernel`` choices, and serializable for the
        #: server/CLI (``config.to_dict()``).
        self.config = config if config is not None else OracleConfig()
        #: How the augmentation cache participated in this build (see
        #: :mod:`repro.cache`): ``mode`` / ``status`` always, plus ``key``,
        #: ``dir`` and timings once the store was consulted.  Surfaced by
        #: the server's ``stats`` op as the build-cache hit record.
        self.cache_info: dict = {"mode": self.config.cache, "status": "off"}
        #: Lazily captured build provenance (:class:`~repro.core.reweight.
        #: ReweightPlan`) shared along a :meth:`with_new_weights` lineage —
        #: captured once per skeleton, reused by every incremental
        #: reweight derived from this oracle.
        self._reweight_plan = None

    # -------------------------------------------------------------- #

    @classmethod
    def build(
        cls,
        graph: WeightedDigraph,
        tree: SeparatorTree | None = None,
        *,
        config: OracleConfig | None = None,
        separator: str | Callable | None = UNSET,
        method: str = UNSET,
        semiring: Semiring = UNSET,
        leaf_size: int = UNSET,
        executor=UNSET,
        validate: bool = UNSET,
        keep_node_distances: bool = UNSET,
        kernel: str | None = UNSET,
        cache: str = UNSET,
        cache_dir: str | None = UNSET,
        mode: str = UNSET,
        eps: float = UNSET,
        hopset_beta: int = UNSET,
    ) -> "ShortestPathOracle":
        """Run the full preprocessing pipeline.

        All knobs live on one :class:`~repro.core.config.OracleConfig`
        (pass ``config=``); the individual kwargs remain as a back-compat
        overlay with their historical defaults (``method="leaves_up"``,
        ``semiring=MIN_PLUS``, ``leaf_size=8``, ``executor="serial"``,
        ``validate=False``, ``keep_node_distances=False``,
        ``kernel=None``).  A kwarg that contradicts an explicit ``config``
        emits a :class:`DeprecationWarning` and wins.

        Parameters
        ----------
        tree:
            A precomputed separator decomposition (paper comment (iv): it
            depends only on the skeleton and can be reused across weight /
            direction changes).  When omitted, ``config.separator`` selects
            an engine: ``"auto"``/``"spectral"``, ``"planar"``,
            ``"treewidth"``, or a callable oracle.
        config:
            See :class:`~repro.core.config.OracleConfig` for the full knob
            inventory (``method``, ``separator``, ``semiring``,
            ``leaf_size``, ``executor``, ``kernel``,
            ``keep_node_distances``, ``validate`` are consumed here; the
            serving fields ride along untouched for
            :meth:`query_engine`).
        cache:
            Augmentation-cache mode (see :mod:`repro.cache`): ``"off"``
            never touches the store; ``"read"`` loads a content-addressed
            hit but never writes; ``"readwrite"`` additionally persists a
            miss (under an ``O_EXCL`` build lock so concurrent builders of
            the same key produce one store entry).  A hit skips the whole
            §4 construction *and* — when the entry's header records that
            validation already ran — the decomposition validity check.
            ``keep_node_distances=True`` bypasses the cache (per-node
            matrices are not persisted).
        """
        cfg = resolve_config(
            config,
            separator=separator,
            method=method,
            semiring=semiring,
            leaf_size=leaf_size,
            executor=executor,
            validate=validate,
            keep_node_distances=keep_node_distances,
            kernel=kernel,
            cache=cache,
            cache_dir=cache_dir,
            mode=mode,
            eps=eps,
            hopset_beta=hopset_beta,
        )
        # Distance-fidelity dispatch (the hopset subsystem, repro.hopset):
        # "approx" skips the separator machinery entirely; "auto" scores the
        # best first-pass tree and gates on cfg.approx_gate; "exact" (the
        # default) is the historical path, bit-for-bit.
        if cfg.mode == "approx":
            return cls._build_approx(
                graph, cfg,
                decision={"mode": "approx", "why": "mode='approx' requested"},
            )
        if cfg.mode == "auto":
            from ..separators.quality import separability_score

            if tree is None:
                from ..separators.quality import best_first_pass

                try:
                    _, tree = best_first_pass(graph, leaf_size=cfg.leaf_size)
                except Exception as exc:  # noqa: BLE001 — any engine may reject
                    return cls._build_approx(
                        graph, cfg,
                        decision={
                            "mode": "approx",
                            "gate": cfg.approx_gate,
                            "why": (
                                "every first-pass separator engine failed "
                                f"({type(exc).__name__}: {exc})"
                            ),
                        },
                    )
            score = separability_score(tree)
            decision = {"gate": cfg.approx_gate, "separability": score}
            if tree.selection is not None:
                decision["candidates"] = tree.selection.get("candidates")
            if score < cfg.approx_gate:
                decision.update(
                    mode="approx",
                    why=(
                        f"separability {score:.3f} below gate "
                        f"{cfg.approx_gate:g}: building a (1+eps) hopset"
                    ),
                )
                return cls._build_approx(graph, cfg, decision=decision)
            decision.update(
                mode="exact",
                why=(
                    f"separability {score:.3f} at or above gate "
                    f"{cfg.approx_gate:g}: building exact E⁺"
                ),
            )
            sel = dict(tree.selection or {})
            sel["mode_decision"] = decision
            tree.selection = sel
        ledger = Ledger()
        given_tree = tree is not None
        tree = _resolve_tree(graph, tree, cfg.separator, cfg.leaf_size)
        # Post-pass flow refinement — applies to supplied trees too; skipped
        # when separator="flow" just built an already-refined tree.
        if cfg.refine_separators and (given_tree or cfg.separator != "flow"):
            from ..separators.flow import refine_tree

            tree, _ = refine_tree(graph, tree, max_nodes=cfg.refine_max_nodes)
        cache_info: dict = {"mode": cfg.cache, "status": "off"}
        store = key = lock = None
        if cfg.cache != "off":
            if cfg.keep_node_distances:
                cache_info["status"] = "bypass"
            else:
                from ..cache import AugmentationCache, augmentation_key

                store = AugmentationCache(cfg.cache_dir)
                key = augmentation_key(graph, tree, cfg.resolved_semiring, cfg.method)
                cache_info.update(key=key, dir=str(store.dir), status="miss")
                t0 = time.perf_counter()
                oracle = cls._from_cache(store, key, graph, tree, cfg, cache_info)
                if oracle is None and cfg.cache == "readwrite":
                    lock = store.try_lock(key)
                    if lock is None and store.wait_for_entry(key):
                        # A concurrent builder won the lock and finished:
                        # take its entry instead of rebuilding (no stampede).
                        oracle = cls._from_cache(store, key, graph, tree, cfg, cache_info)
                if oracle is not None:
                    if lock is not None:
                        lock.release()
                    cache_info["load_s"] = time.perf_counter() - t0
                    return oracle
        try:
            if cfg.validate:
                tree.validate(graph)
            if cfg.method == "doubling_shared":
                from .doubling_shared import augment_doubling_shared as build_fn
            else:
                build_fn = (
                    augment_leaves_up if cfg.method == "leaves_up" else augment_doubling
                )
            aug = build_fn(
                graph,
                tree,
                cfg.resolved_semiring,
                executor=cfg.executor,
                ledger=ledger,
                keep_node_distances=cfg.keep_node_distances,
                kernel=cfg.kernel,
            )
            # Thread the kernel choice into every relaxer/schedule derived
            # from this augmentation (must precede aug.schedule() below).
            aug.kernel = cfg.kernel
            oracle = cls(
                graph, tree, aug, aug.schedule(), preprocess_ledger=ledger, config=cfg
            )
            if store is not None and cfg.cache == "readwrite":
                t0 = time.perf_counter()
                wrote = store.store(key, aug, config=cfg, validated=cfg.validate)
                cache_info["status"] = "stored" if wrote else "miss"
                cache_info["store_s"] = time.perf_counter() - t0
            oracle.cache_info = cache_info
            return oracle
        finally:
            if lock is not None:
                lock.release()

    @classmethod
    def _from_cache(cls, store, key, graph, tree, cfg, cache_info) -> "ShortestPathOracle | None":
        """One load attempt against the store; ``None`` on a miss.

        For shm-destined builds the entry's edge arrays are streamed into a
        fresh :class:`~repro.pram.shm.ShmArena` (``aug.arena``) so serving
        workers share the pages; close it via :meth:`close` (a finalizer
        covers forgetful owners).  Validation already paid at store time
        (per the entry header) is *not* re-run — the ``validate`` fast
        path of a hit.
        """
        arena = None
        if _is_shm_spec(cfg.executor):
            from ..pram.shm import ShmArena

            arena = ShmArena()
        loaded = store.load(key, arena=arena)
        if loaded is None:
            if arena is not None:
                arena.close()
            return None
        aug, meta = loaded
        if cfg.validate and not meta.get("validated"):
            tree.validate(graph)
        aug.kernel = cfg.kernel
        oracle = cls(graph, tree, aug, aug.schedule(), preprocess_ledger=Ledger(), config=cfg)
        cache_info.update(
            status="hit",
            version=int(meta.get("version", 1)),
            validated=bool(meta.get("validated", False)),
            arena_backed=arena is not None,
        )
        oracle.cache_info = cache_info
        return oracle

    @classmethod
    def _build_approx(
        cls, graph: WeightedDigraph, cfg: OracleConfig, *, decision: dict | None = None
    ) -> "ShortestPathOracle":
        """The hopset build path (``mode="approx"``, or ``mode="auto"``
        below the gate): construct a ``(1+eps)`` hopset instead of E⁺, hang
        it off the trivial one-leaf tree, and serve through the same
        oracle/engine machinery.  Hopset artifacts are cached exactly like
        augmentations, under keys that fold in ``mode``/``eps``/``beta``
        (so they can never collide with exact entries)."""
        from ..hopset import HopsetAugmentation, build_hopset, trivial_tree

        ledger = Ledger()
        tree = trivial_tree(graph.n)
        if decision is not None:
            tree.selection = {"mode_decision": decision}
        semiring = cfg.resolved_semiring
        cache_info: dict = {"mode": cfg.cache, "status": "off"}
        store = key = lock = None
        if cfg.cache != "off":
            from ..cache import AugmentationCache, augmentation_key

            store = AugmentationCache(cfg.cache_dir)
            key = augmentation_key(
                graph, tree, semiring, "hopset",
                mode="approx", eps=cfg.eps, hopset_beta=cfg.hopset_beta,
            )
            cache_info.update(key=key, dir=str(store.dir), status="miss")
            t0 = time.perf_counter()
            oracle = cls._from_cache(store, key, graph, tree, cfg, cache_info)
            if oracle is None and cfg.cache == "readwrite":
                lock = store.try_lock(key)
                if lock is None and store.wait_for_entry(key):
                    oracle = cls._from_cache(store, key, graph, tree, cfg, cache_info)
            if oracle is not None:
                if lock is not None:
                    lock.release()
                cache_info["load_s"] = time.perf_counter() - t0
                if decision is not None and oracle.tree.selection is None:
                    oracle.tree.selection = {"mode_decision": decision}
                return oracle
        try:
            hopset = build_hopset(
                graph, semiring,
                eps=cfg.eps, beta=cfg.hopset_beta, kernel=cfg.kernel,
            )
            ledger.charge(
                work=float(sum(b * p.shape[0] for b, p in zip(hopset.budgets, hopset.pivots)))
                * max(1, graph.m),
                depth=float(max(hopset.budgets, default=1)),
                label="hopset-balls",
            )
            aug = HopsetAugmentation(
                graph=graph,
                tree=tree,
                semiring=semiring,
                src=hopset.src,
                dst=hopset.dst,
                weight=hopset.weight,
                leaf_diameters={},
                node_distances={},
                method="hopset",
                hopset=hopset,
            )
            aug.kernel = cfg.kernel
            oracle = cls(
                graph, tree, aug, aug.schedule(), preprocess_ledger=ledger, config=cfg
            )
            if store is not None and cfg.cache == "readwrite":
                t0 = time.perf_counter()
                wrote = store.store(key, aug, config=cfg, validated=False)
                cache_info["status"] = "stored" if wrote else "miss"
                cache_info["store_s"] = time.perf_counter() - t0
            oracle.cache_info = cache_info
            return oracle
        finally:
            if lock is not None:
                lock.release()

    # -------------------------------------------------------------- #
    # Queries
    # -------------------------------------------------------------- #

    @property
    def semiring(self) -> Semiring:
        return self.augmentation.semiring

    @property
    def diameter_bound(self) -> int:
        """Theorem 3.1(ii) bound on diam(G⁺)."""
        return self.augmentation.diameter_bound

    def distances(self, sources, *, engine: str = "scheduled") -> np.ndarray:
        """Distance rows for each source (``(s, n)``, or ``(n,)`` for a bare
        int).  ``engine`` is ``"scheduled"`` (§3.2) or ``"naive"`` (A3)."""
        if engine == "scheduled":
            return sssp_scheduled(
                self.augmentation, sources, schedule=self.schedule, ledger=self.query_ledger
            )
        if engine == "naive":
            return sssp_naive(self.augmentation, sources, ledger=self.query_ledger)
        raise ValueError("engine must be 'scheduled' or 'naive'")

    def query_engine(
        self,
        config: OracleConfig | None = None,
        *,
        executor=UNSET,
        engine: str = UNSET,
        source_block: int | None = UNSET,
    ):
        """A persistent :class:`~repro.core.query.QueryEngine` over this
        oracle's augmentation.

        Takes the same ``(config, *, executor, engine, source_block)``
        parameter set as :class:`~repro.core.query.QueryEngine` itself;
        the only difference is the serving default ``executor="shm"``
        when neither ``config`` nor the kwarg chooses one (a fresh build
        defaults to ``"serial"``).  The engine reuses the oracle's cached
        G⁺ / relaxer / schedule and (on the ``"shm"`` backend) publishes
        the compiled phase arrays to shared memory once, so every
        subsequent batched query ships only row-range descriptors to a
        warm worker pool.  Close it (or use it as a context manager) when
        done serving.
        """
        from .query import QueryEngine

        if config is None:
            changes = {
                k: v
                for k, v in (
                    ("executor", executor),
                    ("engine", engine),
                    ("source_block", source_block),
                )
                if v is not UNSET
            }
            cfg = OracleConfig(executor="shm").replace(**changes)
        else:
            cfg = resolve_config(
                config, executor=executor, engine=engine, source_block=source_block
            )
        if self.augmentation.method == "hopset":
            from ..hopset import ApproxEngine

            return ApproxEngine(self.augmentation, cfg)
        return QueryEngine(self.augmentation, cfg)

    def shard_fleet(
        self,
        k: int | None = None,
        *,
        config: OracleConfig | None = None,
        backend: str | None = None,
        pin: bool | None = None,
        replicas: int | None = None,
    ):
        """A :class:`~repro.shard.ShardRouter` over this oracle's graph and
        separator tree — K per-shard oracles routed through the
        boundary-clique spine instead of one engine over the whole graph.

        ``k`` / ``backend`` / ``pin`` / ``replicas`` override the
        ``shards`` / ``shard_backend`` / ``shard_pin`` / ``replicas``
        fields of ``config`` (defaulting to this oracle's build config, so
        cache mode, semiring and method carry over to the shard builds).
        ``replicas > 1`` — or a nonzero ``autoscale_target_p99_ms`` in the
        config — serves each shard through a
        :class:`~repro.shard.ReplicaPool` of interchangeable workers.  The
        fleet builds its own shard oracles from the graph; this oracle's
        augmentation is not reused — keep using :meth:`query_engine` for
        single-engine serving.  Close the router (or use it as a context
        manager) to drain the fleet.
        """
        from ..shard import ShardRouter

        if self.augmentation.method == "hopset":
            raise ValueError(
                "shard_fleet() cuts the separator tree into shard subtrees, "
                "but a hopset oracle has no separator decomposition (that is "
                "why it exists); serve it with query_engine() — the server's "
                "replica tier still scales it out"
            )
        cfg = config if config is not None else self.config
        return ShardRouter(
            self.graph, self.tree, cfg,
            k=k, backend=backend, pin=pin, replicas=replicas,
        )

    def distance(self, u: int, v: int) -> float:
        """Exact ``dist_G(u, v)`` (one scheduled pass from ``u``)."""
        return float(self.distances(int(u))[v])

    def distance_matrix(self, sources, targets) -> np.ndarray:
        """``(s, t)`` distances — one scheduled pass per source, columns
        selected (for many targets per source this beats pair queries)."""
        targets = np.asarray(targets, dtype=np.int64)
        return self.distances(sources)[:, targets]

    def nearest_source(self, sources) -> tuple[np.ndarray, np.ndarray]:
        """For every vertex, the closest of ``sources`` and its distance —
        the multi-depot assignment pattern (§1's s-source workload).
        Returns ``(assigned source id, distance)`` arrays of length n;
        unreachable vertices get source −1 and distance +inf."""
        srcs = np.asarray(list(sources), dtype=np.int64)
        dist = self.distances(srcs)
        best = np.argmin(dist, axis=0)
        d = dist[best, np.arange(self.graph.n)]
        assigned = srcs[best]
        assigned = np.where(np.isfinite(d), assigned, -1)
        return assigned, d

    def validate(self, **kwargs):
        """Run the consolidated invariant battery on this oracle's build
        (see :func:`repro.core.validation.validate_pipeline`)."""
        from .validation import validate_pipeline

        return validate_pipeline(self.augmentation, **kwargs)

    def shortest_path_tree(self, source: int) -> np.ndarray:
        """Parent array of a shortest-path tree in the *original* graph."""
        dist = self.distances(int(source))
        return shortest_path_tree(self.graph, int(source), dist)

    def shortest_path_forest(self, sources) -> np.ndarray:
        """Shortest-path trees from each source, shape ``(s, n)`` of parent
        ids — the paper's "shortest-path trees from s sources" deliverable
        (one O(m) tight-edge pass per source on top of the batched
        distance query)."""
        srcs = [int(s) for s in sources]
        dist = self.distances(srcs)
        return np.stack(
            [shortest_path_tree(self.graph, s, dist[i]) for i, s in enumerate(srcs)]
        )

    def with_new_weights(
        self,
        weight: np.ndarray | None = None,
        *,
        weight_delta=None,
        graph: WeightedDigraph | None = None,
        reweight: str | None = None,
        validate: bool | str | None = None,
    ) -> "ShortestPathOracle":
        """Refresh the oracle for new weights and/or edge directions while
        reusing the separator decomposition — paper comment (iv): "the
        separator decomposition ... depends only on the undirected
        unweighted skeleton of G, and hence needs to be computed only once
        for a group of instances which differ in the weights and direction
        on edges."

        Pass exactly one of:

        ``weight``
            Full weight vector in the original edge order (a reweighting).
        ``weight_delta``
            A *sparse* reweighting: either a ``{edge_id: new_weight}``
            mapping or an ``(edge_ids, new_weights)`` pair; untouched
            edges keep their current weight.  On the incremental path the
            sweep is further restricted to the root paths of the leaves
            containing the changed edges.
        ``graph``
            Any graph sharing the skeleton (e.g. ``self.graph.reverse()``).

        ``reweight`` (default: ``config.reweight``) picks the refresh
        strategy.  ``"auto"``/``"incremental"`` replay the captured build
        provenance leaves-up over the existing E⁺ *structure* — no
        separator recursion and no schedule rebuild (the §3.2 phase
        permutations are weight-independent and cloned) — which is an
        order of magnitude cheaper than a rebuild and bit-identical to
        one.  The replay path requires a ``leaves_up`` lineage and an
        unchanged skeleton (same ``src``/``dst`` arrays); ``"incremental"``
        raises when those do not hold, ``"auto"`` falls back to
        ``"rebuild"``.  Sparse deltas additionally need the lineage's
        retained heap state (present on any oracle *produced by* an
        incremental reweight; a cold-built ancestor serves the first
        refresh densely).

        ``validate`` (default: ``config.validate``) on the incremental
        path checks shortcut *weights* only — :meth:`Augmentation.
        verify_edges` against ground-truth Bellman–Ford — because the
        structure (decomposition, E⁺ pairs, schedule) is inherited from a
        build that already vouched for it.  Pass ``validate="full"`` to
        additionally rerun the structural decomposition check.
        """
        given = [weight is not None, weight_delta is not None, graph is not None]
        if sum(given) != 1:
            raise ValueError("pass exactly one of weight=, weight_delta= or graph=")
        dirty_edges = None
        if weight_delta is not None:
            if isinstance(weight_delta, dict):
                idx = np.fromiter(weight_delta.keys(), dtype=np.int64, count=len(weight_delta))
                vals = np.fromiter(
                    (weight_delta[int(i)] for i in idx),
                    dtype=self.graph.weight.dtype,
                    count=idx.shape[0],
                )
            else:
                idx, vals = weight_delta
                idx = np.asarray(idx, dtype=np.int64)
                vals = np.asarray(vals, dtype=self.graph.weight.dtype)
            if idx.size and (idx.min() < 0 or idx.max() >= self.graph.m):
                raise ValueError("weight_delta edge ids out of range")
            w = self.graph.weight.copy()
            w[idx] = vals  # absolute assignment: applying a delta twice is a no-op
            dirty_edges = idx
            graph = WeightedDigraph(self.graph.n, self.graph.src, self.graph.dst, w)
        elif graph is None:
            graph = WeightedDigraph(self.graph.n, self.graph.src, self.graph.dst, weight)
        if graph.n != self.tree.n:
            raise ValueError("new graph must have the same vertex set")
        mode = self.config.reweight if reweight is None else reweight
        if mode not in ("auto", "incremental", "rebuild"):
            raise ValueError(f"reweight must be auto/incremental/rebuild, got {mode!r}")
        if validate is None:
            validate = self.config.validate
        if self.augmentation.method == "hopset":
            return self._reweight_hopset(graph, mode, validate)
        method = self.augmentation.method
        if method not in ("leaves_up", "doubling", "doubling_shared"):
            method = "leaves_up"
        same_skeleton = (
            graph.m == self.graph.m
            and np.array_equal(graph.src, self.graph.src)
            and np.array_equal(graph.dst, self.graph.dst)
        )
        incremental_ok = method == "leaves_up" and same_skeleton
        if mode == "incremental" and not incremental_ok:
            raise ValueError(
                "reweight='incremental' needs a leaves_up lineage and an "
                "unchanged edge skeleton (same src/dst arrays); pass "
                "reweight='auto' to fall back to a rebuild"
            )
        cfg = self.config.replace(
            method=method,
            semiring=self.semiring,
            keep_node_distances=bool(self.augmentation.node_distances),
        )
        if mode != "rebuild" and incremental_ok:
            return self._reweight_incremental(graph, dirty_edges, cfg, validate)
        # Rebuild with the *original* build config — in particular its
        # executor and kernel choices, which earlier versions silently
        # dropped back to the defaults here — updating only what the new
        # instance dictates (method/semiring follow the augmentation,
        # keep_node_distances follows whether matrices were retained).
        if validate == "full":
            cfg = cfg.replace(validate=True)
        oracle = ShortestPathOracle.build(graph, self.tree, config=cfg)
        # Reweighting bumps the lineage's weights epoch so any per-source
        # distance-row cache keyed against the old augmentation can tell the
        # two apart (see QueryEngine's row LRU).
        oracle.augmentation.weights_epoch = self.augmentation.weights_epoch + 1
        return oracle

    def _reweight_incremental(
        self, graph: WeightedDigraph, dirty_edges, cfg: OracleConfig, validate
    ) -> "ShortestPathOracle":
        """The provenance-replay path of :meth:`with_new_weights`."""
        from .reweight import ReweightPlan

        plan = self._reweight_plan
        if plan is None:
            plan = ReweightPlan.capture(self.graph, self.tree)
        # Phase permutations are structure-only; record them once against
        # this lineage's E⁺ so every subsequent reweight clones instead of
        # rebuilding the schedule.
        plan.ensure_schedule_cache(self.augmentation)
        self._reweight_plan = plan
        base_state = getattr(self.augmentation, "_reweight_state", None)
        if base_state is None:
            dirty_edges = None  # no retained heap: first refresh runs densely
        aug = plan.run(
            graph,
            self.semiring,
            base_state=base_state,
            dirty_edges=dirty_edges,
            keep_node_distances=cfg.keep_node_distances,
            kernel=cfg.kernel,
        )
        aug.weights_epoch = self.augmentation.weights_epoch + 1
        if validate:
            if validate == "full":
                self.tree.validate(graph)
            if self.semiring.name in ("min-plus", "hops"):
                # The baseline re-derivation (Bellman–Ford) may associate
                # float sums differently than the replayed kernels, so a
                # few ulps of deviation are healthy; the repo-wide 1e-9
                # threshold separates that from real corruption.
                dev = aug.verify_edges()
                if dev > 1e-9:
                    raise AssertionError(
                        f"reweighted shortcut weights deviate from ground "
                        f"truth by {dev!r}"
                    )
        oracle = ShortestPathOracle(
            graph,
            self.tree,
            aug,
            aug.schedule(),
            preprocess_ledger=Ledger(),
            config=cfg,
        )
        oracle.cache_info = {"mode": cfg.cache, "status": "reweight"}
        oracle._reweight_plan = plan
        return oracle

    def _reweight_hopset(
        self, graph: WeightedDigraph, mode: str, validate
    ) -> "ShortestPathOracle":
        """The rebuild-or-replay decision for a hopset lineage.

        With an unchanged edge skeleton, ``"auto"``/``"incremental"``
        *replay* the prior construction — same pivot sample, same scale
        budgets, only the hop-limited balls re-run over the new weights —
        so the approximation structure (and the cacheable identity of the
        artifact) is stable across the reweighting lineage.  A changed
        skeleton (or ``"rebuild"``) resamples from scratch.
        """
        from ..hopset import HopsetAugmentation, build_hopset, replay_hopset

        cfg = self.config
        prior = getattr(self.augmentation, "hopset", None)
        same_skeleton = (
            graph.m == self.graph.m
            and np.array_equal(graph.src, self.graph.src)
            and np.array_equal(graph.dst, self.graph.dst)
        )
        if mode == "incremental" and not (same_skeleton and prior is not None):
            raise ValueError(
                "reweight='incremental' on a hopset oracle needs an unchanged "
                "edge skeleton (same src/dst arrays) and a recorded pivot "
                "sample; pass reweight='auto' to fall back to a resample"
            )
        if mode != "rebuild" and same_skeleton and prior is not None:
            hopset = replay_hopset(
                graph, prior, semiring=self.semiring, kernel=cfg.kernel
            )
            status = "reweight"
        else:
            hopset = build_hopset(
                graph, self.semiring,
                eps=cfg.eps, beta=cfg.hopset_beta, kernel=cfg.kernel,
            )
            status = "rebuild"
        aug = HopsetAugmentation(
            graph=graph,
            tree=self.tree,
            semiring=self.semiring,
            src=hopset.src,
            dst=hopset.dst,
            weight=hopset.weight,
            leaf_diameters={},
            node_distances={},
            method="hopset",
            hopset=hopset,
        )
        aug.kernel = cfg.kernel
        aug.weights_epoch = self.augmentation.weights_epoch + 1
        if validate:
            dev = aug.verify_edges()
            if dev > 1e-9:
                raise AssertionError(
                    f"replayed hopset shortcuts underestimate ground-truth "
                    f"distances by {dev!r}"
                )
        oracle = ShortestPathOracle(
            graph, self.tree, aug, aug.schedule(),
            preprocess_ledger=Ledger(), config=cfg,
        )
        oracle.cache_info = {"mode": cfg.cache, "status": status}
        return oracle

    def path(self, u: int, v: int) -> list[int] | None:
        """An explicit minimum-weight ``u→v`` path (original edges only)."""
        parent = self.shortest_path_tree(u)
        return reconstruct_path(parent, int(u), int(v))

    def measured_diameter(self) -> int:
        """Empirical diam(G⁺); validation-scale only."""
        return measured_diameter(self.augmentation)

    def stats(self) -> dict:
        """Key pipeline numbers: sizes, bounds, ledger work/depth."""
        s = self.augmentation.stats()
        s.setdefault("mode", "exact")
        s.update(
            preprocess_work=self.preprocess_ledger.work,
            preprocess_depth=self.preprocess_ledger.depth,
            schedule_phases=self.schedule.num_phases,
            schedule_edge_scans=self.schedule.edge_scans,
        )
        return s

    def save(self, path) -> None:
        """Persist graph + tree + E⁺ to one ``.npz`` (see :mod:`repro.io`);
        reload with :meth:`load` — the schedule is recompiled on load.  The
        build config travels in the archive header, so a loaded oracle
        keeps this build's ``kernel`` / ``executor`` / serving knobs."""
        from ..io import save_augmentation

        save_augmentation(
            path, self.augmentation, config=self.config, validated=self.config.validate
        )

    @classmethod
    def load(cls, path) -> "ShortestPathOracle":
        """Rebuild an oracle persisted with :meth:`save`.

        Per-node distance matrices are not persisted; use
        ``with_new_weights(weight=graph.weight)`` style rebuilds when the
        k-pair oracle is needed afterwards.  Format-2 archives restore the
        saved :class:`OracleConfig`; legacy archives fall back to defaults.
        """
        from ..io import load_augmentation

        aug, meta = load_augmentation(path, with_meta=True)
        saved = meta.get("config")
        if saved:
            known = {f.name for f in dataclasses.fields(OracleConfig)}
            cfg = OracleConfig.from_dict({k: v for k, v in saved.items() if k in known})
        else:
            cfg = OracleConfig()
        changes: dict = dict(
            semiring=aug.semiring,
            keep_node_distances=bool(aug.node_distances),
        )
        if aug.method == "hopset":
            # A hopset lineage: cfg.method stays whatever the build used
            # (it names the E⁺ algorithm, which did not run); the mode is
            # what marks the artifact approximate.
            changes["mode"] = "approx"
        elif aug.method in ("leaves_up", "doubling", "doubling_shared"):
            changes["method"] = aug.method
        else:
            changes["method"] = "leaves_up"
        cfg = cfg.replace(**changes)
        aug.kernel = cfg.kernel
        return cls(
            aug.graph, aug.tree, aug, aug.schedule(),
            preprocess_ledger=Ledger(), config=cfg,
        )

    def close(self) -> None:
        """Release the warm-start arena of a cache-hit shm build (if any);
        idempotent and optional — the arena's finalizer unlinks segments at
        GC time for owners that forget.  Views already handed out stay
        readable in this process; new worker attaches stop working."""
        arena = getattr(self.augmentation, "arena", None)
        if arena is not None:
            arena.close()

    def check_no_negative_cycle(self) -> bool:
        """Independent Bellman–Ford certificate (the build already raises on
        a negative cycle; this is the cross-check)."""
        return not has_negative_cycle(self.graph)
