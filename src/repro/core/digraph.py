"""Weighted directed graph substrate.

Edge-array representation tuned for the vectorized kernels in this package:
the graph is three parallel numpy arrays ``(src, dst, weight)`` plus the
vertex count.  CSR-style adjacency indexes (out- and in-) and the undirected
skeleton are built lazily and cached, since separator construction only needs
the skeleton while the shortest-path kernels only need the edge arrays.

Vertices are integers ``0..n-1``.  Parallel edges are allowed in the input
(queries see the minimum-weight one by construction of the relaxation
kernels); self loops are allowed but never useful for min-plus queries unless
negative, in which case they are a negative cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["WeightedDigraph", "CSRAdjacency"]


@dataclass(frozen=True)
class CSRAdjacency:
    """Compressed sparse row adjacency: neighbors/weights of vertex ``v`` are
    ``indices[indptr[v]:indptr[v+1]]`` / ``weights[indptr[v]:indptr[v+1]]``,
    and ``edge_ids`` gives the position of each entry in the owning graph's
    edge arrays."""

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    edge_ids: np.ndarray

    def neighbors(self, v: int) -> np.ndarray:
        """Adjacent vertex ids of ``v``."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights parallel to :meth:`neighbors`."""
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Number of incident entries at ``v`` in this direction."""
        return int(self.indptr[v + 1] - self.indptr[v])


def _build_csr(n: int, src: np.ndarray, dst: np.ndarray, weight: np.ndarray) -> CSRAdjacency:
    order = np.argsort(src, kind="stable")
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRAdjacency(
        indptr=indptr,
        indices=dst[order],
        weights=weight[order],
        edge_ids=order,
    )


class WeightedDigraph:
    """A weighted digraph ``G = (V, E)`` with real edge weights.

    Parameters
    ----------
    n:
        Number of vertices.
    src, dst:
        Integer arrays of equal length ``m``; edge ``i`` is ``src[i]->dst[i]``.
    weight:
        Float array of length ``m``; ``None`` means unit weights.
    """

    __slots__ = ("n", "src", "dst", "weight", "_out", "_in", "_skeleton")

    def __init__(
        self,
        n: int,
        src: np.ndarray | Sequence[int],
        dst: np.ndarray | Sequence[int],
        weight: np.ndarray | Sequence[float] | None = None,
    ) -> None:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError("src and dst must be 1-D arrays of equal length")
        if weight is None:
            weight = np.ones(src.shape[0], dtype=np.float64)
        else:
            weight = np.asarray(weight, dtype=np.float64)
            if weight.shape != src.shape:
                raise ValueError("weight must match src/dst length")
        if src.size and (src.min(initial=0) < 0 or dst.min(initial=0) < 0):
            raise ValueError("negative vertex id")
        if src.size and (src.max(initial=-1) >= n or dst.max(initial=-1) >= n):
            raise ValueError("vertex id out of range")
        self.n = int(n)
        self.src = src
        self.dst = dst
        self.weight = weight
        self._out: CSRAdjacency | None = None
        self._in: CSRAdjacency | None = None
        self._skeleton: CSRAdjacency | None = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[tuple[int, int] | tuple[int, int, float]]
    ) -> "WeightedDigraph":
        """Build from an iterable of ``(u, v)`` or ``(u, v, w)`` tuples."""
        src, dst, w = [], [], []
        for e in edges:
            src.append(e[0])
            dst.append(e[1])
            w.append(e[2] if len(e) > 2 else 1.0)
        return cls(n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64), np.array(w))

    @classmethod
    def from_networkx(cls, g) -> "WeightedDigraph":
        """Build from a networkx (Di)Graph with integer nodes ``0..n-1``;
        undirected edges become one edge per direction."""
        import networkx as nx

        n = g.number_of_nodes()
        if set(g.nodes) != set(range(n)):
            raise ValueError("networkx graph must have nodes 0..n-1")
        src, dst, w = [], [], []
        for u, v, data in g.edges(data=True):
            wt = float(data.get("weight", 1.0))
            src.append(u)
            dst.append(v)
            w.append(wt)
            if not isinstance(g, nx.DiGraph):
                src.append(v)
                dst.append(u)
                w.append(wt)
        return cls(n, src, dst, w)

    @classmethod
    def from_dense(cls, matrix: np.ndarray) -> "WeightedDigraph":
        """Build from a dense weight matrix; ``inf`` entries mean no edge and
        the diagonal is ignored."""
        a = np.asarray(matrix, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError("matrix must be square")
        n = a.shape[0]
        mask = np.isfinite(a)
        np.fill_diagonal(mask, False)
        src, dst = np.nonzero(mask)
        return cls(n, src, dst, a[mask])

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #

    @property
    def m(self) -> int:
        """Number of edges."""
        return int(self.src.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WeightedDigraph(n={self.n}, m={self.m})"

    def has_negative_weights(self) -> bool:
        """Whether any edge weight is negative."""
        return bool(self.m and self.weight.min() < 0)

    # ------------------------------------------------------------------ #
    # Cached adjacency structures
    # ------------------------------------------------------------------ #

    @property
    def out_adj(self) -> CSRAdjacency:
        if self._out is None:
            self._out = _build_csr(self.n, self.src, self.dst, self.weight)
        return self._out

    @property
    def in_adj(self) -> CSRAdjacency:
        if self._in is None:
            self._in = _build_csr(self.n, self.dst, self.src, self.weight)
        return self._in

    @property
    def skeleton(self) -> CSRAdjacency:
        """Undirected, unweighted skeleton (each edge in both directions).

        The separator decomposition depends only on this structure
        (paper comment (iv)); weights in the returned CSR are all 1.
        """
        if self._skeleton is None:
            s = np.concatenate([self.src, self.dst])
            d = np.concatenate([self.dst, self.src])
            w = np.ones(s.shape[0], dtype=np.float64)
            self._skeleton = _build_csr(self.n, s, d, w)
        return self._skeleton

    # ------------------------------------------------------------------ #
    # Subgraphs and views
    # ------------------------------------------------------------------ #

    def edge_membership(self, vertices: np.ndarray) -> np.ndarray:
        """Boolean mask over edges with *both* endpoints in ``vertices``."""
        member = np.zeros(self.n, dtype=bool)
        member[vertices] = True
        return member[self.src] & member[self.dst]

    def induced_subgraph(self, vertices: np.ndarray) -> tuple["WeightedDigraph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns ``(subgraph, vertices)`` where the subgraph's vertex ``i``
        corresponds to ``vertices[i]`` in ``self`` (the mapping array is the
        sorted unique copy actually used).
        """
        vertices = np.unique(np.asarray(vertices, dtype=np.int64))
        relabel = np.full(self.n, -1, dtype=np.int64)
        relabel[vertices] = np.arange(vertices.shape[0])
        mask = self.edge_membership(vertices)
        sub = WeightedDigraph(
            vertices.shape[0], relabel[self.src[mask]], relabel[self.dst[mask]], self.weight[mask]
        )
        return sub, vertices

    def dense_weights(self) -> np.ndarray:
        """Dense min-plus weight matrix: ``W[u, v]`` is the minimum weight of
        a ``u->v`` edge, ``0`` on the diagonal, ``inf`` elsewhere."""
        w = np.full((self.n, self.n), np.inf)
        np.fill_diagonal(w, 0.0)
        np.minimum.at(w, (self.src, self.dst), self.weight)
        return w

    def reverse(self) -> "WeightedDigraph":
        """Graph with every edge reversed (shares the underlying arrays)."""
        return WeightedDigraph(self.n, self.dst, self.src, self.weight)

    def with_extra_edges(
        self, src: np.ndarray, dst: np.ndarray, weight: np.ndarray
    ) -> "WeightedDigraph":
        """New graph with extra edges appended (used for ``G+ = G ∪ E+``)."""
        return WeightedDigraph(
            self.n,
            np.concatenate([self.src, np.asarray(src, dtype=np.int64)]),
            np.concatenate([self.dst, np.asarray(dst, dtype=np.int64)]),
            np.concatenate([self.weight, np.asarray(weight, dtype=np.float64)]),
        )

    # ------------------------------------------------------------------ #
    # Interop
    # ------------------------------------------------------------------ #

    def to_networkx(self):
        """networkx DiGraph view (parallel edges collapsed to min weight)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.n))
        for u, v, w in zip(self.src.tolist(), self.dst.tolist(), self.weight.tolist()):
            if g.has_edge(u, v):
                if w < g[u][v]["weight"]:
                    g[u][v]["weight"] = w
            else:
                g.add_edge(u, v, weight=w)
        return g

    def to_scipy_csr(self):
        """Min-plus collapsed sparse matrix (parallel edges take min weight).

        Note: scipy sparse sums duplicates, which is wrong for min-plus, so we
        deduplicate explicitly first.
        """
        import scipy.sparse as sp

        key = self.src * self.n + self.dst
        order = np.lexsort((self.weight, key))
        key_sorted = key[order]
        first = np.ones(key_sorted.shape[0], dtype=bool)
        first[1:] = key_sorted[1:] != key_sorted[:-1]
        idx = order[first]
        return sp.csr_matrix(
            (self.weight[idx], (self.src[idx], self.dst[idx])), shape=(self.n, self.n)
        )
