"""The augmentation ``E⁺`` (paper §3.1) — shared data structures.

For every tree node ``t``, ``E_t = B(t)×B(t) ∪ S(t)×S(t)`` weighted with
exact distances *inside the node's subgraph* ``G(t)``; the augmentation is
``E⁺ = ⋃_t E_t`` (parallel edges collapsed to minimum weight).  Theorem 3.1:
``G⁺ = (V, E ∪ E⁺)`` preserves all distances and has minimum-weight diameter
at most ``4·d_G + 2ℓ + 1``.

Two algorithms produce the node distance matrices (:mod:`.leaves_up`,
:mod:`.doubling`); both deliver a :class:`NodeDistances` per node and this
module assembles and deduplicates the edge set, records the per-node
matrices for path reconstruction and the planar pipeline, and carries the
negative-cycle verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..pram.machine import NULL_LEDGER, Ledger
from .digraph import WeightedDigraph
from .semiring import MIN_PLUS, Semiring
from .septree import SeparatorTree

__all__ = ["NodeDistances", "Augmentation", "assemble_augmentation", "NegativeCycleDetected"]


class NegativeCycleDetected(ValueError):
    """A negative-weight cycle was certified during augmentation."""

    def __init__(self, node_idx: int, vertex: int):
        self.node_idx = node_idx
        self.vertex = vertex
        super().__init__(
            f"negative cycle through vertex {vertex} detected at tree node {node_idx}"
        )


@dataclass
class NodeDistances:
    """Distances within ``G(t)`` restricted to the node's labeled vertices.

    ``vertices`` is sorted (global ids); ``matrix[i, j]`` is
    ``dist_{G(t)}(vertices[i], vertices[j])`` — exact at least on the pairs
    promised by the producing algorithm (``B×B ∪ S×S`` for Algorithm 4.1,
    all of ``(S∪B)²`` for Algorithm 4.3).
    """

    node_idx: int
    vertices: np.ndarray
    matrix: np.ndarray

    def index_of(self, global_ids: np.ndarray) -> np.ndarray:
        """Positions of ``global_ids`` within ``vertices`` (must be present)."""
        pos = np.searchsorted(self.vertices, global_ids)
        if pos.size and (
            (pos >= self.vertices.shape[0]).any() or (self.vertices[pos] != global_ids).any()
        ):
            raise KeyError("vertex not labeled at this node")
        return pos

    def submatrix(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Distance block for the given global-id rows × cols."""
        return self.matrix[np.ix_(self.index_of(rows), self.index_of(cols))]


@dataclass
class Augmentation:
    """The assembled augmentation of a graph w.r.t. a separator tree."""

    graph: WeightedDigraph
    tree: SeparatorTree
    semiring: Semiring
    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray
    #: exact per-leaf min-weight diameters; ℓ of Theorem 3.1 is their max.
    leaf_diameters: dict[int, int]
    node_distances: dict[int, NodeDistances] = field(default_factory=dict)
    method: str = ""
    #: Kernel preference (``OracleConfig.kernel``) threaded into every
    #: relaxer and schedule built from this augmentation; ``None`` defers
    #: to the process default (``$REPRO_KERNEL`` /
    #: :func:`~repro.kernels.dispatch.set_default_kernel`).
    kernel: str | None = field(default=None, compare=False)
    #: Monotone counter invalidating per-source distance-row caches (see
    #: :class:`repro.core.query.QueryEngine`): bumped by
    #: ``ShortestPathOracle.with_new_weights`` along a reweighting lineage,
    #: and to be bumped manually by anyone mutating ``weight`` in place.
    weights_epoch: int = field(default=0, compare=False)
    #: The :class:`~repro.pram.shm.ShmArena` hosting the edge arrays when
    #: this augmentation was loaded arena-backed (``repro.io`` /
    #: ``repro.cache``); ``None`` for ordinary private-memory builds.
    arena: object = field(default=None, repr=False, compare=False)
    # Query-path caches: G⁺, its full-edge relaxer and the §3.2 schedule are
    # pure functions of the fields above and expensive to rebuild, so they
    # are constructed at most once per augmentation (every query used to
    # rebuild all three — serialization+setup dominated light query loads).
    _gplus: object = field(default=None, init=False, repr=False, compare=False)
    _relaxer: object = field(default=None, init=False, repr=False, compare=False)
    _schedule: object = field(default=None, init=False, repr=False, compare=False)

    @property
    def size(self) -> int:
        """|E⁺| after deduplication."""
        return int(self.src.shape[0])

    @property
    def ell(self) -> int:
        return max(self.leaf_diameters.values(), default=0)

    @property
    def diameter_bound(self) -> int:
        """Theorem 3.1(ii): diam(G⁺) ≤ 4·d_G + 2ℓ + 1."""
        return 4 * self.tree.height + 2 * self.ell + 1

    def augmented_graph(self) -> WeightedDigraph:
        """``G⁺ = (V, E ∪ E⁺)`` (built once, then cached)."""
        if self._gplus is None:
            self._gplus = self.graph.with_extra_edges(self.src, self.dst, self.weight)
        return self._gplus

    def relaxer(self):
        """Full-edge-set :class:`~repro.kernels.bellman_ford.EdgeRelaxer`
        over G⁺ (built once, then cached — the dst-sorted permutation is the
        expensive part of every naive query)."""
        if self._relaxer is None:
            from ..kernels.bellman_ford import EdgeRelaxer  # local: avoids cycle

            self._relaxer = EdgeRelaxer.from_graph(
                self.augmented_graph(), self.semiring, kernel=self.kernel
            )
        return self._relaxer

    def schedule(self):
        """The §3.2 :class:`~repro.core.scheduler.PhaseSchedule` for this
        augmentation (compiled once, then cached)."""
        if self._schedule is None:
            from .scheduler import build_schedule  # local: avoids import cycle

            self._schedule = build_schedule(self)
        return self._schedule

    def combined_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(src, dst, weight, is_augmented)`` over ``E ∪ E⁺``."""
        g = self.graph
        src = np.concatenate([g.src, self.src])
        dst = np.concatenate([g.dst, self.dst])
        w = np.concatenate([g.weight.astype(self.semiring.dtype), self.weight])
        is_aug = np.zeros(src.shape[0], dtype=bool)
        is_aug[g.m :] = True
        return src, dst, w, is_aug

    def stats(self) -> dict[str, float]:
        """Size/bound summary of the augmentation (plus the separator
        quality of the tree it was built from — see
        :meth:`~repro.core.septree.SeparatorTree.separator_stats`)."""
        return {
            "n": self.graph.n,
            "m": self.graph.m,
            "eplus": self.size,
            "height": self.tree.height,
            "ell": self.ell,
            "diameter_bound": self.diameter_bound,
            "method": self.method,
            "separators": self.tree.separator_stats(),
        }

    def verify_edges(
        self, sample_size: int = 64, rng: np.random.Generator | None = None
    ) -> float:
        """Self-check: recompute a sample of E⁺ edge weights from scratch
        (Bellman–Ford inside the owning node's subgraph) and return the
        maximum absolute deviation.  0 for a healthy augmentation; used by
        failure-injection tests and available to paranoid callers.

        Requires min-plus-like semirings (weights are compared numerically).
        """
        from ..kernels.bellman_ford import bellman_ford

        if self.size == 0:
            return 0.0
        rng = rng or np.random.default_rng(0)
        idx = rng.choice(self.size, size=min(sample_size, self.size), replace=False)
        # Soundness: no E⁺ edge may *under*estimate the true distance
        # (Theorem 3.1(i)'s easy direction) — an underestimate would leak
        # into every query touching the edge.
        sources = np.unique(self.src[idx])
        dist = bellman_ford(self.graph, sources)
        pos = np.searchsorted(sources, self.src[idx])
        under = np.maximum(
            0.0, dist[pos, self.dst[idx]] - self.weight[idx].astype(np.float64)
        )
        # Completeness: *scheduled* queries from sampled sources must
        # reproduce plain Bellman–Ford on G.  (The schedule gives each E⁺
        # edge O(1) scans, so an overestimated shortcut that a query relies
        # on surfaces here; naive capped BF would self-heal via original
        # edges and hide it.)
        from .sssp import sssp_scheduled

        q_sources = np.unique(rng.choice(self.graph.n, size=min(4, self.graph.n), replace=False))
        want = bellman_ford(self.graph, q_sources)
        got = sssp_scheduled(self, q_sources, schedule=self.schedule())
        both_inf = np.isinf(want) & np.isinf(got)
        dev = np.where(both_inf, 0.0, np.abs(got.astype(np.float64) - want))
        dev_max = float(np.nanmax(dev)) if dev.size else 0.0
        return float(max(under.max(initial=0.0), dev_max))


def edges_from_node_matrix(
    nd: NodeDistances,
    boundary: np.ndarray,
    separator: np.ndarray,
    semiring: Semiring,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract the ``E_t = B×B ∪ S×S`` weighted pairs from a node's distance
    matrix, dropping 0̄ entries (no path) and self pairs."""
    chunks_s, chunks_d, chunks_w = [], [], []
    for group in (boundary, separator):
        if group.shape[0] < 2:
            continue
        idx = nd.index_of(group)
        block = nd.matrix[np.ix_(idx, idx)]
        k = group.shape[0]
        rows = np.repeat(group, k)
        cols = np.tile(group, k)
        w = block.reshape(-1)
        keep = rows != cols
        if semiring.dtype == np.dtype(bool):
            keep &= w.astype(bool)
        else:
            keep &= w != semiring.zero
        chunks_s.append(rows[keep])
        chunks_d.append(cols[keep])
        chunks_w.append(w[keep])
    if not chunks_s:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), np.empty(0, dtype=semiring.dtype)
    return (
        np.concatenate(chunks_s),
        np.concatenate(chunks_d),
        np.concatenate(chunks_w),
    )


def dedupe_edges(
    n: int,
    src: np.ndarray,
    dst: np.ndarray,
    weight: np.ndarray,
    semiring: Semiring,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse parallel edges, keeping the ⊕-best weight per (src, dst)
    (the paper keeps only the minimum-weight parallel edge in E⁺)."""
    if src.size == 0:
        return src, dst, weight
    key = src.astype(np.int64) * n + dst
    order = np.argsort(key, kind="stable")
    key_s = key[order]
    w_s = weight[order]
    boundaries = np.ones(key_s.shape[0], dtype=bool)
    boundaries[1:] = key_s[1:] != key_s[:-1]
    starts = np.nonzero(boundaries)[0]
    best = semiring.add.reduceat(w_s, starts)
    uniq = key_s[starts]
    return (uniq // n).astype(np.int64), (uniq % n).astype(np.int64), best


def assemble_augmentation(
    graph: WeightedDigraph,
    tree: SeparatorTree,
    node_distances: dict[int, NodeDistances],
    leaf_diameters: dict[int, int],
    semiring: Semiring = MIN_PLUS,
    *,
    method: str,
    keep_node_distances: bool = True,
    ledger: Ledger = NULL_LEDGER,
) -> Augmentation:
    """Collect every node's ``E_t`` and deduplicate into ``E⁺``."""
    all_s, all_d, all_w = [], [], []
    for t in tree.nodes:
        nd = node_distances.get(t.idx)
        if nd is None:
            continue
        s, d, w = edges_from_node_matrix(nd, t.boundary, t.separator, semiring)
        all_s.append(s)
        all_d.append(d)
        all_w.append(w)
    if all_s:
        src = np.concatenate(all_s)
        dst = np.concatenate(all_d)
        wgt = np.concatenate(all_w)
    else:  # pragma: no cover - degenerate single-leaf tree
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
        wgt = np.empty(0, dtype=semiring.dtype)
    src, dst, wgt = dedupe_edges(graph.n, src, dst, wgt, semiring)
    ledger.charge(work=max(1.0, float(src.shape[0])), depth=1.0, label="assemble-eplus")
    return Augmentation(
        graph=graph,
        tree=tree,
        semiring=semiring,
        src=src,
        dst=dst,
        weight=wgt,
        leaf_diameters=leaf_diameters,
        node_distances=node_distances if keep_node_distances else {},
        method=method,
    )
