"""The formal serving contract: :class:`ServingBackend`.

Three tiers grew an *informal* serving surface one PR at a time — the
single :class:`~repro.core.query.QueryEngine` (PR 1), the sharded
:class:`~repro.shard.router.ShardRouter` (PR 5), and now the replicated
:class:`~repro.shard.replica.ReplicaPool` (this PR).  Each speaks the same
verbs, but until now the contract lived in docstrings and ``hasattr``
checks scattered through :class:`~repro.server.OracleServer`.  This module
makes it explicit:

* :class:`ServingBackend` — a runtime-checkable :class:`typing.Protocol`
  naming the five serving verbs (``submit`` / ``stats`` / ``reweight`` /
  ``close`` plus the ``weights_epoch`` marker and the ``query``
  convenience).  ``QueryEngine``, ``ShardRouter`` and ``ReplicaPool`` are
  its declared implementations; anything an ``engine_factory`` returns is
  checked against it at server startup (:func:`ensure_serving_backend`),
  so a missing method is a clear startup error naming the method instead
  of a mid-request ``AttributeError``.
* the **unified stats schema** — every backend's ``stats()`` carries the
  same canonical keys (:data:`SERVING_STATS_KEYS`): execution ``backend``,
  ``workers``, supervisor-side ``queue_depth``, recent-window
  ``queue_wait_ms`` p50/p99, the served ``weights_epoch``, lifetime
  ``queries_served`` / ``rows_served``, and a ``per_shard`` breakdown
  (empty for a single engine).  Tier-specific keys ride along; historical
  keys (``shards`` on the router, ``phases`` on the engine, …) are kept as
  deprecated aliases for one release.

The signatures intentionally differ per tier where the *payload* differs
(``QueryEngine.reweight`` takes an :class:`~repro.core.augment.
Augmentation`, ``ShardRouter.reweight`` a full weight vector,
``ReplicaPool.reweight`` per-shard local vectors): the contract is the
verb set and its semantics — epoch-guarded hot swap, thread-safe submit,
idempotent close — not one universal argument type, which is why the
protocol members are declared with permissive signatures.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

__all__ = [
    "SERVING_STATS_KEYS",
    "SERVING_VERBS",
    "ServingBackend",
    "ensure_serving_backend",
    "serving_stats",
]

#: The callable members of the serving contract (``weights_epoch`` is a
#: data member and is checked separately).
SERVING_VERBS = ("submit", "query", "stats", "reweight", "close")

#: Canonical keys every :meth:`ServingBackend.stats` dict carries.
SERVING_STATS_KEYS = (
    "backend",
    "workers",
    "queue_depth",
    "queue_wait_ms",
    "weights_epoch",
    "queries_served",
    "rows_served",
    "per_shard",
)


@runtime_checkable
class ServingBackend(Protocol):
    """What the coalescing server (and anything else that serves queries)
    may assume about an engine: the five verbs plus the epoch marker.

    Declared implementations: :class:`~repro.core.query.QueryEngine`,
    :class:`~repro.shard.router.ShardRouter`,
    :class:`~repro.shard.replica.ReplicaPool`.  The check is structural
    (``isinstance`` with this runtime-checkable protocol verifies member
    *presence*), so third-party engine factories participate by simply
    growing the members.
    """

    weights_epoch: int

    def submit(self, *args: Any, **kwargs: Any) -> tuple[Any, dict[str, Any]]:
        """Answer one batch; returns ``(result, info)`` where ``info`` has
        at least ``rows`` / ``shards`` / ``wall_s``."""
        ...  # pragma: no cover - protocol stub

    def query(self, *args: Any, **kwargs: Any) -> Any:
        """:meth:`submit` without the info record."""
        ...  # pragma: no cover - protocol stub

    def stats(self) -> dict[str, Any]:
        """Serving counters carrying :data:`SERVING_STATS_KEYS`."""
        ...  # pragma: no cover - protocol stub

    def reweight(self, *args: Any, **kwargs: Any) -> Any:
        """Epoch-guarded hot swap to new edge weights (zero downtime)."""
        ...  # pragma: no cover - protocol stub

    def close(self) -> None:
        """Release workers/arenas; idempotent."""
        ...  # pragma: no cover - protocol stub


def ensure_serving_backend(obj: Any, *, context: str = "engine") -> Any:
    """Assert ``obj`` satisfies :class:`ServingBackend`; returns ``obj``.

    Raises :class:`TypeError` naming every missing (or non-callable) member
    — the startup-time replacement for a mid-request ``AttributeError``.
    """
    missing = [
        verb
        for verb in SERVING_VERBS
        if not callable(getattr(obj, verb, None))
    ]
    if not hasattr(obj, "weights_epoch"):
        missing.append("weights_epoch")
    if missing:
        raise TypeError(
            f"{context} {type(obj).__name__!r} does not satisfy the "
            f"ServingBackend protocol: missing {missing} "
            f"(required: {list(SERVING_VERBS) + ['weights_epoch']}; see "
            "repro.core.protocols.ServingBackend)"
        )
    return obj


def serving_stats(
    *,
    backend: str,
    workers: int,
    queue_depth: int,
    weights_epoch: int,
    queries_served: int,
    rows_served: int,
    queue_wait_ms: dict[str, float] | None = None,
    per_shard: list[dict[str, Any]] | None = None,
) -> dict[str, Any]:
    """The canonical stats skeleton (:data:`SERVING_STATS_KEYS`); backends
    build on this so the schema cannot drift tier by tier again."""
    return {
        "backend": str(backend),
        "workers": int(workers),
        "queue_depth": int(queue_depth),
        "queue_wait_ms": (
            {"p50": 0.0, "p99": 0.0} if queue_wait_ms is None else queue_wait_ms
        ),
        "weights_epoch": int(weights_epoch),
        "queries_served": int(queries_served),
        "rows_served": int(rows_served),
        "per_shard": [] if per_shard is None else per_shard,
    }
