"""Witness-tracked augmentation: explicit paths for every certified pair.

Paper comment (ii): "The algorithm as stated computes only distances, but
it can be easily adapted to explicitly find minimum weight paths."  The
tight-edge tree of :mod:`repro.core.paths` already recovers per-source
trees; this module does the per-*pair* adaptation: Algorithm 4.1 is re-run
with argmin *witnesses* recorded at every ⊕, so any node-certified distance
— in particular every E⁺ edge — expands into an explicit vertex path of
original edges, recursively:

* a leaf pair expands through its Floyd–Warshall ``via`` matrix down to
  original edges;
* an internal pair is either DIRECT (inherited from a child: recurse into
  the child) or VIA (a first/last separator hit ``s₁, s₂``: expand
  ``i → s₁`` (child), ``s₁ ⇝ s₂`` (the separator-clique APSP, whose own FW
  ``via`` entries decompose into child segments), ``s₂ → j`` (child)).

The per-node storage is a constant number of integer matrices the size of
the distance matrix.  :class:`WitnessOracle` combines node expansion with
query-time argmins of the :class:`repro.apps.routing.DistanceOracle`
recursion to answer *arbitrary* pair-path queries — negative weights
included, no per-source pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.floyd_warshall import floyd_warshall_with_parents
from ..pram.machine import NULL_LEDGER, Ledger
from .digraph import WeightedDigraph
from .semiring import MIN_PLUS, Semiring
from .septree import SeparatorTree, SepTreeNode

__all__ = ["WitnessedNode", "WitnessOracle", "build_witnessed_augmentation"]

_DIRECT0 = 0  # achieved by child 0 (or a leaf / original edge)
_DIRECT1 = 1  # achieved by child 1
_VIA = 2  # achieved through separator waypoints (s1, s2)
_SELF = 3  # trivial (i == j)


@dataclass
class WitnessedNode:
    """Distances over the node's label set plus expansion witnesses."""

    node_idx: int
    vertices: np.ndarray  # sorted global ids (V_H for internal, V(t) for leaf)
    matrix: np.ndarray  # dist_{G(t)} on vertices × vertices
    is_leaf: bool
    # Leaf: FW via matrix (-1 = direct edge).  Internal: attribution arrays.
    leaf_via: np.ndarray | None = None
    kind: np.ndarray | None = None  # one of _DIRECT0/_DIRECT1/_VIA/_SELF
    via_s1: np.ndarray | None = None  # local S-position of the first hit
    via_s2: np.ndarray | None = None  # local S-position of the last hit
    sep_positions: np.ndarray | None = None  # S(t) positions within vertices
    ds_via: np.ndarray | None = None  # FW via matrix of the separator clique
    ds_kind: np.ndarray | None = None  # child attribution of W_S base edges


class WitnessError(RuntimeError):
    pass


def _min_with_witness(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(elementwise min, mask-where-b-strictly-wins)."""
    better = b < a
    return np.where(better, b, a), better


def build_witnessed_augmentation(
    graph: WeightedDigraph,
    tree: SeparatorTree,
    *,
    ledger: Ledger = NULL_LEDGER,
) -> dict[int, WitnessedNode]:
    """Algorithm 4.1 with witness recording (min-plus only)."""
    results: dict[int, WitnessedNode] = {}
    for level_nodes in tree.levels_desc():
        for t in level_nodes:
            if t.is_leaf:
                results[t.idx] = _witness_leaf(graph, t)
            else:
                results[t.idx] = _witness_internal(tree, t, results)
    ledger.charge(work=1.0, depth=1.0, label="witnesses")
    return results


def _witness_leaf(graph: WeightedDigraph, t: SepTreeNode) -> WitnessedNode:
    sub, mapping = graph.induced_subgraph(t.vertices)
    dist, via = floyd_warshall_with_parents(sub.dense_weights())
    return WitnessedNode(
        node_idx=t.idx, vertices=mapping, matrix=dist, is_leaf=True, leaf_via=via
    )


def _witness_internal(
    tree: SeparatorTree, t: SepTreeNode, results: dict[int, WitnessedNode]
) -> WitnessedNode:
    vh = np.union1d(t.separator, t.boundary)
    h = vh.shape[0]
    pos_s = np.searchsorted(vh, t.separator)
    direct = np.full((h, h), np.inf)
    np.fill_diagonal(direct, 0.0)
    direct_kind = np.full((h, h), _DIRECT0, dtype=np.int8)
    np.fill_diagonal(direct_kind, _SELF)
    for slot, c in enumerate(t.children):
        child = results[c]
        cb = tree.nodes[c].boundary
        common, pos_vh, pos_child_in_b = np.intersect1d(
            vh, cb, assume_unique=True, return_indices=True
        )
        if common.size == 0:
            continue
        child_pos = np.searchsorted(child.vertices, cb[pos_child_in_b])
        block = child.matrix[np.ix_(child_pos, child_pos)]
        tgt = direct[np.ix_(pos_vh, pos_vh)]
        merged, better = _min_with_witness(tgt, block)
        direct[np.ix_(pos_vh, pos_vh)] = merged
        kind_block = direct_kind[np.ix_(pos_vh, pos_vh)]
        kind_block[better] = _DIRECT0 if slot == 0 else _DIRECT1
        direct_kind[np.ix_(pos_vh, pos_vh)] = kind_block

    if pos_s.size == 0:
        return WitnessedNode(
            node_idx=t.idx, vertices=vh, matrix=direct, is_leaf=False,
            kind=direct_kind, via_s1=None, via_s2=None,
            sep_positions=pos_s, ds_via=None, ds_kind=None,
        )

    # Separator clique: W_S = Direct[S,S]; FW with via; base-edge kinds are
    # Direct's attributions on S×S.
    w_s = direct[np.ix_(pos_s, pos_s)]
    d_s, ds_via = floyd_warshall_with_parents(w_s)
    ds_kind = direct_kind[np.ix_(pos_s, pos_s)].copy()

    k = pos_s.shape[0]
    # L[i, s2] = min_{s1} Direct[i, s1] + D_S[s1, s2], with argmin s1.
    expanded = direct[:, pos_s][:, :, None] + d_s[None, :, :]  # (h, s1, s2)
    l_arg = np.argmin(expanded, axis=1)  # (h, s2)
    l_val = np.take_along_axis(expanded, l_arg[:, None, :], axis=1)[:, 0, :]
    # T[i, j] = min_{s2} L[i, s2] + Direct[s2, j], with argmin s2.
    three = l_val[:, :, None] + direct[pos_s, :][None, :, :]  # (h, s2, j)
    t_arg = np.argmin(three, axis=1)  # (h, j)
    t_val = np.take_along_axis(three, t_arg[:, None, :], axis=1)[:, 0, :]

    matrix, via_better = _min_with_witness(direct, t_val)
    kind = direct_kind.copy()
    kind[via_better] = _VIA
    via_s2 = t_arg.astype(np.int32)
    via_s1 = np.zeros((h, h), dtype=np.int32)
    # s1 for pair (i, j) is l_arg[i, s2(i, j)].
    via_s1[...] = np.take_along_axis(l_arg, via_s2, axis=1)

    # Cross assignments for exact S rows/cols: M[:, S] ⊕ L and M[S, :] ⊕ R.
    # L[i, s2] itself is a VIA path with last hit s2 (and first hit s1).
    cur = matrix[:, pos_s]
    better = l_val < cur
    matrix[:, pos_s] = np.where(better, l_val, cur)
    kind_cols = kind[:, pos_s]
    kind_cols[better] = _VIA
    kind[:, pos_s] = kind_cols
    s2_cols = via_s2[:, pos_s]
    s2_cols[better] = np.broadcast_to(np.arange(k, dtype=np.int32), (h, k))[better]
    via_s2[:, pos_s] = s2_cols
    s1_cols = via_s1[:, pos_s]
    s1_cols[better] = l_arg.astype(np.int32)[better]
    via_s1[:, pos_s] = s1_cols

    # R[s1, j] = min_{s2} D_S[s1, s2] + Direct[s2, j]: argmin from `three`
    # restricted to i ∈ S with L replaced... simpler: recompute directly.
    expanded_r = d_s[:, :, None] + direct[pos_s, :][None, :, :]  # (s1, s2, j)
    r_arg = np.argmin(expanded_r, axis=1)  # (s1, j)
    r_val = np.take_along_axis(expanded_r, r_arg[:, None, :], axis=1)[:, 0, :]
    cur = matrix[pos_s, :]
    better = r_val < cur
    matrix[pos_s, :] = np.where(better, r_val, cur)
    kind_rows = kind[pos_s, :]
    kind_rows[better] = _VIA
    kind[pos_s, :] = kind_rows
    s1_rows = via_s1[pos_s, :]
    s1_rows[better] = np.broadcast_to(
        np.arange(k, dtype=np.int32)[:, None], (k, h)
    )[better]
    via_s1[pos_s, :] = s1_rows
    s2_rows = via_s2[pos_s, :]
    s2_rows[better] = r_arg.astype(np.int32)[better]
    via_s2[pos_s, :] = s2_rows

    return WitnessedNode(
        node_idx=t.idx, vertices=vh, matrix=matrix, is_leaf=False,
        kind=kind, via_s1=via_s1, via_s2=via_s2,
        sep_positions=pos_s, ds_via=ds_via, ds_kind=ds_kind,
    )


class WitnessOracle:
    """Pair-path oracle: exact distances *and* explicit paths for any
    vertex pair, from the witnessed Algorithm 4.1 run."""

    def __init__(self, graph: WeightedDigraph, tree: SeparatorTree) -> None:
        self.graph = graph
        self.tree = tree
        self.nodes = build_witnessed_augmentation(graph, tree)

    # ------------------------------------------------------------------ #
    # Node-level expansion
    # ------------------------------------------------------------------ #

    def _expand_node_pair(self, t: SepTreeNode, u: int, v: int, out: list[int]) -> None:
        """Append the vertex sequence of an optimal ``u→v`` path within
        ``G(t)`` (excluding ``u``, including ``v``)."""
        wn = self.nodes[t.idx]
        iu = int(np.searchsorted(wn.vertices, u))
        iv = int(np.searchsorted(wn.vertices, v))
        if not (wn.vertices[iu] == u and wn.vertices[iv] == v):
            raise WitnessError(f"pair ({u},{v}) not certified at node {t.idx}")
        if not np.isfinite(wn.matrix[iu, iv]):
            raise WitnessError(f"no path for certified pair ({u},{v})")
        self._expand_local(t, wn, iu, iv, out)

    def _expand_local(self, t: SepTreeNode, wn: WitnessedNode, iu: int, iv: int,
                      out: list[int], depth: int = 0) -> None:
        if depth > 4 * self.graph.n:
            raise WitnessError("witness expansion runaway")
        if iu == iv:
            return
        if wn.is_leaf:
            self._expand_leaf(wn, iu, iv, out)
            return
        k = int(wn.kind[iu, iv])
        if k == _SELF:
            return
        if k in (_DIRECT0, _DIRECT1):
            child = self.tree.nodes[t.children[k]]
            self._expand_node_pair(child, int(wn.vertices[iu]), int(wn.vertices[iv]), out)
            return
        # VIA: u → s1 (direct), s1 ⇝ s2 (separator clique), s2 → v (direct).
        s1 = int(wn.sep_positions[wn.via_s1[iu, iv]])
        s2 = int(wn.sep_positions[wn.via_s2[iu, iv]])
        self._expand_direct(t, wn, iu, s1, out, depth)
        self._expand_sep(t, wn, int(wn.via_s1[iu, iv]), int(wn.via_s2[iu, iv]), out, depth)
        self._expand_direct(t, wn, s2, iv, out, depth)

    def _expand_direct(self, t: SepTreeNode, wn: WitnessedNode, i: int, j: int,
                       out: list[int], depth: int) -> None:
        """Expand a Direct (child-inherited) entry ``i→j``."""
        if i == j:
            return
        k = int(wn.kind[i, j]) if wn.kind is not None else _DIRECT0
        if k == _VIA:
            # A Direct factor is, by construction, never attributed VIA —
            # but the ⊕ in the matrix may have replaced it.  Recompute from
            # the child matrices instead.
            k = self._direct_child_of(t, wn, i, j)
        child = self.tree.nodes[t.children[k]]
        self._expand_node_pair(child, int(wn.vertices[i]), int(wn.vertices[j]), out)

    def _direct_child_of(self, t: SepTreeNode, wn: WitnessedNode, i: int, j: int) -> int:
        u, v = int(wn.vertices[i]), int(wn.vertices[j])
        best, slot = np.inf, 0
        for s, c in enumerate(t.children):
            cn = self.nodes[c]
            pu = int(np.searchsorted(cn.vertices, u))
            pv = int(np.searchsorted(cn.vertices, v))
            if (
                pu < cn.vertices.shape[0] and cn.vertices[pu] == u
                and pv < cn.vertices.shape[0] and cn.vertices[pv] == v
                and cn.matrix[pu, pv] < best
            ):
                best, slot = cn.matrix[pu, pv], s
        return slot

    def _expand_sep(self, t: SepTreeNode, wn: WitnessedNode, si: int, sj: int,
                    out: list[int], depth: int) -> None:
        """Expand a separator-clique entry ``S[si] ⇝ S[sj]`` through the FW
        via matrix, bottoming out at W_S base edges (child segments)."""
        if si == sj:
            return
        mid = int(wn.ds_via[si, sj])
        if mid < 0:
            # Base edge of H_S: a child-inherited segment.
            i = int(wn.sep_positions[si])
            j = int(wn.sep_positions[sj])
            k = int(wn.ds_kind[si, sj])
            if k == _SELF:
                return
            child = self.tree.nodes[t.children[k if k in (0, 1) else 0]]
            self._expand_node_pair(child, int(wn.vertices[i]), int(wn.vertices[j]), out)
            return
        self._expand_sep(t, wn, si, mid, out, depth + 1)
        self._expand_sep(t, wn, mid, sj, out, depth + 1)

    def _expand_leaf(self, wn: WitnessedNode, iu: int, iv: int, out: list[int]) -> None:
        mid = int(wn.leaf_via[iu, iv])
        if mid < 0:
            out.append(int(wn.vertices[iv]))
            return
        self._expand_leaf(wn, iu, mid, out)
        self._expand_leaf(wn, mid, iv, out)

    # ------------------------------------------------------------------ #
    # Global pair queries (the DistanceOracle recursion with argmins)
    # ------------------------------------------------------------------ #

    def path(self, u: int, v: int) -> list[int] | None:
        """Explicit minimum-weight ``u→v`` path in ``G`` (vertex list), or
        ``None`` when unreachable."""
        u, v = int(u), int(v)
        if u == v:
            return [u]
        dist, out = self._pair_path(self.tree.root, u, v)
        if not np.isfinite(dist):
            return None
        return [u] + out

    def distance(self, u: int, v: int) -> float:
        """Exact ``dist_G(u, v)`` via the witness recursion."""
        d, _ = self._pair_path(self.tree.root, int(u), int(v))
        return float(d)

    def _labeled(self, t: SepTreeNode, x: int) -> int | None:
        wn = self.nodes[t.idx]
        p = int(np.searchsorted(wn.vertices, x))
        if p < wn.vertices.shape[0] and wn.vertices[p] == x:
            return p
        return None

    def _child_containing(self, t: SepTreeNode, x: int) -> SepTreeNode:
        for c in t.children:
            child = self.tree.nodes[c]
            p = int(np.searchsorted(child.vertices, x))
            if p < child.vertices.shape[0] and child.vertices[p] == x:
                return child
        raise KeyError(x)

    def _to_boundary(self, t: SepTreeNode, x: int) -> np.ndarray:
        """dist_{G(t)}(x, b) over b ∈ B(t); paths recoverable via
        `_expand_to_boundary`."""
        wn = self.nodes[t.idx]
        p = self._labeled(t, x)
        bpos = np.searchsorted(wn.vertices, t.boundary)
        if p is not None:
            return wn.matrix[p, bpos]
        c = self._child_containing(t, x)
        vec = self._to_boundary(c, x)
        if vec.size == 0:
            return np.full(t.boundary.shape[0], np.inf)
        mid = wn.matrix[np.ix_(np.searchsorted(wn.vertices, c.boundary), bpos)]
        return np.min(vec[:, None] + mid, axis=0)

    def _from_boundary(self, t: SepTreeNode, x: int) -> np.ndarray:
        wn = self.nodes[t.idx]
        p = self._labeled(t, x)
        bpos = np.searchsorted(wn.vertices, t.boundary)
        if p is not None:
            return wn.matrix[bpos, p]
        c = self._child_containing(t, x)
        vec = self._from_boundary(c, x)
        if vec.size == 0:
            return np.full(t.boundary.shape[0], np.inf)
        mid = wn.matrix[np.ix_(bpos, np.searchsorted(wn.vertices, c.boundary))]
        return np.min(mid + vec[None, :], axis=1)

    def _expand_to_boundary(self, t: SepTreeNode, x: int, b_idx: int, out: list[int]) -> None:
        """Append an optimal path ``x → B(t)[b_idx]`` within G(t)."""
        p = self._labeled(t, x)
        b = int(t.boundary[b_idx])
        if p is not None:
            self._expand_node_pair(t, x, b, out)
            return
        c = self._child_containing(t, x)
        vec = self._to_boundary(c, x)
        wn = self.nodes[t.idx]
        mid = wn.matrix[
            np.ix_(
                np.searchsorted(wn.vertices, c.boundary),
                np.searchsorted(wn.vertices, t.boundary),
            )
        ]
        j = int(np.argmin(vec + mid[:, b_idx]))
        self._expand_to_boundary(c, x, j, out)
        self._expand_node_pair(t, int(c.boundary[j]), b, out)

    def _expand_from_boundary(self, t: SepTreeNode, b_idx: int, x: int, out: list[int]) -> None:
        p = self._labeled(t, x)
        b = int(t.boundary[b_idx])
        if p is not None:
            self._expand_node_pair(t, b, x, out)
            return
        c = self._child_containing(t, x)
        vec = self._from_boundary(c, x)
        wn = self.nodes[t.idx]
        mid = wn.matrix[
            np.ix_(
                np.searchsorted(wn.vertices, t.boundary),
                np.searchsorted(wn.vertices, c.boundary),
            )
        ]
        j = int(np.argmin(mid[b_idx, :] + vec))
        self._expand_node_pair(t, b, int(c.boundary[j]), out)
        self._expand_from_boundary(c, j, x, out)

    def _pair_path(self, t: SepTreeNode, u: int, v: int) -> tuple[float, list[int]]:
        """(dist_{G(t)}(u, v), path-suffix after u)."""
        wn = self.nodes[t.idx]
        iu, iv = self._labeled(t, u), self._labeled(t, v)
        if iu is not None and iv is not None:
            d = float(wn.matrix[iu, iv])
            out: list[int] = []
            if np.isfinite(d) and u != v:
                self._expand_node_pair(t, u, v, out)
            return d, out
        if iu is not None:
            c = self._child_containing(t, v)
            head = wn.matrix[iu, np.searchsorted(wn.vertices, c.boundary)]
            tail = self._from_boundary(c, v)
            if head.size == 0 or not np.isfinite((head + tail).min(initial=np.inf)):
                return np.inf, []
            j = int(np.argmin(head + tail))
            out = []
            self._expand_node_pair(t, u, int(c.boundary[j]), out)
            self._expand_from_boundary(c, j, v, out)
            return float((head + tail)[j]), out
        if iv is not None:
            c = self._child_containing(t, u)
            head = self._to_boundary(c, u)
            tail = wn.matrix[np.searchsorted(wn.vertices, c.boundary), iv]
            if head.size == 0 or not np.isfinite((head + tail).min(initial=np.inf)):
                return np.inf, []
            j = int(np.argmin(head + tail))
            out = []
            self._expand_to_boundary(c, u, j, out)
            self._expand_node_pair(t, int(c.boundary[j]), v, out)
            return float((head + tail)[j]), out
        cu = self._child_containing(t, u)
        cv = self._child_containing(t, v)
        if cu.idx == cv.idx:
            inner_d, inner_path = self._pair_path(cu, u, v)
        else:
            inner_d, inner_path = np.inf, []
        head = self._to_boundary(cu, u)
        tail = self._from_boundary(cv, v)
        via_d = np.inf
        b1 = b2 = -1
        if head.size and tail.size:
            wnm = wn.matrix[
                np.ix_(
                    np.searchsorted(wn.vertices, cu.boundary),
                    np.searchsorted(wn.vertices, cv.boundary),
                )
            ]
            total = head[:, None] + wnm + tail[None, :]
            flat = int(np.argmin(total))
            b1, b2 = np.unravel_index(flat, total.shape)
            via_d = float(total[b1, b2])
        if inner_d <= via_d:
            return inner_d, inner_path
        out = []
        self._expand_to_boundary(cu, u, int(b1), out)
        self._expand_node_pair(t, int(cu.boundary[int(b1)]), int(cv.boundary[int(b2)]), out)
        self._expand_from_boundary(cv, int(b2), v, out)
        return via_d, out
