"""One configuration object for the whole pipeline: :class:`OracleConfig`.

The build/serve surface grew one keyword at a time — ``method=`` on
:meth:`~repro.core.api.ShortestPathOracle.build`, ``executor=`` on the
augmentation builders, ``engine=`` on the query paths, ``kernel=`` on
everything — and every layer (facade, query engine, CLI, server) repeated
the same sprawl.  :class:`OracleConfig` consolidates the knobs into a single
frozen dataclass that travels intact through ``build`` →
``oracle.query_engine()`` → the socket server → the CLI.

The three historically overloaded knob names keep their meaning everywhere
(see ``docs/KNOBS.md`` for the one-page reference):

``engine``
    *Relaxation mode* of a query: ``"scheduled"`` (one exact §3.2 pass) or
    ``"naive"`` (full-edge Bellman–Ford to convergence).
``executor``
    *Hardware backend* running independent work:
    ``"serial" | "thread[:N]" | "process[:N]" | "shm[:N]"`` (or an
    executor instance) per :func:`repro.pram.executor.get_executor`.
``kernel``
    *Min-plus inner-loop implementation* used by preprocessing products
    and relaxation phases: ``None``/``"auto" | "reference" | "blocked" |
    "pruned" | "jit"`` per :mod:`repro.kernels.dispatch`; all choices are
    bit-identical (``"jit"`` is the compiled numba backend and requires
    the optional ``repro[jit]`` extra).

Back-compat contract
--------------------
Every call site that accepts ``config=`` keeps its historical kwargs.  A
kwarg alone behaves exactly as before (it overlays the defaults).  A kwarg
*and* a config that disagree emit a :class:`DeprecationWarning` and the
explicit kwarg wins — so existing callers see zero behavior change, and
mixed callers are nudged toward the config object.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable

from .semiring import MIN_PLUS, SEMIRINGS, Semiring

__all__ = ["OracleConfig", "UNSET", "resolve_config"]


class _Unset:
    """Sentinel distinguishing 'kwarg not passed' from any real value."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<UNSET>"


#: The module-wide sentinel used as the default of every back-compat kwarg.
UNSET = _Unset()

_METHODS = ("leaves_up", "doubling", "doubling_shared")
_MODES = ("exact", "approx", "auto")
_ENGINES = ("scheduled", "naive")


def _mode_error(name: object) -> ValueError:
    """A helpful error for an unknown distance mode: names every valid mode
    (same pattern as the kernel dispatcher's ``_kernel_error`` and the
    separator registry's ``_engine_error``)."""
    have = ", ".join(_MODES)
    return ValueError(
        f"unknown mode {name!r}; valid modes: {have} ('exact' serves exact "
        f"E⁺ distances, 'approx' builds a (1+eps) hopset, 'auto' gates on "
        f"separator quality via approx_gate; select via mode= or "
        f"OracleConfig.mode)"
    )
_KERNELS = (None, "auto", "reference", "blocked", "pruned", "jit")
_CACHE_MODES = ("off", "read", "readwrite")
_SHARD_BACKENDS = ("inline", "process")
_REWEIGHT_MODES = ("auto", "incremental", "rebuild")


@dataclass(frozen=True)
class OracleConfig:
    """Frozen bundle of every pipeline knob (build + serve).

    Attributes
    ----------
    method:
        Augmentation algorithm: ``"leaves_up"`` (Algorithm 4.1),
        ``"doubling"`` (Algorithm 4.3) or ``"doubling_shared"``
        (Remark 4.4 shared pairing table).
    mode:
        Distance fidelity: ``"exact"`` builds E⁺ and serves exact
        distances; ``"approx"`` builds a sampled-pivot ``(1+eps)`` hopset
        instead (:mod:`repro.hopset`) — the fit for dense digraphs,
        expanders and other graphs with no good separator; ``"auto"``
        scores the best first-pass separator tree
        (:func:`repro.separators.quality.separability_score`) and takes
        the hopset path when the score falls below ``approx_gate``.
    eps:
        Approximation slack of the hopset modes: every served distance
        satisfies ``d <= d_hat <= (1+eps)*d``.  Smaller eps means finer
        shortcut-weight rounding (a larger, slower-to-build hopset);
        ignored in exact mode.
    hopset_beta:
        Base hop budget ``k`` of the hopset construction (pivot rate
        ``3*ln(n)/k``, ball depth ``k``); ``0`` derives the
        work-balancing default ``k ~ sqrt(n*ln n)``.
    approx_gate:
        Separability threshold of ``mode="auto"``: below it the hopset
        path is taken, at or above it the exact E⁺ build runs.  Scores
        live in ``[0, 1]`` (grids score near 1, expanders near 0).
    separator:
        Decomposition engine when no tree is supplied: ``"auto"`` /
        ``"spectral"``, ``"planar"``, ``"treewidth"``, ``"multilevel"``,
        ``"lipton_tarjan"``, ``"flow"`` (max-flow refinement of the best
        first-pass engine), or a callable separator oracle.
    semiring:
        A :class:`~repro.core.semiring.Semiring` or its registry name
        (``"min_plus"``, ``"boolean"``, …); names keep the config
        JSON-serializable for the server and CLI.
    leaf_size:
        Decomposition recursion stops below this node size.
    executor:
        Backend spec per :func:`repro.pram.executor.get_executor`.
    kernel:
        Min-plus inner-loop kernel (:mod:`repro.kernels.dispatch`),
        threaded into both the matmuls and the relaxation phases;
        ``"jit"`` selects the compiled numba backend (optional
        ``repro[jit]`` extra — raises at resolve time when absent).
    keep_node_distances:
        Retain per-node distance matrices after the build (needed by the
        k-pair witness oracle; costs memory).
    validate:
        Run the decomposition validity check before augmenting.
    engine:
        Query relaxation mode: ``"scheduled"`` or ``"naive"``.
    source_block:
        Row-block size bounding per-phase temporaries in batched queries
        (``None`` → :data:`repro.core.sssp.SOURCE_BLOCK`).
    cache:
        Augmentation-cache mode for :meth:`ShortestPathOracle.build`:
        ``"off"`` (never touch the store), ``"read"`` (load a hit, never
        write), ``"readwrite"`` (load a hit, persist a miss).  See
        :mod:`repro.cache`.
    cache_dir:
        Store directory override (``None`` → ``REPRO_CACHE_DIR`` or
        ``~/.cache/repro/aug``).
    row_cache:
        Capacity (in source rows) of the per-source distance-row LRU of
        :class:`~repro.core.query.QueryEngine`; ``0`` disables it.
        A repeated source is answered from the cache without relaxation —
        bit-identical by determinism of both engines.
    shards:
        Shard count for the separator-sharded fleet
        (:mod:`repro.shard`): ``0`` serves with a single engine, ``k >= 1``
        cuts the separator tree into ``k`` shard oracles routed through
        the boundary-clique spine.
    shard_backend:
        Where shard engines live: ``"process"`` (one worker process per
        shard, each owning its own shm arena) or ``"inline"`` (K engines
        in the calling process — zero IPC, useful for tests and
        single-CPU hosts).
    shard_pin:
        Pin each shard worker process to one CPU via
        ``os.sched_setaffinity`` (process backend only), so a shard's
        pages stay on the NUMA node of the CPU that computes them.
    replicas:
        Worker replicas per shard for the process-backend fleet. ``1``
        keeps one worker per shard; ``N > 1`` serves every shard through
        a :class:`~repro.shard.replica.ReplicaPool` with least-loaded
        chunked dispatch across N warm replicas — bit-identical results,
        a hot shard no longer caps throughput.
    max_replicas:
        Autoscale ceiling on replicas per shard. ``0`` derives it
        (``replicas`` with autoscale off, ``2 * replicas`` with it on);
        an explicit value must be ``>= replicas``.
    autoscale_target_p99_ms:
        Queue-wait p99 target (milliseconds) driving the hot-shard
        autoscaler; ``0`` disables autoscale. A shard whose recent
        dispatch queue-wait p99 exceeds the target gains a replica
        spawned warm from the augmentation cache (up to
        ``max_replicas``); a shard idling far below it drain-retires an
        extra replica with zero failed in-flight queries.
    admission_queue_limit:
        Admission-control cap on admitted-but-unfinished row requests at
        the :class:`~repro.server.OracleServer`; past it (or when the
        predicted queue wait already exceeds the request deadline) the
        server sheds early with 429 instead of queueing into the
        deadline. ``0`` defers to ``ServerConfig.queue_limit``.
    refine_separators:
        Post-pass flow refinement of the separator tree: after the tree is
        resolved (built *or* supplied), re-solve every node's cut as a
        minimum vertex cut (:mod:`repro.separators.flow`), falling back
        per-node/per-tree whenever balance or validity would suffer.
        Smaller |S(t)| compounds through |E⁺|, the shard spine, and every
        query; costs extra build time. No-op when ``separator="flow"``
        already refined the tree.
    refine_max_nodes:
        Guardrail for the refiner: tree nodes whose subgraph exceeds this
        many vertices keep their unrefined cut, bounding the extra
        preprocessing the flow solver may spend.
    reweight:
        How :meth:`ShortestPathOracle.with_new_weights` refreshes E⁺:
        ``"auto"`` replays captured build provenance leaves-up when the
        skeleton and method allow it and falls back to a full rebuild
        otherwise; ``"incremental"`` requires the replay path (raises if
        ineligible); ``"rebuild"`` always reruns the §4 construction.
        All modes produce bit-identical augmentations.
    """

    method: str = "leaves_up"
    mode: str = "exact"
    eps: float = 0.1
    hopset_beta: int = 0
    approx_gate: float = 0.5
    separator: str | Callable | None = "auto"
    semiring: str | Semiring = MIN_PLUS
    leaf_size: int = 8
    executor: Any = "serial"
    kernel: str | None = None
    keep_node_distances: bool = False
    validate: bool = False
    engine: str = "scheduled"
    source_block: int | None = None
    cache: str = "off"
    cache_dir: str | None = None
    row_cache: int = 0
    shards: int = 0
    shard_backend: str = "process"
    shard_pin: bool = False
    replicas: int = 1
    max_replicas: int = 0
    autoscale_target_p99_ms: float = 0.0
    admission_queue_limit: int = 0
    refine_separators: bool = False
    refine_max_nodes: int = 20_000
    reweight: str = "auto"

    def __post_init__(self) -> None:
        if self.method not in _METHODS:
            raise ValueError(f"method must be one of {_METHODS}, got {self.method!r}")
        if self.mode not in _MODES:
            raise _mode_error(self.mode)
        if float(self.eps) < 0:
            raise ValueError(f"eps must be >= 0, got {self.eps!r}")
        if int(self.hopset_beta) < 0:
            raise ValueError(
                f"hopset_beta must be >= 0 (0 derives sqrt(n*ln n)), "
                f"got {self.hopset_beta!r}"
            )
        if not 0.0 <= float(self.approx_gate) <= 1.0:
            raise ValueError(
                f"approx_gate must be in [0, 1], got {self.approx_gate!r}"
            )
        if self.engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {self.engine!r}")
        if self.kernel not in _KERNELS:
            raise ValueError(f"kernel must be one of {_KERNELS}, got {self.kernel!r}")
        if isinstance(self.semiring, str) and self.semiring not in SEMIRINGS:
            raise ValueError(
                f"unknown semiring {self.semiring!r}; known: {sorted(SEMIRINGS)}"
            )
        if self.cache not in _CACHE_MODES:
            raise ValueError(f"cache must be one of {_CACHE_MODES}, got {self.cache!r}")
        if int(self.row_cache) < 0:
            raise ValueError(f"row_cache must be >= 0, got {self.row_cache!r}")
        if int(self.shards) < 0:
            raise ValueError(f"shards must be >= 0, got {self.shards!r}")
        if self.shard_backend not in _SHARD_BACKENDS:
            raise ValueError(
                f"shard_backend must be one of {_SHARD_BACKENDS}, "
                f"got {self.shard_backend!r}"
            )
        if int(self.replicas) < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas!r}")
        if int(self.max_replicas) < 0:
            raise ValueError(f"max_replicas must be >= 0, got {self.max_replicas!r}")
        if self.max_replicas and int(self.max_replicas) < int(self.replicas):
            raise ValueError(
                f"max_replicas ({self.max_replicas}) must be >= replicas "
                f"({self.replicas}); pass 0 to derive it"
            )
        if float(self.autoscale_target_p99_ms) < 0:
            raise ValueError(
                "autoscale_target_p99_ms must be >= 0 (0 disables autoscale), "
                f"got {self.autoscale_target_p99_ms!r}"
            )
        if int(self.admission_queue_limit) < 0:
            raise ValueError(
                "admission_queue_limit must be >= 0 (0 defers to the server's "
                f"queue_limit), got {self.admission_queue_limit!r}"
            )
        if int(self.refine_max_nodes) < 1:
            raise ValueError(
                f"refine_max_nodes must be >= 1, got {self.refine_max_nodes!r}"
            )
        if self.reweight not in _REWEIGHT_MODES:
            raise ValueError(
                f"reweight must be one of {_REWEIGHT_MODES}, got {self.reweight!r}"
            )

    # -------------------------------------------------------------- #

    @property
    def resolved_semiring(self) -> Semiring:
        """The :class:`Semiring` instance (resolving a registry name)."""
        if isinstance(self.semiring, str):
            return SEMIRINGS[self.semiring]
        return self.semiring

    @property
    def resolved_max_replicas(self) -> int:
        """The effective per-shard replica ceiling: ``max_replicas`` when
        set, else ``replicas`` (autoscale off) or ``2 * replicas``
        (autoscale on — headroom for the hot shard)."""
        if int(self.max_replicas) > 0:
            return int(self.max_replicas)
        if float(self.autoscale_target_p99_ms) > 0:
            return 2 * int(self.replicas)
        return int(self.replicas)

    @classmethod
    def field_docs(cls) -> dict[str, str]:
        """Per-field documentation parsed from this class's numpy-style
        ``Attributes`` docstring section — the single source the CLI's
        ``--help`` text is generated from (so flag help can never drift
        from the dataclass docs)."""
        lines = (cls.__doc__ or "").splitlines()
        try:
            start = (
                next(i for i, ln in enumerate(lines) if ln.strip() == "Attributes")
                + 2
            )
        except StopIteration:  # pragma: no cover - docstring always present
            return {}
        names = {f.name for f in dataclasses.fields(cls)}
        docs: dict[str, list[str]] = {}
        current: str | None = None
        for line in lines[start:]:
            stripped = line.strip()
            if stripped.endswith(":") and stripped[:-1] in names:
                current = stripped[:-1]
                docs[current] = []
            elif current is not None and stripped:
                docs[current].append(stripped)
        return {k: " ".join(v) for k, v in docs.items()}

    @classmethod
    def field_doc(cls, name: str) -> str:
        """First sentence of :meth:`field_docs` for ``name``, stripped of
        rst markup — sized for an ``argparse`` help string."""
        text = cls.field_docs().get(name, "")
        for role in (":class:", ":meth:", ":mod:", ":func:", ":data:"):
            text = text.replace(role, "")
        text = text.replace("``", "").replace("`~", "").replace("`", "")
        head, _, _ = text.partition(". ")
        return head.rstrip(".") if head else name

    def replace(self, **changes) -> "OracleConfig":
        """A copy with the given fields changed (frozen-friendly)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able dict (semiring by name; non-string separators and
        executor instances are rejected — they cannot cross a socket)."""
        d = dataclasses.asdict(self)
        d["semiring"] = self.resolved_semiring.name
        if callable(self.separator):
            raise TypeError("callable separator is not serializable; pass a name")
        if not (self.executor is None or isinstance(self.executor, str)):
            raise TypeError("executor instance is not serializable; pass a spec string")
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "OracleConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected loudly."""
        known = {f.name for f in dataclasses.fields(cls)}
        extra = set(d) - known
        if extra:
            raise ValueError(f"unknown OracleConfig keys: {sorted(extra)}")
        return cls(**d)


def _values_equal(name: str, a: Any, b: Any) -> bool:
    if name == "semiring":
        a = a.name if isinstance(a, Semiring) else a
        b = b.name if isinstance(b, Semiring) else b
    return a is b or a == b


def resolve_config(config: OracleConfig | None, **overrides) -> OracleConfig:
    """Merge back-compat kwargs over a config into one resolved config.

    ``overrides`` values equal to :data:`UNSET` are ignored (the kwarg was
    not passed).  With ``config=None``, the remaining overrides simply fill
    an :class:`OracleConfig` — the historical kwargs-only path, bit-for-bit.
    With a config given, an explicitly passed kwarg that *disagrees* with
    the config emits a :class:`DeprecationWarning` and wins, so legacy
    callers migrating incrementally never change behavior silently.
    """
    changes = {k: v for k, v in overrides.items() if v is not UNSET}
    if config is None:
        return OracleConfig(**changes)
    conflicts = [
        k for k, v in changes.items() if not _values_equal(k, v, getattr(config, k))
    ]
    if conflicts:
        warnings.warn(
            "both config= and explicit kwargs were given with different values "
            f"for {conflicts}; the explicit kwargs win. Pass the value inside "
            "OracleConfig (kwarg overrides of a config are deprecated).",
            DeprecationWarning,
            stacklevel=3,
        )
    return config.replace(**changes) if changes else config
