"""Core of the reproduction: the paper's primary contribution — separator
trees (§2.3), the augmentation E⁺ (§3, §4), the level-scheduled query
engine (§3.2), reachability, negative cycles, paths, and the facade."""
