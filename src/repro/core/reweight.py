"""Incremental reweighting — Algorithm 4.1 as a weight-only sweep.

Paper comment (iv): the separator decomposition, and therefore the
*structure* of ``E⁺`` (which vertex pairs get a shortcut, which leaf or
separator clique each shortcut's weight flows through), depends only on the
unweighted skeleton.  A :class:`ReweightPlan` captures that structure once —
per-node matrix offsets into one flat "heap", the per-leaf edge scatter
lists, the per-level gather/scatter index stacks of the child-combine and
three-hop products, the full pair multiset behind E⁺ assembly, and the §3.2
phase permutations — so that re-deriving E⁺ for *new weights on the same
skeleton* is a handful of vectorized passes with **no separator recursion,
no per-node Python loop, and no schedule rebuild**.

Bit-identity with a cold :func:`~repro.core.leaves_up.augment_leaves_up`
build is a hard invariant (test file ``tests/test_reweight.py``); the plan
therefore replays Algorithm 4.1's exact operation order:

* leaves: one padded ``(L, P, P)`` Floyd–Warshall(-with-hops) over all
  leaves at once.  Padding rows/cols hold 0̄, which is absorbing under ⊗ and
  the ⊕-identity, so extra pivots and product terms are elementwise no-ops
  for every shipped semiring.
* internal levels, deepest first: identity init, child blocks ⊕-combined in
  child order (one vectorized pass per child position), a padded batched FW
  on the separator cliques, the three ``Direct[:,S] ⊗ D_S ⊗ Direct[S,:]``
  products as broadcast ⊗/⊕-reductions, and the three ⊕-scatters applied in
  the cold builder's sequence.  The FW pivot loop also replaces the boolean
  closure kernel — transitive closure is unique, so the values agree.
* assembly: the *full* pair multiset (only the structural ``src != dst``
  filter applied) is cached with a stable sort permutation; at reweight the
  0̄ "no path" filter is applied *after* the ⊕-reduction, which provably
  yields the same edge set as filtering first (0̄ is the ⊕-identity, and a
  group that reduces to 0̄ is exactly a group the cold path dropped whole).

The **sparse** path (``dirty_edges``) touches only the root paths of leaves
containing changed edges: every original edge has both endpoints in at
least one leaf and internal direct matrices contain no one-hop edges, so
the dirty set is precisely those leaves plus their ancestors.  Clean nodes'
matrices, diameters and assembly chunks are carried over from the base
:class:`ReweightState`.

Negative-cycle detection replays the cold walk: levels deepest first, nodes
in index order within a level, first offending vertex in label order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..kernels.bellman_ford import EdgeRelaxer, min_weight_diameter
from .augment import (
    Augmentation,
    NegativeCycleDetected,
    NodeDistances,
)
from .digraph import WeightedDigraph
from .semiring import Semiring
from .septree import SeparatorTree

__all__ = ["ReweightPlan", "ReweightState"]


@dataclass
class ReweightState:
    """Weight-dependent byproducts of one sweep, kept on the augmentation
    (as ``aug._reweight_state``) so a later *sparse* reweight can start from
    them instead of from scratch."""

    #: flat per-node matrix heap (one extra 0̄ sentinel slot at the end).
    heap: np.ndarray
    #: per-leaf min-weight diameters, aligned with the plan's leaf rows.
    leaf_diam: np.ndarray


@dataclass
class _LevelPlan:
    """Index stacks for one internal level (nodes in tree index order)."""

    nodes: np.ndarray            # node idx of the level's internal nodes
    H: int                       # max |S ∪ B| over the level
    S: int                       # max |S| over the level
    init_idx: np.ndarray         # flat heap slots of every node region
    init_ptr: np.ndarray         # per-node ranges into init_idx
    diag_idx: np.ndarray         # flat heap slots of the 1̄ diagonals
    diag_ptr: np.ndarray
    #: per child position: (gather from child, scatter into parent, ptr).
    passes: list[tuple[np.ndarray, np.ndarray, np.ndarray]]
    fw_gather: np.ndarray        # (B, S, S) → separator-clique blocks
    a1_gather: np.ndarray        # (B, H, S) → Direct[:, S]
    r_gather: np.ndarray         # (B, S, H) → Direct[S, :]
    block_idx: np.ndarray        # (B, H, H) → full node region
    check_nodes: np.ndarray      # ALL nodes of this tree level, idx order
    check_diag_idx: np.ndarray   # their diagonal slots, concatenated
    check_owner: np.ndarray      # diag slot → row into check_nodes
    check_vertex: np.ndarray     # diag slot → global vertex label


class ReweightPlan:
    """Structure-only replay plan for Algorithm 4.1 on a fixed skeleton.

    Capture once per ``(graph structure, tree)``; every
    :meth:`run` call then re-derives a full :class:`Augmentation` for a new
    weight vector.  The plan is independent of the semiring and of which
    augmentation *method* built the base oracle (Algorithm 4.3 certifies
    the same matrices on ``B×B ∪ S×S``, hence the same E⁺).
    """

    def __init__(self, graph: WeightedDigraph, tree: SeparatorTree) -> None:
        self.tree = tree
        self.n = int(graph.n)
        self.m = int(graph.m)
        self._src = graph.src
        self._dst = graph.dst
        self._capture(graph, tree)
        #: lazily built §3.2 schedule structure (see ensure_schedule_cache).
        self._sched: dict[str, Any] | None = None

    @classmethod
    def capture(cls, graph: WeightedDigraph, tree: SeparatorTree) -> "ReweightPlan":
        """Record the structural provenance of every shortcut weight."""
        return cls(graph, tree)

    # ------------------------------------------------------------------ #
    # capture
    # ------------------------------------------------------------------ #

    def _capture(self, graph: WeightedDigraph, tree: SeparatorTree) -> None:
        nodes = tree.nodes
        n_nodes = len(nodes)
        self.vh: list[np.ndarray] = [None] * n_nodes  # type: ignore[list-item]
        self.node_h = np.zeros(n_nodes, dtype=np.int64)
        for t in nodes:
            vh = (
                np.unique(np.asarray(t.vertices, dtype=np.int64))
                if t.is_leaf
                else np.union1d(t.separator, t.boundary)
            )
            self.vh[t.idx] = vh
            self.node_h[t.idx] = vh.shape[0]
        self.node_off = np.zeros(n_nodes + 1, dtype=np.int64)
        np.cumsum(self.node_h**2, out=self.node_off[1:])
        self.heap_size = int(self.node_off[-1])
        self.sentinel = self.heap_size  # one extra 0̄ slot for padded gathers

        self._capture_leaves(graph, tree)
        self._capture_levels(tree)
        self._capture_assembly(tree)

    def _capture_leaves(self, graph: WeightedDigraph, tree: SeparatorTree) -> None:
        leaves = [t for t in tree.nodes if t.is_leaf]
        L = len(leaves)
        self.leaf_nodes = np.array([t.idx for t in leaves], dtype=np.int64)
        self.leaf_row = {int(t.idx): r for r, t in enumerate(leaves)}
        self.leaf_h = self.node_h[self.leaf_nodes]
        self.P = int(self.leaf_h.max(initial=1))
        e_ids, e_src, e_dst, e_cnt = [], [], [], np.zeros(L, dtype=np.int64)
        wb_local, wb_heap, wb_cnt = [], [], np.zeros(L, dtype=np.int64)
        P = self.P
        for r, t in enumerate(leaves):
            vh = self.vh[t.idx]
            ids = np.nonzero(graph.edge_membership(vh))[0]
            e_ids.append(ids)
            e_src.append(np.searchsorted(vh, graph.src[ids]))
            e_dst.append(np.searchsorted(vh, graph.dst[ids]))
            e_cnt[r] = ids.shape[0]
            h = vh.shape[0]
            ii, jj = np.divmod(np.arange(h * h, dtype=np.int64), h)
            wb_local.append(ii * P + jj)
            wb_heap.append(self.node_off[t.idx] + np.arange(h * h, dtype=np.int64))
            wb_cnt[r] = h * h
        self.le_edge = _concat_i64(e_ids)
        self.le_src = _concat_i64(e_src)
        self.le_dst = _concat_i64(e_dst)
        self.le_cnt = e_cnt
        self.le_row = np.repeat(np.arange(L, dtype=np.int64), e_cnt)
        self.wb_local = _concat_i64(wb_local)
        self.wb_heap = _concat_i64(wb_heap)
        self.wb_cnt = wb_cnt
        #: edge id -> rows of the leaves containing it (several when the
        #: edge lies inside overlapping leaf vertex sets).
        order = np.argsort(self.le_edge, kind="stable")
        self._edge_sorted = self.le_edge[order]
        self._edge_sorted_row = self.le_row[order]

    def _capture_levels(self, tree: SeparatorTree) -> None:
        off, node_h, sentinel = self.node_off, self.node_h, self.sentinel
        self.levels: list[_LevelPlan] = []
        for level_nodes in tree.levels_desc():
            internal = [t for t in level_nodes if not t.is_leaf]
            check_nodes = np.array([t.idx for t in level_nodes], dtype=np.int64)
            cd_idx, cd_cnt = [], np.zeros(check_nodes.shape[0], dtype=np.int64)
            for i, t in enumerate(level_nodes):
                h = int(node_h[t.idx])
                cd_idx.append(off[t.idx] + np.arange(h, dtype=np.int64) * (h + 1))
                cd_cnt[i] = h
            check_diag_idx = _concat_i64(cd_idx)
            check_owner = np.repeat(
                np.arange(check_nodes.shape[0], dtype=np.int64), cd_cnt
            )
            check_vertex = _concat_i64([self.vh[t.idx] for t in level_nodes])
            if not internal:
                if check_nodes.size:
                    self.levels.append(_LevelPlan(
                        nodes=np.empty(0, dtype=np.int64), H=0, S=0,
                        init_idx=np.empty(0, dtype=np.int64), init_ptr=_ptr(np.empty(0, dtype=np.int64)),
                        diag_idx=np.empty(0, dtype=np.int64), diag_ptr=_ptr(np.empty(0, dtype=np.int64)),
                        passes=[],
                        fw_gather=np.empty((0, 0, 0), dtype=np.int64),
                        a1_gather=np.empty((0, 0, 0), dtype=np.int64),
                        r_gather=np.empty((0, 0, 0), dtype=np.int64),
                        block_idx=np.empty((0, 0, 0), dtype=np.int64),
                        check_nodes=check_nodes,
                        check_diag_idx=check_diag_idx,
                        check_owner=check_owner,
                        check_vertex=check_vertex,
                    ))
                continue
            B = len(internal)
            idxs = np.array([t.idx for t in internal], dtype=np.int64)
            hs = node_h[idxs]
            ss = np.array([len(t.separator) for t in internal], dtype=np.int64)
            H, S = int(hs.max()), int(max(1, ss.max(initial=0)))
            init_idx, init_cnt = [], np.zeros(B, dtype=np.int64)
            diag_idx, diag_cnt = [], np.zeros(B, dtype=np.int64)
            fw = np.full((B, S, S), sentinel, dtype=np.int64)
            a1 = np.full((B, H, S), sentinel, dtype=np.int64)
            rr = np.full((B, S, H), sentinel, dtype=np.int64)
            blk = np.full((B, H, H), sentinel, dtype=np.int64)
            max_children = max(len(t.children) for t in internal)
            pass_tgt: list[list[np.ndarray]] = [[] for _ in range(max_children)]
            pass_src: list[list[np.ndarray]] = [[] for _ in range(max_children)]
            pass_cnt = [np.zeros(B, dtype=np.int64) for _ in range(max_children)]
            for b, t in enumerate(internal):
                vh = self.vh[t.idx]
                h = int(node_h[t.idx])
                base = off[t.idx]
                init_idx.append(base + np.arange(h * h, dtype=np.int64))
                init_cnt[b] = h * h
                diag_idx.append(base + np.arange(h, dtype=np.int64) * (h + 1))
                diag_cnt[b] = h
                pos_s = np.searchsorted(vh, t.separator)
                s = pos_s.shape[0]
                blk[b, :h, :h] = base + np.arange(h * h, dtype=np.int64).reshape(h, h)
                if s:
                    fw[b, :s, :s] = base + pos_s[:, None] * h + pos_s[None, :]
                    a1[b, :h, :s] = base + np.arange(h, dtype=np.int64)[:, None] * h + pos_s[None, :]
                    rr[b, :s, :h] = base + pos_s[:, None] * h + np.arange(h, dtype=np.int64)[None, :]
                for p, c in enumerate(t.children):
                    child_vh = self.vh[c]
                    bdy = tree.nodes[c].boundary
                    cidx = np.searchsorted(child_vh, bdy)
                    common, pos_vh, pos_child = np.intersect1d(
                        vh, bdy, assume_unique=True, return_indices=True
                    )
                    if common.size == 0:
                        continue
                    ci = cidx[pos_child]
                    pass_tgt[p].append(
                        (base + pos_vh[:, None] * h + pos_vh[None, :]).ravel()
                    )
                    pass_src[p].append(
                        (off[c] + ci[:, None] * node_h[c] + ci[None, :]).ravel()
                    )
                    pass_cnt[p][b] = common.size ** 2
            self.levels.append(_LevelPlan(
                nodes=idxs, H=H, S=S,
                init_idx=_concat_i64(init_idx), init_ptr=_ptr(init_cnt),
                diag_idx=_concat_i64(diag_idx), diag_ptr=_ptr(diag_cnt),
                passes=[
                    (_concat_i64(pass_tgt[p]), _concat_i64(pass_src[p]), _ptr(pass_cnt[p]))
                    for p in range(max_children)
                ],
                fw_gather=fw, a1_gather=a1, r_gather=rr, block_idx=blk,
                check_nodes=check_nodes,
                check_diag_idx=check_diag_idx,
                check_owner=check_owner,
                check_vertex=check_vertex,
            ))

    def _capture_assembly(self, tree: SeparatorTree) -> None:
        n = self.n
        gather, keys = [], []
        for t in tree.nodes:
            vh = self.vh[t.idx]
            h = int(self.node_h[t.idx])
            base = self.node_off[t.idx]
            for group in (t.boundary, t.separator):
                if group.shape[0] < 2:
                    continue
                idx = np.searchsorted(vh, group)
                k = group.shape[0]
                rows = np.repeat(group, k)
                cols = np.tile(group, k)
                flat = (base + idx[:, None] * h + idx[None, :]).ravel()
                keep = rows != cols  # structural filter only; 0̄ is deferred
                gather.append(flat[keep])
                keys.append(rows[keep].astype(np.int64) * n + cols[keep])
        self.asm_gather = _concat_i64(gather)
        key = _concat_i64(keys)
        self.asm_order = np.argsort(key, kind="stable")
        key_s = key[self.asm_order]
        boundaries = np.ones(key_s.shape[0], dtype=bool)
        if key_s.shape[0]:
            boundaries[1:] = key_s[1:] != key_s[:-1]
        self.asm_starts = np.nonzero(boundaries)[0]
        self.asm_uniq = key_s[self.asm_starts]
        self.asm_src = (self.asm_uniq // n).astype(np.int64)
        self.asm_dst = (self.asm_uniq % n).astype(np.int64)

    # ------------------------------------------------------------------ #
    # the sweep
    # ------------------------------------------------------------------ #

    def run(
        self,
        graph: WeightedDigraph,
        semiring: Semiring,
        *,
        base_state: ReweightState | None = None,
        dirty_edges: np.ndarray | None = None,
        keep_node_distances: bool = False,
        raise_on_negative_cycle: bool = True,
        kernel: str | None = None,
    ) -> Augmentation:
        """One weight-only sweep; returns a fresh :class:`Augmentation`
        (with ``_reweight_state`` attached) for ``graph``'s weights.

        ``dirty_edges`` (edge ids whose weight changed, requires
        ``base_state``) restricts the sweep to the root paths of leaves
        containing those edges.  The base state is never mutated — a
        negative-cycle raise leaves the serving augmentation intact.
        ``kernel`` is the lineage's relaxation-kernel preference; it must
        arrive here (not be patched on afterwards) because the cloned
        schedule's relaxers are built before this method returns.
        """
        zero, dtype = semiring.zero, semiring.dtype
        sparse = dirty_edges is not None and base_state is not None
        if sparse:
            dirty_nodes = self._dirty_nodes(np.asarray(dirty_edges, dtype=np.int64))
            heap = base_state.heap.copy()
            leaf_diam = base_state.leaf_diam.copy()
        else:
            dirty_nodes = None
            heap = np.full(self.heap_size + 1, zero, dtype=dtype)
            leaf_diam = np.zeros(self.leaf_nodes.shape[0], dtype=np.int64)

        self._run_leaves(graph, semiring, heap, leaf_diam, dirty_nodes)
        self._run_levels(semiring, heap, dirty_nodes)
        heap[self.sentinel] = zero  # padded scatters keep the slot 0̄
        self._check_cycles(semiring, heap, raise_on_negative_cycle)
        src, dst, weight = self._assemble(semiring, heap)
        diam_map = {int(t): int(d) for t, d in zip(self.leaf_nodes, leaf_diam)}
        node_distances: dict[int, NodeDistances] = {}
        if keep_node_distances:
            for t in self.tree.nodes:
                h = int(self.node_h[t.idx])
                base = int(self.node_off[t.idx])
                node_distances[t.idx] = NodeDistances(
                    node_idx=t.idx,
                    vertices=self.vh[t.idx],
                    matrix=heap[base : base + h * h].reshape(h, h),
                )
        aug = Augmentation(
            graph=graph,
            tree=self.tree,
            semiring=semiring,
            src=src,
            dst=dst,
            weight=weight,
            leaf_diameters=diam_map,
            node_distances=node_distances,
            # the sweep reproduces Algorithm 4.1's output bit-for-bit, so
            # the lineage keeps the builder's method tag (and with it its
            # eligibility for further incremental reweights).
            method="leaves_up",
            kernel=kernel,
        )
        aug._reweight_state = ReweightState(  # type: ignore[attr-defined]
            heap=heap, leaf_diam=leaf_diam
        )
        schedule = self._clone_schedule(aug)
        if schedule is not None:
            aug._schedule = schedule
        return aug

    # -------------------------- leaves ----------------------------- #

    def _dirty_nodes(self, dirty_edges: np.ndarray) -> np.ndarray:
        """Boolean mask over tree nodes: leaves containing a changed edge
        plus all their ancestors (the shortcut root paths)."""
        lo = np.searchsorted(self._edge_sorted, dirty_edges, side="left")
        hi = np.searchsorted(self._edge_sorted, dirty_edges, side="right")
        rows: list[np.ndarray] = [
            self._edge_sorted_row[a:b] for a, b in zip(lo, hi)
        ]
        dirty = np.zeros(len(self.tree.nodes), dtype=bool)
        for r in np.unique(_concat_i64(rows)):
            t = self.tree.nodes[int(self.leaf_nodes[r])]
            while t is not None and not dirty[t.idx]:
                dirty[t.idx] = True
                t = self.tree.nodes[t.parent] if t.parent is not None and t.parent >= 0 else None
        return dirty

    def _run_leaves(
        self,
        graph: WeightedDigraph,
        semiring: Semiring,
        heap: np.ndarray,
        leaf_diam: np.ndarray,
        dirty_nodes: np.ndarray | None,
    ) -> None:
        """Batched leaf APSP + min-weight diameters (the ℓ of Thm 3.1)."""
        P = self.P
        if dirty_nodes is None:
            sel = np.ones(self.leaf_nodes.shape[0], dtype=bool)
        else:
            sel = dirty_nodes[self.leaf_nodes]
        rows = np.nonzero(sel)[0]
        K = rows.shape[0]
        if K == 0:
            return
        hsel = self.leaf_h[rows]
        stack = np.full((K, P, P), semiring.zero, dtype=semiring.dtype)
        ar = np.arange(P)
        stack[:, ar, ar] = semiring.one
        emask = sel[self.le_row]
        row_map = np.cumsum(sel) - 1  # old leaf row -> compact stack row
        e_rows = row_map[self.le_row[emask]]
        e_w = graph.weight[self.le_edge[emask]].astype(semiring.dtype)
        if e_rows.size:
            semiring.scatter_min(
                stack, (e_rows, self.le_src[emask], self.le_dst[emask]), e_w
            )
        real = (ar[None, :] < hsel[:, None])  # (K, P) row/col validity
        if semiring.name in ("min-plus", "hops"):
            hops = np.where(np.isfinite(stack), 1.0, np.inf)
            hops[:, ar, ar] = 0.0
            hops[stack == np.inf] = np.inf
            for k in range(P):
                cand = stack[:, :, k][:, :, None] + stack[:, k, :][:, None, :]
                cand_h = hops[:, :, k][:, :, None] + hops[:, k, :][:, None, :]
                better = cand < stack
                tie = cand == stack
                stack[better] = cand[better]
                hops[better] = cand_h[better]
                np.minimum(hops, np.where(tie, cand_h, np.inf), out=hops)
            diag = stack[:, ar, ar]
            has_bad = ((diag < semiring.one) & real).any(axis=1)
            finite = np.isfinite(hops) & real[:, :, None] & real[:, None, :]
            diam = np.where(finite, hops, -np.inf).max(axis=(1, 2))
            diam = np.where(diam == -np.inf, 0.0, diam).astype(np.int64)
            diam[has_bad] = 0  # cold reports diameter 0 on a bad leaf
            leaf_diam[rows] = diam
        else:
            for k in range(P):
                semiring.add(
                    stack,
                    semiring.mul(stack[:, :, k][:, :, None], stack[:, k, :][:, None, :]),
                    out=stack,
                )
            # Non-min-plus diagonals never improve on 1̄ (⊕ keeps 1̄ best),
            # matching the cold leaf worker's always-clean verdict.
            for r in range(K):
                h = int(hsel[r])
                if h > 1:
                    span = slice(*_leaf_edge_span(self.le_row, rows[r]))
                    sub = WeightedDigraph(
                        h,
                        self.le_src[span],
                        self.le_dst[span],
                        graph.weight[self.le_edge[span]],
                    )
                    leaf_diam[rows[r]] = min_weight_diameter(sub, semiring=semiring)
                else:
                    leaf_diam[rows[r]] = 0
        # write the real regions back into the flat heap
        owners = np.repeat(np.arange(self.leaf_nodes.shape[0]), self.wb_cnt)
        wmask = sel[owners]
        w_rows = row_map[owners[wmask]]
        heap[self.wb_heap[wmask]] = stack.reshape(K, -1)[w_rows, self.wb_local[wmask]]

    # -------------------------- internals --------------------------- #

    def _run_levels(
        self,
        semiring: Semiring,
        heap: np.ndarray,
        dirty_nodes: np.ndarray | None,
    ) -> None:
        sentinel = self.sentinel
        for lp in self.levels:
            if lp.nodes.size == 0:
                continue
            if dirty_nodes is None:
                sel = np.ones(lp.nodes.shape[0], dtype=bool)
            else:
                sel = dirty_nodes[lp.nodes]
            if not sel.any():
                continue
            # identity init of the dirty regions
            init_cnt = np.diff(lp.init_ptr)
            imask = sel[np.repeat(np.arange(sel.shape[0]), init_cnt)]
            heap[lp.init_idx[imask]] = semiring.zero
            diag_cnt = np.diff(lp.diag_ptr)
            dmask = sel[np.repeat(np.arange(sel.shape[0]), diag_cnt)]
            heap[lp.diag_idx[dmask]] = semiring.one
            # ⊕-combine child blocks, one vectorized pass per child position
            for tgt, srcg, ptr in lp.passes:
                cnt = np.diff(ptr)
                pmask = sel[np.repeat(np.arange(sel.shape[0]), cnt)]
                ti, si = tgt[pmask], srcg[pmask]
                heap[ti] = semiring.add(heap[ti], heap[si])
            # separator-clique APSP + the three-hop products, batched
            fw = lp.fw_gather[sel]
            ds = heap[fw]
            S = lp.S
            for k in range(S):
                semiring.add(
                    ds,
                    semiring.mul(ds[:, :, k][:, :, None], ds[:, k, :][:, None, :]),
                    out=ds,
                )
            a1 = heap[lp.a1_gather[sel]]          # (B, H, S) = Direct[:, S]
            rm = heap[lp.r_gather[sel]]           # (B, S, H) = Direct[S, :]
            # A ⊗ B batched: out[b,i,j] = ⊕_k A[b,i,k] ⊗ B[b,k,j].  ⊕ is
            # exact and order-independent for every shipped semiring, so
            # the reduction reassociation stays bit-identical to the cold
            # worker's per-node matmuls.
            left = semiring.add_reduce(
                semiring.mul(a1[:, :, :, None], ds[:, None, :, :]), axis=2
            )
            right = semiring.add_reduce(
                semiring.mul(ds[:, :, :, None], rm[:, None, :, :]), axis=2
            )
            three = semiring.add_reduce(
                semiring.mul(left[:, :, :, None], rm[:, None, :, :]), axis=2
            )
            # the cold worker's exact ⊕ sequence: full block, cols, rows
            bi = lp.block_idx[sel].ravel()
            heap[bi] = semiring.add(heap[bi], three.ravel())
            ci = lp.a1_gather[sel].ravel()
            heap[ci] = semiring.add(heap[ci], left.ravel())
            ri = lp.r_gather[sel].ravel()
            heap[ri] = semiring.add(heap[ri], right.ravel())
            heap[sentinel] = semiring.zero

    def _check_cycles(
        self,
        semiring: Semiring,
        heap: np.ndarray,
        raise_on_negative_cycle: bool,
    ) -> None:
        """Replay the cold builder's negative-cycle walk: levels deepest
        first, nodes in index order, first offending vertex in label order.
        The diag slots are concatenated in exactly that order, so the first
        set bit of one vectorized ``improves`` is the cold verdict.  (A base
        augmentation exists only if it was cycle-free, so on the sparse path
        any offending diagonal necessarily belongs to a dirty node.)"""
        if not raise_on_negative_cycle or semiring.name not in ("min-plus", "hops"):
            return
        one = semiring.one
        for lp in self.levels:
            diag = heap[lp.check_diag_idx]
            bad = semiring.improves(
                diag, np.full(diag.shape[0], one, dtype=semiring.dtype)
            )
            if bad.any():
                p = int(np.argmax(bad))
                raise NegativeCycleDetected(
                    int(lp.check_nodes[int(lp.check_owner[p])]),
                    int(lp.check_vertex[p]),
                )

    # -------------------------- assembly ---------------------------- #

    def _assemble(
        self, semiring: Semiring, heap: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        # Full vectorized re-reduction of the pair multiset.  A per-node
        # "touched chunks only" variant was measured slower: a spread-out
        # delta dirties most of the multiset mass, and the bookkeeping
        # (inverse permutations, interleaved reduceat) costs more than the
        # single gather + reduceat below.
        starts = self.asm_starts
        w_sorted = heap[self.asm_gather][self.asm_order]
        best = semiring.add.reduceat(w_sorted, starts) if starts.size else (
            np.empty(0, dtype=semiring.dtype)
        )
        if semiring.dtype == np.dtype(bool):
            keep = best.astype(bool)
        else:
            keep = best != semiring.zero
        return self.asm_src[keep], self.asm_dst[keep], best[keep]

    # -------------------------- schedule ---------------------------- #

    def ensure_schedule_cache(self, aug: Augmentation) -> None:
        """Record the §3.2 phase permutations against ``aug``'s E⁺ pair
        structure (masks and dst-sorts are weight-independent)."""
        if self._sched is not None:
            return
        tree, g = aug.tree, aug.graph
        d_g = tree.height
        lv = tree.vertex_level
        src = np.concatenate([g.src, aug.src])
        dst = np.concatenate([g.dst, aug.dst])
        lv1, lv2 = lv[src], lv[dst]
        aug_counts = np.zeros(src.shape[0], dtype=np.int64)
        phases = []

        def add_filtered(mask: np.ndarray, label: str) -> None:
            aug_counts[mask] += 1
            idx = np.nonzero(mask)[0]
            perm = idx[np.argsort(dst[idx], kind="stable")]
            dst_sorted = dst[perm]
            if perm.size:
                new_group = np.ones(perm.shape[0], dtype=bool)
                new_group[1:] = dst_sorted[1:] != dst_sorted[:-1]
                ph_starts = np.nonzero(new_group)[0]
                targets = dst_sorted[ph_starts]
            else:
                ph_starts = np.empty(0, dtype=np.int64)
                targets = np.empty(0, dtype=np.int64)
            phases.append({
                "label": label,
                "perm": perm,
                "src": src[perm],
                "starts": ph_starts,
                "targets": targets,
            })

        for i in range(1, 2 * d_g + 2):
            if i % 2 == 1:
                lam = d_g - (i - 1) // 2
                add_filtered((lv1 == lam) & (lv2 == lam), f"desc-same-{lam}")
            else:
                lam = d_g - i // 2 + 1
                add_filtered(
                    (lv1 == lam) & (lv2 >= 0) & (lv2 < lam), f"desc-drop-{lam}"
                )
        for i in range(1, 2 * d_g + 1):
            if i % 2 == 1:
                lam = (i - 1) // 2
                add_filtered((lv1 == lam) & (lv2 > lam), f"asc-rise-{lam}")
            else:
                lam = i // 2
                add_filtered((lv1 == lam) & (lv2 == lam), f"asc-same-{lam}")

        perm_o = np.argsort(g.dst, kind="stable")
        dst_o = g.dst[perm_o]
        if perm_o.size:
            new_group = np.ones(perm_o.shape[0], dtype=bool)
            new_group[1:] = dst_o[1:] != dst_o[:-1]
            o_starts = np.nonzero(new_group)[0]
            o_targets = dst_o[o_starts]
        else:
            o_starts = np.empty(0, dtype=np.int64)
            o_targets = np.empty(0, dtype=np.int64)
        self._sched = {
            "src": aug.src.copy(),
            "dst": aug.dst.copy(),
            "phases": phases,
            "aug_counts": aug_counts,
            "orig_perm": perm_o,
            "orig_src": g.src[perm_o],
            "orig_starts": o_starts,
            "orig_targets": o_targets,
        }

    def _clone_schedule(self, aug: Augmentation):
        """Rebuild a :class:`~repro.core.scheduler.PhaseSchedule` for a new
        weighting by re-gathering per-phase weights through the cached
        permutations; ``None`` when the pair structure drifted (a weight hit
        0̄ or a 0̄ pair came alive) — the caller then compiles cold."""
        if self._sched is None:
            return None
        sc = self._sched
        if not (
            np.array_equal(aug.src, sc["src"]) and np.array_equal(aug.dst, sc["dst"])
        ):
            return None
        from .scheduler import PhaseSchedule  # local: avoids import cycle

        semiring = aug.semiring
        g = aug.graph
        w = np.concatenate([g.weight.astype(semiring.dtype), aug.weight])
        w_orig = g.weight.astype(semiring.dtype)[sc["orig_perm"]]
        original = EdgeRelaxer.from_compiled(
            {
                "src": sc["orig_src"],
                "w": w_orig,
                "starts": sc["orig_starts"],
                "targets": sc["orig_targets"],
            },
            semiring,
            kernel=aug.kernel,
        )
        ell = aug.ell
        relaxers, labels = [], []
        scans = 0
        for i in range(ell):
            relaxers.append(original)
            labels.append(f"prefix-E-{i + 1}")
            scans += g.m
        for ph in sc["phases"]:
            relaxers.append(
                EdgeRelaxer.from_compiled(
                    {
                        "src": ph["src"],
                        "w": w[ph["perm"]],
                        "starts": ph["starts"],
                        "targets": ph["targets"],
                    },
                    semiring,
                    kernel=aug.kernel,
                )
            )
            labels.append(ph["label"])
            scans += int(ph["perm"].shape[0])
        for i in range(ell):
            relaxers.append(original)
            labels.append(f"suffix-E-{i + 1}")
            scans += g.m
        return PhaseSchedule(
            relaxers=relaxers,
            labels=labels,
            edge_scans=scans,
            aug_edge_phase_counts=sc["aug_counts"][g.m :].copy(),
        )


# ---------------------------------------------------------------------- #
# helpers
# ---------------------------------------------------------------------- #


def _concat_i64(chunks: list[np.ndarray]) -> np.ndarray:
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate([np.asarray(c, dtype=np.int64) for c in chunks])


def _ptr(counts: np.ndarray) -> np.ndarray:
    out = np.zeros(counts.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out


def _leaf_edge_span(le_row: np.ndarray, row: int) -> tuple[int, int]:
    """[start, end) of leaf ``row``'s edges in the concatenated edge lists
    (``le_row`` is sorted by construction)."""
    return (
        int(np.searchsorted(le_row, row, side="left")),
        int(np.searchsorted(le_row, row, side="right")),
    )
