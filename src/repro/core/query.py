"""Persistent batched query engine over the augmentation (§3.2 at scale).

:func:`~repro.core.sssp.sssp_scheduled` answers one batch correctly, but a
serving workload asks *many* batches against the *same* augmentation — and
rebuilding G⁺, the edge relaxers and the phase schedule per call costs more
than the relaxation itself.  :class:`QueryEngine` is the amortized form:

* **build once** — G⁺, the full-edge relaxer and the §3.2 schedule come
  from the augmentation's caches (constructed at most once per
  augmentation, shared with :mod:`repro.core.sssp`);
* **publish once** — on the ``shm`` backend the compiled phase arrays
  (dst-sorted edge lists, segment starts, targets) are written to a
  shared-memory arena a single time; per-query task payloads carry only
  descriptors and row ranges — O(1) bytes per shard;
* **relax in parallel** — a batch of ``s`` sources is an ``(s, n)``
  distance matrix whose rows are independent (the PRAM's per-source
  parallelism), so the batch is sharded row-wise across the pool; each
  worker relaxes its rows against the shared edge arrays and writes them
  into the shared distance block in place;
* **cheap convergence** — in ``naive`` mode each shard iterates only until
  *its own* rows stop improving (a per-shard changed-flag reduction);
  in ``scheduled`` mode one schedule pass is exact by Theorem 3.1.

Worker processes memoize the compiled relaxers per engine (keyed by an
engine token), so repeated batches touch no setup code anywhere.

    >>> oracle = ShortestPathOracle.build(g, tree)
    >>> with oracle.query_engine(executor="shm:4") as eng:
    ...     d1 = eng.query(batch1)       # (s, n) distances
    ...     d2 = eng.query(batch2)       # same pool, zero new setup
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import OrderedDict
from typing import Any

import numpy as np

from ..kernels.bellman_ford import EdgeRelaxer, initial_distances, run_phases
from ..pram.executor import SerialExecutor, ThreadExecutor, get_executor
from .augment import Augmentation
from .config import UNSET, OracleConfig, resolve_config
from .semiring import SEMIRINGS
from .sssp import SOURCE_BLOCK, _as_source_array

__all__ = ["QueryEngine"]

_TOKENS = itertools.count()

#: Worker-side memo of compiled relaxer lists, keyed by engine token; bounded
#: (cleared wholesale when it grows past a handful of engines).
_ENGINE_CACHE: dict[str, list[EdgeRelaxer]] = {}
_ENGINE_CACHE_MAX = 8


def _shard_relaxers(spec: dict[str, Any]) -> list[EdgeRelaxer]:
    """Worker-side: compiled relaxers for an engine spec, memoized by token.

    Phases sharing one compiled-array dict (the ℓ prefix/suffix full-edge
    phases — pickle preserves the sharing) are rebuilt as *one* relaxer
    object repeated, so :func:`~repro.kernels.bellman_ford.run_phases` can
    frontier-prune across the repetitions worker-side too."""
    relaxers = _ENGINE_CACHE.get(spec["token"])
    if relaxers is None:
        semiring = SEMIRINGS[spec["semiring"]]
        kernel = spec.get("kernel")  # the build's kernel choice, worker-side
        built: dict[int, EdgeRelaxer] = {}
        relaxers = []
        for ph in spec["phases"]:
            r = built.get(id(ph))
            if r is None:
                r = EdgeRelaxer.from_compiled(ph, semiring, kernel=kernel)
                built[id(ph)] = r
            relaxers.append(r)
        if len(_ENGINE_CACHE) >= _ENGINE_CACHE_MAX:
            _ENGINE_CACHE.clear()
        _ENGINE_CACHE[spec["token"]] = relaxers
    return relaxers


def _shard_worker(payload: dict[str, Any]) -> dict[str, Any]:
    """Relax one shard of distance rows to completion (module level for
    pickling).

    The shard is either a view into the shared distance block (``dist`` +
    row range; results are written in place and not returned) or a pickled
    row matrix (plain process backend; rows are returned).  ``scheduled``
    mode runs the one exact §3.2 pass; ``naive`` mode iterates the
    full-edge relaxer until this shard's rows converge.
    """
    relaxers = _shard_relaxers(payload["engine"])
    if "dist" in payload:
        rows = payload["dist"][payload["row_start"] : payload["row_stop"]]
        shared = True
    else:
        rows = payload["rows"]
        shared = False
    block = max(1, int(payload["engine"]["source_block"]))
    phases = 0
    if payload["engine"]["mode"] == "scheduled":
        for start in range(0, rows.shape[0], block):
            run_phases(relaxers, rows[start : start + block])
        phases = len(relaxers)
    else:
        relaxer = relaxers[0]
        cap = int(payload["engine"]["cap"])
        active = np.arange(rows.shape[0])
        while active.size and phases < cap:
            active = relaxer.relax_rows(rows, active)
            phases += 1
    return {"rows": None if shared else rows, "phases": phases}


class QueryEngine:
    """Amortized multi-source distance queries over one augmentation.

    Takes the same ``(config, *, executor, engine, source_block)``
    parameter set — in the same order — as
    :meth:`repro.core.api.ShortestPathOracle.query_engine`; only the
    fallback ``executor`` differs (``"serial"`` here, ``"shm"`` on the
    serving facade).

    Parameters
    ----------
    aug:
        The augmentation to serve queries for; its cached G⁺ / relaxer /
        schedule are (re)used, never rebuilt.
    config:
        An :class:`~repro.core.config.OracleConfig`; its ``executor``,
        ``engine`` and ``source_block`` fields are consumed here (build
        fields ride along untouched).  The individual kwargs remain as a
        back-compat overlay; a kwarg contradicting an explicit ``config``
        emits a :class:`DeprecationWarning` and wins.
    executor:
        Spec or instance per :func:`repro.pram.executor.get_executor`.
        ``"shm:N"`` gives zero-copy sharding; ``"thread:N"`` shards in
        threads (numpy releases the GIL); ``"serial"`` runs inline.
    engine:
        ``"scheduled"`` (one exact §3.2 pass) or ``"naive"`` (full-scan
        Bellman–Ford to convergence, capped by the Theorem 3.1 bound).
    source_block:
        Row-block size bounding per-phase temporaries (see
        :data:`repro.core.sssp.SOURCE_BLOCK`).
    """

    def __init__(
        self,
        aug: Augmentation,
        config: OracleConfig | None = None,
        *,
        executor=UNSET,
        engine: str = UNSET,
        source_block: int = UNSET,
    ) -> None:
        if config is None:
            changes = {
                k: v
                for k, v in (
                    ("executor", executor),
                    ("engine", engine),
                    ("source_block", source_block),
                )
                if v is not UNSET
            }
            config = OracleConfig().replace(**changes)
        else:
            config = resolve_config(
                config, executor=executor, engine=engine, source_block=source_block
            )
        self.config = config
        executor = config.executor
        engine = config.engine
        self.aug = aug
        self.engine = engine
        self.source_block = int(
            SOURCE_BLOCK if config.source_block is None else config.source_block
        )
        self._exe = get_executor(executor)
        self._owns_exe = isinstance(executor, str) and not isinstance(self._exe, SerialExecutor)
        self._use_shm = getattr(self._exe, "uses_shared_memory", False)
        self._closed = False
        # Build-once structures (cached on the augmentation itself), plus
        # the publish-once compiled arrays for cross-process backends — one
        # *generation* of serving state; reweight() compiles the next
        # generation and flips.
        self._dist_ref = None
        self._dist_view = None
        (
            self.schedule,
            self._relaxers,
            self._arena,
            self._spec,
            self._token,
        ) = self._compile_generation(aug)
        # Telemetry.  The lock makes submissions (and the counters) safe to
        # drive from multiple threads — the asyncio server submits batches
        # from an event-loop executor thread while ``stats`` requests read
        # the counters from another.
        self.queries_served = 0
        self.rows_served = 0
        self.last_batch: dict[str, Any] | None = None
        self._lock = threading.Lock()
        # Per-source distance-row LRU (config.row_cache rows; 0 = off).
        # Keyed by source id, valid for one weights epoch: a reweighting
        # lineage bumps ``aug.weights_epoch`` and the next submit clears the
        # cache wholesale.  Rows are answered bit-identically by determinism
        # of both engines, so serving repeated sources from here is exact.
        self.row_cache_capacity = int(config.row_cache)
        self._row_cache: OrderedDict[int, np.ndarray] = OrderedDict()
        self._row_epoch = int(getattr(aug, "weights_epoch", 0))
        self.row_hits = 0
        self.row_misses = 0
        # Epoch telemetry (see reweight() / _check_epoch()).
        self.reweights = 0
        self.row_epoch_invalidations = 0
        self.rows_epoch_dropped = 0

    def _compile_generation(self, aug: Augmentation):
        """Build one generation of serving state for ``aug``: relaxers (and
        schedule), plus — for cross-process backends — a fresh engine token
        and the published compiled arrays.  On shm the arena's segments are
        tagged ``g<weights_epoch>`` so ``/dev/shm`` listings (and the leak
        checker) attribute every segment to its generation."""
        if self.engine == "scheduled":
            schedule = aug.schedule()
            relaxers = schedule.relaxers
        else:
            schedule = None
            relaxers = [aug.relaxer()]
        token = f"qe{os.getpid()}_{next(_TOKENS)}"
        arena = None
        spec: dict[str, Any] | None = None
        if self._use_shm:
            from ..pram.shm import ShmArena

            arena = ShmArena(tag=f"g{int(getattr(aug, 'weights_epoch', 0))}")
            spec = self._make_spec(
                aug,
                token,
                self._dedup_phases(relaxers, lambda r: {
                    k: arena.publish(v) for k, v in r.compiled().items()
                }),
            )
        elif not isinstance(self._exe, (SerialExecutor, ThreadExecutor)):
            spec = self._make_spec(
                aug, token, self._dedup_phases(relaxers, lambda r: r.compiled())
            )
        return schedule, relaxers, arena, spec, token

    @staticmethod
    def _dedup_phases(relaxers, compile_one) -> list[dict[str, Any]]:
        """Compile (and, on shm, publish) each *distinct* relaxer object
        once; repeated phases share the resulting dict.  The sharing is what
        lets workers frontier-prune the repeated prefix/suffix phases, and
        on shm it also publishes the full edge set once instead of 2ℓ
        times."""
        compiled: dict[int, dict[str, Any]] = {}
        phases = []
        for r in relaxers:
            d = compiled.get(id(r))
            if d is None:
                d = compile_one(r)
                compiled[id(r)] = d
            phases.append(d)
        return phases

    def _make_spec(
        self, aug: Augmentation, token: str, phases: list[dict[str, Any]]
    ) -> dict[str, Any]:
        return {
            "token": token,
            "semiring": aug.semiring.name,
            "mode": self.engine,
            "cap": aug.diameter_bound,
            "source_block": self.source_block,
            "kernel": aug.kernel,
            "phases": phases,
        }

    def reweight(self, aug: Augmentation) -> None:
        """Hot-swap to a reweighted augmentation with zero downtime.

        The next generation (relaxers, schedule, and — on cross-process
        backends — a freshly published arena under a new engine token) is
        compiled *outside* the engine lock, so concurrent :meth:`submit`
        batches keep serving the old epoch while it builds.  The flip
        itself is a pointer swap under the lock: any in-flight batch
        finishes on the old epoch, every later submit runs on the new one,
        and no batch ever mixes the two.  The old arena generation is
        unlinked after the flip (its ``g<epoch>`` segments disappear from
        ``/dev/shm``); the row LRU is dropped wholesale via the usual
        epoch check.
        """
        if aug.graph.n != self.aug.graph.n:
            raise ValueError("reweight() needs an augmentation over the same vertex set")
        if aug.semiring.name != self.aug.semiring.name:
            raise ValueError("reweight() cannot change the semiring")
        schedule, relaxers, arena, spec, token = self._compile_generation(aug)
        with self._lock:
            if self._closed:
                if arena is not None:
                    arena.close()
                raise ValueError("engine is closed")
            old_arena = self._arena
            self.aug = aug
            self.schedule = schedule
            self._relaxers = relaxers
            self._arena = arena
            self._spec = spec
            self._token = token
            # The reusable distance block lived in the old generation's
            # arena; the next batch re-allocates it in the new one.
            self._dist_ref = None
            self._dist_view = None
            self.reweights += 1
            self._check_epoch()
        if old_arena is not None:
            old_arena.close()

    # -------------------------------------------------------------- #

    def _run_inline(self, rows: np.ndarray) -> None:
        """Relax ``rows`` in the calling thread (serial path / small batch);
        both modes frontier-prune converged source rows."""
        block = max(1, self.source_block)
        if self.engine == "scheduled":
            for start in range(0, rows.shape[0], block):
                self.schedule.run(rows[start : start + block])
        else:
            relaxer, cap = self._relaxers[0], self.aug.diameter_bound
            view = rows if rows.ndim == 2 else rows[None, :]
            active = np.arange(view.shape[0])
            phases = 0
            while phases < cap and active.size:
                active = relaxer.relax_rows(view, active)
                phases += 1

    def _shards(self, s: int) -> list[tuple[int, int]]:
        """Split ``s`` rows into one contiguous range per worker."""
        workers = max(1, getattr(self._exe, "workers", 1))
        per = -(-s // workers)
        return [(a, min(s, a + per)) for a in range(0, s, per)]

    def _ensure_dist_block(self, s: int, n: int, dtype) -> None:
        """Grow (never shrink) the reusable shared distance block."""
        if self._dist_view is not None and self._dist_view.shape[0] >= s:
            return
        rows = max(s, 2 * (self._dist_view.shape[0] if self._dist_view is not None else 0))
        self._dist_ref, self._dist_view = self._arena.alloc((rows, n), dtype)

    def _relax_matrix(self, dist: np.ndarray) -> int:
        """Relax the ``(s, n)`` row matrix in place (inline or sharded
        across the pool, exactly as :meth:`submit` always did); returns the
        shard count.  Caller holds the engine lock."""
        s, n = dist.shape
        workers = max(1, getattr(self._exe, "workers", 1))
        if workers <= 1 or s < 2:
            self._run_inline(dist)
            return 1
        shards = self._shards(s)
        if self._use_shm:
            self._ensure_dist_block(s, n, self.aug.semiring.dtype)
            self._dist_view[:s] = dist
            payloads = [
                {"engine": self._spec, "dist": self._dist_ref,
                 "row_start": a, "row_stop": b}
                for a, b in shards
            ]
            self._exe.map(_shard_worker, payloads)
            dist[...] = self._dist_view[:s]
        elif self._spec is not None:  # plain process pool: rows are pickled
            payloads = [
                {"engine": self._spec, "rows": dist[a:b]} for a, b in shards
            ]
            outs = self._exe.map(_shard_worker, payloads)
            for (a, b), out in zip(shards, outs):
                dist[a:b] = out["rows"]
        else:  # thread pool: shared address space, relax shards in place
            self._exe.map(lambda ab: self._run_inline(dist[ab[0] : ab[1]]), shards)
        return len(shards)

    def _check_epoch(self) -> None:
        """Drop every cached row if the augmentation's weights epoch moved
        (reweighting lineage, or a manual bump after in-place weight
        mutation).  Caller holds the engine lock."""
        epoch = int(getattr(self.aug, "weights_epoch", 0))
        if epoch != self._row_epoch:
            self.row_epoch_invalidations += 1
            self.rows_epoch_dropped += len(self._row_cache)
            self._row_cache.clear()
            self._row_epoch = epoch

    def clear_row_cache(self) -> None:
        """Drop all cached distance rows (counters are kept)."""
        with self._lock:
            self._row_cache.clear()

    @property
    def weights_epoch(self) -> int:
        """The weights epoch currently served (the augmentation's) — part
        of the :class:`~repro.core.protocols.ServingBackend` contract."""
        return int(getattr(self.aug, "weights_epoch", 0))

    def query(self, sources) -> np.ndarray:
        """Distance rows for each source: ``(s, n)``, or ``(n,)`` for a bare
        int — bit-identical to :func:`repro.core.sssp.sssp_scheduled`
        (respectively ``sssp_naive``) on the same augmentation."""
        return self.submit(sources)[0]

    def submit(self, sources) -> tuple[np.ndarray, dict[str, Any]]:
        """Batch-submission hook: like :meth:`query`, but also returns the
        per-batch execution record ``{"rows", "shards", "wall_s",
        "cached_rows"}`` — what a serving layer needs for coalesce-factor /
        fan-out metrics without re-deriving the sharding.  Thread-safe:
        concurrent submitters are serialized on the engine lock (shards of
        *one* batch still run in parallel across the pool).

        With ``config.row_cache > 0``, rows whose source is in the LRU (or
        repeats an earlier source of the same batch) are filled without
        relaxation; only first-occurrence misses are relaxed.
        """
        srcs, single = _as_source_array(sources)
        n = self.aug.graph.n
        semiring = self.aug.semiring
        s = srcs.shape[0]
        with self._lock:
            if self._closed:
                raise ValueError("engine is closed")
            t0 = time.perf_counter()
            self.queries_served += 1
            self.rows_served += s
            cap = self.row_cache_capacity
            cached_rows = 0
            if cap <= 0:
                dist = initial_distances(n, srcs, semiring)
                nshards = self._relax_matrix(dist)
            else:
                self._check_epoch()
                dist = np.empty((s, n), dtype=semiring.dtype)
                miss_first: dict[int, int] = {}  # source -> first row index
                for i, v in enumerate(srcs.tolist()):
                    row = self._row_cache.get(v)
                    if row is not None:
                        dist[i] = row
                        self._row_cache.move_to_end(v)
                        cached_rows += 1
                    elif v not in miss_first:
                        miss_first[v] = i
                nshards = 0
                if miss_first:
                    miss_srcs = np.fromiter(
                        miss_first, dtype=np.int64, count=len(miss_first)
                    )
                    sub = initial_distances(n, miss_srcs, semiring)
                    nshards = self._relax_matrix(sub)
                    for j, (v, i) in enumerate(miss_first.items()):
                        dist[i] = sub[j]
                        # A private copy: the row handed to callers (inside
                        # ``dist``) stays theirs to mutate, and caching the
                        # copy instead of ``sub[j]`` avoids pinning the whole
                        # (k, n) block while one row lives in the LRU.
                        self._row_cache[v] = sub[j].copy()
                        if len(self._row_cache) > cap:
                            self._row_cache.popitem(last=False)
                # Duplicate misses: served from the first occurrence.
                for i, v in enumerate(srcs.tolist()):
                    j = miss_first.get(v)
                    if j is not None and j != i:
                        dist[i] = dist[j]
                        cached_rows += 1
                self.row_hits += cached_rows
                self.row_misses += len(miss_first)
            info = {
                "rows": int(s),
                "shards": int(nshards),
                "wall_s": time.perf_counter() - t0,
                "cached_rows": int(cached_rows),
            }
            self.last_batch = info
        return (dist[0] if single else dist), info

    def stats(self) -> dict[str, Any]:
        """Serving counters and amortization-relevant sizes (reentrant:
        safe to call from any thread while another thread submits).

        Carries the canonical :data:`~repro.core.protocols.
        SERVING_STATS_KEYS` schema; the engine relaxes synchronously under
        its lock, so ``queue_depth`` is 0 and ``queue_wait_ms`` is zeros —
        queueing lives in the server and fleet tiers above it."""
        from .protocols import serving_stats

        with self._lock:
            looked_up = self.row_hits + self.row_misses
            base = serving_stats(
                backend=getattr(self._exe, "name", "?"),
                workers=getattr(self._exe, "workers", 1),
                queue_depth=0,
                weights_epoch=int(getattr(self.aug, "weights_epoch", 0)),
                queries_served=self.queries_served,
                rows_served=self.rows_served,
            )
            base.update({
                "engine": self.engine,
                "phases": len(self._relaxers),
                "shared_bytes": self._arena.allocated_bytes if self._arena else 0,
                "last_batch": None if self.last_batch is None else dict(self.last_batch),
                "reweights": self.reweights,
                "row_cache": {
                    "capacity": self.row_cache_capacity,
                    "size": len(self._row_cache),
                    "hits": self.row_hits,
                    "misses": self.row_misses,
                    "hit_rate": (self.row_hits / looked_up) if looked_up else 0.0,
                    "epoch": self._row_epoch,
                    "epoch_invalidations": self.row_epoch_invalidations,
                    "rows_epoch_dropped": self.rows_epoch_dropped,
                },
            })
            return base

    def close(self) -> None:
        """Release the shared arena (if any) and an owned pool (if any);
        idempotent.  Thread-safe: taking the engine lock means a close
        issued from one thread (e.g. the server's event loop) waits for an
        in-flight :meth:`submit` on another before unlinking the arena.
        The augmentation's caches survive for the next engine."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._row_cache.clear()
            if self._arena is not None:
                self._arena.close()
        if self._owns_exe:
            self._exe.close()

    def __enter__(self) -> "QueryEngine":
        """Context-manager entry: the engine itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: close the engine."""
        self.close()
