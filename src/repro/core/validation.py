"""Consolidated pipeline validation — the paranoid user's one call.

Production users of a distance oracle want a cheap way to answer "is this
build trustworthy?" without reading the theory.  :func:`validate_pipeline`
runs every verifiable invariant at a configurable depth and returns a
structured report:

* structural — Proposition 2.1 on the tree (always);
* soundness — sampled E⁺ edges never underestimate distances, scheduled
  queries from sampled sources match plain Bellman–Ford (always);
* exhaustive — full all-pairs cross-check against Floyd–Warshall and the
  measured diameter vs the Theorem 3.1 bound (only when ``n ≤
  exhaustive_cutoff``; cubic cost).

The CLI ``repro-spsp selftest`` composes the same checks over generated
workloads; this function is the library-level entry point for *your* graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..kernels.bellman_ford import bellman_ford
from .augment import Augmentation
from .scheduler import build_schedule
from .sssp import measured_diameter, sssp_scheduled

__all__ = ["ValidationReport", "validate_pipeline"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_pipeline`."""

    checks: dict[str, bool] = field(default_factory=dict)
    details: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True iff every executed check passed."""
        return all(self.checks.values())

    def summary(self) -> str:
        """One line per check."""
        lines = []
        for name, passed in self.checks.items():
            extra = f" — {self.details[name]}" if name in self.details else ""
            lines.append(f"[{'ok' if passed else 'FAIL'}] {name}{extra}")
        return "\n".join(lines)


def validate_pipeline(
    aug: Augmentation,
    *,
    sample_sources: int = 4,
    edge_sample: int = 64,
    exhaustive_cutoff: int = 256,
    rng: np.random.Generator | None = None,
) -> ValidationReport:
    """Run the invariant battery on a built augmentation (min-plus only).

    Never raises on a failed check — read :attr:`ValidationReport.ok`.
    """
    if aug.semiring.name not in ("min-plus", "hops"):
        raise ValueError("validate_pipeline covers min-plus augmentations")
    rng = rng or np.random.default_rng(0)
    report = ValidationReport()
    g, tree = aug.graph, aug.tree

    problems = tree.validate(g, strict=False)
    report.checks["tree-structure (Prop 2.1)"] = not problems
    if problems:
        report.details["tree-structure (Prop 2.1)"] = problems[0]

    dev = aug.verify_edges(sample_size=edge_sample, rng=rng)
    report.checks["E+ soundness & scheduled completeness"] = dev < 1e-6
    report.details["E+ soundness & scheduled completeness"] = f"max deviation {dev:.2e}"

    schedule = build_schedule(aug)
    scans_ok = (
        aug.size == 0 or int(schedule.aug_edge_phase_counts.max()) <= 2
    )
    report.checks["schedule scans each E+ edge ≤ 2 (I10)"] = scans_ok
    report.checks["phase count = 2l + 4d_G + 1"] = (
        schedule.num_phases == 2 * aug.ell + 4 * tree.height + 1
    )

    srcs = np.unique(rng.integers(0, g.n, size=min(sample_sources, g.n)))
    want = bellman_ford(g, srcs)
    got = sssp_scheduled(aug, srcs, schedule=schedule)
    both_inf = np.isinf(want) & np.isinf(got)
    sampled_ok = bool((both_inf | np.isclose(got, want, atol=1e-8)).all())
    report.checks[f"scheduled == Bellman-Ford on {srcs.size} sources"] = sampled_ok

    if g.n <= exhaustive_cutoff:
        from ..kernels.floyd_warshall import floyd_warshall

        ref = floyd_warshall(g.dense_weights())
        full = sssp_scheduled(aug, np.arange(g.n), schedule=schedule)
        both_inf = np.isinf(ref) & np.isinf(full)
        report.checks["exhaustive all-pairs == Floyd-Warshall"] = bool(
            (both_inf | np.isclose(full, ref, atol=1e-8)).all()
        )
        # A corrupted E⁺ can even inject a negative cycle into G⁺, making
        # the diameter measurement diverge — record that as a failure
        # rather than raising (the no-raise contract of this function).
        try:
            diam = measured_diameter(aug)
            report.checks["diam(G+) ≤ 4d_G + 2l + 1 (Thm 3.1)"] = (
                diam <= aug.diameter_bound
            )
            report.details["diam(G+) ≤ 4d_G + 2l + 1 (Thm 3.1)"] = (
                f"measured {diam}, bound {aug.diameter_bound}"
            )
        except Exception as exc:  # pragma: no cover - corrupted-input path
            report.checks["diam(G+) ≤ 4d_G + 2l + 1 (Thm 3.1)"] = False
            report.details["diam(G+) ≤ 4d_G + 2l + 1 (Thm 3.1)"] = repr(exc)
    return report
