"""Plain-text table rendering for benchmark reports (EXPERIMENTS.md rows)."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "format_value"]


def format_value(v: Any) -> str:
    """Compact human-readable rendering of a table cell."""
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], *, title: str = "") -> str:
    """Markdown-ish aligned table."""
    cells = [[format_value(c) for c in r] for r in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt_row(r: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(r, widths)) + " |"

    lines = []
    if title:
        lines.append(f"### {title}")
    lines.append(fmt_row(list(headers)))
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    lines.extend(fmt_row(r) for r in cells)
    return "\n".join(lines)
