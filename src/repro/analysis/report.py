"""Aggregate benchmark result files into one reproduction report.

Benches write their paper-shape evidence to ``benchmarks/results/*.md``;
this module stitches them into a single document ordered by the experiment
index of DESIGN.md §4 — the machine-generated companion to EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

__all__ = ["EXPERIMENT_ORDER", "aggregate_results"]

#: Experiment ids in DESIGN.md order; unknown files are appended at the end.
EXPERIMENT_ORDER = [
    "T1-mu-sweep",
    "T1-pre-grid2d", "T1-pre-grid3d", "T1-pre-path",
    "T1-src-grid2d", "T1-src-grid3d", "T1-src-path", "T1-src-sweep",
    "T1-time-leaves_up", "T1-time-doubling", "T1-brent",
    "F1-grid-decomposition", "F1-hyperplane-check",
    "F2-right-shortcuts",
    "E-diam-grid", "E-diam-delaunay",
    "E-size-grid2d", "E-size-grid3d", "E-size-path",
    "E-reach-preprocessing", "E-reach-queries", "E-reach-closure",
    "E-reach-scc-baseline",
    "E-seq-crossover", "E-seq-johnson", "E-seq-fw", "E-seq-networkx",
    "E-kpair-latency", "E-kpair-paths",
    "E-planar-delaunay", "E-planar-qface-scaling", "E-planar-qface-queries",
    "E-tvpi-scaling", "E-tvpi-quality", "E-tvpi-utvpi",
    "E-par-backends", "E-par-fanout",
    "A1-inclusion", "A2-depth-work", "A2-wallclock", "A3-schedule",
    "A4-leaf-size", "A5-remark44",
]


def aggregate_results(results_dir: str | pathlib.Path) -> str:
    """Concatenate the per-experiment markdown files in canonical order."""
    results_dir = pathlib.Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(
            f"{results_dir} not found — run `pytest benchmarks/ --benchmark-only` first"
        )
    available = {p.stem: p for p in sorted(results_dir.glob("*.md"))}
    parts = ["# Benchmark results (auto-aggregated)\n"]
    seen = set()
    for exp_id in EXPERIMENT_ORDER:
        p = available.get(exp_id)
        if p is None:
            continue
        seen.add(exp_id)
        parts.append(f"## {exp_id}\n\n{p.read_text().rstrip()}\n")
    for stem, p in available.items():
        if stem not in seen:
            parts.append(f"## {stem}\n\n{p.read_text().rstrip()}\n")
    missing = [e for e in EXPERIMENT_ORDER if e not in seen]
    if missing:
        parts.append("## Missing experiments\n\n" + "\n".join(f"- {m}" for m in missing) + "\n")
    return "\n".join(parts)
