"""Scaling-exponent estimation for the Table-1 benches.

The paper's claims are asymptotic (work = Θ(n^e · polylog)); the benches
measure ledger work at a sweep of sizes and fit the exponent on a log-log
scale, optionally dividing out polylog factors first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ExponentFit", "fit_exponent", "fit_exponent_with_log"]


@dataclass(frozen=True)
class ExponentFit:
    """Least-squares fit ``y ≈ C · x^exponent`` (on log-log scale)."""

    exponent: float
    log_constant: float
    r_squared: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted power law at ``x``."""
        return np.exp(self.log_constant) * np.asarray(x, dtype=float) ** self.exponent

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"x^{self.exponent:.3f} (R²={self.r_squared:.4f})"


def fit_exponent(sizes, values) -> ExponentFit:
    """Fit the exponent of ``values ~ sizes^e``."""
    x = np.log(np.asarray(sizes, dtype=np.float64))
    y = np.log(np.asarray(values, dtype=np.float64))
    if x.shape[0] < 2:
        raise ValueError("need at least two points to fit an exponent")
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ExponentFit(exponent=float(slope), log_constant=float(intercept), r_squared=r2)


def fit_exponent_with_log(sizes, values, *, log_power: int = 1) -> ExponentFit:
    """Fit after dividing out ``log(n)^log_power`` — for claims of the form
    Θ(n^e logᵖ n), fitting ``values / logᵖ(n)`` isolates the polynomial
    part."""
    sizes = np.asarray(sizes, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64) / np.log(sizes) ** log_power
    return fit_exponent(sizes, values)
