"""Experiment analysis: scaling-exponent fits, table rendering, and the
benchmark-results aggregator."""
