"""Async batched query server: :class:`OracleServer`.

The paper's economics (§3.2) make *batches* cheap — one augmentation pass,
then every source row is an independent O(ℓ|E| + |E⁺|) relaxation — but
network clients arrive one small request at a time.  This server closes
that gap with **request coalescing**: concurrent ``distances`` /
``nearest_source`` / ``path`` requests are admitted into a queue, and a
single batcher task gathers everything that arrives within one *coalesce
tick* (``max_wait_us``, capped at ``max_batch_rows`` source rows) into one
:meth:`~repro.core.query.QueryEngine.submit` call.  The engine shards that
one batch row-wise across its warm pool (shm backend: zero-copy), so 32
single-source clients cost one sharded batch, not 32 engine round trips.

Operational behavior:

* **backpressure + admission control** — at most ``queue_limit`` row
  requests (or ``OracleConfig.admission_queue_limit`` when set) may be
  admitted and unfinished; beyond that the server sheds with a 429-style
  error instead of queueing unboundedly.  Admission control additionally
  sheds a request *early* when its predicted queue wait — backlogged rows
  priced at the recent per-row batch wall — already exceeds its deadline,
  so sustained overload degrades into fast 429s, not a convoy of 504s;
* **timeouts** — each request waits at most ``request_timeout_ms`` (or its
  own ``timeout_ms`` field) for its batch; a late batch still completes,
  the response is a 504;
* **zero-downtime reweight** — the ``reweight`` op hot-swaps the serving
  stack to new edge weights (full vector or sparse delta) without dropping
  queries: weights replay through the retained E⁺ provenance
  (:meth:`~repro.core.api.ShortestPathOracle.with_new_weights`), in-flight
  batches finish on the old weights epoch, and every later batch is
  answered entirely at the new one — the single engine flips its arena
  generation, a shard fleet flips worker-by-worker behind the router's
  per-leg epoch guard;
* **graceful shutdown** — :meth:`stop` first stops accepting connections,
  then lets the batcher *drain* every admitted request, and only then
  closes the engine (which unlinks the shm arena) and the remaining
  connections.  Ordering matters: the arena must outlive the last batch
  that references it (see DESIGN.md §6).

The event loop never runs the relaxation itself — batches run on the
loop's default thread-pool executor, and :meth:`QueryEngine.submit` /
``stats`` are thread-safe (engine lock), which is what lets ``stats``
requests stream back while a batch is in flight.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..core.api import ShortestPathOracle
from ..core.config import OracleConfig
from ..core.paths import reconstruct_path, shortest_path_tree
from ..core.protocols import ensure_serving_backend
from .metrics import ServerMetrics
from .protocol import (
    BAD_REQUEST,
    INTERNAL,
    OVERLOADED,
    ROW_OPS,
    TIMEOUT,
    UNAVAILABLE,
    ServerError,
    decode,
    encode,
    error_response,
    ok_response,
)

__all__ = ["ServerConfig", "OracleServer"]

_log = logging.getLogger(__name__)

#: Stream buffer limit — a request line listing thousands of sources (or a
#: response carrying (s, n) distances) far exceeds asyncio's 64 KiB default.
_STREAM_LIMIT = 16 << 20


@dataclass(frozen=True)
class ServerConfig:
    """Serving knobs of one :class:`OracleServer`.

    Attributes
    ----------
    path:
        Unix-socket path; when set, TCP ``host``/``port`` are ignored
        (local serving should prefer this — no TCP stack in the latency).
    host, port:
        TCP address; ``port=0`` binds an ephemeral port (read it back from
        :attr:`OracleServer.address`).
    max_batch_rows:
        Coalescing cap — a batch closes early once this many source rows
        are gathered.
    max_wait_us:
        Coalescing window in microseconds — how long the batcher holds the
        first request of a tick open for companions.  0 disables
        coalescing (every request is its own batch).
    queue_limit:
        Maximum admitted-but-unfinished row requests; beyond it the server
        sheds with :data:`~repro.server.protocol.OVERLOADED` (429).
    request_timeout_ms:
        Default per-request wait for its batch result; a request may lower
        or raise its own via a ``timeout_ms`` field.
    """

    path: str | None = None
    host: str = "127.0.0.1"
    port: int = 0
    max_batch_rows: int = 256
    max_wait_us: int = 2000
    queue_limit: int = 1024
    request_timeout_ms: float = 30_000.0


@dataclass
class _Pending:
    """One admitted row request waiting for its coalesced batch."""

    sources: np.ndarray
    fut: asyncio.Future
    t_enqueue: float
    rows: int = field(init=False)

    def __post_init__(self) -> None:
        self.rows = int(self.sources.shape[0])


class OracleServer:
    """Asyncio TCP/Unix-socket front end over a warm
    :class:`~repro.core.query.QueryEngine`.

    Parameters
    ----------
    oracle:
        The built (or loaded) oracle to serve.
    config:
        :class:`~repro.core.config.OracleConfig` for the serving engine —
        its ``executor`` / ``engine`` / ``source_block`` fields select the
        backend exactly as in :meth:`ShortestPathOracle.query_engine`
        (default: the shm pool).
    server:
        :class:`ServerConfig` with the socket address and the coalescing /
        backpressure / timeout knobs.
    engine_factory:
        Optional zero-argument callable building the serving engine; it
        replaces the default ``oracle.query_engine(config)`` and may
        return anything satisfying
        :class:`~repro.core.protocols.ServingBackend` (checked at
        :meth:`start`, which raises a :class:`TypeError` naming any
        missing method) — in particular a
        :class:`~repro.shard.ShardRouter` to serve a sharded (and
        optionally replicated) fleet behind the same coalescing front end.
    """

    def __init__(
        self,
        oracle: ShortestPathOracle,
        config: OracleConfig | None = None,
        server: ServerConfig | None = None,
        *,
        engine_factory: Callable[[], Any] | None = None,
    ) -> None:
        self.oracle = oracle
        self.engine_config = config
        self.engine_factory = engine_factory
        self.server_config = server if server is not None else ServerConfig()
        self.metrics = ServerMetrics()
        self.engine = None
        # The graph whose weights are *currently served* — tracks every
        # accepted ``reweight`` (``self.oracle.graph`` would go stale on
        # the fleet path, where the router reweights but the build oracle
        # is not re-derived).  Source validation and path reconstruction
        # must read this one.
        self._graph = oracle.graph
        self._reweight_lock = threading.Lock()
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue | None = None
        self._batcher: asyncio.Task | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._pending = 0
        #: Source rows admitted and not yet answered — the work backlog
        #: that admission control prices against each request's deadline.
        self._pending_rows = 0
        #: EMA of per-row batch wall time (seconds); 0 until the first
        #: batch completes, which disables prediction-based shedding.
        self._ema_row_s = 0.0
        self._draining = False
        self._stopped = False
        self._started = False
        self._stop_event: asyncio.Event | None = None
        self._t_start = 0.0

    # ------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------ #

    @property
    def address(self) -> str | tuple[str, int]:
        """Where the server listens: the unix path, or ``(host, port)``
        with the actually-bound port (useful with ``port=0``)."""
        cfg = self.server_config
        if cfg.path is not None:
            return cfg.path
        if self._server is not None and self._server.sockets:
            host, port = self._server.sockets[0].getsockname()[:2]
            return (host, port)
        return (cfg.host, cfg.port)

    async def start(self) -> None:
        """Bind the socket, build the serving engine, start the batcher."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        loop = asyncio.get_running_loop()
        self._t_start = loop.time()
        self._queue = asyncio.Queue()
        self._stop_event = asyncio.Event()
        # Engine construction compiles/publishes the phase arrays (or
        # spins up a whole shard fleet) — keep the loop responsive by
        # doing it on the executor.
        factory = self.engine_factory or (
            lambda: self.oracle.query_engine(self.engine_config)
        )
        self.engine = await loop.run_in_executor(None, factory)
        # Fail at startup, naming the missing method, instead of with a
        # mid-request AttributeError on the first batch.
        ensure_serving_backend(
            self.engine,
            context="engine_factory result" if self.engine_factory else "engine",
        )
        self._batcher = asyncio.create_task(self._batch_loop())
        cfg = self.server_config
        if cfg.path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_conn, path=cfg.path, limit=_STREAM_LIMIT
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_conn, cfg.host, cfg.port, limit=_STREAM_LIMIT
            )
        _log.info(
            "server: listening on %s (engine %s, coalesce %dus/%d rows)",
            self.address,
            type(self.engine).__name__,
            cfg.max_wait_us,
            cfg.max_batch_rows,
        )

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, then close the engine.

        Ordering is load-bearing: (1) the listener closes so no new work
        arrives; (2) already-admitted requests drain through the batcher —
        their responses still go out; (3) only then do the engine *and the
        oracle* close, unlinking the serving-pool arena the drained
        batches were still reading plus any warm-start arena a cache-hit
        build left behind (closing only the engine used to leak the
        latter into ``/dev/shm`` until GC); (4) remaining connections are
        closed.  Idempotent.
        """
        if self._stopped or not self._started:
            self._stopped = True
            return
        self._stopped = True
        self._draining = True  # new row ops answer 503 from here on
        _log.info("server: draining (%d pending row requests)", self._pending)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._queue.put(None)  # sentinel: batcher drains, then exits
        if self._batcher is not None:
            await self._batcher
        loop = asyncio.get_running_loop()
        if self.engine is not None:
            await loop.run_in_executor(None, self.engine.close)
        # The oracle may hold its own arena (warm-start pages of a
        # cache-hit shm build) independent of the engine's; release it too.
        await loop.run_in_executor(None, self.oracle.close)
        for writer in list(self._writers):
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        if self._stop_event is not None:
            self._stop_event.set()
        _log.info("server: stopped")

    def request_shutdown(self) -> None:
        """Signal-safe shutdown trigger for :meth:`serve_forever`."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until :meth:`request_shutdown` (or
        cancellation), then stop gracefully."""
        if not self._started:
            await self.start()
        try:
            await self._stop_event.wait()
        finally:
            await self.stop()

    async def __aenter__(self) -> "OracleServer":
        """Async context entry: the started server."""
        if not self._started:
            await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        """Async context exit: graceful stop."""
        await self.stop()

    # ------------------------------------------------------------ #
    # Connections and requests
    # ------------------------------------------------------------ #

    async def _write(self, writer, wlock: asyncio.Lock, obj: dict) -> None:
        data = encode(obj)
        with contextlib.suppress(ConnectionResetError, BrokenPipeError, RuntimeError):
            async with wlock:
                writer.write(data)
                await writer.drain()

    async def _handle_conn(self, reader, writer) -> None:
        self._writers.add(writer)
        wlock = asyncio.Lock()  # responses interleave per request-task
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    req = decode(line)
                except ServerError as exc:
                    self.metrics.record_error()
                    await self._write(
                        writer, wlock, error_response(None, exc.code, exc.message)
                    )
                    continue
                task = asyncio.create_task(self._handle_request(req, writer, wlock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, asyncio.LimitOverrunError, ValueError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_request(self, req: dict, writer, wlock: asyncio.Lock) -> None:
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        req_id = req.get("id")
        op = req.get("op")
        self.metrics.record_request(op if isinstance(op, str) else "?")
        try:
            if op == "ping":
                resp = ok_response(req_id, {"pong": True})
            elif op == "stats":
                resp = ok_response(req_id, await self._stats_result())
            elif op == "reweight":
                resp = ok_response(req_id, await self._reweight_op(req))
            elif op in ROW_OPS:
                resp = await self._row_op(req_id, op, req, t0)
            else:
                raise ServerError(BAD_REQUEST, f"unknown op {op!r}")
        except ServerError as exc:
            if exc.code == OVERLOADED:
                self.metrics.record_shed()
            elif exc.code == TIMEOUT:
                self.metrics.record_timeout()
            else:
                self.metrics.record_error()
            resp = error_response(req_id, exc.code, exc.message)
        except Exception as exc:  # defensive: a bug must not kill the conn
            self.metrics.record_error()
            resp = error_response(req_id, INTERNAL, f"{type(exc).__name__}: {exc}")
        await self._write(writer, wlock, resp)

    def _parse_reweight(self, req: dict):
        """Validate a ``reweight`` request into ``(weight, edges, values)``
        — exactly one of the full vector or the sparse delta."""
        g = self._graph
        raw_w = req.get("weight")
        raw_d = req.get("delta")
        if (raw_w is None) == (raw_d is None):
            raise ServerError(
                BAD_REQUEST, "reweight needs exactly one of 'weight' or 'delta'"
            )
        try:
            if raw_w is not None:
                w = np.asarray(raw_w, dtype=g.weight.dtype)
                if w.shape != (g.m,):
                    raise ServerError(
                        BAD_REQUEST,
                        f"'weight' must list all {g.m} edge weights, got {w.shape}",
                    )
                return w, None, None
            edges = np.asarray(raw_d.get("edges"), dtype=np.int64)
            values = np.asarray(raw_d.get("weights"), dtype=g.weight.dtype)
        except ServerError:
            raise
        except Exception as exc:
            raise ServerError(BAD_REQUEST, f"malformed reweight payload: {exc}") from exc
        if edges.ndim != 1 or edges.shape != values.shape:
            raise ServerError(
                BAD_REQUEST, "'delta' needs equal-length 'edges' and 'weights' lists"
            )
        if edges.size and ((edges < 0).any() or (edges >= g.m).any()):
            raise ServerError(BAD_REQUEST, f"edge id out of range [0, {g.m})")
        return None, edges, values

    async def _reweight_op(self, req: dict) -> dict:
        """The ``reweight`` RPC: hot-swap the serving stack to new edge
        weights without dropping queries.

        Parsing happens on the loop; the replay + flip runs on the
        executor (it is CPU work).  In-flight coalesced batches finish on
        the old epoch — both the engine and the router flip under their
        own serving lock — and every batch submitted after the flip is
        answered entirely at the new one.  A sparse ``delta`` assigns
        absolute weights (idempotent, so a client retry after a dropped
        connection is safe).
        """
        if self._draining:
            raise ServerError(UNAVAILABLE, "server is shutting down")
        weight, edges, values = self._parse_reweight(req)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self._reweight_sync, weight, edges, values
        )

    def _reweight_sync(self, weight, edges, values) -> dict:
        """Executor-side reweight: serialized so two concurrent RPCs
        cannot interleave the oracle/engine swap."""
        from ..core.query import QueryEngine

        with self._reweight_lock:
            t0 = time.perf_counter()
            if isinstance(self.engine, QueryEngine):
                if weight is not None:
                    new_oracle = self.oracle.with_new_weights(weight)
                else:
                    new_oracle = self.oracle.with_new_weights(
                        weight_delta=(edges, values)
                    )
                self.engine.reweight(new_oracle.augmentation)
                old, self.oracle = self.oracle, new_oracle
                old.close()
                self._graph = new_oracle.graph
                epoch = int(getattr(new_oracle.augmentation, "weights_epoch", 0))
                mode = "engine"
            elif hasattr(self.engine, "reweight"):
                # Fleet path: the router wants the full vector (it slices
                # per-shard local weights out of it); a delta additionally
                # names the dirty ids so shards replay sparsely.
                if weight is None:
                    weight = self._graph.weight.copy()
                    weight[edges] = values
                    res = self.engine.reweight(weight, dirty=edges)
                else:
                    res = self.engine.reweight(weight)
                self._graph = self.engine.graph
                epoch = int(res["weights_epoch"])
                mode = "fleet"
            else:
                raise ServerError(
                    BAD_REQUEST,
                    f"engine {type(self.engine).__name__} does not support reweight",
                )
            wall = time.perf_counter() - t0
            _log.info(
                "server: reweighted (%s) to weights epoch %d in %.3fs",
                mode, epoch, wall,
            )
            return {"weights_epoch": epoch, "mode": mode, "wall_s": wall}

    def _parse_sources(self, op: str, req: dict) -> np.ndarray:
        n = self._graph.n
        if op == "path":
            raw = [req.get("source")]
        else:
            raw = req.get("sources")
        if not isinstance(raw, (list, tuple)) or not raw:
            raise ServerError(
                BAD_REQUEST,
                "'source' must be an int" if op == "path"
                else "'sources' must be a non-empty list of ints",
            )
        try:
            srcs = np.asarray(raw, dtype=np.int64)
        except (TypeError, ValueError) as exc:
            raise ServerError(BAD_REQUEST, f"non-integer source: {exc}") from exc
        if srcs.ndim != 1 or srcs.size == 0:
            raise ServerError(BAD_REQUEST, "sources must be a flat non-empty list")
        if (srcs < 0).any() or (srcs >= n).any():
            raise ServerError(BAD_REQUEST, f"source out of range [0, {n})")
        return srcs

    @property
    def _admission_limit(self) -> int:
        """Effective admitted-request cap: ``OracleConfig.
        admission_queue_limit`` when set, else ``ServerConfig.queue_limit``."""
        limit = int(getattr(self.engine_config, "admission_queue_limit", 0) or 0)
        return limit or self.server_config.queue_limit

    async def _row_op(self, req_id, op: str, req: dict, t0: float) -> dict:
        if self._draining:
            raise ServerError(UNAVAILABLE, "server is shutting down")
        srcs = self._parse_sources(op, req)
        limit = self._admission_limit
        if self._pending >= limit:
            raise ServerError(
                OVERLOADED,
                f"queue limit {limit} reached; retry later",
            )
        timeout_ms = float(req.get("timeout_ms", self.server_config.request_timeout_ms))
        # Admission control: a request whose *predicted* queue wait — rows
        # already backlogged, priced at the recent per-row batch wall —
        # exceeds its own deadline would only time out after consuming a
        # queue slot.  Shed it now (429) so the queue holds only requests
        # that can still meet their deadlines, instead of collapsing into
        # a deadline-miss convoy under sustained overload.
        if self._ema_row_s > 0.0:
            eta_s = (self._pending_rows + int(srcs.shape[0])) * self._ema_row_s
            if eta_s > timeout_ms / 1e3:
                self.metrics.record_shed_early()
                raise ServerError(
                    OVERLOADED,
                    f"admission control: predicted queue wait {eta_s * 1e3:.0f} ms "
                    f"exceeds the {timeout_ms:.0f} ms deadline; retry later",
                )
        loop = asyncio.get_running_loop()
        pending = _Pending(srcs, loop.create_future(), loop.time())
        self._pending += 1
        self._pending_rows += pending.rows
        self._queue.put_nowait(pending)
        try:
            rows = await asyncio.wait_for(pending.fut, timeout_ms / 1e3)
        except asyncio.TimeoutError:
            # The batch still completes server-side; only the response is
            # given up (the batcher skips done/cancelled futures).
            raise ServerError(
                TIMEOUT, f"timed out after {float(timeout_ms):.0f} ms"
            ) from None
        result = self._postprocess(op, req, srcs, rows)
        self.metrics.record_latency(loop.time() - t0)
        return ok_response(req_id, result)

    def _postprocess(self, op: str, req: dict, srcs: np.ndarray, rows: np.ndarray) -> dict:
        if op == "distances":
            return {"sources": srcs.tolist(), "distances": rows.tolist()}
        if op == "nearest_source":
            best = np.argmin(rows, axis=0)
            d = rows[best, np.arange(rows.shape[1])]
            assigned = np.where(np.isfinite(d), srcs[best], -1)
            return {"assigned": assigned.tolist(), "distance": d.tolist()}
        # path: one source row → shortest-path tree → explicit path
        target = req.get("target")
        if not isinstance(target, (int,)) or not 0 <= target < rows.shape[1]:
            raise ServerError(BAD_REQUEST, "'target' must be a vertex id")
        source = int(srcs[0])
        parent = shortest_path_tree(self._graph, source, rows[0])
        path = reconstruct_path(parent, source, int(target))
        return {
            "source": source,
            "target": int(target),
            "path": path,
            "distance": float(rows[0, int(target)]),
        }

    async def _stats_result(self) -> dict[str, Any]:
        loop = asyncio.get_running_loop()
        # engine.stats() takes the engine lock — run off-loop so a stats
        # probe never stalls the event loop behind an in-flight batch.
        engine_stats = await loop.run_in_executor(None, self.engine.stats)
        cfg = self.server_config
        aug = self.oracle.augmentation
        approx = aug.method == "hopset"
        return {
            "server": self.metrics.snapshot(),
            "engine": engine_stats,
            "graph": {"n": int(self._graph.n), "m": int(self._graph.m)},
            "mode": "approx" if approx else "exact",
            "eps": float(getattr(aug, "eps", 0.0)) if approx else None,
            "separators": self.oracle.tree.separator_stats(),
            "cache": {
                "build": dict(self.oracle.cache_info),
                "row_hit_rate": self.metrics.row_cache_hit_rate,
                "row_cache": engine_stats.get("row_cache"),
            },
            "pending": self._pending,
            "admission": {
                "queue_limit": self._admission_limit,
                "pending_rows": self._pending_rows,
                "ema_row_ms": self._ema_row_s * 1e3,
                "shed_early_total": self.metrics.shed_early_total,
            },
            "uptime_s": loop.time() - self._t_start,
            "config": {
                "max_batch_rows": cfg.max_batch_rows,
                "max_wait_us": cfg.max_wait_us,
                "queue_limit": cfg.queue_limit,
                "request_timeout_ms": cfg.request_timeout_ms,
            },
        }

    # ------------------------------------------------------------ #
    # The coalescing batcher
    # ------------------------------------------------------------ #

    async def _batch_loop(self) -> None:
        """One tick per iteration: block for the first admitted request,
        hold the window open ``max_wait_us`` (or until ``max_batch_rows``),
        run the coalesced batch, answer every member.  After the shutdown
        sentinel, keep ticking without waiting until the queue is dry."""
        loop = asyncio.get_running_loop()
        cfg = self.server_config
        draining = False
        while True:
            if draining:
                if self._queue.empty():
                    return
                head = self._queue.get_nowait()
            else:
                head = await self._queue.get()
            if head is None:
                draining = True
                continue
            batch = [head]
            rows = head.rows
            deadline = loop.time() + cfg.max_wait_us / 1e6
            while rows < cfg.max_batch_rows:
                if draining:
                    if self._queue.empty():
                        break
                    nxt = self._queue.get_nowait()
                else:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        nxt = await asyncio.wait_for(self._queue.get(), remaining)
                    except asyncio.TimeoutError:
                        break
                if nxt is None:
                    draining = True
                    continue
                batch.append(nxt)
                rows += nxt.rows
            await self._run_batch(batch)

    async def _run_batch(self, batch: list[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        t_batch = loop.time()
        waits = [t_batch - p.t_enqueue for p in batch]
        srcs = np.concatenate([p.sources for p in batch])
        try:
            dist, info = await loop.run_in_executor(None, self.engine.submit, srcs)
        except Exception as exc:
            _log.error(
                "server: batch of %d rows failed: %s: %s",
                int(srcs.shape[0]), type(exc).__name__, exc,
            )
            for p in batch:
                if not p.fut.done():
                    p.fut.set_exception(
                        ServerError(INTERNAL, f"batch failed: {type(exc).__name__}: {exc}")
                    )
            self._pending -= len(batch)
            self._pending_rows -= sum(p.rows for p in batch)
            return
        off = 0
        for p in batch:
            if not p.fut.done():
                p.fut.set_result(dist[off : off + p.rows])
            off += p.rows
        self._pending -= len(batch)
        self._pending_rows -= sum(p.rows for p in batch)
        per_row_s = info["wall_s"] / max(1, int(info["rows"]))
        self._ema_row_s = (
            per_row_s
            if self._ema_row_s == 0.0
            else 0.3 * per_row_s + 0.7 * self._ema_row_s
        )
        self.metrics.record_batch(
            len(batch), info["rows"], info["shards"], info["wall_s"], waits,
            cached_rows=info.get("cached_rows", 0),
        )
