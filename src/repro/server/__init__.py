"""Async batched query serving over a warm
:class:`~repro.core.query.QueryEngine` (the ROADMAP's socket front end).

* :class:`~repro.server.server.OracleServer` — asyncio TCP/Unix-socket
  server with request coalescing, bounded-queue backpressure, per-request
  timeouts and drain-then-close shutdown;
* :class:`~repro.server.client.OracleClient` — blocking JSON-line client;
* :class:`~repro.server.server.ServerConfig` — coalescing/limit knobs;
* :class:`~repro.server.metrics.ServerMetrics` — per-request/per-batch
  telemetry (queue wait, coalesce factor, shard fan-out, p50/p99).

Start one from the CLI with ``repro-spsp serve`` or in-process::

    async with OracleServer(oracle, server=ServerConfig(path=sock)) as srv:
        ...

See DESIGN.md §6 for the architecture.
"""

from .client import OracleClient
from .metrics import ServerMetrics
from .protocol import ServerError
from .server import OracleServer, ServerConfig

__all__ = [
    "OracleServer",
    "OracleClient",
    "ServerConfig",
    "ServerMetrics",
    "ServerError",
]
