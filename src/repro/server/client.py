"""Blocking client for the query server: :class:`OracleClient`.

A thin synchronous wrapper over the JSON-line protocol — one socket, one
request in flight at a time, responses matched by id.  Intended for worker
processes, notebooks and the CLI; concurrency comes from many clients (the
server coalesces them), not from pipelining inside one client.

    >>> with OracleClient("/tmp/oracle.sock") as c:
    ...     d = c.distances([0, 17])          # (2, n) ndarray
    ...     who, dist = c.nearest_source([3, 9])
    ...     hops = c.path(0, 35)
    ...     c.stats()["server"]["coalesce_factor"]
"""

from __future__ import annotations

import itertools
import socket
import time
from typing import Any

import numpy as np

from .protocol import UNAVAILABLE, ServerError, decode, encode

__all__ = ["OracleClient"]


class OracleClient:
    """Blocking connection to an :class:`~repro.server.OracleServer`.

    Every request op is idempotent — the row ops are read-only, and
    ``reweight`` *assigns* absolute weights (it never increments), so
    replaying it lands on the same weights — which is what lets the
    client transparently retry a call once when the connection drops
    mid-flight (``ConnectionResetError`` / a server that closed the
    socket) or the server answers 503 while draining — a short backoff,
    a reconnect when the socket died, and one resend.  Anything else
    (400s, 429, timeouts, a second failure) propagates to the caller.

    Parameters
    ----------
    address:
        A unix-socket path (``str``) or a ``(host, port)`` tuple.
    timeout:
        Socket timeout in seconds for each call (also sent to the server
        as the request's ``timeout_ms`` so both sides agree).
    connect_retry_s:
        Keep retrying the initial connection for this long — covers the
        race of a client starting before the server finished binding.
    retries:
        How many times a dropped-connection/503 call is retried
        (default 1; 0 disables the retry).
    retry_backoff_s:
        Sleep before each retry (scaled by the attempt number).
    """

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        timeout: float = 30.0,
        connect_retry_s: float = 5.0,
        retries: int = 1,
        retry_backoff_s: float = 0.05,
    ) -> None:
        self.address = address
        self.timeout = float(timeout)
        self.retries = max(0, int(retries))
        self.retry_backoff_s = float(retry_backoff_s)
        self._connect_retry_s = float(connect_retry_s)
        self._ids = itertools.count()
        self._sock = self._connect(address, connect_retry_s)
        self._sock.settimeout(self.timeout)
        self._file = self._sock.makefile("rwb")

    @staticmethod
    def _connect(address, retry_s: float) -> socket.socket:
        deadline = time.monotonic() + max(0.0, retry_s)
        while True:
            try:
                if isinstance(address, str):
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.connect(address)
                    return sock
                return socket.create_connection(tuple(address))
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.02)

    # ------------------------------------------------------------ #

    def _reconnect(self) -> None:
        """Drop the dead socket and dial the server again."""
        self.close()
        self._sock = self._connect(self.address, self._connect_retry_s)
        self._sock.settimeout(self.timeout)
        self._file = self._sock.makefile("rwb")

    def _call(self, op: str, **fields: Any) -> dict[str, Any]:
        """One request/response round trip, with the idempotent-retry
        policy of the class docstring (reset/503 → backoff, retry once)."""
        for attempt in range(self.retries + 1):
            try:
                return self._call_once(op, **fields)
            except ConnectionError:
                # Covers ConnectionResetError / BrokenPipeError and the
                # explicit "server closed the connection": the socket is
                # dead, so a retry must redial first.
                if attempt >= self.retries:
                    raise
                time.sleep(self.retry_backoff_s * (attempt + 1))
                self._reconnect()
            except ServerError as exc:
                # 503: the server is draining — possibly a restart; give a
                # replacement a moment, then retry on a fresh connection.
                if exc.code != UNAVAILABLE or attempt >= self.retries:
                    raise
                time.sleep(self.retry_backoff_s * (attempt + 1))
                self._reconnect()
        raise AssertionError("unreachable")  # pragma: no cover

    def _call_once(self, op: str, **fields: Any) -> dict[str, Any]:
        req_id = next(self._ids)
        req = {"id": req_id, "op": op, "timeout_ms": self.timeout * 1e3, **fields}
        self._file.write(encode(req))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        resp = decode(line)
        if resp.get("id") != req_id:
            raise ServerError(500, f"response id mismatch: {resp.get('id')!r}")
        if not resp.get("ok"):
            raise ServerError(resp.get("code", 500), resp.get("error", "unknown error"))
        return resp["result"]

    def ping(self) -> bool:
        """Round-trip liveness check."""
        return bool(self._call("ping").get("pong"))

    def distances(self, sources) -> np.ndarray:
        """Distance rows for each source: ``(s, n)``, or ``(n,)`` for a
        bare int — the server-side equivalent of
        :meth:`QueryEngine.query`."""
        single = isinstance(sources, (int, np.integer))
        srcs = [int(sources)] if single else [int(s) for s in sources]
        out = np.asarray(self._call("distances", sources=srcs)["distances"], dtype=np.float64)
        return out[0] if single else out

    def nearest_source(self, sources) -> tuple[np.ndarray, np.ndarray]:
        """Per-vertex closest source and its distance (multi-depot
        assignment); unreachable vertices get source −1 and +inf."""
        res = self._call("nearest_source", sources=[int(s) for s in sources])
        return (
            np.asarray(res["assigned"], dtype=np.int64),
            np.asarray(res["distance"], dtype=np.float64),
        )

    def path(self, source: int, target: int) -> list[int] | None:
        """An explicit minimum-weight path (original edges), or ``None``."""
        return self._call("path", source=int(source), target=int(target))["path"]

    def path_with_distance(self, source: int, target: int) -> tuple[list[int] | None, float]:
        """``(path, distance)`` in one round trip."""
        res = self._call("path", source=int(source), target=int(target))
        return res["path"], float(res["distance"])

    def stats(self) -> dict[str, Any]:
        """Server + engine telemetry snapshot (see
        :class:`~repro.server.metrics.ServerMetrics`)."""
        return self._call("stats")

    def reweight(self, weight=None, *, delta=None) -> dict[str, Any]:
        """Hot-swap the server to new edge weights; returns
        ``{"weights_epoch", "mode", "wall_s"}``.

        Pass either ``weight`` (the full edge-order weight vector) or
        ``delta`` (a ``{edge_id: new_weight}`` mapping, or an
        ``(edge_ids, new_weights)`` pair) — absolute assignment, so the
        class's one-shot retry is safe for this op too.  Every row op
        answered after this returns observes the new weights.
        """
        if (weight is None) == (delta is None):
            raise ValueError("pass exactly one of weight or delta")
        if weight is not None:
            return self._call("reweight", weight=[float(w) for w in np.asarray(weight)])
        if isinstance(delta, dict):
            edges = [int(e) for e in delta]
            values = [float(delta[e]) for e in delta]
        else:
            idx, vals = delta
            edges = [int(e) for e in np.asarray(idx)]
            values = [float(v) for v in np.asarray(vals)]
        return self._call("reweight", delta={"edges": edges, "weights": values})

    # ------------------------------------------------------------ #

    def close(self) -> None:
        """Close the socket (idempotent)."""
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "OracleClient":
        """Context-manager entry: the client itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: close the socket."""
        self.close()
