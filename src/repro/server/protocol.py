"""Wire protocol of the query server: JSON lines over a stream socket.

One request per line, one response per line; framing is a single ``\\n``.
Both sides are Python, so non-finite distances travel as the ``json``
module's ``Infinity`` / ``-Infinity`` literals (a documented deviation from
strict JSON — unreachable vertices are +inf and must survive the trip).

Request shape::

    {"id": <any>, "op": "distances", "sources": [0, 17]}
    {"id": <any>, "op": "nearest_source", "sources": [3, 9, 12]}
    {"id": <any>, "op": "path", "source": 0, "target": 35}
    {"id": <any>, "op": "stats"}
    {"id": <any>, "op": "ping"}
    {"id": <any>, "op": "reweight", "weight": [w_0, ..., w_{m-1}]}
    {"id": <any>, "op": "reweight", "delta": {"edges": [3, 17],
                                              "weights": [2.5, 9.0]}}

``reweight`` hot-swaps the serving stack to new edge weights without
dropping queries: exactly one of ``weight`` (the full edge-order vector)
or ``delta`` (absolute new weights for the named edge ids — *assignment*,
not increment, so retrying the same request is idempotent).  The result is
``{"weights_epoch": <int>, "mode": "engine"|"fleet", "wall_s": <float>}``;
every row op answered after the response observes the new weights, and no
response ever mixes two epochs.

Response shape::

    {"id": <same>, "ok": true,  "result": {...}}
    {"id": <same>, "ok": false, "code": 429, "error": "..."}

``id`` is opaque to the server and echoed verbatim — clients use it to
match responses (the server answers each connection's requests as they
complete, which is not necessarily arrival order once batches coalesce).

The ``stats`` result carries, alongside the ``server`` counter snapshot
(which includes ``cached_rows_total`` and ``row_cache_hit_rate``) and the
``engine`` stats (with their ``row_cache`` hit/miss section), a ``cache``
section summarizing both caches of the serving stack::

    "cache": {
        "build":        {...},   # oracle.cache_info: augmentation-store
                                 # mode/status ("off"|"bypass"|"miss"|
                                 # "hit"|"stored"), key, dir, timings
        "row_hit_rate": 0.42,    # fraction of served rows from the row LRU
        "row_cache":    {...}    # engine row-LRU capacity/size/hits/misses
    }
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "OK",
    "BAD_REQUEST",
    "OVERLOADED",
    "INTERNAL",
    "UNAVAILABLE",
    "TIMEOUT",
    "ROW_OPS",
    "ServerError",
    "encode",
    "decode",
    "ok_response",
    "error_response",
]

#: Status codes, HTTP-flavored so dashboards read them without a legend.
OK = 200
BAD_REQUEST = 400
OVERLOADED = 429        # bounded-queue shed (backpressure)
INTERNAL = 500
UNAVAILABLE = 503       # server is draining for shutdown
TIMEOUT = 504

#: Ops whose answer needs distance rows — these are the ones the server
#: coalesces into shared :meth:`QueryEngine.submit` batches.
ROW_OPS = ("distances", "nearest_source", "path")


class ServerError(RuntimeError):
    """A non-ok response, surfaced client-side with its status code."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = int(code)
        self.message = message


def encode(obj: dict[str, Any]) -> bytes:
    """One JSON line, ready to write (compact separators, ``\\n`` framed)."""
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode()


def decode(line: bytes | str) -> dict[str, Any]:
    """Parse one received line; raises :class:`ServerError` (400) on junk."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServerError(BAD_REQUEST, f"malformed JSON line: {exc}") from exc
    if not isinstance(obj, dict):
        raise ServerError(BAD_REQUEST, "request must be a JSON object")
    return obj


def ok_response(req_id: Any, result: dict[str, Any]) -> dict[str, Any]:
    """Success envelope for ``req_id``."""
    return {"id": req_id, "ok": True, "result": result}


def error_response(req_id: Any, code: int, message: str) -> dict[str, Any]:
    """Failure envelope for ``req_id``."""
    return {"id": req_id, "ok": False, "code": int(code), "error": message}
