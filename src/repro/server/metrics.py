"""Lightweight serving telemetry: :class:`ServerMetrics`.

Counters plus bounded latency reservoirs — cheap enough to update on every
request on the event loop, rich enough to answer the questions that matter
for a coalescing server: *how much did batching help* (coalesce factor,
shard fan-out), *where does time go* (queue wait vs batch wall vs
end-to-end latency, p50/p99), and *what got refused* (sheds, timeouts).

Everything here is mutated from the event-loop thread only, so there is no
lock; :meth:`snapshot` returns plain JSON-able floats for the ``stats``
request and ``benchmarks/bench_server.py``.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Reservoir", "ServerMetrics"]


class Reservoir:
    """Ring buffer of the most recent ``cap`` float samples with exact
    percentiles over the retained window (recent-window percentiles are
    what serving dashboards want; a tiny fixed memory bound is the cost)."""

    def __init__(self, cap: int = 4096) -> None:
        self._cap = int(cap)
        self._buf: list[float] = []
        self._next = 0
        self.count = 0
        self.total = 0.0

    def add(self, value: float) -> None:
        """Record one sample (evicting the oldest beyond the cap)."""
        value = float(value)
        self.count += 1
        self.total += value
        if len(self._buf) < self._cap:
            self._buf.append(value)
        else:
            self._buf[self._next] = value
            self._next = (self._next + 1) % self._cap


    def percentile(self, p: float) -> float:
        """Exact ``p``-th percentile (0–100) of the retained window; NaN
        when empty (nearest-rank on the sorted window)."""
        if not self._buf:
            return float("nan")
        data = sorted(self._buf)
        rank = min(len(data) - 1, max(0, round(p / 100.0 * (len(data) - 1))))
        return data[rank]

    @property
    def mean(self) -> float:
        """Mean over *all* samples ever recorded (not just the window)."""
        return self.total / self.count if self.count else float("nan")

    def summary(self) -> dict[str, float]:
        """``{count, mean, p50, p99}`` — the serving four-number summary."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class ServerMetrics:
    """All counters and reservoirs of one :class:`~repro.server.OracleServer`.

    Batch-shape metrics (coalesce factor, shard fan-out) come from the
    engine's per-batch records (:meth:`repro.core.query.QueryEngine.submit`);
    latency metrics are measured here, at the serving layer.
    """

    def __init__(self) -> None:
        self.requests_total = 0
        self.requests_by_op: dict[str, int] = {}
        self.shed_total = 0
        #: sheds decided by admission control (predicted-deadline misses)
        self.shed_early_total = 0
        self.timeout_total = 0
        self.error_total = 0
        self.batches_total = 0
        self.coalesced_requests_total = 0
        self.rows_total = 0
        self.shards_total = 0
        self.max_coalesce = 0
        #: rows answered from the engine's per-source row LRU (no relaxation)
        self.cached_rows_total = 0
        #: seconds a request sat admitted-but-unbatched (the coalesce tick)
        self.queue_wait_s = Reservoir()
        #: seconds one engine batch took wall-clock
        self.batch_wall_s = Reservoir()
        #: seconds from request decode to response write (row ops only)
        self.request_latency_s = Reservoir()

    # ---------------------------------------------------------- #

    def record_request(self, op: str) -> None:
        """Count one decoded request of ``op``."""
        self.requests_total += 1
        self.requests_by_op[op] = self.requests_by_op.get(op, 0) + 1

    def record_shed(self) -> None:
        """Count one request refused by backpressure (429)."""
        self.shed_total += 1

    def record_shed_early(self) -> None:
        """Count one request shed by *admission control* — refused because
        its predicted queue wait already exceeded its deadline, before it
        could occupy a queue slot (a subset of :attr:`shed_total`)."""
        self.shed_early_total += 1

    def record_timeout(self) -> None:
        """Count one request that timed out waiting for its batch (504)."""
        self.timeout_total += 1

    def record_error(self) -> None:
        """Count one request answered with a non-shed, non-timeout error."""
        self.error_total += 1

    def record_batch(
        self,
        n_requests: int,
        rows: int,
        shards: int,
        wall_s: float,
        queue_waits_s: list[float],
        cached_rows: int = 0,
    ) -> None:
        """Record one coalesced engine batch and its member queue waits."""
        self.batches_total += 1
        self.coalesced_requests_total += int(n_requests)
        self.rows_total += int(rows)
        self.shards_total += int(shards)
        self.max_coalesce = max(self.max_coalesce, int(n_requests))
        self.cached_rows_total += int(cached_rows)
        self.batch_wall_s.add(wall_s)
        for w in queue_waits_s:
            self.queue_wait_s.add(w)

    def record_latency(self, seconds: float) -> None:
        """Record one row-op end-to-end latency."""
        self.request_latency_s.add(seconds)

    # ---------------------------------------------------------- #

    @property
    def coalesce_factor(self) -> float:
        """Mean requests merged per engine batch (>1 ⇔ coalescing works)."""
        return (
            self.coalesced_requests_total / self.batches_total
            if self.batches_total
            else float("nan")
        )

    @property
    def shard_fanout(self) -> float:
        """Mean worker shards per engine batch."""
        return self.shards_total / self.batches_total if self.batches_total else float("nan")

    @property
    def row_cache_hit_rate(self) -> float:
        """Fraction of served rows answered from the engine's row LRU."""
        return self.cached_rows_total / self.rows_total if self.rows_total else 0.0

    def snapshot(self) -> dict[str, Any]:
        """JSON-able summary for the ``stats`` op and the benchmarks."""
        return {
            "requests_total": self.requests_total,
            "requests_by_op": dict(self.requests_by_op),
            "shed_total": self.shed_total,
            "shed_early_total": self.shed_early_total,
            "timeout_total": self.timeout_total,
            "error_total": self.error_total,
            "batches_total": self.batches_total,
            "coalesced_requests_total": self.coalesced_requests_total,
            "rows_total": self.rows_total,
            "cached_rows_total": self.cached_rows_total,
            "row_cache_hit_rate": self.row_cache_hit_rate,
            "coalesce_factor": self.coalesce_factor,
            "max_coalesce": self.max_coalesce,
            "shard_fanout": self.shard_fanout,
            "queue_wait_s": self.queue_wait_s.summary(),
            "batch_wall_s": self.batch_wall_s.summary(),
            "request_latency_s": self.request_latency_s.summary(),
        }
