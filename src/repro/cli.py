"""Command-line harness: ``repro-spsp`` (or ``python -m repro``).

Subcommands
-----------
``fig1``    regenerate the paper's Figure 1 (separator tree of the 9×9 grid)
``fig2``    regenerate Figure 2 (level-labeled path + right shortcuts)
``stats``   build the oracle on a generated workload and print its numbers
``table1``  quick Table-1-style sweep (ledger work vs n, fitted exponents)
``query``   serve batched multi-source queries via the persistent engine
``serve``   run the async coalescing query server on a socket
``reweight`` hot-swap a running server to new edge weights (zero downtime)
``cache``   manage the content-addressed augmentation store (ls/stats/clear)
``selftest`` end-to-end install verification against independent baselines
``report``  aggregate benchmark results into one document
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


#: Default queue-wait p99 target (ms) selected by the bare ``--autoscale``
#: switch (``--autoscale-p99-ms`` overrides it with an explicit target).
DEFAULT_AUTOSCALE_P99_MS = 50.0

#: argparse dest → :class:`~repro.core.config.OracleConfig` field.  This
#: table is the *only* flag→config plumbing: every serving/build flag maps
#: 1:1 onto a config field through :func:`config_from_args`, and its
#: ``--help`` text comes from the field's dataclass docstring
#: (:meth:`OracleConfig.field_doc`) so flag and field cannot drift.
_CONFIG_FLAG_FIELDS = {
    "method": "method",
    "leaf_size": "leaf_size",
    "kernel": "kernel",
    "backend": "executor",
    "engine": "engine",
    "cache": "cache",
    "cache_dir": "cache_dir",
    "row_cache": "row_cache",
    "reweight": "reweight",
    "shards": "shards",
    "pin": "shard_pin",
    "replicas": "replicas",
    "max_replicas": "max_replicas",
    "autoscale_p99_ms": "autoscale_target_p99_ms",
    "admission_queue_limit": "admission_queue_limit",
    "refine": "refine_separators",
    "refine_max_nodes": "refine_max_nodes",
    "mode": "mode",
    "eps": "eps",
    "hopset_beta": "hopset_beta",
    "approx_gate": "approx_gate",
}


def config_from_args(args):
    """One :class:`~repro.core.config.OracleConfig` from parsed CLI flags.

    Walks :data:`_CONFIG_FLAG_FIELDS`: a flag the subcommand defined (and
    the user set or defaulted to a non-``None`` value) lands on its config
    field; everything else keeps the dataclass default.  Every subcommand
    builds through this instead of repeating per-flag kwargs.
    """
    from .core.config import OracleConfig

    changes = {
        field: getattr(args, dest)
        for dest, field in _CONFIG_FLAG_FIELDS.items()
        if getattr(args, dest, None) is not None
    }
    return OracleConfig().replace(**changes)


def _cfg_help(field: str, extra: str = "") -> str:
    """``--help`` text for a config-mapped flag, generated from the
    dataclass field doc (single source of truth)."""
    from .core.config import OracleConfig

    doc = OracleConfig.field_doc(field)
    return f"{doc} {extra}".strip() if doc else extra


def _add_cache_flags(p) -> None:
    """The shared ``--cache`` / ``--cache-dir`` build flags."""
    p.add_argument("--cache", choices=["off", "read", "readwrite"], default="off",
                   help="augmentation store mode (content-addressed build cache)")
    p.add_argument("--cache-dir", dest="cache_dir", default=None,
                   help="store directory (default REPRO_CACHE_DIR or ~/.cache/repro/aug)")


def _add_refine_flags(p) -> None:
    """The shared ``--refine`` / ``--refine-max-nodes`` build flags."""
    p.add_argument("--refine", action="store_true", default=False,
                   help=_cfg_help("refine_separators"))
    p.add_argument("--refine-max-nodes", dest="refine_max_nodes", type=int,
                   default=None, help=_cfg_help("refine_max_nodes"))


def _add_mode_flags(p) -> None:
    """The shared exact/approx mode flags (``--mode``/``--eps``/…).  ``--mode``
    deliberately has no argparse ``choices``: an unknown name reaches
    :class:`~repro.core.config.OracleConfig` and raises its mode error,
    which names every valid mode and how each is selected."""
    p.add_argument("--mode", default=None, help=_cfg_help("mode"))
    p.add_argument("--eps", type=float, default=None, help=_cfg_help("eps"))
    p.add_argument("--hopset-beta", dest="hopset_beta", type=int, default=None,
                   help=_cfg_help("hopset_beta"))
    p.add_argument("--approx-gate", dest="approx_gate", type=float, default=None,
                   help=_cfg_help("approx_gate"))


def _workload_from_args(args):
    """``(graph, tree)`` for the shared ``--family/--n/--leaf-size/--seed``
    flags (tree is ``None`` for families that self-decompose in build)."""
    from .separators.grid import decompose_grid
    from .workloads.generators import delaunay_digraph, expander_digraph, grid_digraph

    rng = np.random.default_rng(args.seed)
    if args.family == "grid":
        side = int(round(np.sqrt(args.n)))
        g = grid_digraph((side, side), rng)
        tree = decompose_grid(g, (side, side), leaf_size=args.leaf_size)
    elif args.family == "expander":
        # No sublinear separator exists here — pair with --mode approx (or
        # auto, which gates to the hopset on the poor separability score).
        g = expander_digraph(args.n, rng)
        tree = None
    else:
        g, _ = delaunay_digraph(args.n, rng)
        from .separators.planar import decompose_planar

        tree = decompose_planar(g, leaf_size=args.leaf_size)
    return g, tree


def _cmd_fig1(args) -> int:
    from .core.api import ShortestPathOracle
    from .separators.grid import decompose_grid
    from .workloads.generators import grid_digraph

    side = args.side
    g = grid_digraph((side, side), np.random.default_rng(args.seed))
    tree = decompose_grid(g, (side, side), leaf_size=args.leaf_size)
    print(f"Separator decomposition tree of the {side}x{side} grid "
          f"(paper Fig. 1; leaf_size={args.leaf_size})")
    print(f"nodes={len(tree.nodes)} height={tree.height}\n")
    for t in tree.nodes:
        if t.level > args.max_depth:
            continue
        pad = "  " * t.level
        kind = "leaf" if t.is_leaf else "node"
        sep = "" if t.is_leaf else f" S(t)={t.separator.tolist()}"
        print(f"{pad}{kind} {t.idx}: |V|={t.size} |B|={t.boundary.shape[0]}{sep}")
    oracle = ShortestPathOracle.build(g, tree)
    print("\noracle:", oracle.stats())
    return 0


def _cmd_fig2(args) -> int:
    from .core.shortcuts import is_bitonic_with_pairs, shortcut_chain
    from .separators.grid import decompose_grid
    from .workloads.generators import grid_digraph

    rng = np.random.default_rng(args.seed)
    side = args.side
    g = grid_digraph((side, side), rng)
    tree = decompose_grid(g, (side, side), leaf_size=args.leaf_size)
    # A boustrophedon walk across the grid makes a long, level-rich path.
    path = []
    for r in range(side):
        cols = range(side) if r % 2 == 0 else range(side - 1, -1, -1)
        path.extend(r * side + c for c in cols)
    levels = tree.vertex_level[np.array(path)]
    chain = shortcut_chain(levels)
    chain_levels = [int(levels[i]) for i in chain]
    print("Right shortcuts on a level-labeled path (paper Fig. 2)")
    print("path levels:", " ".join("∞" if l < 0 else str(int(l)) for l in levels[:60]),
          "..." if len(path) > 60 else "")
    print("shortcut chain positions:", chain)
    print("chain levels:", chain_levels)
    print(f"chain size {len(chain) - 1} <= 4·d_G + 1 = {4 * tree.height + 1}:",
          len(chain) - 1 <= 4 * tree.height + 1)
    print("bitonic with ≤2-runs:", is_bitonic_with_pairs(chain_levels))
    return 0


def _cmd_stats(args) -> int:
    from .core.api import ShortestPathOracle
    from .separators.quality import assess

    rng = np.random.default_rng(args.seed)
    g, tree = _workload_from_args(args)
    oracle = ShortestPathOracle.build(g, tree, config=config_from_args(args))
    if oracle.cache_info.get("mode", "off") != "off":
        print("build cache:", oracle.cache_info)
    if tree is not None:
        print("decomposition:", assess(tree).summary())
    s = oracle.stats()
    hs = s.get("hopset")
    summary = f"mode={s.get('mode', 'exact')}"
    if hs is not None:
        summary += (f" eps={s.get('eps')} hopset_edges={hs.get('edges')} "
                    f"hop_cap={hs.get('hop_cap')} scales={hs.get('scales')}")
    print("oracle:", summary)
    for k, v in s.items():
        print(f"  {k}: {v}")
    srcs = rng.integers(0, g.n, size=args.sources)
    d = oracle.distances(srcs)
    print(f"queried {args.sources} sources; finite fraction "
          f"{np.isfinite(d).mean():.3f}; query work {oracle.query_ledger.work:.3g}")
    return 0


def _cmd_table1(args) -> int:
    from .analysis.complexity import fit_exponent, fit_exponent_with_log
    from .analysis.tables import render_table
    from .core.leaves_up import augment_leaves_up
    from .core.scheduler import build_schedule
    from .core.sssp import sssp_scheduled
    from .pram.machine import Ledger
    from .separators.grid import decompose_grid
    from .workloads.generators import grid_digraph

    rng = np.random.default_rng(args.seed)
    if args.mu is not None:
        # Programmable-μ sweep on the synthetic family.
        from .workloads.synthetic import separator_programmable_family

        rows, sizes, pre_w, src_w = [], [], [], []
        for n in args.sizes:
            g, tree = separator_programmable_family(n, args.mu, rng)
            led, qled = Ledger(), Ledger()
            aug = augment_leaves_up(g, tree, ledger=led, keep_node_distances=False)
            sssp_scheduled(aug, [0], schedule=build_schedule(aug), ledger=qled)
            sizes.append(n)
            pre_w.append(led.work)
            src_w.append(qled.work)
            rows.append([n, g.m, aug.size, led.work, qled.work])
        print(render_table(
            ["n", "m", "|E+|", "preproc work", "per-source work"], rows,
            title=f"Table 1 at programmed μ = {args.mu}",
        ))
        if len(sizes) >= 2:
            print("\npreprocessing exponent:", fit_exponent_with_log(sizes, pre_w),
                  f" (theory {max(1.0, 3 * args.mu):.2f})")
            print("per-source exponent:   ", fit_exponent_with_log(sizes, src_w),
                  f" (theory {max(1.0, 2 * args.mu):.2f})")
        return 0
    rows = []
    sizes, pre_work, src_work = [], [], []
    for side in args.sides:
        g = grid_digraph((side, side), rng)
        tree = decompose_grid(g, (side, side), leaf_size=args.leaf_size)
        led = Ledger()
        aug = augment_leaves_up(g, tree, ledger=led, keep_node_distances=False)
        qled = Ledger()
        schedule = build_schedule(aug)
        sssp_scheduled(aug, [0], schedule=schedule, ledger=qled)
        sizes.append(g.n)
        pre_work.append(led.work)
        src_work.append(qled.work)
        rows.append([g.n, g.m, aug.size, led.work, led.depth, qled.work])
    print(render_table(
        ["n", "m", "|E+|", "preproc work", "preproc depth", "per-source work"],
        rows,
        title="Table 1 shape on 2-D grids (μ = 1/2)",
    ))
    if len(sizes) >= 2:
        print("\npreprocessing work exponent:", fit_exponent(sizes, pre_work))
        print("per-source work exponent:   ", fit_exponent(sizes, src_work))
        print("(paper: 3μ = 1.5 · polylog for preprocessing, "
              "n log n per source at μ = 1/2)")
    return 0


def _cmd_query(args) -> int:
    """Serve batched multi-source queries through the persistent
    :class:`~repro.core.query.QueryEngine` and report throughput."""
    import time

    from .core.api import ShortestPathOracle

    rng = np.random.default_rng(args.seed)
    g, tree = _workload_from_args(args)
    cfg = config_from_args(args)
    t0 = time.perf_counter()
    oracle = ShortestPathOracle.build(
        g, tree, config=cfg.replace(executor="serial")
    )
    build_s = time.perf_counter() - t0
    print(f"built oracle: n={g.n} m={g.m} |E+|={oracle.augmentation.size} "
          f"({build_s:.3f}s)")
    batches = [
        rng.integers(0, g.n, size=args.sources) for _ in range(args.batches)
    ]
    with oracle.query_engine(cfg) as eng:
        t0 = time.perf_counter()
        dists = [eng.query(b) for b in batches]
        serve_s = time.perf_counter() - t0
        stats = eng.stats()
    rows = sum(d.shape[0] for d in dists)
    finite = float(np.mean([np.isfinite(d).mean() for d in dists]))
    print(f"served {stats['queries_served']} batches / {rows} source rows on "
          f"backend={stats['backend']}:{stats['workers']} engine={stats['engine']} "
          f"in {serve_s:.3f}s ({rows / max(serve_s, 1e-9):.1f} rows/s)")
    print(f"shared bytes published once: {stats['shared_bytes']}; "
          f"finite distance fraction {finite:.3f}")
    if args.check:
        want = oracle.distances(batches[0], engine=args.engine)
        same = np.array_equal(want, dists[0])
        print(f"bit-identical to serial {args.engine} pass: {same}")
        return 0 if same else 1
    return 0


def _configure_logging(verbose: int) -> None:
    """Stdlib logging for the serving path: ``-v`` → INFO, ``-vv`` → DEBUG
    on the ``repro`` logger (server lifecycle, fleet restarts, worker
    events); default stays WARNING-quiet."""
    import logging

    level = (
        logging.WARNING if verbose <= 0
        else logging.INFO if verbose == 1
        else logging.DEBUG
    )
    logging.basicConfig(
        level=level, format="%(asctime)s %(levelname)s %(name)s: %(message)s"
    )
    logging.getLogger("repro").setLevel(level)


def _cmd_serve(args) -> int:
    """Run the async coalescing query server (see :mod:`repro.server` and
    DESIGN.md §6) over a built — or loaded — oracle until SIGINT/SIGTERM,
    then drain and shut down gracefully.  With ``--shards K`` the serving
    engine is a :class:`~repro.shard.ShardRouter` fleet (one worker
    process per shard; ``--pin`` adds per-worker CPU affinity);
    ``--replicas N`` serves each shard through a
    :class:`~repro.shard.ReplicaPool`, and ``--autoscale`` lets the pool
    grow/shrink replicas against a queue-wait p99 target."""
    import asyncio
    import signal

    from .core.api import ShortestPathOracle
    from .server import OracleServer, ServerConfig

    _configure_logging(args.verbose)
    if args.autoscale_p99_ms is None and args.autoscale:
        args.autoscale_p99_ms = DEFAULT_AUTOSCALE_P99_MS
    cfg = config_from_args(args)
    if args.load:
        oracle = ShortestPathOracle.load(args.load)
        print(f"loaded oracle from {args.load}: n={oracle.graph.n} "
              f"m={oracle.graph.m} |E+|={oracle.augmentation.size}")
    else:
        g, tree = _workload_from_args(args)
        oracle = ShortestPathOracle.build(
            g, tree, config=cfg.replace(executor="serial")
        )
        print(f"built oracle: n={g.n} m={g.m} |E+|={oracle.augmentation.size}")
    engine_factory = None
    if args.shards > 0:
        engine_factory = lambda: oracle.shard_fleet(  # noqa: E731
            args.shards, config=cfg, pin=args.pin
        )
    server_cfg = ServerConfig(
        path=args.socket,
        host=args.host,
        port=args.port,
        max_batch_rows=args.max_batch,
        max_wait_us=args.max_wait_us,
        queue_limit=args.queue_limit,
        request_timeout_ms=args.timeout_ms,
    )

    async def run() -> None:
        server = OracleServer(oracle, cfg, server_cfg, engine_factory=engine_factory)
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, server.request_shutdown)
        if args.shards > 0:
            mode = f"shards={args.shards} replicas={cfg.replicas} pin={args.pin}"
            if cfg.autoscale_target_p99_ms > 0:
                mode += (
                    f" autoscale_p99={cfg.autoscale_target_p99_ms:g}ms"
                    f" max_replicas={cfg.resolved_max_replicas}"
                )
        else:
            mode = f"backend={cfg.executor}"
        print(f"serving on {server.address} "
              f"({mode} engine={cfg.engine} "
              f"max_batch={server_cfg.max_batch_rows} "
              f"max_wait={server_cfg.max_wait_us}µs "
              f"queue_limit={server_cfg.queue_limit}); Ctrl-C to stop")
        await server.serve_forever()
        snap = server.metrics.snapshot()
        print(f"drained and stopped: {snap['requests_total']} requests, "
              f"{snap['batches_total']} batches, "
              f"coalesce factor {snap['coalesce_factor']:.2f}")

    asyncio.run(run())
    return 0


def _parse_address(args):
    """Socket address from the shared ``--socket`` / ``--host``/``--port``
    client flags (unix path wins when both are given)."""
    return args.socket if args.socket else (args.host, args.port)


def _cmd_reweight(args) -> int:
    """Hot-swap a *running* server (``repro-spsp serve``) to new edge
    weights over the ``reweight`` RPC — zero downtime, no rebuild: the
    server replays the retained E⁺ provenance and flips epochs atomically
    (single engine and shard fleets alike).  Weights come from a file
    (``--weights``: ``.npy`` or whitespace-separated text, full edge
    order) or inline sparse assignments (``--edge ID=WEIGHT``, repeatable).
    """
    from .server.client import OracleClient

    if bool(args.weights) == bool(args.edge):
        print("pass exactly one of --weights FILE or --edge ID=WEIGHT ...",
              file=sys.stderr)
        return 2
    with OracleClient(_parse_address(args), timeout=args.timeout_ms / 1e3) as c:
        if args.weights:
            if args.weights.endswith(".npy"):
                w = np.load(args.weights)
            else:
                w = np.loadtxt(args.weights).ravel()
            res = c.reweight(w)
        else:
            delta = {}
            for spec in args.edge:
                eid, _, val = spec.partition("=")
                if not val:
                    print(f"malformed --edge {spec!r} (want ID=WEIGHT)",
                          file=sys.stderr)
                    return 2
                delta[int(eid)] = float(val)
            res = c.reweight(delta=delta)
    print(f"reweighted ({res['mode']}): weights epoch {res['weights_epoch']} "
          f"in {res['wall_s']:.3f}s")
    return 0


def _cmd_cache(args) -> int:
    """Manage the content-addressed augmentation store (:mod:`repro.cache`):
    ``ls`` lists entries oldest-first, ``stats`` prints the store summary,
    ``clear`` deletes every entry/lock/temp file."""
    from .cache import AugmentationCache

    store = AugmentationCache(args.cache_dir)
    if args.action == "ls":
        entries = store.entries()
        if not entries:
            print(f"cache {store.dir}: empty")
            return 0
        print(f"cache {store.dir}: {len(entries)} entries (oldest first)")
        for e in entries:
            print(f"  {e['key'][:16]}…  {int(e.get('bytes', 0)):>12} B"
                  f"  n={e.get('n', '?')} m={e.get('m', '?')}"
                  f" |E+|={e.get('eplus', '?')}"
                  f" method={e.get('method', '?')}"
                  f" semiring={e.get('semiring', '?')}")
        return 0
    if args.action == "stats":
        for k, v in store.stats().items():
            print(f"  {k}: {v}")
        return 0
    removed = store.clear()
    print(f"cleared {removed} entries from {store.dir}")
    return 0


def _cmd_selftest(args) -> int:
    """End-to-end self-verification on randomized workloads: builds the full
    pipeline across families/methods and cross-checks against independent
    baselines.  Exit code 0 = healthy install."""
    from .core.api import ShortestPathOracle
    from .kernels.dijkstra import dijkstra
    from .kernels.johnson import johnson
    from .separators.grid import decompose_grid
    from .separators.quality import assess
    from .workloads.generators import (
        apply_potential_weights,
        delaunay_digraph,
        grid_digraph,
    )

    rng = np.random.default_rng(args.seed)
    failures = 0

    def check(name: str, ok: bool) -> None:
        nonlocal failures
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")
        failures += 0 if ok else 1

    print("selftest: grid family")
    g = grid_digraph((12, 12), rng)
    tree = decompose_grid(g, (12, 12))
    check("decomposition valid", not tree.validate(g, strict=False))
    for method in ("leaves_up", "doubling", "doubling_shared"):
        oracle = ShortestPathOracle.build(g, tree, method=method)
        ok = np.allclose(oracle.distances(0), dijkstra(g, 0))
        check(f"{method} distances == dijkstra", ok)
        check(f"{method} E+ self-check", oracle.augmentation.verify_edges() < 1e-6)
        check(
            f"{method} diameter bound",
            oracle.measured_diameter() <= oracle.diameter_bound,
        )
    print("selftest: negative weights")
    gn = apply_potential_weights(g, rng)
    oracle = ShortestPathOracle.build(gn, tree)
    check("negative weights == johnson", np.allclose(oracle.distances([0]), johnson(gn, [0])))
    print("selftest: planar family")
    gd, _ = delaunay_digraph(200, rng)
    od = ShortestPathOracle.build(gd, separator="planar")
    check("delaunay distances == dijkstra", np.allclose(od.distances(0), dijkstra(gd, 0)))
    print("selftest: decomposition quality")
    print("   ", assess(tree).summary())
    print(f"selftest: {'PASS' if failures == 0 else f'{failures} FAILURES'}")
    return 0 if failures == 0 else 1


def _cmd_report(args) -> int:
    from .analysis.report import aggregate_results

    text = aggregate_results(args.results)
    if args.output:
        import pathlib

        pathlib.Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-spsp", description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p1 = sub.add_parser("fig1", help="separator tree of a grid (paper Fig. 1)")
    p1.add_argument("--side", type=int, default=9)
    p1.add_argument("--leaf-size", dest="leaf_size", type=int, default=4)
    p1.add_argument("--max-depth", dest="max_depth", type=int, default=3)
    p1.add_argument("--seed", type=int, default=0)
    p1.set_defaults(fn=_cmd_fig1)

    p2 = sub.add_parser("fig2", help="right shortcuts on a path (paper Fig. 2)")
    p2.add_argument("--side", type=int, default=9)
    p2.add_argument("--leaf-size", dest="leaf_size", type=int, default=4)
    p2.add_argument("--seed", type=int, default=0)
    p2.set_defaults(fn=_cmd_fig2)

    p3 = sub.add_parser("stats", help="oracle statistics on a workload")
    p3.add_argument("--family", choices=["grid", "delaunay", "expander"],
                    default="grid")
    p3.add_argument("--n", type=int, default=1024)
    p3.add_argument("--sources", type=int, default=4)
    p3.add_argument("--method", choices=["leaves_up", "doubling"], default="leaves_up")
    p3.add_argument("--kernel", choices=["auto", "reference", "blocked", "pruned", "jit"],
                    default=None,
                    help="min-plus kernel (jit needs the numba extra)")
    p3.add_argument("--leaf-size", dest="leaf_size", type=int, default=8)
    p3.add_argument("--seed", type=int, default=0)
    _add_cache_flags(p3)
    _add_refine_flags(p3)
    _add_mode_flags(p3)
    p3.set_defaults(fn=_cmd_stats)

    p4 = sub.add_parser("table1", help="quick Table-1 sweep (grids, or any μ with --mu)")
    p4.add_argument("--sides", type=int, nargs="+", default=[8, 12, 16, 24, 32])
    p4.add_argument("--mu", type=float, default=None,
                    help="use the programmable synthetic family at this μ")
    p4.add_argument("--sizes", type=int, nargs="+", default=[300, 600, 1200],
                    help="vertex counts for the --mu sweep")
    p4.add_argument("--leaf-size", dest="leaf_size", type=int, default=8)
    p4.add_argument("--seed", type=int, default=0)
    p4.set_defaults(fn=_cmd_table1)

    p7 = sub.add_parser("query", help="serve batched queries via the persistent engine")
    p7.add_argument("--family", choices=["grid", "delaunay", "expander"],
                    default="grid")
    p7.add_argument("--n", type=int, default=1024)
    p7.add_argument("--sources", type=int, default=64, help="sources per batch")
    p7.add_argument("--batches", type=int, default=4)
    p7.add_argument("--backend", default="shm",
                    help="executor spec: serial | thread[:N] | process[:N] | shm[:N]")
    p7.add_argument("--engine", choices=["scheduled", "naive"], default="scheduled")
    p7.add_argument("--method",
                    choices=["leaves_up", "doubling", "doubling_shared"],
                    default="leaves_up")
    p7.add_argument("--kernel", choices=["auto", "reference", "blocked", "pruned", "jit"],
                    default=None,
                    help="min-plus kernel (jit needs the numba extra)")
    p7.add_argument("--leaf-size", dest="leaf_size", type=int, default=8)
    p7.add_argument("--seed", type=int, default=0)
    p7.add_argument("--check", action="store_true",
                    help="verify the first batch bit-equals a serial pass")
    _add_cache_flags(p7)
    _add_refine_flags(p7)
    _add_mode_flags(p7)
    p7.set_defaults(fn=_cmd_query)

    p8 = sub.add_parser("serve", help="run the async coalescing query server")
    p8.add_argument("--socket", default=None,
                    help="serve on this unix-socket path (preferred locally)")
    p8.add_argument("--host", default="127.0.0.1")
    p8.add_argument("--port", type=int, default=7470)
    p8.add_argument("--load", default=None,
                    help="serve an oracle persisted with ShortestPathOracle.save")
    p8.add_argument("--family", choices=["grid", "delaunay", "expander"],
                    default="grid")
    p8.add_argument("--n", type=int, default=1024)
    p8.add_argument("--method",
                    choices=["leaves_up", "doubling", "doubling_shared"],
                    default="leaves_up")
    p8.add_argument("--kernel", choices=["auto", "reference", "blocked", "pruned", "jit"],
                    default=None,
                    help="min-plus kernel (jit needs the numba extra)")
    p8.add_argument("--leaf-size", dest="leaf_size", type=int, default=8)
    p8.add_argument("--seed", type=int, default=0)
    p8.add_argument("--backend", default="shm",
                    help="serving executor: serial | thread[:N] | process[:N] | shm[:N]")
    p8.add_argument("--engine", choices=["scheduled", "naive"], default="scheduled")
    p8.add_argument("--max-batch", dest="max_batch", type=int, default=256,
                    help="coalescing cap in source rows per batch")
    p8.add_argument("--max-wait-us", dest="max_wait_us", type=int, default=2000,
                    help="coalescing window in microseconds")
    p8.add_argument("--queue-limit", dest="queue_limit", type=int, default=1024,
                    help="admitted-but-unfinished requests before shedding (429)")
    p8.add_argument("--timeout-ms", dest="timeout_ms", type=float, default=30000.0,
                    help="default per-request timeout")
    p8.add_argument("--row-cache", dest="row_cache", type=int, default=1024,
                    help=_cfg_help("row_cache"))
    p8.add_argument("--reweight", choices=["auto", "incremental", "rebuild"],
                    default="auto", help=_cfg_help("reweight"))
    p8.add_argument("--shards", type=int, default=0, help=_cfg_help("shards"))
    p8.add_argument("--pin", action="store_true", help=_cfg_help("shard_pin"))
    p8.add_argument("--replicas", type=int, default=None,
                    help=_cfg_help("replicas"))
    p8.add_argument("--max-replicas", dest="max_replicas", type=int, default=None,
                    help=_cfg_help("max_replicas"))
    p8.add_argument("--autoscale", action="store_true",
                    help="enable the hot-shard autoscaler at the default "
                         f"{DEFAULT_AUTOSCALE_P99_MS:g} ms queue-wait p99 target")
    p8.add_argument("--autoscale-p99-ms", dest="autoscale_p99_ms", type=float,
                    default=None, help=_cfg_help("autoscale_target_p99_ms"))
    p8.add_argument("--admission-queue-limit", dest="admission_queue_limit",
                    type=int, default=None,
                    help=_cfg_help("admission_queue_limit"))
    p8.add_argument("-v", "--verbose", action="count", default=0,
                    help="serving-path logging: -v INFO, -vv DEBUG")
    _add_cache_flags(p8)
    _add_refine_flags(p8)
    _add_mode_flags(p8)
    p8.set_defaults(fn=_cmd_serve)

    p10 = sub.add_parser(
        "reweight", help="hot-swap a running server to new edge weights"
    )
    p10.add_argument("--socket", default=None,
                     help="unix-socket path of the running server")
    p10.add_argument("--host", default="127.0.0.1")
    p10.add_argument("--port", type=int, default=7470)
    p10.add_argument("--weights", default=None,
                     help="file with the full weight vector in edge order "
                          "(.npy, or whitespace-separated text)")
    p10.add_argument("--edge", action="append", default=[], metavar="ID=WEIGHT",
                     help="sparse absolute assignment (repeatable); the server "
                          "replays only the touched leaves' root paths")
    p10.add_argument("--timeout-ms", dest="timeout_ms", type=float, default=120000.0,
                     help="client timeout for the RPC")
    p10.set_defaults(fn=_cmd_reweight)

    p9 = sub.add_parser("cache", help="manage the augmentation build cache")
    p9.add_argument("action", choices=["ls", "stats", "clear"])
    p9.add_argument("--cache-dir", dest="cache_dir", default=None,
                    help="store directory (default REPRO_CACHE_DIR or ~/.cache/repro/aug)")
    p9.set_defaults(fn=_cmd_cache)

    p6 = sub.add_parser("selftest", help="end-to-end install verification")
    p6.add_argument("--seed", type=int, default=0)
    p6.set_defaults(fn=_cmd_selftest)

    p5 = sub.add_parser("report", help="aggregate benchmarks/results into one document")
    p5.add_argument("--results", default="benchmarks/results")
    p5.add_argument("--output", default="")
    p5.set_defaults(fn=_cmd_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
