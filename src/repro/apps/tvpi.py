"""Linear inequalities with at most two variables per inequality (paper §1).

"An interesting application of our algorithm outside the shortest-paths
realm is obtaining faster sequential algorithms for solving linear systems
of inequalities where each inequality involves at most two variables, when
the underlying graph has a separator decomposition" (Cohen–Megiddo).  The
expensive primitive inside that algorithm is a shortest-paths/path-algebra
computation on the constraint graph; with a k^μ-separator decomposition it
drops from Õ(n³) to Õ(n^{1+2μ} + mn).

We implement the two standard solvable fragments end-to-end on top of the
oracle:

* **Difference constraints** ``x_j − x_i ≤ c`` — one edge ``i→j`` of weight
  ``c``; the system is feasible iff the graph has no negative cycle (which
  the augmentation build certifies for free), and a solution is the
  column-minimum potential ``x_v = min_u dist(u, v)``, obtained by running
  the §3.2 schedule from the all-zeros initial vector (min-plus linearity:
  the all-zeros start *is* the virtual super-source with 0-weight edges to
  every vertex, without disturbing the separator structure).
* **UTVPI constraints** ``±x_i ± x_j ≤ c`` — the classic doubled-vertex
  encoding (``2i ~ +x_i``, ``2i+1 ~ −x_i``); :func:`double_tree` lifts a
  separator decomposition of the variable-interaction graph to the doubled
  constraint graph, so the same machinery solves the richer fragment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.augment import NegativeCycleDetected
from ..core.digraph import WeightedDigraph
from ..core.leaves_up import augment_leaves_up
from ..core.negcycle import find_negative_cycle
from ..core.scheduler import build_schedule
from ..core.semiring import MIN_PLUS
from ..core.septree import SeparatorTree, SepTreeNode

__all__ = [
    "DifferenceConstraint",
    "UTVPIConstraint",
    "SolveResult",
    "solve_difference_system",
    "solve_utvpi_system",
    "difference_graph",
    "utvpi_graph",
    "interaction_graph",
    "double_tree",
]


@dataclass(frozen=True)
class DifferenceConstraint:
    """``x_j − x_i ≤ c``."""

    i: int
    j: int
    c: float


@dataclass(frozen=True)
class UTVPIConstraint:
    """``a·x_i + b·x_j ≤ c`` with ``a, b ∈ {−1, +1}`` (set ``j = −1`` and
    ``b = 0`` for the unary form ``a·x_i ≤ c``)."""

    a: int
    i: int
    b: int
    j: int
    c: float

    def __post_init__(self):
        if self.a not in (-1, 1):
            raise ValueError("a must be ±1")
        if self.j >= 0 and self.b not in (-1, 1):
            raise ValueError("b must be ±1 for binary constraints")


@dataclass
class SolveResult:
    feasible: bool
    solution: np.ndarray | None
    #: an explicit negative cycle in the constraint graph when infeasible.
    certificate: list[int] | None

    def check(self, constraints, *, atol: float = 1e-6) -> bool:
        """Verify the solution against every constraint."""
        if not self.feasible or self.solution is None:
            return False
        x = self.solution
        for c in constraints:
            if isinstance(c, DifferenceConstraint):
                if x[c.j] - x[c.i] > c.c + atol:
                    return False
            else:
                lhs = c.a * x[c.i] + (c.b * x[c.j] if c.j >= 0 else 0.0)
                if lhs > c.c + atol:
                    return False
        return True


def difference_graph(n_vars: int, constraints) -> WeightedDigraph:
    """Constraint graph: edge ``i→j`` of weight ``c`` per ``x_j − x_i ≤ c``."""
    src = np.array([c.i for c in constraints], dtype=np.int64)
    dst = np.array([c.j for c in constraints], dtype=np.int64)
    w = np.array([c.c for c in constraints], dtype=np.float64)
    return WeightedDigraph(n_vars, src, dst, w)


def utvpi_graph(n_vars: int, constraints) -> WeightedDigraph:
    """Doubled constraint graph: vertex ``2i`` carries ``+x_i``, ``2i+1``
    carries ``−x_i``; each binary constraint contributes its two standard
    edges, each unary one a single doubled-weight edge."""
    src, dst, w = [], [], []

    def pos(i: int) -> int:
        return 2 * i

    def neg(i: int) -> int:
        return 2 * i + 1

    for c in constraints:
        if c.j < 0:  # a·x_i ≤ c
            if c.a == 1:  # x_i ≤ c       : neg(i) → pos(i), 2c
                src.append(neg(c.i)); dst.append(pos(c.i)); w.append(2 * c.c)
            else:  # −x_i ≤ c             : pos(i) → neg(i), 2c
                src.append(pos(c.i)); dst.append(neg(c.i)); w.append(2 * c.c)
            continue
        if c.a == 1 and c.b == -1:  # x_i − x_j ≤ c
            src += [pos(c.j), neg(c.i)]; dst += [pos(c.i), neg(c.j)]; w += [c.c, c.c]
        elif c.a == -1 and c.b == 1:  # x_j − x_i ≤ c
            src += [pos(c.i), neg(c.j)]; dst += [pos(c.j), neg(c.i)]; w += [c.c, c.c]
        elif c.a == 1 and c.b == 1:  # x_i + x_j ≤ c
            src += [neg(c.j), neg(c.i)]; dst += [pos(c.i), pos(c.j)]; w += [c.c, c.c]
        else:  # −x_i − x_j ≤ c
            src += [pos(c.j), pos(c.i)]; dst += [neg(c.i), neg(c.j)]; w += [c.c, c.c]
    return WeightedDigraph(2 * n_vars, np.array(src), np.array(dst), np.array(w))


def interaction_graph(n_vars: int, constraints) -> WeightedDigraph:
    """Undirected variable-interaction skeleton (for building the separator
    decomposition; paper comment (iv): structure only, weights irrelevant)."""
    pairs = set()
    for c in constraints:
        j = c.j if isinstance(c, UTVPIConstraint) else c.j
        i = c.i
        if j is None or j < 0 or i == j:
            continue
        pairs.add((min(i, j), max(i, j)))
    arr = np.array(sorted(pairs), dtype=np.int64).reshape(-1, 2)
    src = np.concatenate([arr[:, 0], arr[:, 1]])
    dst = np.concatenate([arr[:, 1], arr[:, 0]])
    return WeightedDigraph(n_vars, src, dst, np.ones(src.shape[0]))


def double_tree(tree: SeparatorTree) -> SeparatorTree:
    """Lift a separator decomposition of the variable-interaction graph to
    the doubled UTVPI graph (vertex ``v ↦ {2v, 2v+1}``): every doubled edge
    joins copies of an interacting variable pair, so doubled separators
    separate."""

    def dbl(a: np.ndarray) -> np.ndarray:
        return np.sort(np.concatenate([2 * a, 2 * a + 1]))

    nodes = [
        SepTreeNode(
            idx=t.idx,
            level=t.level,
            parent=t.parent,
            vertices=dbl(t.vertices),
            separator=dbl(t.separator),
            boundary=dbl(t.boundary),
            children=t.children,
        )
        for t in tree.nodes
    ]
    return SeparatorTree(nodes, 2 * tree.n)


def _potential_from_schedule(graph: WeightedDigraph, tree: SeparatorTree):
    """Column-min potential via the augmentation + one scheduled pass from
    the all-zeros vector; raises NegativeCycleDetected when infeasible."""
    aug = augment_leaves_up(graph, tree, MIN_PLUS, keep_node_distances=False)
    schedule = build_schedule(aug)
    pot = np.zeros(graph.n)
    schedule.run(pot[None, :])
    return pot


def solve_difference_system(
    n_vars: int,
    constraints: list[DifferenceConstraint],
    tree: SeparatorTree | None = None,
    *,
    separator="auto",
) -> SolveResult:
    """Solve ``x_j − x_i ≤ c`` systems with the separator oracle."""
    g = difference_graph(n_vars, constraints)
    if tree is None:
        from ..core.api import _resolve_tree

        tree = _resolve_tree(g, None, separator, 8)
    try:
        pot = _potential_from_schedule(g, tree)
    except NegativeCycleDetected:
        return SolveResult(False, None, find_negative_cycle(g))
    return SolveResult(True, pot, None)


def solve_utvpi_system(
    n_vars: int,
    constraints: list[UTVPIConstraint],
    tree: SeparatorTree | None = None,
    *,
    separator="auto",
) -> SolveResult:
    """Solve ``±x_i ± x_j ≤ c`` systems (real-valued feasibility).

    ``tree`` is a decomposition of the *variable interaction graph*
    (:func:`interaction_graph`); it is lifted with :func:`double_tree`.
    """
    g = utvpi_graph(n_vars, constraints)
    if tree is None:
        from ..core.api import _resolve_tree

        base = interaction_graph(n_vars, constraints)
        tree = _resolve_tree(base, None, separator, 8)
    lifted = double_tree(tree)
    try:
        pot = _potential_from_schedule(g, lifted)
    except NegativeCycleDetected:
        return SolveResult(False, None, find_negative_cycle(g))
    x = 0.5 * (pot[0::2] - pot[1::2])
    return SolveResult(True, x, None)
