"""Applications on top of the oracle: k-pair routing/distance oracles and
two-variable linear-inequality (difference/UTVPI) solvers."""
