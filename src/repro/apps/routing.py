"""Point-to-point distance oracle over the separator decomposition.

Paper §6 builds a *compact routing table* representation of all-pairs
shortest paths and answers k pair queries with O(k log n) extra work.  The
general-graph analog shipped here uses the per-node distance matrices the
augmentation already certifies (``dist_{G(t)}`` on ``(S(t) ∪ B(t))²``,
Propositions 4.2/4.5) and answers a ``dist(u, v)`` query by recursing down
the tree:

* ``dist_{G(t)}(u, v)`` with both endpoints labeled at ``t`` is a matrix
  lookup;
* an interior endpoint is projected to its child's boundary —
  Prop 2.1(ii): every path entering or leaving ``V(c)`` crosses ``B(c)``,
  so ``dist_{G(t)}(u, ·) = min_{b∈B(c)} dist_{G(c)}(u, b) +
  dist_{G(t)}(b, ·)`` — and the recursion bottoms out at leaf APSP.

A query touches one root-leaf path per endpoint and multiplies O(|B|)-sized
vectors: O(n^{2μ} log n) time, no per-pair preprocessing — the analog of the
paper's k-pair bound (O(q² log q + n log²n) preprocessing + O(k log n)
queries) with the hammock factor replaced by the boundary factor.
"""

from __future__ import annotations

import numpy as np

from ..core.augment import Augmentation
from ..core.semiring import Semiring
from ..core.septree import SeparatorTree, SepTreeNode

__all__ = ["DistanceOracle"]


class DistanceOracle:
    """k-pair distance oracle built on a kept-matrices augmentation."""

    def __init__(self, aug: Augmentation) -> None:
        if not aug.node_distances:
            raise ValueError(
                "augmentation was built with keep_node_distances=False; "
                "rebuild with keep_node_distances=True"
            )
        self.aug = aug
        self.tree: SeparatorTree = aug.tree
        self.semiring: Semiring = aug.semiring
        self._nd = aug.node_distances

    # -------------------------------------------------------------- #

    @classmethod
    def build(cls, graph, tree, *, method: str = "leaves_up", semiring=None) -> "DistanceOracle":
        from ..core.doubling import augment_doubling
        from ..core.leaves_up import augment_leaves_up
        from ..core.semiring import MIN_PLUS

        semiring = semiring or MIN_PLUS
        fn = augment_leaves_up if method == "leaves_up" else augment_doubling
        return cls(fn(graph, tree, semiring, keep_node_distances=True))

    def with_new_weights(self, weight=None, *, weight_delta=None) -> "DistanceOracle":
        """A fresh pair oracle for new edge weights on the same skeleton —
        the certified per-node matrices are replayed through the build's
        retained provenance (:class:`~repro.core.reweight.ReweightPlan`),
        never re-derived from a separator recursion.  Pass either
        ``weight`` (the full edge-order vector) or ``weight_delta`` (a
        ``{edge_id: new_weight}`` mapping or ``(edge_ids, new_weights)``
        pair of absolute assignments).  Requires a ``leaves_up`` lineage.
        """
        from ..core.reweight import ReweightPlan

        if self.aug.method != "leaves_up":
            raise ValueError(
                f"reweight requires a leaves_up lineage, got {self.aug.method!r}"
            )
        if (weight is None) == (weight_delta is None):
            raise ValueError("pass exactly one of weight or weight_delta")
        g = self.aug.graph
        dirty = None
        if weight_delta is not None:
            if isinstance(weight_delta, dict):
                idx = np.fromiter(weight_delta.keys(), dtype=np.int64, count=len(weight_delta))
                vals = np.asarray([weight_delta[int(e)] for e in idx], dtype=g.weight.dtype)
            else:
                idx, vals = weight_delta
                idx = np.asarray(idx, dtype=np.int64)
                vals = np.asarray(vals, dtype=g.weight.dtype)
            weight = g.weight.copy()
            weight[idx] = vals
            dirty = idx
        new_graph = type(g)(g.n, g.src, g.dst, np.asarray(weight, dtype=g.weight.dtype))
        plan = getattr(self.aug, "_reweight_plan", None)
        if plan is None:
            plan = ReweightPlan.capture(g, self.tree)
        base_state = getattr(self.aug, "_reweight_state", None)
        if base_state is None:
            dirty = None  # no retained heap: the first refresh runs densely
        aug = plan.run(
            new_graph,
            self.semiring,
            base_state=base_state,
            dirty_edges=dirty,
            keep_node_distances=True,
        )
        aug.weights_epoch = getattr(self.aug, "weights_epoch", 0) + 1
        aug._reweight_plan = plan  # type: ignore[attr-defined]
        return DistanceOracle(aug)

    # -------------------------------------------------------------- #

    def distance(self, u: int, v: int) -> float:
        """Exact ``dist_G(u, v)``."""
        return float(self._pair(self.tree.root, int(u), int(v)))

    def distances(self, pairs) -> np.ndarray:
        """Distances for an iterable of ``(u, v)`` pairs."""
        return np.array([self.distance(u, v) for u, v in pairs], dtype=self.semiring.dtype)

    def path(self, u: int, v: int, *, atol: float = 1e-9) -> list[int] | None:
        """An explicit minimum-weight ``u→v`` path over original edges,
        recovered greedily: from ``x``, follow any edge ``(x, y)`` with
        ``w(x, y) + dist(y, v) = dist(x, v)`` (such an edge always exists on
        a shortest path).  Costs O(path length · out-degree) point queries —
        the routing-table usage pattern of §6.  Min-plus semirings only."""
        if self.semiring.name not in ("min-plus", "hops"):
            raise ValueError("path extraction requires a min-plus-like semiring")
        u, v = int(u), int(v)
        remaining = self.distance(u, v)
        if not np.isfinite(remaining):
            return None
        path = [u]
        adj = self.aug.graph.out_adj
        x = u
        for _ in range(self.aug.graph.n * 2):
            if x == v and abs(remaining) <= atol:
                return path
            nbrs = adj.neighbors(x)
            ws = adj.neighbor_weights(x)
            nxt = -1
            for y, w in zip(nbrs.tolist(), ws.tolist()):
                tail = self.distance(y, v)
                if np.isfinite(tail) and abs(w + tail - remaining) <= atol + 1e-12 * abs(remaining):
                    # Prefer strict progress (positive-weight step) to avoid
                    # pacing around zero-weight cycles.
                    nxt = y
                    remaining_next = tail
                    if w > atol:
                        break
            if nxt < 0:
                raise AssertionError("tight-edge walk stalled (inconsistent oracle)")
            path.append(nxt)
            x = nxt
            remaining = remaining_next
        raise AssertionError("tight-edge walk exceeded 2n steps (zero-weight cycle)")

    # -------------------------------------------------------------- #
    # Internals — all distances below are within G(t) for the node t at
    # hand; the root call therefore answers the global query.
    # -------------------------------------------------------------- #

    def _labeled_index(self, t: SepTreeNode, u: int) -> int | None:
        """Position of ``u`` in the node's certified matrix, or None."""
        nd = self._nd[t.idx]
        pos = int(np.searchsorted(nd.vertices, u))
        if pos < nd.vertices.shape[0] and nd.vertices[pos] == u:
            return pos
        return None

    def _child_containing(self, t: SepTreeNode, u: int) -> SepTreeNode:
        for c in t.children:
            child = self.tree.nodes[c]
            pos = int(np.searchsorted(child.vertices, u))
            if pos < child.vertices.shape[0] and child.vertices[pos] == u:
                return child
        raise KeyError(f"vertex {u} not in any child of node {t.idx}")

    def _to_boundary(self, t: SepTreeNode, u: int) -> np.ndarray:
        """Vector ``dist_{G(t)}(u, b)`` over ``b ∈ B(t)`` (in B(t) order)."""
        sr = self.semiring
        nd = self._nd[t.idx]
        iu = self._labeled_index(t, u)
        if iu is not None:
            return nd.matrix[iu, nd.index_of(t.boundary)]
        if t.is_leaf:
            raise KeyError(f"vertex {u} missing from leaf {t.idx}")
        c = self._child_containing(t, u)
        vec = self._to_boundary(c, u)  # over B(c)
        if vec.size == 0:
            return np.full(t.boundary.shape[0], sr.zero, dtype=sr.dtype)
        mid = nd.submatrix(c.boundary, t.boundary)  # dist_{G(t)} on B(c)×B(t)
        return sr.add_reduce(sr.mul(vec[:, None], mid), axis=0)

    def _from_boundary(self, t: SepTreeNode, v: int) -> np.ndarray:
        """Vector ``dist_{G(t)}(b, v)`` over ``b ∈ B(t)``."""
        sr = self.semiring
        nd = self._nd[t.idx]
        iv = self._labeled_index(t, v)
        if iv is not None:
            return nd.matrix[nd.index_of(t.boundary), iv]
        if t.is_leaf:
            raise KeyError(f"vertex {v} missing from leaf {t.idx}")
        c = self._child_containing(t, v)
        vec = self._from_boundary(c, v)
        if vec.size == 0:
            return np.full(t.boundary.shape[0], sr.zero, dtype=sr.dtype)
        mid = nd.submatrix(t.boundary, c.boundary)
        return sr.add_reduce(sr.mul(mid, vec[None, :]), axis=1)

    def _pair(self, t: SepTreeNode, u: int, v: int):
        """``dist_{G(t)}(u, v)``; both vertices must lie in ``V(t)``."""
        sr = self.semiring
        nd = self._nd[t.idx]
        iu, iv = self._labeled_index(t, u), self._labeled_index(t, v)
        if iu is not None and iv is not None:
            return nd.matrix[iu, iv]
        if t.is_leaf:  # pragma: no cover - labeled_index covers all leaf vertices
            raise KeyError("leaf query fell through")
        def reduce_or_zero(arr: np.ndarray):
            return sr.add_reduce(arr.ravel()) if arr.size else sr.zero

        if iu is not None:
            # v is interior to a child c; the path's suffix stays in G(c)
            # after its last B(c) crossing.
            c = self._child_containing(t, v)
            head = nd.matrix[iu, nd.index_of(c.boundary)]  # dist_{G(t)}(u, B(c))
            tail = self._from_boundary(c, v)
            return reduce_or_zero(sr.mul(head, tail))
        if iv is not None:
            c = self._child_containing(t, u)
            head = self._to_boundary(c, u)
            tail = nd.matrix[nd.index_of(c.boundary), iv]
            return reduce_or_zero(sr.mul(head, tail))
        cu = self._child_containing(t, u)
        cv = self._child_containing(t, v)
        head = self._to_boundary(cu, u)
        tail = self._from_boundary(cv, v)
        mid = nd.submatrix(cu.boundary, cv.boundary)
        via = reduce_or_zero(sr.mul(sr.mul(head[:, None], mid), tail[None, :]))
        if cu.idx == cv.idx:
            # Paths that never leave the child are not forced through B(c).
            inner = self._pair(cu, u, v)
            return sr.add(via, inner)
        return via
