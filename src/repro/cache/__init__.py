"""Content-addressed augmentation cache (see DESIGN.md §7).

Preprocessing dominates end-to-end cost — T1-pre-* put it orders of
magnitude above a single query — yet the augmentation E⁺ is a pure
function of ``(graph, tree, semiring, method)``.  This package makes the
cold path as fast as a disk load: :func:`augmentation_key` hashes the
canonicalized inputs into a SHA-256 address, and :class:`AugmentationCache`
is the on-disk store behind ``ShortestPathOracle.build(cache=...)`` and the
``repro-spsp cache`` CLI.
"""

from .keys import augmentation_key
from .store import AugmentationCache, default_cache_dir

__all__ = ["augmentation_key", "AugmentationCache", "default_cache_dir"]
