"""Content addresses for augmentation cache entries.

A cache key must change exactly when the augmentation's *content* can
change.  E⁺ is a pure function of the graph's edge arrays, the separator
tree, the semiring and the construction method — and of nothing else:
``executor`` and ``kernel`` are bit-identical implementation choices,
``validate`` only checks, ``leaf_size``/``separator`` are already folded
into the tree itself.  So the key is a SHA-256 over a canonical
serialization of those four inputs (plus a format tag so incompatible
layouts never collide across versions).
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..core.digraph import WeightedDigraph
from ..core.semiring import Semiring
from ..core.septree import SeparatorTree

__all__ = ["augmentation_key", "KEY_VERSION"]

#: Bump when the canonical serialization (or the entry payload shape that a
#: key addresses) changes incompatibly — old entries simply stop matching.
KEY_VERSION = 1


def _feed_array(h, array: np.ndarray) -> None:
    """Hash an array unambiguously: dtype, shape, then C-order bytes."""
    a = np.ascontiguousarray(array)
    h.update(a.dtype.str.encode())
    h.update(np.asarray(a.shape, dtype=np.int64).tobytes())
    h.update(a.tobytes())


def _feed_str(h, s: str) -> None:
    b = s.encode()
    h.update(len(b).to_bytes(8, "little"))
    h.update(b)


def augmentation_key(
    graph: WeightedDigraph,
    tree: SeparatorTree,
    semiring: Semiring,
    method: str,
    *,
    mode: str = "exact",
    eps: float = 0.0,
    hopset_beta: int = 0,
    hopset_seed: int = 0,
) -> str:
    """Hex SHA-256 content address of the augmentation these inputs build.

    Two calls collide iff they would produce the same E⁺ payload: the
    graph arrays are hashed with their dtypes (a float32 and a float64
    reweighting differ), the tree in its flattened canonical form (the
    same offset-table layout :func:`repro.io.save_tree` persists: per-node
    level/parent/children columns, then concatenated vertices, separators
    and boundaries with their offset tables — unambiguous, and hashed as a
    dozen large buffers instead of thousands of per-node feeds), and the
    semiring by its registry name.

    Hopset artifacts (``mode != "exact"``) additionally fold ``mode``,
    ``eps``, ``hopset_beta`` and the pivot-sampling seed into the hash, so
    an approximate artifact can never collide with an exact one (or with a
    different-ε hopset over the same graph).  Exact keys feed *nothing*
    extra — every key minted before the hopset subsystem existed is still
    bit-stable.
    """
    h = hashlib.sha256()
    _feed_str(h, f"repro-aug-v{KEY_VERSION}")
    _feed_str(h, method)
    _feed_str(h, semiring.name)
    if mode != "exact":
        _feed_str(h, f"mode={mode}")
        _feed_str(h, f"eps={float(eps)!r}")
        _feed_str(h, f"beta={int(hopset_beta)}")
        _feed_str(h, f"seed={int(hopset_seed)}")
    h.update(int(graph.n).to_bytes(8, "little"))
    _feed_array(h, graph.src)
    _feed_array(h, graph.dst)
    _feed_array(h, graph.weight)
    h.update(int(tree.n).to_bytes(8, "little"))
    h.update(len(tree.nodes).to_bytes(8, "little"))
    count = len(tree.nodes)
    meta = np.empty((count, 4), dtype=np.int64)
    voff = np.zeros(count + 1, dtype=np.int64)
    soff = np.zeros(count + 1, dtype=np.int64)
    boff = np.zeros(count + 1, dtype=np.int64)
    verts, seps, bounds = [], [], []
    for i, t in enumerate(tree.nodes):
        kids = tuple(t.children) + (-1, -1)
        meta[i] = (t.level, t.parent, kids[0], kids[1])
        verts.append(t.vertices)
        seps.append(t.separator)
        bounds.append(t.boundary)
        voff[i + 1] = voff[i] + t.vertices.shape[0]
        soff[i + 1] = soff[i] + t.separator.shape[0]
        boff[i + 1] = boff[i] + t.boundary.shape[0]
    empty = np.empty(0, dtype=np.int64)
    _feed_array(h, meta)
    for off, chunks in ((voff, verts), (soff, seps), (boff, bounds)):
        _feed_array(h, off)
        _feed_array(h, np.concatenate(chunks) if chunks else empty)
    return h.hexdigest()
