"""On-disk augmentation store: :class:`AugmentationCache`.

Layout (one directory, default ``~/.cache/repro/aug``, overridable via
``OracleConfig.cache_dir`` / ``REPRO_CACHE_DIR``)::

    <key>.npz            one entry — the io.save_augmentation payload
    <key>.lock           O_EXCL build lock (JSON: pid + created timestamp)
    <key>.tmp-<pid>-<r>  in-flight atomic write (renamed into place)
    index.json           LRU bookkeeping: bytes / created / last_used per key
    index.lock           O_EXCL lock for index.json mutations

Durability and concurrency rules:

* **atomic writes** — entries and the index are written to a temp file in
  the same directory and ``os.replace``-d into place, so a crashed writer
  leaves at worst an orphaned ``*.tmp`` (flagged by
  ``tools/check_shm_leaks.py --cache-dir``), never a truncated entry;
* **no stampede** — a builder takes ``<key>.lock`` with ``O_EXCL`` before
  the expensive build; losers wait for the lock to clear and then load the
  winner's entry.  Locks from dead pids (or older than ``stale_lock_s``)
  are broken, so a SIGKILL'd builder never wedges the key;
* **first writer wins** — :meth:`store` skips the rename when the entry
  already exists (both racers built identical content);
* **bounded size** — after each store the total entry size is clamped to
  ``max_bytes`` (``REPRO_CACHE_MAX_BYTES``) by evicting least-recently-used
  entries per ``index.json``; the index self-heals against a vanished or
  corrupt file by rescanning the directory.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import secrets
import time
import zipfile

__all__ = ["AugmentationCache", "BuildLock", "default_cache_dir", "DEFAULT_MAX_BYTES"]

#: Default size bound of the store (override via ``REPRO_CACHE_MAX_BYTES``).
DEFAULT_MAX_BYTES = 2 << 30

#: A lock whose owner pid is gone is broken immediately; an unreadable or
#: same-host-alive lock is broken only after this many seconds.
STALE_LOCK_S = 3600.0


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro/aug``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro" / "aug"


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists under another uid
        return True
    return True


def _atomic_write_bytes(path: pathlib.Path, data: bytes) -> None:
    tmp = path.parent / f"{path.name}.tmp-{os.getpid()}-{secrets.token_hex(4)}"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class BuildLock:
    """Held ``<key>.lock`` file; release by :meth:`release` (or context
    exit).  Idempotent — a double release is a no-op."""

    def __init__(self, path: pathlib.Path) -> None:
        self.path = path
        self._held = True

    def release(self) -> None:
        """Delete the lock file; safe to call more than once."""
        if self._held:
            self._held = False
            with contextlib.suppress(FileNotFoundError):
                self.path.unlink()

    def __enter__(self) -> "BuildLock":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class AugmentationCache:
    """Content-addressed augmentation store over one directory.

    Parameters
    ----------
    cache_dir:
        Store directory (created on first write).  ``None`` →
        :func:`default_cache_dir`.
    max_bytes:
        Total entry-size bound enforced by LRU eviction after each store;
        ``None`` → ``REPRO_CACHE_MAX_BYTES`` or :data:`DEFAULT_MAX_BYTES`.
    stale_lock_s:
        Age beyond which a build lock is broken even if its pid looks
        alive (guards against pid reuse and clock-skewed NFS homes).
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        *,
        max_bytes: int | None = None,
        stale_lock_s: float = STALE_LOCK_S,
    ) -> None:
        self.dir = pathlib.Path(cache_dir) if cache_dir is not None else default_cache_dir()
        if max_bytes is None:
            max_bytes = int(os.environ.get("REPRO_CACHE_MAX_BYTES", DEFAULT_MAX_BYTES))
        self.max_bytes = int(max_bytes)
        self.stale_lock_s = float(stale_lock_s)

    # ------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------ #

    def entry_path(self, key: str) -> pathlib.Path:
        """Where ``key``'s entry lives (whether or not it exists yet)."""
        return self.dir / f"{key}.npz"

    def lock_path(self, key: str) -> pathlib.Path:
        """Where ``key``'s build lock lives while a builder holds it."""
        return self.dir / f"{key}.lock"

    @property
    def index_path(self) -> pathlib.Path:
        return self.dir / "index.json"

    def _ensure_dir(self) -> None:
        self.dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------ #
    # Build locks (entry granularity)
    # ------------------------------------------------------------ #

    def _lock_is_stale(self, path: pathlib.Path) -> bool:
        try:
            info = json.loads(path.read_text())
            pid = int(info.get("pid", -1))
            created = float(info.get("created", 0.0))
        except (OSError, ValueError):
            # Unreadable (mid-write or junk): only age can condemn it.
            try:
                created = path.stat().st_mtime
            except OSError:
                return False  # vanished — not ours to break
            return time.time() - created > self.stale_lock_s
        if not _pid_alive(pid):
            return True
        return time.time() - created > self.stale_lock_s

    def try_lock(self, key: str) -> BuildLock | None:
        """Take the build lock for ``key`` (``O_EXCL``), breaking a stale
        one; ``None`` when a live builder holds it."""
        self._ensure_dir()
        path = self.lock_path(key)
        payload = json.dumps({"pid": os.getpid(), "created": time.time()}).encode()
        for attempt in range(2):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                if attempt == 0 and self._lock_is_stale(path):
                    with contextlib.suppress(FileNotFoundError):
                        path.unlink()
                    continue
                return None
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            return BuildLock(path)
        return None

    def wait_for_entry(
        self, key: str, timeout_s: float = 120.0, poll_s: float = 0.05
    ) -> bool:
        """Wait for a concurrent builder of ``key``: poll until the entry
        appears, the lock clears (builder finished or failed), or the
        timeout elapses.  Returns whether the entry exists."""
        deadline = time.monotonic() + float(timeout_s)
        entry = self.entry_path(key)
        lock = self.lock_path(key)
        while time.monotonic() < deadline:
            if entry.exists():
                return True
            if not lock.exists():
                return entry.exists()
            time.sleep(poll_s)
        return entry.exists()

    # ------------------------------------------------------------ #
    # Load / store
    # ------------------------------------------------------------ #

    def load(self, key: str, *, arena=None):
        """``(augmentation, meta)`` for a present entry, else ``None``.

        ``meta`` is the versioned header dict of :func:`repro.io.
        load_augmentation` (``version`` / ``validated`` / ``config``).
        With ``arena`` (a :class:`~repro.pram.shm.ShmArena`) the edge
        arrays are streamed from the archive straight into shared memory —
        no intermediate private copies.  A corrupt entry is deleted and
        reported as a miss.
        """
        path = self.entry_path(key)
        if not path.exists():
            return None
        from ..io import load_augmentation

        try:
            aug, meta = load_augmentation(path, arena=arena, with_meta=True)
        except (ValueError, KeyError, OSError, zipfile.BadZipFile, EOFError):
            # Truncated or foreign file at the entry path: drop it so the
            # next builder repairs the slot (atomic writes make this rare).
            with contextlib.suppress(OSError):
                path.unlink()
            return None
        self._touch(key)
        return aug, meta

    def store(self, key: str, aug, *, config=None, validated: bool = False) -> bool:
        """Persist ``aug`` under ``key`` atomically; returns whether this
        call wrote the entry (``False`` when another builder already had —
        first writer wins, the payloads are identical by construction)."""
        self._ensure_dir()
        path = self.entry_path(key)
        if path.exists():
            self._touch(key)
            return False
        from ..io import save_augmentation

        tmp = self.dir / f"{key}.tmp-{os.getpid()}-{secrets.token_hex(4)}"
        try:
            with open(tmp, "wb") as fh:
                save_augmentation(fh, aug, config=config, validated=validated)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            with contextlib.suppress(OSError):
                tmp.unlink()
        size = path.stat().st_size
        now = time.time()
        self._update_index(
            lambda idx: idx.__setitem__(
                key,
                {
                    "bytes": int(size),
                    "created": now,
                    "last_used": now,
                    "n": int(aug.graph.n),
                    "m": int(aug.graph.m),
                    "eplus": int(aug.size),
                    "method": str(aug.method),
                    "semiring": aug.semiring.name,
                },
            )
        )
        self.evict(protect=key)
        return True

    # ------------------------------------------------------------ #
    # Index (LRU bookkeeping)
    # ------------------------------------------------------------ #

    def _read_index(self) -> dict:
        try:
            idx = json.loads(self.index_path.read_text())
        except (OSError, ValueError):
            return {}
        return idx if isinstance(idx, dict) else {}

    @contextlib.contextmanager
    def _index_lock(self, timeout_s: float = 2.0):
        """Short-spin ``O_EXCL`` lock for index mutations; yields whether
        the lock was won (callers degrade to best-effort on ``False`` —
        the index self-heals from the directory)."""
        self._ensure_dir()
        path = self.dir / "index.lock"
        deadline = time.monotonic() + timeout_s
        won = False
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
                os.close(fd)
                won = True
                break
            except FileExistsError:
                try:
                    if time.time() - path.stat().st_mtime > 30.0:
                        with contextlib.suppress(FileNotFoundError):
                            path.unlink()
                        continue
                except OSError:
                    continue
                if time.monotonic() >= deadline:
                    break
                time.sleep(0.005)
        try:
            yield won
        finally:
            if won:
                with contextlib.suppress(FileNotFoundError):
                    path.unlink()

    def _update_index(self, mutate) -> None:
        with self._index_lock() as won:
            if not won:
                return
            idx = self._read_index()
            mutate(idx)
            _atomic_write_bytes(
                self.index_path, (json.dumps(idx, indent=1, sort_keys=True) + "\n").encode()
            )

    def _touch(self, key: str) -> None:
        now = time.time()

        def bump(idx: dict) -> None:
            entry = idx.get(key)
            if isinstance(entry, dict):
                entry["last_used"] = now

        self._update_index(bump)

    # ------------------------------------------------------------ #
    # Management (ls / stats / clear / eviction)
    # ------------------------------------------------------------ #

    def entries(self) -> list[dict]:
        """One record per on-disk entry, reconciled with the index (files
        missing from the index are synthesized from ``stat``; index rows
        whose file vanished are ignored), oldest ``last_used`` first."""
        if not self.dir.is_dir():
            return []
        idx = self._read_index()
        out = []
        for path in self.dir.glob("*.npz"):
            key = path.stem
            try:
                st = path.stat()
            except OSError:
                continue
            meta = idx.get(key)
            if not isinstance(meta, dict):
                meta = {"bytes": st.st_size, "created": st.st_mtime, "last_used": st.st_mtime}
            rec = dict(meta)
            rec["key"] = key
            rec.setdefault("bytes", st.st_size)
            rec.setdefault("last_used", st.st_mtime)
            out.append(rec)
        out.sort(key=lambda r: r.get("last_used", 0.0))
        return out

    def stats(self) -> dict:
        """Store-level summary for ``repro-spsp cache stats`` and the
        server's ``stats`` op."""
        entries = self.entries()
        return {
            "dir": str(self.dir),
            "entries": len(entries),
            "total_bytes": int(sum(e.get("bytes", 0) for e in entries)),
            "max_bytes": self.max_bytes,
        }

    def evict(self, protect: str | None = None) -> list[str]:
        """Clamp total entry size to ``max_bytes`` by deleting least-
        recently-used entries (never the just-written ``protect`` key);
        returns the evicted keys."""
        entries = self.entries()
        total = sum(e.get("bytes", 0) for e in entries)
        evicted: list[str] = []
        for e in entries:
            if total <= self.max_bytes:
                break
            if e["key"] == protect:
                continue
            with contextlib.suppress(OSError):
                self.entry_path(e["key"]).unlink()
            total -= e.get("bytes", 0)
            evicted.append(e["key"])
        if evicted:
            self._update_index(lambda idx: [idx.pop(k, None) for k in evicted])
        return evicted

    def clear(self) -> int:
        """Delete every entry, lock, temp file and the index; returns how
        many *entries* were removed."""
        if not self.dir.is_dir():
            return 0
        removed = 0
        for path in list(self.dir.iterdir()):
            name = path.name
            is_entry = name.endswith(".npz")
            if is_entry or name.endswith(".lock") or ".tmp-" in name or name == "index.json":
                with contextlib.suppress(OSError):
                    path.unlink()
                    removed += 1 if is_entry else 0
        return removed
