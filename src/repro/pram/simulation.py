"""Brent-scheduling simulator: from a ledger to finite-processor time.

The ledger records (work W, depth D) — the PRAM's two extremes (P = 1 and
P = ∞).  Brent's theorem bounds the P-processor time by
``T_P ≤ W/P + D``; this module evaluates that curve so benchmarks can show
where the paper's algorithms saturate for a given machine size, and the
parallelism profile ``W/D`` that governs it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .machine import Ledger

__all__ = ["SpeedupCurve", "brent_curve"]


@dataclass(frozen=True)
class SpeedupCurve:
    processors: np.ndarray
    time: np.ndarray  # Brent bound T_P = W/P + D
    speedup: np.ndarray  # T_1 / T_P
    work: float
    depth: float

    @property
    def parallelism(self) -> float:
        """W/D — the asymptote of the speedup curve."""
        return self.work / self.depth if self.depth else float("inf")

    def saturation_processors(self, fraction: float = 0.5) -> int:
        """Smallest P whose Brent speedup reaches ``fraction`` of the
        asymptotic parallelism."""
        target = fraction * self.parallelism
        idx = np.nonzero(self.speedup >= target)[0]
        return int(self.processors[idx[0]]) if idx.size else int(self.processors[-1])


def brent_curve(ledger: Ledger, processors=None) -> SpeedupCurve:
    """Evaluate the Brent bound for a ledger's (work, depth) totals."""
    if ledger.work <= 0:
        raise ValueError("ledger has no recorded work")
    if processors is None:
        max_p = max(2, int(2 * ledger.work / max(ledger.depth, 1.0)))
        processors = np.unique(
            np.logspace(0, np.log10(max_p), num=32).astype(np.int64)
        )
    processors = np.asarray(processors, dtype=np.int64)
    time = ledger.work / processors + ledger.depth
    t1 = ledger.work + ledger.depth
    return SpeedupCurve(
        processors=processors,
        time=time,
        speedup=t1 / time,
        work=ledger.work,
        depth=ledger.depth,
    )
