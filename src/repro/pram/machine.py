"""EREW-PRAM work/depth cost model.

The paper states its bounds on an EREW PRAM: an algorithm is characterized by
*work* (total operations) and *time* (parallel depth / critical path).  No
PRAM hardware exists, so we make those quantities *measurable*: every kernel
in this package optionally charges its theoretical work and depth to a
:class:`Ledger`.  Benchmarks then report ledger totals and fit scaling
exponents against the paper's Table 1, independent of Python constant factors
and of how many real cores the host machine has.

Sequential composition adds both work and depth.  Parallel composition
(:meth:`Ledger.parallel`) adds the *sum* of branch work but only the *max* of
branch depth — exactly Brent's accounting.  Nested parallel regions are
supported by giving each branch its own sub-ledger.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Ledger",
    "NULL_LEDGER",
    "log2ceil",
    "reduce_depth",
    "set_pram_model",
    "pram_model",
]


def log2ceil(x: float) -> float:
    """``max(1, ceil(log2 x))`` — the depth of a balanced reduction tree over
    ``x`` items (never less than one step)."""
    if x <= 2:
        return 1.0
    return float(math.ceil(math.log2(x)))


#: Current PRAM variant for depth charges.  The paper states its main
#: bounds on the EREW PRAM but invokes CRCW results (Gazit–Miller planar
#: separators, §1) and CREW ones (Pantziou et al., §6); the model only
#: changes the depth of an ⊕-reduction over k items:
#:   EREW / CREW — ⌈log₂ k⌉ (binary tree; CREW differs from EREW in
#:   *read* concurrency, which our charges don't distinguish),
#:   CRCW — ⌈log log k⌉-ish; we charge the standard O(1) of the
#:   arbitrary-write min with quadratically many processors, the variant
#:   the cited separator results assume.
_MODEL = "EREW"


def set_pram_model(model: str) -> None:
    """Select the machine variant for subsequent depth charges."""
    global _MODEL
    if model not in ("EREW", "CREW", "CRCW"):
        raise ValueError("model must be EREW, CREW or CRCW")
    _MODEL = model


def pram_model() -> str:
    """The machine variant currently charged."""
    return _MODEL


def reduce_depth(k: float) -> float:
    """Depth of a ⊕-reduction over ``k`` items under the current model."""
    if _MODEL == "CRCW":
        return 1.0
    return log2ceil(k)


@dataclass
class _Tally:
    work: float = 0.0
    depth: float = 0.0
    calls: int = 0


class Ledger:
    """Accumulates PRAM work and depth, with per-label breakdowns.

    Use :meth:`charge` for a sequential step and :meth:`parallel` for a
    fork-join region::

        ledger.charge(work=n, depth=log2ceil(n), label="reduce")
        with ledger.parallel("per-node") as region:
            for node in nodes:
                branch = region.branch()
                expensive(node, ledger=branch)
        # region exit adds sum-of-work / max-of-depth to ``ledger``.
    """

    def __init__(self) -> None:
        self.work: float = 0.0
        self.depth: float = 0.0
        self._by_label: dict[str, _Tally] = {}

    # -------------------------------------------------------------- #

    def charge(self, work: float, depth: float = 1.0, label: str = "") -> None:
        """Charge a sequentially-composed step."""
        self.work += work
        self.depth += depth
        if label:
            t = self._by_label.setdefault(label, _Tally())
            t.work += work
            t.depth += depth
            t.calls += 1

    @contextmanager
    def parallel(self, label: str = ""):
        """Fork-join region: branches run conceptually in parallel."""
        region = _ParallelRegion()
        yield region
        self.charge(region.total_work, region.max_depth, label=label or "parallel")

    def merge_parallel(self, branches: list["Ledger"], label: str = "") -> None:
        """Merge already-populated sub-ledgers as parallel branches.

        Used when branch work was computed elsewhere (e.g. on a process
        pool) and the sub-ledger objects come back by value.
        """
        if not branches:
            return
        work = sum(b.work for b in branches)
        depth = max(b.depth for b in branches)
        self.charge(work, depth, label=label or "parallel")
        for b in branches:
            for lbl, t in b._by_label.items():
                mine = self._by_label.setdefault(lbl, _Tally())
                mine.work += t.work
                mine.calls += t.calls
                # Depth per label inside a merged parallel region is reported
                # as the max across branches (best-effort attribution).
                mine.depth = max(mine.depth, t.depth)

    def spawn(self) -> "Ledger":
        """Fresh empty ledger (for a parallel branch executed out-of-line)."""
        return Ledger()

    # -------------------------------------------------------------- #

    def breakdown(self) -> dict[str, dict[str, float]]:
        """Per-label totals, for reports."""
        return {
            k: {"work": t.work, "depth": t.depth, "calls": t.calls}
            for k, t in sorted(self._by_label.items())
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ledger(work={self.work:.3g}, depth={self.depth:.3g})"


class _ParallelRegion:
    def __init__(self) -> None:
        self._branches: list[Ledger] = []

    def branch(self) -> Ledger:
        b = Ledger()
        self._branches.append(b)
        return b

    @property
    def total_work(self) -> float:
        return sum(b.work for b in self._branches)

    @property
    def max_depth(self) -> float:
        return max((b.depth for b in self._branches), default=0.0)


class _NullLedger(Ledger):
    """Ledger that ignores all charges — the default when callers don't ask
    for accounting, so hot paths stay branch-free."""

    def charge(self, work: float, depth: float = 1.0, label: str = "") -> None:
        pass

    def merge_parallel(self, branches, label: str = "") -> None:
        pass

    def spawn(self) -> "Ledger":
        return self


NULL_LEDGER = _NullLedger()
