"""Execution backends for per-node independent work.

The paper's algorithms expose two sources of parallelism that survive on real
hardware: all tree nodes of a level are independent in Algorithm 4.1, and all
nodes are independent within one doubling round of Algorithm 4.3.  These
backends let the same orchestration code run serially, on a thread pool
(numpy kernels release the GIL inside BLAS/ufunc loops), or on a process
pool (true parallelism at the cost of pickling the payloads).

Workers must be module-level functions taking one picklable payload when the
process backend is used; the thread/serial backends accept anything.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Sequence

__all__ = [
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
]


class SerialExecutor:
    """Run tasks in the calling thread (the default)."""

    name = "serial"
    workers = 1

    def map(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to each payload, preserving order."""
        return [fn(p) for p in payloads]

    def close(self) -> None:
        """No resources to release."""


class ThreadExecutor:
    """Thread-pool backend; effective when the work is numpy-heavy."""

    name = "thread"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers or min(8, os.cpu_count() or 1)
        self._pool = ThreadPoolExecutor(max_workers=self.workers)

    def map(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` on the thread pool, preserving order."""
        return list(self._pool.map(fn, payloads))

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight tasks."""
        self._pool.shutdown(wait=True)


class ProcessExecutor:
    """Process-pool backend; requires module-level worker functions and
    picklable payloads."""

    name = "process"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers or min(8, os.cpu_count() or 1)
        self._pool = ProcessPoolExecutor(max_workers=self.workers)

    def map(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` on the process pool, preserving order."""
        return list(self._pool.map(fn, payloads))

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight tasks."""
        self._pool.shutdown(wait=True)


def get_executor(spec) -> SerialExecutor | ThreadExecutor | ProcessExecutor:
    """Resolve ``"serial" | "thread" | "process"`` (optionally ``"thread:4"``)
    or pass an executor instance through."""
    if spec is None:
        return SerialExecutor()
    if not isinstance(spec, str):
        return spec
    name, _, count = spec.partition(":")
    workers = int(count) if count else None
    if name == "serial":
        return SerialExecutor()
    if name == "thread":
        return ThreadExecutor(workers)
    if name == "process":
        return ProcessExecutor(workers)
    raise ValueError(f"unknown executor spec {spec!r}")
