"""Execution backends for per-node independent work.

The paper's algorithms expose three sources of parallelism that survive on
real hardware: all tree nodes of a level are independent in Algorithm 4.1,
all nodes are independent within one doubling round of Algorithm 4.3, and
all sources of a batched §3.2 query relax disjoint rows of the distance
matrix.  These backends let the same orchestration code run serially, on a
thread pool (numpy kernels release the GIL inside BLAS/ufunc loops), on a
plain process pool (true parallelism at the cost of pickling the payloads),
or on the zero-copy shared-memory process pool (true parallelism with O(1)
bytes of task traffic — see :mod:`repro.pram.shm`).

Spec grammar
------------
:func:`get_executor` resolves a *spec* to a backend instance::

    spec      ::=  None | instance | name [":" workers]
    name      ::=  "serial" | "thread" | "process" | "shm"
    workers   ::=  positive integer (default: min(8, cpu_count))

Examples: ``"serial"``, ``"thread:4"``, ``"process"``, ``"shm:8"``.
``None`` means serial; an existing executor instance passes through
unchanged (the caller keeps ownership and must ``close()`` it).

Worker-function contract
------------------------
* ``serial`` / ``thread`` — any callable and payload.
* ``process`` — module-level functions and picklable payloads.
* ``shm`` — like ``process``, but any :class:`~repro.pram.shm.ArrayRef`
  inside a payload (dicts/lists/tuples, arbitrarily nested) is resolved to
  a zero-copy numpy view *before* the function runs.  Orchestrators publish
  large arrays into a :class:`~repro.pram.shm.ShmArena` and put only the
  descriptors in the payload; workers write results into pre-allocated
  arena blocks and return scalars.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Sequence

from .shm import resolve

__all__ = [
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ShmExecutor",
    "get_executor",
]


class SerialExecutor:
    """Run tasks in the calling thread (the default)."""

    name = "serial"
    workers = 1

    def map(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to each payload, preserving order."""
        return [fn(p) for p in payloads]

    def close(self) -> None:
        """No resources to release."""


class ThreadExecutor:
    """Thread-pool backend; effective when the work is numpy-heavy."""

    name = "thread"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers or min(8, os.cpu_count() or 1)
        self._pool = ThreadPoolExecutor(max_workers=self.workers)

    def map(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` on the thread pool, preserving order."""
        return list(self._pool.map(fn, payloads))

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight tasks."""
        self._pool.shutdown(wait=True)


class ProcessExecutor:
    """Process-pool backend; requires module-level worker functions and
    picklable payloads (which are copied to and from every worker)."""

    name = "process"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers or min(8, os.cpu_count() or 1)
        self._pool = ProcessPoolExecutor(max_workers=self.workers)

    def map(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` on the process pool, preserving order."""
        return list(self._pool.map(fn, payloads))

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight tasks."""
        self._pool.shutdown(wait=True)


def _resolving_call(item: tuple[Callable[[Any], Any], Any]) -> Any:
    """Worker-side trampoline: resolve shared-memory descriptors in the
    payload, then run the task (module level so it pickles)."""
    fn, payload = item
    return fn(resolve(payload))


class ShmExecutor:
    """Persistent process pool whose payloads travel as shared-memory
    descriptors instead of pickled arrays.

    Identical ``map`` contract to :class:`ProcessExecutor`; the only
    difference is that every :class:`~repro.pram.shm.ArrayRef` found inside
    a payload is resolved to a zero-copy view in the worker before the task
    function runs.  Payloads without descriptors behave exactly like the
    plain process backend, so the same worker functions serve both.

    The pool persists across ``map`` calls — algorithms publish their big
    arrays once per run (to a :class:`~repro.pram.shm.ShmArena` they own)
    and reuse the warm workers for every subsequent phase or query batch.

    Because payloads are descriptor-sized, tasks are dispatched in chunks
    (several payloads per IPC round trip) — the per-task pool overhead that
    dominates fine-grained levels is amortized away without duplicating any
    array bytes, something the pickling backend cannot afford.
    """

    name = "shm"
    #: Orchestrators check this to switch payload construction from
    #: array-carrying to descriptor-carrying.
    uses_shared_memory = True

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers or min(8, os.cpu_count() or 1)
        self._pool = ProcessPoolExecutor(max_workers=self.workers)

    def map(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` on the pool with descriptor resolution, preserving
        order.  Payloads are shipped several-per-task (cheap: descriptors,
        not arrays) so fine-grained levels aren't dispatch-bound."""
        chunk = max(1, len(payloads) // (self.workers * 4))
        return list(
            self._pool.map(_resolving_call, [(fn, p) for p in payloads], chunksize=chunk)
        )

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight tasks.

        Arenas are owned by the orchestrators that created them, not the
        executor; closing the pool releases worker-side segment mappings.
        """
        self._pool.shutdown(wait=True)


def get_executor(spec) -> SerialExecutor | ThreadExecutor | ProcessExecutor | ShmExecutor:
    """Resolve an executor spec (see the module docstring's grammar).

    ``None`` → serial; ``"name[:N]"`` → a fresh backend with ``N`` workers;
    an instance → passed through unchanged (caller keeps ownership).
    """
    if spec is None:
        return SerialExecutor()
    if not isinstance(spec, str):
        return spec
    name, _, count = spec.partition(":")
    workers = int(count) if count else None
    if name == "serial":
        return SerialExecutor()
    if name == "thread":
        return ThreadExecutor(workers)
    if name == "process":
        return ProcessExecutor(workers)
    if name == "shm":
        return ShmExecutor(workers)
    raise ValueError(f"unknown executor spec {spec!r}")
