"""Zero-copy shared-memory plane for the process backends.

The process executor is honest parallelism, but pickling a node's distance
matrix into the task payload and pickling the result matrix back costs more
than the min-plus kernel it parallelizes.  This module removes both copies:

* a :class:`ShmArena` publishes numpy arrays into ``multiprocessing``
  POSIX shared-memory segments once, handing back tiny :class:`ArrayRef`
  descriptors ``(segment, offset, shape, dtype)``;
* workers resolve descriptors to zero-copy numpy *views* of the same
  physical pages (:func:`as_array` / :func:`resolve`), attaching each
  segment at most once per process;
* output blocks are pre-allocated by the orchestrator, so workers write
  results in place and return only scalars — task traffic is O(1) bytes
  per task regardless of matrix sizes.

Lifecycle is arena-scoped and leak-safe: the *creating* process owns every
segment and unlinks it in :meth:`ShmArena.close` (also via a ``weakref``
finalizer and the interpreter's resource tracker if the owner dies without
closing), while worker processes explicitly disclaim tracker ownership on
attach so a worker crash or exit never destroys segments still in use.
``close()`` is safe while views are still alive: the name is unlinked
immediately (nothing survives in ``/dev/shm``) and the mapping itself is
released when the last view goes away.

:func:`orphaned_segments` supports the leak checks in the test suite and
``tools/check_shm_leaks.py``.
"""

from __future__ import annotations

import os
import secrets
import threading
import weakref
from multiprocessing import shared_memory
from typing import Any, NamedTuple

import numpy as np

__all__ = [
    "ArrayRef",
    "ShmArena",
    "as_array",
    "resolve",
    "orphaned_segments",
    "SEGMENT_PREFIX",
]

#: Prefix of every segment created by this module — the leak checker greps
#: ``/dev/shm`` for it.
SEGMENT_PREFIX = "psp"

#: Alignment of every arena allocation (one cache line — keeps adjacent
#: blocks from false-sharing and keeps dtypes aligned).
_ALIGN = 64


class ArrayRef(NamedTuple):
    """Picklable descriptor of an array living in a shared segment.

    A task payload carries this ~100-byte tuple instead of the array; the
    worker turns it back into a zero-copy view with :func:`as_array`.
    """

    segment: str
    offset: int
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Payload size of the referenced array (not of the descriptor)."""
        count = 1
        for s in self.shape:
            count *= int(s)
        return count * np.dtype(self.dtype).itemsize


# Per-process cache of attached segments: each worker maps a segment at most
# once, no matter how many descriptors point into it.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _disclaim(seg: shared_memory.SharedMemory) -> None:
    """Remove ``seg`` from this process's resource tracker.

    Under the ``spawn``/``forkserver`` start methods every worker runs its
    own tracker; attaching registers the segment there (Python < 3.13 has
    no ``track=False``), and that tracker would unlink the segment when the
    *worker* exits even though the creating process still uses it.  Only
    the arena owner may unlink.

    Under ``fork`` the tracker process is shared with the creator and its
    per-name cache is a set, so the attach registration is an idempotent
    duplicate of the creator's — disclaiming here would erase the
    creator's registration too, so the caller must skip this.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


def _attach(name: str) -> shared_memory.SharedMemory:
    seg = _ATTACHED.get(name)
    if seg is None:
        import multiprocessing

        seg = shared_memory.SharedMemory(name=name)
        if multiprocessing.get_start_method(allow_none=True) != "fork":
            _disclaim(seg)
        _ATTACHED[name] = seg
    return seg


def as_array(ref: ArrayRef) -> np.ndarray:
    """Zero-copy numpy view of the array a descriptor points to.

    Works in any process: the segment is attached (and cached) on first use.
    The view aliases shared physical pages — writes are visible to every
    process holding the segment.
    """
    seg = _attach(ref.segment)
    return np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf, offset=ref.offset)


def resolve(obj: Any) -> Any:
    """Recursively replace every :class:`ArrayRef` in ``obj`` (dicts, lists,
    tuples) with its shared-memory view; everything else passes through."""
    if isinstance(obj, ArrayRef):
        return as_array(obj)
    if isinstance(obj, dict):
        return {k: resolve(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [resolve(v) for v in obj]
    if isinstance(obj, tuple):
        return tuple(resolve(v) for v in obj)
    return obj


def _unlink_segments(segments: list[shared_memory.SharedMemory]) -> None:
    """Unlink and release every segment of an arena (idempotent)."""
    while segments:
        seg = segments.pop()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        try:
            seg.close()
        except BufferError:
            # Live views still alias the mapping; the name is already gone
            # from /dev/shm, the pages die with the last view.
            pass


class ShmArena:
    """Bump allocator over shared-memory segments, owned by its creator.

    Arrays are packed into chunked segments (``chunk_bytes`` each, or a
    dedicated segment for oversized arrays) at 64-byte alignment.  The arena
    does not free individual allocations — its unit of lifecycle is the
    whole arena, matching the algorithms' use (publish inputs, run a
    parallel phase or many queries, close).  Use as a context manager or
    call :meth:`close`; a finalizer unlinks everything if the owner forgets.
    """

    def __init__(self, chunk_bytes: int = 1 << 23, *, tag: str = "") -> None:
        self._chunk_bytes = int(chunk_bytes)
        # Optional owner tag folded into segment names right after the
        # module prefix (e.g. tag="s3" → "psps3_<pid>_<hex>"): shard fleet
        # workers tag their arenas so a supervisor can sweep exactly the
        # segments of one dead worker.  Still SEGMENT_PREFIX-prefixed, so
        # the leak checker sees tagged segments too.
        if tag and not tag.isalnum():
            raise ValueError(f"arena tag must be alphanumeric, got {tag!r}")
        self._tag = tag
        self._segments: list[shared_memory.SharedMemory] = []
        self._cursor = 0
        self._capacity = 0
        self._closed = False
        # Allocation and close may race across threads once an arena is
        # owned by an asyncio server: queries grow the distance block from
        # event-loop executor threads while shutdown closes the arena from
        # the loop thread itself.  The lock serializes the bump pointer and
        # makes close-vs-alloc a clean "arena is closed" error instead of
        # an unlink under a live allocation.
        self._lock = threading.RLock()
        self._finalizer = weakref.finalize(self, _unlink_segments, self._segments)

    # -------------------------------------------------------------- #

    @property
    def segment_names(self) -> list[str]:
        """Names of the segments currently owned by this arena."""
        return [s.name for s in self._segments]

    @property
    def allocated_bytes(self) -> int:
        """Total bytes of shared memory reserved by this arena."""
        return sum(s.size for s in self._segments)

    def _new_segment(self, at_least: int) -> None:
        size = max(self._chunk_bytes, at_least)
        name = f"{SEGMENT_PREFIX}{self._tag}_{os.getpid():d}_{secrets.token_hex(6)}"
        self._segments.append(shared_memory.SharedMemory(name=name, create=True, size=size))
        self._cursor = 0
        self._capacity = size

    def alloc(self, shape, dtype) -> tuple[ArrayRef, np.ndarray]:
        """Reserve an uninitialized block; returns ``(descriptor, view)``.

        The view belongs to the creating process (typically used to read a
        worker-filled output block); the descriptor is what goes into task
        payloads.
        """
        dtype = np.dtype(dtype)
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        else:
            shape = tuple(int(s) for s in shape)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dtype.itemsize)
        with self._lock:
            if self._closed:
                raise ValueError("arena is closed")
            start = (self._cursor + _ALIGN - 1) & ~(_ALIGN - 1)
            if not self._segments or start + nbytes > self._capacity:
                self._new_segment(nbytes)
                start = 0
            seg = self._segments[-1]
            self._cursor = start + nbytes
        ref = ArrayRef(seg.name, start, tuple(shape), dtype.str)
        view = np.ndarray(ref.shape, dtype=dtype, buffer=seg.buf, offset=start)
        return ref, view

    def ref_of(self, array: np.ndarray) -> ArrayRef | None:
        """Descriptor of an array that already aliases this arena's pages
        (detected by buffer address), or ``None``.

        Lets :meth:`publish` be idempotent for arena-resident arrays — in
        particular arrays streamed into a warm-start arena by
        ``repro.io.load_augmentation(..., arena=...)`` are re-published to
        workers as a ~100-byte descriptor instead of a second copy of the
        pages.
        """
        if (
            not isinstance(array, np.ndarray)
            or array.nbytes == 0
            or not array.flags["C_CONTIGUOUS"]
        ):
            return None
        addr = array.__array_interface__["data"][0]
        with self._lock:
            for seg in self._segments:
                base = np.frombuffer(seg.buf, dtype=np.uint8).__array_interface__["data"][0]
                if base <= addr and addr + array.nbytes <= base + seg.size:
                    return ArrayRef(
                        seg.name, addr - base, tuple(array.shape), array.dtype.str
                    )
        return None

    def publish(self, array: np.ndarray) -> ArrayRef:
        """Copy an array into the arena once; returns its descriptor.
        An array already living in this arena's pages is not copied again —
        its existing location is described as-is (see :meth:`ref_of`)."""
        resident = self.ref_of(array)
        if resident is not None:
            return resident
        array = np.ascontiguousarray(array)
        ref, view = self.alloc(array.shape, array.dtype)
        view[...] = array
        return ref

    def close(self) -> None:
        """Unlink every segment (idempotent, thread-safe).  No entry
        survives in ``/dev/shm``; mappings held by live views drain
        lazily."""
        with self._lock:
            if not self._closed:
                self._closed = True
                self._finalizer.detach()
                _unlink_segments(self._segments)

    def __enter__(self) -> "ShmArena":
        """Context-manager entry: the arena itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: close (unlink) the arena."""
        self.close()


def orphaned_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of segments with our prefix currently present in ``/dev/shm``.

    After every arena is closed this must be empty — the leak invariant
    checked by the test suite and ``tools/check_shm_leaks.py``.
    """
    base = "/dev/shm"
    if not os.path.isdir(base):  # pragma: no cover - non-POSIX fallback
        return []
    return sorted(f for f in os.listdir(base) if f.startswith(prefix))
