"""Instrumented EREW-PRAM primitives.

Small library of classic PRAM building blocks, each executing a real
(vectorized) computation while charging the ledger with the textbook
work/depth.  They serve three purposes: (1) the paper's §3.2/§4 phase
structure composes from them, (2) they document the cost model concretely,
and (3) the tests pin the model's accounting (e.g. prefix sums must charge
O(n) work, O(log n) depth — not n log n).
"""

from __future__ import annotations

import numpy as np

from .machine import NULL_LEDGER, Ledger, log2ceil

__all__ = ["parallel_reduce", "prefix_sum", "pointer_jump_roots", "list_rank", "pairwise_min"]


def parallel_reduce(values: np.ndarray, *, ledger: Ledger = NULL_LEDGER) -> float:
    """Balanced-tree reduction: O(n) work, O(log n) depth."""
    values = np.asarray(values)
    ledger.charge(work=float(max(1, values.size)), depth=log2ceil(values.size), label="reduce")
    return float(values.sum())


def pairwise_min(a: np.ndarray, b: np.ndarray, *, ledger: Ledger = NULL_LEDGER) -> np.ndarray:
    """Elementwise min: O(n) work, O(1) depth."""
    out = np.minimum(a, b)
    ledger.charge(work=float(max(1, a.size)), depth=1.0, label="pairwise-min")
    return out


def prefix_sum(values: np.ndarray, *, ledger: Ledger = NULL_LEDGER) -> np.ndarray:
    """Exclusive prefix sums via the Blelloch up/down sweep: O(n) work,
    O(log n) depth (the ledger charge); numpy's cumsum does the arithmetic."""
    values = np.asarray(values)
    out = np.zeros_like(values)
    if values.size:
        np.cumsum(values[:-1], out=out[1:])
    ledger.charge(
        work=2.0 * max(1, values.size), depth=2 * log2ceil(values.size), label="prefix-sum"
    )
    return out


def pointer_jump_roots(parent: np.ndarray, *, ledger: Ledger = NULL_LEDGER) -> np.ndarray:
    """Root of every vertex in a forest by pointer jumping: O(n log n) work,
    O(log n) depth.  ``parent[v] == v`` marks roots."""
    p = np.array(parent, dtype=np.int64, copy=True)
    n = p.shape[0]
    rounds = 0
    while True:
        rounds += 1
        nxt = p[p]
        if np.array_equal(nxt, p):
            break
        p = nxt
    ledger.charge(work=float(n) * rounds, depth=float(rounds), label="pointer-jump")
    return p


def list_rank(nxt: np.ndarray, *, ledger: Ledger = NULL_LEDGER) -> np.ndarray:
    """Distance of each element to the end of its linked list (−1-terminated
    ``nxt`` pointers) by rank doubling: O(n log n) work, O(log n) depth."""
    n = nxt.shape[0]
    rank = np.where(nxt >= 0, 1, 0).astype(np.int64)
    ptr = np.array(nxt, dtype=np.int64, copy=True)
    rounds = 0
    while (ptr >= 0).any():
        rounds += 1
        has = np.nonzero(ptr >= 0)[0]
        tgt = ptr[has]
        rank[has] += rank[tgt]
        ptr[has] = ptr[tgt]
    ledger.charge(work=float(n) * max(1, rounds), depth=float(max(1, rounds)), label="list-rank")
    return rank
