"""EREW-PRAM cost model (work/depth ledger), classic PRAM primitives,
Brent-speedup simulation, and real execution backends."""
