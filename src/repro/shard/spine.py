"""The spine graph: boundary cliques with exact weights, relaxed to exactness.

The spine holds every shard-boundary vertex.  Its edge set is the union of
the shards' boundary cliques ``B(t) × B(t)``, each edge ``(a, b)`` weighted
by the exact in-shard distance ``d_{G(t)}(a, b)`` — columns of the shard's
boundary-row matrix.  This is the fleet-level analogue of the paper's E⁺
construction, and it is *distance-preserving*: any ``G``-path between spine
vertices splits at its spine visits into within-shard segments whose
endpoints lie in that shard's boundary, and each segment is dominated by
one clique edge (see DESIGN.md §8 for the full argument).

:meth:`SpineSolver.solve` runs seeded Bellman–Ford over those edges.  The
hop count of an optimal spine path is at most its number of shard-segment
switches; by the Theorem 3.1 diameter argument applied shard-wise that is
O(cut depth) — a handful of phases — and :class:`~repro.kernels.
bellman_ford.EdgeRelaxer`'s frontier pruning stops each source row the
moment it converges.  A hard cap of ``|spine| + 1`` phases guards the loop
(only a negative cycle, excluded upstream, could reach it).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.augment import dedupe_edges
from ..core.semiring import Semiring
from ..kernels.bellman_ford import EdgeRelaxer

__all__ = ["SpineSolver"]


class SpineSolver:
    """Seeded Bellman–Ford over the boundary-clique spine graph.

    Parameters
    ----------
    plan:
        The :class:`~repro.shard.partition.ShardPlan`.
    boundary_rows:
        Per shard id, its boundary-row matrix ``(|B(t)|, n_t)`` from
        :meth:`~repro.shard.engine.ShardEngine.boundary_matrix`.
    semiring:
        The path algebra (same instance the shard engines relax under).
    kernel:
        Relaxation-kernel preference for the spine Bellman–Ford
        (:mod:`repro.kernels.dispatch` names; ``None`` defers to the
        process default) — the fleet passes ``OracleConfig.kernel`` so
        ``kernel="jit"`` accelerates the spine too.
    """

    def __init__(
        self,
        plan,
        boundary_rows: list[np.ndarray],
        semiring: Semiring,
        kernel: str | None = None,
    ) -> None:
        self.semiring = semiring
        self.n_spine = int(plan.spine.shape[0])
        src_parts: list[np.ndarray] = []
        dst_parts: list[np.ndarray] = []
        w_parts: list[np.ndarray] = []
        for shard, rows in zip(plan.shards, boundary_rows):
            b = shard.boundary.shape[0]
            if b == 0:
                continue
            sidx = plan.spine_index[shard.boundary]
            w = rows[:, shard.boundary_local]  # (b, b): d_{G(t)}(a, ·) on B(t)
            src = np.repeat(sidx, b)
            dst = np.tile(sidx, b)
            wf = np.ascontiguousarray(w).reshape(-1)
            keep = (src != dst) & (wf != semiring.zero)
            src_parts.append(src[keep])
            dst_parts.append(dst[keep])
            w_parts.append(wf[keep])
        if src_parts:
            src = np.concatenate(src_parts)
            dst = np.concatenate(dst_parts)
            w = np.concatenate(w_parts)
            # Boundaries overlap across shards (shared ancestor separators):
            # the same (a, b) pair may arrive from several cliques — keep the
            # ⊕-best weight once.
            src, dst, w = dedupe_edges(self.n_spine, src, dst, w, semiring)
        else:
            src = dst = np.empty(0, dtype=np.int64)
            w = np.empty(0, dtype=semiring.dtype)
        self.m = int(src.shape[0])
        self._relaxer = EdgeRelaxer(src, dst, w, semiring, kernel=kernel)
        self.phases_last = 0
        self.phases_max = 0

    def solve(self, seeds: np.ndarray) -> np.ndarray:
        """Relax ``seeds`` (shape ``(s, |spine|)``) to the exact fixpoint in
        place and return it.

        Each row must hold, for its source ``v``, the exact home-shard
        distances ``d_{G(home(v))}(v, b)`` at that shard's boundary columns
        and 0̄ elsewhere; the fixpoint is then the exact global
        ``d_G(v, ·)`` on the spine.
        """
        if self.n_spine == 0 or seeds.shape[0] == 0:
            self.phases_last = 0
            return seeds
        cap = self.n_spine + 1
        active = np.arange(seeds.shape[0])
        phases = 0
        while active.size and phases < cap:
            active = self._relaxer.relax_rows(seeds, active)
            phases += 1
        if active.size:  # pragma: no cover - negative cycles are excluded upstream
            raise RuntimeError(
                f"spine relaxation did not converge within {cap} phases"
            )
        self.phases_last = phases
        self.phases_max = max(self.phases_max, phases)
        return seeds

    def stats(self) -> dict[str, Any]:
        """Spine-graph shape and relaxation telemetry."""
        return {
            "vertices": self.n_spine,
            "edges": self.m,
            "phases_last": self.phases_last,
            "phases_max": self.phases_max,
        }
