"""Separator-sharded oracle fleet (the step from "an oracle" to "a fleet").

The separator decomposition is a ready-made *sharding plan*: cutting the
tree at a frontier of K nodes yields K shard subtrees whose only interface
to the rest of the graph is their boundary ``B(t)`` (Proposition 2.1 ii),
and §3's boundary cliques carry exact distances across that interface
(Theorem 3.1).  This package turns that observation into a serving tier:

* :mod:`~repro.shard.partition` — derive a :class:`~repro.shard.partition.
  ShardPlan` from a :class:`~repro.core.septree.SeparatorTree`: the vertex →
  shard map, per-shard boundaries, and the *spine* (the union of shard
  boundaries, connected by exact-distance clique edges);
* :mod:`~repro.shard.engine` — one warm per-shard engine (build + serve a
  shard subgraph through the ordinary oracle pipeline, per-shard cache
  entries included);
* :mod:`~repro.shard.spine` — the tiny spine graph and its seeded
  Bellman–Ford (Theorem 3.1 keeps this a handful of phases);
* :mod:`~repro.shard.router` — three-leg query answering (source shard →
  boundary rows → spine relaxation → target shards), drop-in compatible
  with :class:`~repro.core.query.QueryEngine`'s ``submit/query/stats/close``
  protocol so the coalescing :class:`~repro.server.OracleServer` can serve
  a fleet unchanged;
* :mod:`~repro.shard.worker` / :mod:`~repro.shard.fleet` — one process per
  shard, each owning its own :class:`~repro.pram.shm.ShmArena` and
  optionally pinned with ``os.sched_setaffinity`` (NUMA-aware placement:
  a worker's distance rows live in pages it touched first), supervised
  with health checks and warm restart-on-crash;
* :mod:`~repro.shard.replica` — the replicated tier: N interchangeable
  workers per shard behind least-loaded chunked dispatch, queue-wait-p99
  autoscale (warm spawn via the augmentation cache, drain-retire), and
  crash-safe reweight broadcast to every replica.

Entry point: :meth:`repro.core.api.ShortestPathOracle.shard_fleet` (or
``repro-spsp serve --shards K --replicas N [--pin] [--autoscale]``).
"""

from .partition import Shard, ShardPlan, extract_subtree, make_shard_plan
from .replica import ReplicaPool
from .router import ShardRouter

__all__ = [
    "ReplicaPool",
    "Shard",
    "ShardPlan",
    "ShardRouter",
    "extract_subtree",
    "make_shard_plan",
]
