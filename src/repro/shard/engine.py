"""One warm per-shard engine: build + serve a shard's subgraph.

A :class:`ShardEngine` is the unit both fleet backends share: the inline
router holds K of them in-process, and every fleet worker process holds
exactly one.  It runs the ordinary oracle pipeline on the shard subgraph —
which means a shard build participates in the content-addressed
augmentation cache (:mod:`repro.cache`) exactly like a full build does:
each shard's subgraph + subtree hash to their own store entry, so a
restarted worker (or a re-created fleet over the same plan) is a warm
start, not a rebuild.
"""

from __future__ import annotations

import logging
import time
from typing import Any

import numpy as np

from ..core.config import OracleConfig

__all__ = ["ShardEngine", "shard_build_config"]

_log = logging.getLogger(__name__)


def shard_build_config(config: OracleConfig | None) -> OracleConfig:
    """The per-shard build/serve config derived from a fleet config.

    Shards relax inline inside their own process (the fleet's parallelism
    is *across* shard processes, not within one), never keep per-node
    matrices, and never re-validate the already-validated decomposition;
    the fleet-level shard knobs are zeroed so a shard cannot recursively
    shard itself, and separator refinement is zeroed too (the shard's
    subtree was cut from the fleet tree, which was refined — or not — at
    partition time; re-refining per shard would desynchronize the spine).
    Cache mode/dir pass through — that is what makes respawn warm.
    """
    cfg = config if config is not None else OracleConfig()
    return cfg.replace(
        executor="serial",
        keep_node_distances=False,
        validate=False,
        row_cache=0,
        shards=0,
        shard_pin=False,
        refine_separators=False,
    )


class ShardEngine:
    """Warm engine over one shard: local distances on demand.

    Parameters
    ----------
    shard_id:
        Fleet-wide shard id (for logs and telemetry).
    graph, tree:
        The shard's local subgraph and its relabeled separator subtree
        (see :class:`~repro.shard.partition.Shard`).
    boundary_local:
        Local ids of the shard's boundary vertices ``B(t)``.
    config:
        Fleet :class:`~repro.core.config.OracleConfig`; build fields
        (method, semiring, kernel, cache mode/dir) are honored via
        :func:`shard_build_config`.
    """

    def __init__(
        self,
        shard_id: int,
        graph,
        tree,
        boundary_local: np.ndarray,
        config: OracleConfig | None = None,
    ) -> None:
        from ..core.api import ShortestPathOracle
        from ..core.query import QueryEngine

        cfg = shard_build_config(config)
        self.shard_id = int(shard_id)
        self.boundary_local = np.asarray(boundary_local, dtype=np.int64)
        t0 = time.perf_counter()
        self.oracle = ShortestPathOracle.build(graph, tree, config=cfg)
        self.build_s = time.perf_counter() - t0
        self.cache_status = self.oracle.cache_info.get("status", "off")
        self.engine = QueryEngine(self.oracle.augmentation, cfg)
        self.queries = 0
        self.rows = 0
        self.wall_s = 0.0
        self.reweights = 0
        _log.debug(
            "shard %d: engine up (n=%d, m=%d, |E+|=%d, build %.3fs, cache %s)",
            self.shard_id, graph.n, graph.m, self.oracle.augmentation.size,
            self.build_s, self.cache_status,
        )

    @property
    def n(self) -> int:
        """Local vertex count of the shard."""
        return int(self.oracle.graph.n)

    @property
    def weights_epoch(self) -> int:
        """The weights epoch this shard currently serves (fleet-wide
        reweights keep every shard on one agreed epoch; the router checks
        it on every leg)."""
        return int(getattr(self.oracle.augmentation, "weights_epoch", 0))

    def set_epoch(self, epoch: int) -> None:
        """Stamp the serving epoch without changing weights — used when a
        respawned worker rebuilds from already-reweighted payload weights
        (its fresh build would otherwise report epoch 0)."""
        self.oracle.augmentation.weights_epoch = int(epoch)

    def reweight(
        self, weight: np.ndarray, epoch: int, dirty_local=None
    ) -> dict[str, Any]:
        """Hot-swap this shard to new local edge weights at ``epoch``.

        ``weight`` is the full local weight vector (shard edge order);
        ``dirty_local`` optionally narrows it to the shard-local ids of
        the edges that actually changed, enabling the sparse
        provenance-replay path once the shard's lineage holds a retained
        heap.  The serving engine flips atomically (in-flight rows finish
        on the old epoch), then the old oracle's arenas are released.
        """
        t0 = time.perf_counter()
        weight = np.asarray(weight, dtype=self.oracle.graph.weight.dtype)
        if dirty_local is not None:
            dirty_local = np.asarray(dirty_local, dtype=np.int64)
            new_oracle = self.oracle.with_new_weights(
                weight_delta=(dirty_local, weight[dirty_local])
            )
        else:
            new_oracle = self.oracle.with_new_weights(weight)
        new_oracle.augmentation.weights_epoch = int(epoch)
        self.engine.reweight(new_oracle.augmentation)
        old, self.oracle = self.oracle, new_oracle
        old.close()
        self.reweights += 1
        wall = time.perf_counter() - t0
        _log.debug(
            "shard %d: reweighted to epoch %d in %.3fs (%s)",
            self.shard_id, int(epoch), wall,
            "sparse" if dirty_local is not None else "dense",
        )
        return {"epoch": self.weights_epoch, "wall_s": wall}

    def boundary_matrix(self) -> np.ndarray:
        """Exact in-shard distances from every boundary vertex:
        ``(|B(t)|, n_t)`` — the rows that weight the spine's clique edges
        and compose leg 3 of the router."""
        if self.boundary_local.size == 0:
            return np.empty((0, self.n), dtype=self.oracle.semiring.dtype)
        return self.query_rows(self.boundary_local)

    def query_rows(self, sources_local: np.ndarray) -> np.ndarray:
        """Distance rows ``(s, n_t)`` from local source ids (leg 1)."""
        srcs = np.asarray(sources_local, dtype=np.int64)
        if srcs.size == 0:
            return np.empty((0, self.n), dtype=self.oracle.semiring.dtype)
        t0 = time.perf_counter()
        dist, _ = self.engine.submit(srcs)
        self.wall_s += time.perf_counter() - t0
        self.queries += 1
        self.rows += int(srcs.shape[0])
        return dist if dist.ndim == 2 else dist[None, :]

    def stats(self) -> dict[str, Any]:
        """Per-shard serving counters (fan into the router's ``stats``)."""
        return {
            "shard": self.shard_id,
            "n": self.n,
            "boundary": int(self.boundary_local.shape[0]),
            "queries": self.queries,
            "rows": self.rows,
            "wall_s": self.wall_s,
            "build_s": self.build_s,
            "cache_status": self.cache_status,
            "weights_epoch": self.weights_epoch,
            "reweights": self.reweights,
        }

    def close(self) -> None:
        """Release the engine and the shard oracle's arenas (idempotent)."""
        self.engine.close()
        self.oracle.close()
