"""Three-leg query routing across a shard fleet: :class:`ShardRouter`.

A batch of sources is answered in three legs:

1. **source shard** — each source's *home* shard relaxes its full local
   distance row ``d_{G(t)}(v, ·)`` (one ordinary §3.2 pass on the shard's
   own augmentation);
2. **spine** — the home-shard rows at the shard's boundary columns seed a
   Bellman–Ford over the boundary-clique spine graph
   (:class:`~repro.shard.spine.SpineSolver`), whose fixpoint is the exact
   global distance to *every* spine vertex;
3. **target shards** — for each shard ``T``, interior columns are composed
   as ``⊕_{b ∈ B(T)} σ(b) ⊗ d_{G(T)}(b, ·)`` from the precomputed
   boundary-row matrices; a source's home-shard columns additionally ⊕ its
   own leg-1 row (paths that never leave the shard).

Every leg evaluates the same min-plus sums an un-sharded engine would, so
the result is the exact distance matrix — bit-identical to the single
oracle whenever the weights make float arithmetic exact (integers and
dyadics; see DESIGN.md §8 for why general floats agree to allclose but not
necessarily to the bit).

The router implements the :class:`~repro.core.query.QueryEngine` serving
protocol (``submit`` / ``query`` / ``stats`` / ``close``, thread-safe), so
the coalescing :class:`~repro.server.OracleServer` can serve a fleet by
swapping its engine factory and nothing else.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Any

import numpy as np

from ..core.config import OracleConfig
from ..core.sssp import _as_source_array
from .partition import ShardPlan, make_shard_plan
from .spine import SpineSolver

__all__ = ["ShardRouter"]

_log = logging.getLogger(__name__)

_BACKENDS = ("inline", "process")


class ShardRouter:
    """Queries over a separator-sharded fleet, one oracle's worth at a time.

    Parameters
    ----------
    graph, tree:
        The full graph and its separator decomposition.
    config:
        Fleet :class:`~repro.core.config.OracleConfig` (shard build knobs
        plus ``shards`` / ``shard_backend`` / ``shard_pin``); explicit
        keyword arguments below override the config fields.
    k:
        Target shard count (the tree may yield fewer on tiny graphs).
    backend:
        ``"inline"`` (K warm engines in this process — zero IPC) or
        ``"process"`` (one worker process per shard, each owning its own
        shm arena, supervised by :class:`~repro.shard.fleet.ShardFleet`).
    pin:
        Pin each worker process to one CPU (process backend only).
    replicas:
        Worker replicas per shard (process backend only).  ``> 1`` — or an
        ``autoscale_target_p99_ms`` in the config — serves the fleet
        through a :class:`~repro.shard.replica.ReplicaPool` (least-loaded
        chunked dispatch, optional autoscale) instead of the one-worker-
        per-shard :class:`~repro.shard.fleet.ShardFleet`.
    """

    def __init__(
        self,
        graph,
        tree,
        config: OracleConfig | None = None,
        *,
        k: int | None = None,
        backend: str | None = None,
        pin: bool | None = None,
        replicas: int | None = None,
    ) -> None:
        cfg = config if config is not None else OracleConfig()
        k = int(k if k is not None else (cfg.shards or 2))
        backend = backend if backend is not None else cfg.shard_backend
        pin = bool(cfg.shard_pin if pin is None else pin)
        replicas = int(replicas if replicas is not None else cfg.replicas)
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        replicated = replicas > 1 or cfg.autoscale_target_p99_ms > 0
        if replicated and backend != "process":
            raise ValueError(
                "replicas > 1 (or autoscale) requires the 'process' backend: "
                "inline engines share one address space, so replication "
                f"cannot add capacity there (got backend={backend!r}, "
                f"replicas={replicas})"
            )
        self.config = cfg.replace(
            shards=k, shard_backend=backend, shard_pin=pin, replicas=replicas
        )
        self.backend = backend
        self.semiring = cfg.resolved_semiring
        self.plan: ShardPlan = make_shard_plan(graph, tree, k)
        self.graph = graph
        self._lock = threading.Lock()
        self._closed = False
        self.queries_served = 0
        self.rows_served = 0
        self.weights_epoch = 0
        self.reweights = 0
        self._shard_edge_ids: list[np.ndarray] | None = None
        self.last_batch: dict[str, Any] | None = None
        t0 = time.perf_counter()
        _log.info(
            "shard router: plan k=%d spine=%d backend=%s pin=%s fingerprint=%s",
            self.plan.k, self.plan.spine.shape[0], backend, pin,
            self.plan.fingerprint()[:16],
        )
        if backend == "process":
            if replicated:
                from .replica import ReplicaPool

                self._fleet = ReplicaPool(self.plan, self.config, pin=pin)
            else:
                from .fleet import ShardFleet

                self._fleet = ShardFleet(self.plan, self.config, pin=pin)
            self._engines = None
            self._fleet.start()
            boundary_rows = self._fleet.boundary_matrices()
        else:
            from .engine import ShardEngine

            self._fleet = None
            self._engines = [
                ShardEngine(s.id, s.graph, s.tree, s.boundary_local, self.config)
                for s in self.plan.shards
            ]
            boundary_rows = [e.boundary_matrix() for e in self._engines]
        self.spine = SpineSolver(
            self.plan, boundary_rows, self.semiring, kernel=self.config.kernel
        )
        # Leg 3 operand per shard: boundary rows restricted to the shard's
        # interior columns (spine columns are answered by σ directly).
        self._interior_rows = [
            np.ascontiguousarray(rows[:, shard.interior_local])
            for shard, rows in zip(self.plan.shards, boundary_rows)
        ]
        self.build_s = time.perf_counter() - t0
        _log.info(
            "shard router: fleet up in %.3fs (spine edges=%d)",
            self.build_s, self.spine.m,
        )

    # -------------------------------------------------------------- #

    def _leg1(self, groups: list[tuple[int, np.ndarray, np.ndarray]]):
        """Home-shard distance rows per source group: ``{shard_id: (s_i,
        n_i)}`` (fanned out to worker processes, or run on the inline
        engines).  Every reply is pinned to the router's current weights
        epoch, so a batch never mixes legs from two epochs — a worker that
        answers from the wrong epoch is restarted (landing on the agreed
        weights) and re-asked once, then it is an error."""
        if self._fleet is not None:
            return self._fleet.query_rows_many(
                [(sid, local) for sid, _, local in groups],
                expected_epoch=self.weights_epoch,
            )
        out = {}
        for sid, _, local in groups:
            eng = self._engines[sid]
            if eng.weights_epoch != self.weights_epoch:
                raise RuntimeError(
                    f"shard {sid} at weights epoch {eng.weights_epoch}, "
                    f"router at {self.weights_epoch}"
                )
            out[sid] = eng.query_rows(local)
        return out

    def _shard_edge_id_table(self) -> list[np.ndarray]:
        """Per-shard sorted global edge ids kept by the shard's induced
        subgraph, in the shard's local edge order.  Depends only on the
        unweighted skeleton, so it is computed once and reused by every
        reweight (both for slicing local weight vectors out of the full
        one and for mapping global dirty ids to shard-local ids)."""
        if self._shard_edge_ids is None:
            self._shard_edge_ids = [
                np.nonzero(self.graph.edge_membership(shard.vertices))[0]
                for shard in self.plan.shards
            ]
        return self._shard_edge_ids

    def reweight(self, weight: np.ndarray, *, dirty=None) -> dict[str, Any]:
        """Hot-swap the whole fleet to a new full-graph weight vector.

        The separator skeleton — shard plan, spine topology, every shard's
        E⁺ structure — is weight-invariant, so only weights move: each
        shard replays its retained provenance
        (:meth:`~repro.core.api.ShortestPathOracle.with_new_weights`),
        boundary-row matrices are re-fetched, and the spine's clique edges
        are re-weighted from them.  ``dirty`` optionally names the global
        edge ids that changed; they are mapped to shard-local ids so each
        shard can take the sparse replay path.

        Runs under the router lock: in-flight batches finish on the old
        epoch before the flip, and every submit after the flip is answered
        entirely at the new one (the per-leg epoch guard enforces this
        even across worker crashes and respawns).
        """
        with self._lock:
            if self._closed:
                raise ValueError("router is closed")
            t0 = time.perf_counter()
            weight = np.asarray(weight, dtype=self.graph.weight.dtype)
            if weight.shape != (self.graph.m,):
                raise ValueError(
                    f"weight must have shape ({self.graph.m},), got {weight.shape}"
                )
            epoch = self.weights_epoch + 1
            edge_ids = self._shard_edge_id_table()
            shard_weights = [weight[ids] for ids in edge_ids]
            dirty_local: list[np.ndarray | None] | None = None
            if dirty is not None:
                dirty = np.unique(np.asarray(dirty, dtype=np.int64))
                dirty_local = []
                for ids in edge_ids:
                    pos = np.searchsorted(ids, dirty)
                    hit = pos < ids.shape[0]
                    hit[hit] = ids[pos[hit]] == dirty[hit]
                    dirty_local.append(pos[hit])
            if self._fleet is not None:
                self._fleet.reweight(shard_weights, epoch, dirty=dirty_local)
                boundary_rows = self._fleet.boundary_matrices(expected_epoch=epoch)
            else:
                for i, e in enumerate(self._engines):
                    e.reweight(
                        shard_weights[i], epoch,
                        dirty_local[i] if dirty_local is not None else None,
                    )
                boundary_rows = [e.boundary_matrix() for e in self._engines]
            self.spine = SpineSolver(
            self.plan, boundary_rows, self.semiring, kernel=self.config.kernel
        )
            self._interior_rows = [
                np.ascontiguousarray(rows[:, shard.interior_local])
                for shard, rows in zip(self.plan.shards, boundary_rows)
            ]
            self.graph = type(self.graph)(
                self.graph.n, self.graph.src, self.graph.dst, weight
            )
            self.weights_epoch = epoch
            self.reweights += 1
            wall = time.perf_counter() - t0
            _log.info(
                "shard router: reweighted fleet to epoch %d in %.3fs (%s)",
                epoch, wall,
                "sparse" if dirty is not None else "dense",
            )
            return {"weights_epoch": epoch, "wall_s": wall}

    def submit(self, sources) -> tuple[np.ndarray, dict[str, Any]]:
        """Batch submission: ``(distances, info)`` exactly like
        :meth:`QueryEngine.submit`, with ``info["shards"]`` reporting the
        fleet fan-out of this batch.  Thread-safe."""
        srcs, single = _as_source_array(sources)
        sr = self.semiring
        n = self.graph.n
        s = srcs.shape[0]
        plan = self.plan
        with self._lock:
            if self._closed:
                raise ValueError("router is closed")
            t0 = time.perf_counter()
            homes = plan.home[srcs]
            groups = []
            for sid in np.unique(homes):
                rows_i = np.nonzero(homes == sid)[0]
                local = plan.shards[sid].to_local(srcs[rows_i])
                groups.append((int(sid), rows_i, local))
            local_rows = self._leg1(groups)
            out = np.full((s, n), sr.zero, dtype=sr.dtype)
            n_spine = plan.spine.shape[0]
            seeds = np.full((s, n_spine), sr.zero, dtype=sr.dtype)
            for sid, rows_i, _ in groups:
                shard = plan.shards[sid]
                if shard.boundary.size:
                    seeds[np.ix_(rows_i, plan.spine_index[shard.boundary])] = (
                        local_rows[sid][:, shard.boundary_local]
                    )
            self.spine.solve(seeds)
            if n_spine:
                out[:, plan.spine] = seeds
            for shard in plan.shards:
                if shard.interior.size == 0:
                    continue
                acc = np.full((s, shard.interior.shape[0]), sr.zero, dtype=sr.dtype)
                if shard.boundary.size:
                    sigma_b = seeds[:, plan.spine_index[shard.boundary]]
                    d_int = self._interior_rows[shard.id]
                    for j in range(d_int.shape[0]):
                        acc = sr.add(acc, sr.mul(sigma_b[:, j : j + 1], d_int[j][None, :]))
                for sid, rows_i, _ in groups:
                    if sid == shard.id:
                        acc[rows_i] = sr.add(
                            acc[rows_i], local_rows[sid][:, shard.interior_local]
                        )
                out[:, shard.interior] = acc
            info = {
                "rows": int(s),
                "shards": len(groups),
                "wall_s": time.perf_counter() - t0,
                "cached_rows": 0,
                "spine_phases": self.spine.phases_last,
            }
            self.queries_served += 1
            self.rows_served += s
            self.last_batch = info
        return (out[0] if single else out), info

    def query(self, sources) -> np.ndarray:
        """Distance rows for each source: ``(s, n)``, or ``(n,)`` for a
        bare int — the three-leg composition of the module docstring."""
        return self.submit(sources)[0]

    def stats(self) -> dict[str, Any]:
        """Fleet telemetry on the canonical serving-stats schema
        (:data:`~repro.core.protocols.SERVING_STATS_KEYS`): plan shape,
        spine, and the per-shard breakdown under ``per_shard`` (``shards``
        is kept as a deprecated alias for one release)."""
        from ..core.protocols import serving_stats

        with self._lock:
            snap = {
                "queries_served": self.queries_served,
                "rows_served": self.rows_served,
                "weights_epoch": self.weights_epoch,
                "reweights": self.reweights,
                "build_s": self.build_s,
                "last_batch": None if self.last_batch is None else dict(self.last_batch),
            }
        queue_depth = 0
        queue_wait = None
        workers = self.plan.k
        extra: dict[str, Any] = {}
        if self._fleet is None:
            per_shard = [e.stats() for e in self._engines]
        else:
            fs = self._fleet.stats()
            if isinstance(fs, dict):  # ReplicaPool: already canonical
                per_shard = fs["per_shard"]
                workers = fs["workers"]
                queue_depth = fs["queue_depth"]
                queue_wait = fs["queue_wait_ms"]
                extra = {
                    key: fs[key]
                    for key in (
                        "base_replicas", "max_replicas",
                        "autoscale_target_p99_ms", "scale_ups",
                        "scale_downs", "restarts_total",
                    )
                }
            else:  # ShardFleet: one worker per shard
                per_shard = fs
                queue_depth = sum(int(s.get("queue_depth", 0)) for s in fs)
                extra = {"restarts_total": self._fleet.restarts_total}
        base = serving_stats(
            backend=self.backend,
            workers=workers,
            queue_depth=queue_depth,
            queue_wait_ms=queue_wait,
            weights_epoch=snap["weights_epoch"],
            queries_served=snap["queries_served"],
            rows_served=snap["rows_served"],
            per_shard=per_shard,
        )
        base.update(snap)
        base.update(
            engine="sharded",
            plan=self.plan.stats(),
            spine=self.spine.stats(),
            shards=per_shard,  # deprecated alias of per_shard (one release)
            **extra,
        )
        return base

    def health_check(self) -> dict[str, Any]:
        """Ping every worker, restarting dead ones (process backend); the
        inline backend is trivially healthy."""
        if self._fleet is not None:
            return self._fleet.health_check()
        return {"backend": "inline", "alive": self.plan.k}

    def close(self) -> None:
        """Drain the fleet: close every shard engine / worker and release
        their arenas (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._fleet is not None:
            self._fleet.close()
        else:
            for e in self._engines:
                e.close()
        _log.info("shard router: closed (served %d batches)", self.queries_served)

    def __enter__(self) -> "ShardRouter":
        """Context-manager entry: the router itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: close the fleet."""
        self.close()
