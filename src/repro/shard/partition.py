"""Shard plans: cutting the separator tree into K shards plus a spine.

A *shard plan* picks a frontier of K tree nodes (every root-to-leaf path
crosses the frontier exactly once) and makes each frontier node ``t`` a
shard: the shard serves the induced subgraph ``G(t)`` with its own local
separator decomposition (the subtree rooted at ``t``, relabeled).  The
*spine* is the union of the shards' boundaries ``B(t)`` — by Proposition
2.1(ii) these are the only vertices through which a path can enter or
leave a shard, so:

* every edge of ``G`` lies inside some shard's ``V(t)`` (an edge crossing
  a frontier split would contradict the separator property);
* the shard *interiors* ``V(t) ∖ spine`` partition ``V ∖ spine`` (two
  shards overlap only inside an ancestor separator, which is spine);
* for any two spine vertices, some shortest path decomposes into
  within-shard segments between boundary vertices — so the tiny *spine
  graph* whose edges are the boundary cliques ``B(t) × B(t)`` weighted by
  exact in-shard distances ``d_{G(t)}`` preserves all spine-to-spine
  distances of ``G`` (the routing argument behind
  :mod:`repro.shard.router`; see DESIGN.md §8).

:func:`make_shard_plan` grows the frontier from the root by repeatedly
splitting the largest splittable node until K shards exist — the same
greedy balance heuristic as nested dissection itself — and verifies the
structural invariants above before returning.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..core.digraph import WeightedDigraph
from ..core.septree import DecompositionError, SeparatorTree, SepTreeNode

__all__ = ["Shard", "ShardPlan", "make_shard_plan", "extract_subtree"]


@dataclass
class Shard:
    """One shard of a plan: a frontier node's subgraph, relabeled locally.

    Vertex id spaces: ``vertices`` / ``boundary`` / ``interior`` hold sorted
    *global* ids; ``graph`` and ``tree`` are over *local* ids ``0..n_t-1``
    with ``vertices[local] == global`` (so ``local = searchsorted(vertices,
    global)``).
    """

    id: int
    node: int
    vertices: np.ndarray
    boundary: np.ndarray
    interior: np.ndarray
    graph: WeightedDigraph
    tree: SeparatorTree
    boundary_local: np.ndarray = field(init=False)
    interior_local: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.boundary_local = np.searchsorted(self.vertices, self.boundary)
        self.interior_local = np.searchsorted(self.vertices, self.interior)

    @property
    def n(self) -> int:
        """Number of vertices the shard serves (|V(t)|)."""
        return int(self.vertices.shape[0])

    def to_local(self, global_ids: np.ndarray) -> np.ndarray:
        """Local ids of global vertices that must belong to this shard."""
        return np.searchsorted(self.vertices, np.asarray(global_ids, dtype=np.int64))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Shard(id={self.id}, node={self.node}, |V|={self.n}, "
            f"|B|={self.boundary.shape[0]}, |interior|={self.interior.shape[0]})"
        )


@dataclass
class ShardPlan:
    """A complete sharding of one graph: shards, spine, and vertex → home map.

    Attributes
    ----------
    shards:
        The K shards, id order (ids are dense ``0..K-1``).
    spine:
        Sorted global ids of all spine vertices (union of shard boundaries).
    spine_index:
        Length-``n`` array mapping a global vertex to its spine position,
        or −1 for interior vertices.
    home:
        Length-``n`` array assigning every vertex a *home shard* whose
        subgraph contains it (the lowest shard id, for spine vertices that
        live in several); used to route a query source to one shard.
    """

    graph: WeightedDigraph
    tree: SeparatorTree
    shards: list[Shard]
    spine: np.ndarray
    spine_index: np.ndarray
    home: np.ndarray

    @property
    def k(self) -> int:
        """Number of shards."""
        return len(self.shards)

    def fingerprint(self) -> str:
        """Content hash of the plan (graph skeleton + weights + cut).

        Two plans with equal fingerprints shard the same weighted graph the
        same way — the key under which per-shard cache entries and fleet
        telemetry are grouped.
        """
        h = hashlib.sha256()
        h.update(f"plan:v1:n={self.graph.n}:k={self.k}".encode())
        for arr in (self.graph.src, self.graph.dst, self.graph.weight):
            h.update(np.ascontiguousarray(arr).tobytes())
        for shard in self.shards:
            h.update(f":{shard.node}:".encode())
            h.update(np.ascontiguousarray(shard.vertices).tobytes())
        return h.hexdigest()

    def stats(self) -> dict:
        """Plan-shape numbers for logs and the router's ``stats()``."""
        return {
            "k": self.k,
            "spine_vertices": int(self.spine.shape[0]),
            "shard_sizes": [s.n for s in self.shards],
            "boundary_sizes": [int(s.boundary.shape[0]) for s in self.shards],
            "fingerprint": self.fingerprint()[:16],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardPlan(k={self.k}, n={self.graph.n}, "
            f"spine={self.spine.shape[0]})"
        )


def extract_subtree(
    tree: SeparatorTree, root_idx: int, vertices: np.ndarray
) -> SeparatorTree:
    """The subtree rooted at ``root_idx`` as a standalone local tree.

    ``vertices`` must be the sorted global vertex ids of the subtree root
    (``tree.nodes[root_idx].vertices``); all node labels are relabeled into
    that local id space.  Boundaries are *recomputed* from the local root
    down (``B(root) = ∅``, ``B(t) = (S(p) ∪ B(p)) ∩ V(t)``): the global
    boundary includes separators of ancestors above the cut, which are not
    part of the shard's own decomposition.
    """
    old_nodes = tree.nodes
    subtree: list[int] = []
    stack = [root_idx]
    while stack:
        i = stack.pop()
        subtree.append(i)
        stack.extend(old_nodes[i].children)
    # Global idx order is parent-before-child (children are created after
    # their parent), which SeparatorTree requires of the local node list.
    subtree.sort()
    local_of = {gi: li for li, gi in enumerate(subtree)}
    base_level = old_nodes[root_idx].level
    nodes: list[SepTreeNode] = []
    empty = np.empty(0, dtype=np.int64)
    for li, gi in enumerate(subtree):
        t = old_nodes[gi]
        parent = -1 if gi == root_idx else local_of[t.parent]
        verts = np.searchsorted(vertices, t.vertices)
        sep = np.searchsorted(vertices, t.separator)
        if parent < 0:
            boundary = empty
        else:
            p = nodes[parent]
            boundary = np.intersect1d(
                np.union1d(p.separator, p.boundary), verts, assume_unique=False
            )
        nodes.append(
            SepTreeNode(
                idx=li,
                level=t.level - base_level,
                parent=parent,
                vertices=verts,
                separator=sep,
                boundary=boundary,
                children=tuple(local_of[c] for c in t.children),
            )
        )
    return SeparatorTree(nodes, int(vertices.shape[0]))


def _cut_frontier(tree: SeparatorTree, k: int) -> list[int]:
    """Node indices of the cut: grow from the root, always splitting the
    largest splittable frontier node, until K nodes (or no node splits)."""
    frontier = [0]
    while len(frontier) < k:
        splittable = [i for i in frontier if not tree.nodes[i].is_leaf]
        if not splittable:
            break
        pick = max(splittable, key=lambda i: (tree.nodes[i].size, -i))
        pos = frontier.index(pick)
        frontier[pos : pos + 1] = list(tree.nodes[pick].children)
    return sorted(frontier)


def _verify_plan(plan: ShardPlan) -> None:
    """Structural invariants every downstream routing step relies on."""
    g, n = plan.graph, plan.graph.n
    if plan.home.min(initial=0) < 0:
        raise DecompositionError("shard plan: some vertex belongs to no shard")
    covered = np.zeros(g.m, dtype=bool)
    interior_count = np.zeros(n, dtype=np.int64)
    for shard in plan.shards:
        in_v = np.zeros(n, dtype=bool)
        in_v[shard.vertices] = True
        covered |= in_v[g.src] & in_v[g.dst]
        interior_count[shard.interior] += 1
        if shard.boundary.size and (plan.spine_index[shard.boundary] < 0).any():
            raise DecompositionError("shard plan: boundary vertex not on the spine")
    if g.m and not covered.all():
        raise DecompositionError(
            "shard plan: some edge crosses every shard (separator property broken)"
        )
    if (interior_count > 1).any():
        raise DecompositionError("shard plan: shard interiors overlap")
    if (interior_count[plan.spine] > 0).any():
        raise DecompositionError("shard plan: spine vertex counted as interior")
    outside = interior_count == 0
    outside[plan.spine] = False
    if outside.any():
        raise DecompositionError("shard plan: vertex in neither spine nor interior")


def make_shard_plan(
    graph: WeightedDigraph, tree: SeparatorTree, k: int
) -> ShardPlan:
    """Derive a K-shard plan from a separator decomposition of ``graph``.

    ``k`` is a target: the frontier stops growing early when the tree runs
    out of splittable nodes (tiny graphs may yield fewer shards; ``k=1``
    degenerates to a single shard covering the whole graph with an empty
    spine).  The returned plan is verified against the invariants the
    three-leg router depends on and raises
    :class:`~repro.core.septree.DecompositionError` otherwise.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if tree.n != graph.n:
        raise ValueError("tree and graph disagree on the vertex count")
    frontier = _cut_frontier(tree, int(k))
    spine = (
        np.unique(np.concatenate([tree.nodes[i].boundary for i in frontier]))
        if len(frontier) > 1
        else np.empty(0, dtype=np.int64)
    )
    spine_index = np.full(graph.n, -1, dtype=np.int64)
    spine_index[spine] = np.arange(spine.shape[0])
    on_spine = np.zeros(graph.n, dtype=bool)
    on_spine[spine] = True
    shards: list[Shard] = []
    for sid, node_idx in enumerate(frontier):
        t = tree.nodes[node_idx]
        sub, mapping = graph.induced_subgraph(t.vertices)
        if not np.array_equal(mapping, np.sort(t.vertices)):
            raise DecompositionError("induced subgraph relabeling disagrees")
        shards.append(
            Shard(
                id=sid,
                node=node_idx,
                vertices=mapping,
                boundary=np.sort(t.boundary),
                interior=mapping[~on_spine[mapping]],
                graph=sub,
                tree=extract_subtree(tree, node_idx, mapping),
            )
        )
    home = np.full(graph.n, -1, dtype=np.int64)
    for shard in reversed(shards):  # lowest shard id wins shared vertices
        home[shard.vertices] = shard.id
    plan = ShardPlan(
        graph=graph,
        tree=tree,
        shards=shards,
        spine=spine,
        spine_index=spine_index,
        home=home,
    )
    _verify_plan(plan)
    return plan
