"""One shard, one process: the fleet worker and its parent-side handle.

A worker process owns exactly one :class:`~repro.shard.engine.ShardEngine`
and one :class:`~repro.pram.shm.ShmArena` tagged with its shard id (segment
names ``psps<shard>_<pid>_…``).  Distance results are written into *its
own* arena and returned to the supervisor as ~100-byte
:class:`~repro.pram.shm.ArrayRef` descriptors — with ``pin`` the worker is
bound to one CPU via ``os.sched_setaffinity`` first, so under a
first-touch NUMA policy the pages holding a shard's rows live on the node
of the CPU that computes them (the ROADMAP's NUMA-aware sharding item).

The wire protocol over the duplex pipe is ``(op, arg)`` → ``("ok",
payload)`` / ``("err", message)``:

======== =============================== ================================
op        arg                             ok payload
======== =============================== ================================
ping      —                               ``{"pid": …}``
boundary  —                               ``{"ref", "rows"}`` (arena ref)
query     local source ids (ndarray)      ``{"ref", "rows", "wall_s",
                                          "epoch"}``
reweight  ``{"weight", "epoch",           ``{"epoch", "wall_s"}`` (engine
          "dirty"}``                      hot-swapped; see ShardEngine.
                                          reweight)
stats     —                               engine counters
close     —                               ``None`` (worker then exits)
crash     —                               *no reply*: ``os._exit(1)``
                                          without cleanup (test hook for
                                          the supervisor's restart +
                                          stale-segment sweep)
======== =============================== ================================

A crashed worker (SIGKILL, ``crash`` op, or a bug) cannot unlink its arena
segments; the parent-side :class:`WorkerHandle` knows the worker's name
prefix and sweeps ``/dev/shm`` on restart — the leak invariant of
:mod:`repro.pram.shm` extended across process death.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import threading
import time
import traceback
from typing import Any

import numpy as np

from ..core.config import OracleConfig
from ..pram.shm import as_array, orphaned_segments

__all__ = ["WorkerHandle", "WorkerCrash"]

_log = logging.getLogger(__name__)

#: Generous default for one worker call — covers a cold shard build.
CALL_TIMEOUT_S = 300.0


class WorkerCrash(RuntimeError):
    """The worker process died or stopped answering mid-call."""


def _pin_to_cpu(cpu: int | None) -> int | None:
    """Bind this process to one CPU (best effort); returns the CPU or
    ``None`` when pinning is unsupported/failed."""
    if cpu is None or not hasattr(os, "sched_setaffinity"):
        return None
    try:
        os.sched_setaffinity(0, {int(cpu)})
        return int(cpu)
    except OSError:  # pragma: no cover - cpu went offline
        _log.warning("shard worker: could not pin to cpu %d", cpu)
        return None


def _worker_main(
    conn,
    shard_id: int,
    graph,
    tree,
    boundary_local: np.ndarray,
    config_dict: dict[str, Any],
    epoch: int,
    pin_cpu: int | None,
    tag: str,
    log_level: int,
) -> None:
    """Worker process entry point: build the shard engine, then serve the
    pipe protocol until ``close`` (module level for picklability)."""
    logging.basicConfig(
        level=log_level,
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
    )
    from ..pram.shm import ShmArena
    from .engine import ShardEngine

    pinned = _pin_to_cpu(pin_cpu)
    arena = ShmArena(tag=tag)
    engine = None
    block_ref = block_view = None
    try:
        engine = ShardEngine(
            shard_id, graph, tree, boundary_local, OracleConfig.from_dict(config_dict)
        )
        # A respawn after a fleet reweight rebuilds from already-updated
        # payload weights: stamp the agreed epoch so the router's per-leg
        # epoch guard accepts the fresh worker.
        engine.set_epoch(epoch)
        conn.send(("ready", {
            "epoch": engine.weights_epoch,
            "pid": os.getpid(),
            "build_s": engine.build_s,
            "cache_status": engine.cache_status,
            "pinned_cpu": pinned,
        }))
    except Exception:
        conn.send(("err", traceback.format_exc()))
        arena.close()
        return
    _log.info(
        "shard %d worker %d: serving (pinned cpu %s, cache %s)",
        shard_id, os.getpid(), pinned, engine.cache_status,
    )
    while True:
        try:
            op, arg = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if op == "ping":
                conn.send(("ok", {"pid": os.getpid()}))
            elif op == "boundary":
                mat = engine.boundary_matrix()
                ref = arena.publish(mat)
                conn.send(("ok", {
                    "ref": ref,
                    "rows": int(mat.shape[0]),
                    "epoch": engine.weights_epoch,
                }))
            elif op == "query":
                t0 = time.perf_counter()
                rows = engine.query_rows(arg)
                if block_view is None or block_view.shape[0] < rows.shape[0]:
                    grown = max(
                        rows.shape[0],
                        2 * (block_view.shape[0] if block_view is not None else 0),
                    )
                    block_ref, block_view = arena.alloc(
                        (grown, engine.n), rows.dtype
                    )
                block_view[: rows.shape[0]] = rows
                conn.send(("ok", {
                    "ref": block_ref,
                    "rows": int(rows.shape[0]),
                    "wall_s": time.perf_counter() - t0,
                    "epoch": engine.weights_epoch,
                }))
            elif op == "reweight":
                conn.send(("ok", engine.reweight(
                    arg["weight"], int(arg["epoch"]), arg.get("dirty")
                )))
            elif op == "stats":
                conn.send(("ok", engine.stats()))
            elif op == "close":
                conn.send(("ok", None))
                break
            elif op == "crash":  # deliberate unclean death (restart tests)
                os._exit(1)
            else:
                conn.send(("err", f"unknown worker op {op!r}"))
        except Exception:
            conn.send(("err", traceback.format_exc()))
    _log.info("shard %d worker %d: draining", shard_id, os.getpid())
    engine.close()
    arena.close()
    conn.close()


class WorkerHandle:
    """Parent-side proxy of one shard worker process.

    Holds the spawn payload so the supervisor can respawn after a crash;
    :meth:`clean_stale_segments` sweeps arena segments a dead worker left
    in ``/dev/shm`` (their names carry the worker's tag and pid).
    """

    def __init__(
        self,
        shard_id: int,
        graph,
        tree,
        boundary_local: np.ndarray,
        config: OracleConfig,
        *,
        pin_cpu: int | None = None,
        log_level: int | None = None,
        replica: int = 0,
    ) -> None:
        self.shard_id = int(shard_id)
        self.replica = int(replica)
        self.tag = f"s{self.shard_id}"
        self.pin_cpu = pin_cpu
        self._payload = (graph, tree, boundary_local, config.to_dict())
        self.epoch = 0
        self._log_level = (
            log_level if log_level is not None else logging.getLogger("repro").level
        ) or logging.WARNING
        self.process: multiprocessing.Process | None = None
        self._conn = None
        self.pid: int | None = None
        self.ready_info: dict[str, Any] | None = None
        self.restarts = 0
        #: Requests sent and not yet answered — the supervisor-side queue
        #: depth that least-loaded dispatch ranks replicas by.
        self.inflight = 0
        #: Last successful ``stats`` payload, kept so supervisors can
        #: report a crashed/busy worker without blocking on its pipe.
        self.last_stats: dict[str, Any] | None = None
        # Serializes pipe access so a stats probe from another thread can
        # never interleave with (and steal the response of) a query round
        # trip; probes use a non-blocking acquire and degrade to
        # ``last_stats`` instead of stalling behind a long relaxation.
        self.io_lock = threading.Lock()

    # ---------------------------------------------------------- #

    def spawn(self) -> None:
        """Start the worker process (does not wait for the shard build —
        pair with :meth:`wait_ready`)."""
        graph, tree, boundary_local, cfg_dict = self._payload
        try:
            # Start the resource tracker *before* forking so the worker
            # inherits it: with one shared tracker, the worker's
            # create-time registration and unlink-time unregistration pair
            # up with the supervisor's attach-time registration.  A worker
            # that lazily spawns its own tracker instead leaves the
            # supervisor's tracker warning about "leaked" (long-unlinked)
            # segments at shutdown.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker is an optimization
            pass
        self._conn, child = multiprocessing.Pipe(duplex=True)
        self.process = multiprocessing.Process(
            target=_worker_main,
            args=(
                child, self.shard_id, graph, tree, boundary_local,
                cfg_dict, self.epoch, self.pin_cpu, self.tag, self._log_level,
            ),
            name=f"repro-shard-{self.shard_id}",
            daemon=True,
        )
        self.process.start()
        child.close()  # parent keeps one end only
        self.pid = self.process.pid
        self.ready_info = None
        self.inflight = 0

    def set_weights(self, weight: np.ndarray, epoch: int) -> None:
        """Fold new local edge weights into the respawn payload and record
        the fleet-agreed epoch, so a worker that crashes *after* a
        reweight is rebuilt at the new weights (and stamped with the new
        epoch) instead of resurrecting the old ones."""
        graph, tree, boundary_local, cfg_dict = self._payload
        graph = type(graph)(graph.n, graph.src, graph.dst, weight)
        self._payload = (graph, tree, boundary_local, cfg_dict)
        self.epoch = int(epoch)

    def wait_ready(self, timeout: float = CALL_TIMEOUT_S) -> dict[str, Any]:
        """Block until the worker finished its (possibly cache-warm) build."""
        kind, payload = self._recv(timeout)
        if kind != "ready":
            raise WorkerCrash(
                f"shard {self.shard_id} worker failed to start: {payload}"
            )
        self.ready_info = payload
        return payload

    @property
    def alive(self) -> bool:
        """Whether the worker process is currently running."""
        return self.process is not None and self.process.is_alive()

    def poll_ready(self) -> dict[str, Any] | None:
        """Non-blocking :meth:`wait_ready`: consume the ``ready`` message if
        it has arrived, else return ``None`` (the caller keeps serving on
        the old capacity while the new replica warms).  Raises
        :class:`WorkerCrash` if the worker died during its build."""
        if self.ready_info is not None:
            return self.ready_info
        try:
            if not self._conn.poll(0):
                if not self.alive:
                    raise WorkerCrash(
                        f"shard {self.shard_id} worker died while warming"
                    )
                return None
        except (EOFError, OSError) as exc:
            raise WorkerCrash(
                f"shard {self.shard_id} worker died while warming: {exc}"
            ) from exc
        return self.wait_ready(timeout=1.0)

    def try_stats(self, timeout: float = 5.0) -> dict[str, Any] | None:
        """Probe the worker's engine counters *without* risking the pipe.

        Returns ``None`` — instead of blocking or desyncing the
        request/response pairing — whenever the worker is dead, has a
        response in flight, or another thread holds the pipe.  On success
        the payload is also cached in :attr:`last_stats` so aggregators can
        report a degraded worker at its last-known depth.
        """
        if not self.io_lock.acquire(blocking=False):
            return None
        try:
            if not self.alive or self.inflight != 0:
                return None
            try:
                self._conn.send(("stats", None))
                # Account for the outstanding reply *before* waiting: if the
                # wait below times out the reply is still owed, and a raised
                # ``inflight`` both deprioritizes this handle in dispatch
                # and makes the next probe decline instead of desyncing.
                self.inflight += 1
                if not self._conn.poll(timeout):  # pragma: no cover - wedged
                    return None
                kind, payload = self._conn.recv()
                self.inflight -= 1
            except (EOFError, OSError, ValueError, BrokenPipeError):
                return None
            if kind != "ok":
                return None
            self.last_stats = payload
            return payload
        finally:
            self.io_lock.release()

    def send_request(self, op: str, arg: Any = None) -> None:
        """Issue one request without waiting (overlap across workers)."""
        with self.io_lock:
            try:
                self._conn.send((op, arg))
            except (OSError, ValueError, BrokenPipeError) as exc:
                raise WorkerCrash(
                    f"shard {self.shard_id} worker pipe closed on send: {exc}"
                ) from exc
            self.inflight += 1

    def _recv(self, timeout: float) -> tuple[str, Any]:
        try:
            if not self._conn.poll(timeout):
                raise WorkerCrash(
                    f"shard {self.shard_id} worker unresponsive after {timeout:.0f}s"
                )
            return self._conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerCrash(
                f"shard {self.shard_id} worker died mid-call: {exc}"
            ) from exc

    def recv_response(self, timeout: float = CALL_TIMEOUT_S) -> Any:
        """Collect one response; raises :class:`WorkerCrash` on a dead
        worker and :class:`RuntimeError` on a worker-side exception."""
        kind, payload = self._recv(timeout)
        with self.io_lock:
            self.inflight = max(0, self.inflight - 1)
        if kind == "err":
            raise RuntimeError(f"shard {self.shard_id} worker error:\n{payload}")
        return payload

    def call(self, op: str, arg: Any = None, timeout: float = CALL_TIMEOUT_S) -> Any:
        """``send_request`` + ``recv_response`` in one round trip."""
        self.send_request(op, arg)
        return self.recv_response(timeout)

    def fetch_rows(self, payload: dict[str, Any]) -> np.ndarray:
        """Materialize a worker result: attach its arena block and copy the
        row range out (the copy frees the block for the next request)."""
        view = as_array(payload["ref"])
        return np.array(view[: payload["rows"]])

    # ---------------------------------------------------------- #

    def clean_stale_segments(self) -> list[str]:
        """Unlink segments a dead worker left behind (matched by its
        ``psp<tag>_<pid>_`` name prefix); returns the names removed."""
        if self.pid is None:
            return []
        from multiprocessing import shared_memory

        prefix = f"psp{self.tag}_{self.pid}_"
        stale = orphaned_segments(prefix)
        for name in stale:
            try:
                seg = shared_memory.SharedMemory(name=name)
                seg.unlink()
                seg.close()
            except FileNotFoundError:  # pragma: no cover - raced another sweep
                pass
        if stale:
            _log.warning(
                "shard %d: swept %d stale segment(s) of dead worker %d",
                self.shard_id, len(stale), self.pid,
            )
        return stale

    def kill(self) -> None:
        """Hard-kill the worker (SIGKILL; used by supervisors and tests)."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join(10)

    def close(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: ask the worker to drain, then reap it; falls
        back to kill + stale-segment sweep when it does not comply."""
        if self.process is None:
            return
        try:
            self.call("close", timeout=timeout)
        except (WorkerCrash, RuntimeError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - drain timeout
            _log.warning("shard %d: worker %s did not drain; killing", self.shard_id, self.pid)
            self.kill()
        self.clean_stale_segments()
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
