"""Replicated fleet tier: :class:`ReplicaPool`.

:class:`~repro.shard.fleet.ShardFleet` runs exactly one worker per shard,
so one hot shard — a skewed source distribution parking 90% of a batch on
one home shard — caps the whole system's throughput at that worker's
relaxation rate.  The pool lifts that cap with three mechanisms:

* **replication + least-loaded dispatch** — each shard is served by N
  interchangeable worker replicas built from the *same* shard payload
  (identical augmentation → identical rows, so replication cannot change
  results).  A shard's row group is split into chunks of at most
  :attr:`~ReplicaPool.dispatch_rows` rows, and every chunk goes to the
  replica with the fewest supervisor-side in-flight requests
  (:attr:`~repro.shard.worker.WorkerHandle.inflight`) at send time.
* **autoscale** — the supervisor measures per-chunk *queue wait* (round
  trip minus the worker-reported compute wall) and, when the recent p99
  exceeds ``autoscale_target_p99_ms``, spawns one more replica for the
  hottest shard.  The spawn is asynchronous: the newcomer warms in the
  background (its build is a cache *load* whenever the augmentation store
  has the shard — the PR-4 warm-respawn path) and is promoted into the
  dispatch set only once ready, so scaling never stalls serving.  When the
  p99 falls far below target, one idle replica above the configured base
  is drain-retired.
* **epoch-guarded reweight broadcast** — a reweight stamps the new weights
  into *every* replica's respawn payload before any request goes out
  (crash-mid-broadcast safe, same invariant as the fleet), kills warming
  replicas (they are building at the old weights), then broadcasts
  send-all-then-collect and verifies every survivor reached the agreed
  epoch.

The pool mirrors the fleet's supervisor surface (``start`` /
``boundary_matrices`` / ``query_rows_many`` / ``reweight`` /
``health_check`` / ``stats`` / ``close``) so
:class:`~repro.shard.router.ShardRouter` drives either interchangeably,
and it is a declared implementation of
:class:`~repro.core.protocols.ServingBackend` (``submit``/``query`` over
``(shard_id, local_sources)`` requests).
"""

from __future__ import annotations

import logging
import os
import time
from collections import deque
from typing import Any

import numpy as np

from ..core.config import OracleConfig
from ..core.protocols import serving_stats
from .engine import shard_build_config
from .partition import ShardPlan
from .worker import WorkerCrash, WorkerHandle

__all__ = ["ReplicaPool"]

_log = logging.getLogger(__name__)

#: Rows per dispatch chunk.  Chunking is what makes replication useful:
#: one 64-row group split into 4 chunks can run on 4 replicas at once, and
#: the per-chunk queue wait is the autoscaler's load signal.
DEFAULT_DISPATCH_ROWS = 16

#: Seconds between autoscale decisions (one spawn/retire per window keeps
#: the loop from flapping while a fresh replica is still warming).
DEFAULT_COOLDOWN_S = 2.0


class _WaitWindow:
    """Recent queue-wait samples (ms) with cheap percentiles — the
    autoscaler's sliding measurement window."""

    def __init__(self, cap: int = 512) -> None:
        self._samples: deque[float] = deque(maxlen=cap)

    def record(self, wait_ms: float) -> None:
        self._samples.append(float(wait_ms))

    def clear(self) -> None:
        self._samples.clear()

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, q: float) -> float:
        if not self._samples:
            return 0.0
        data = sorted(self._samples)
        idx = min(len(data) - 1, int(q * len(data)))
        return data[idx]

    def summary(self) -> dict[str, float]:
        return {"p50": self.percentile(0.50), "p99": self.percentile(0.99)}


class ReplicaPool:
    """N supervised worker replicas per shard with least-loaded dispatch.

    Parameters
    ----------
    plan:
        The shard plan to serve.
    config:
        Fleet :class:`~repro.core.config.OracleConfig`.  ``replicas`` is
        the per-shard base (and floor), ``resolved_max_replicas`` the
        per-shard cap, ``autoscale_target_p99_ms`` the queue-wait target
        (0 disables the autoscaler).
    pin:
        Pin each worker to one CPU (round-robin over the supervisor's
        affinity mask, continuing across replicas).
    log_level:
        Worker-process log level.
    """

    def __init__(
        self,
        plan: ShardPlan,
        config: OracleConfig | None = None,
        *,
        pin: bool = False,
        log_level: int | None = None,
    ) -> None:
        self.plan = plan
        self.config = shard_build_config(config)
        self.pin = bool(pin)
        self.base_replicas = max(1, int(self.config.replicas))
        self.max_replicas = max(
            self.base_replicas, int(self.config.resolved_max_replicas)
        )
        self.autoscale_target_p99_ms = float(self.config.autoscale_target_p99_ms)
        self.dispatch_rows = DEFAULT_DISPATCH_ROWS
        self.cooldown_s = DEFAULT_COOLDOWN_S
        if log_level is None:
            log_level = logging.getLogger("repro").getEffectiveLevel()
        self._log_level = log_level
        self._cpus = self._affinity_cpus() if self.pin else []
        self._next_cpu = 0
        #: Active (ready, dispatchable) replicas per shard.
        self.replicas: list[list[WorkerHandle]] = [[] for _ in plan.shards]
        #: Spawned-but-not-ready replicas per shard (promoted by
        #: :meth:`_promote_warming`, killed by :meth:`reweight`).
        self.warming: list[list[WorkerHandle]] = [[] for _ in plan.shards]
        #: Current per-shard local weight vectors + fleet epoch, so a
        #: replica spawned *after* a reweight is built at the weights the
        #: pool currently serves, never the plan's originals.
        self._shard_weights: list[np.ndarray | None] = [None] * plan.k
        self._epoch = 0
        self._started = False
        self._closed = False
        self._next_replica_id = [0] * plan.k
        self._wait = _WaitWindow()
        self._shard_wait = [_WaitWindow() for _ in plan.shards]
        self._last_scale = -float("inf")
        self.queries_served = 0
        self.rows_served = 0
        self.restarts_total = 0
        self.scale_ups = 0
        self.scale_downs = 0

    @staticmethod
    def _affinity_cpus() -> list[int]:
        if hasattr(os, "sched_getaffinity"):
            return sorted(os.sched_getaffinity(0))
        return list(range(os.cpu_count() or 1))  # pragma: no cover - non-Linux

    @property
    def k(self) -> int:
        """Number of shards served."""
        return self.plan.k

    @property
    def weights_epoch(self) -> int:
        """The weights epoch every active replica serves."""
        return self._epoch

    # ------------------------------------------------------------------ #
    # replica lifecycle

    def _new_handle(self, sid: int) -> WorkerHandle:
        shard = self.plan.shards[sid]
        pin_cpu = None
        if self._cpus:
            pin_cpu = self._cpus[self._next_cpu % len(self._cpus)]
            self._next_cpu += 1
        h = WorkerHandle(
            shard.id,
            shard.graph,
            shard.tree,
            shard.boundary_local,
            self.config,
            pin_cpu=pin_cpu,
            log_level=self._log_level,
            replica=self._next_replica_id[sid],
        )
        self._next_replica_id[sid] += 1
        if self._shard_weights[sid] is not None:
            h.set_weights(self._shard_weights[sid], self._epoch)
        return h

    def start(self) -> None:
        """Spawn ``base_replicas`` workers per shard concurrently, then
        wait for every build (cache-warm whenever the store has the
        shard's augmentation)."""
        if self._started:
            return
        t0 = time.perf_counter()
        for sid in range(self.plan.k):
            for _ in range(self.base_replicas):
                h = self._new_handle(sid)
                h.spawn()
                self.replicas[sid].append(h)
        for sid, group in enumerate(self.replicas):
            for h in group:
                info = h.wait_ready()
                _log.info(
                    "shard %d replica %d: worker %d ready in %.3fs (cache %s)",
                    sid, h.replica, info["pid"], info["build_s"],
                    info["cache_status"],
                )
        self._started = True
        _log.info(
            "replica pool: %d shards x %d replicas up in %.3fs",
            self.plan.k, self.base_replicas, time.perf_counter() - t0,
        )

    def _restart(self, h: WorkerHandle) -> None:
        """Respawn one replica in place: reap, sweep its shm, warm-spawn
        (the respawn payload already carries the pool's current weights)."""
        _log.warning(
            "shard %d replica %d: restarting worker %s (restart #%d)",
            h.shard_id, h.replica, h.pid, h.restarts + 1,
        )
        h.kill()
        h.clean_stale_segments()
        h.spawn()
        h.wait_ready()
        h.restarts += 1
        self.restarts_total += 1

    def spawn_replica(self, sid: int) -> WorkerHandle:
        """Start one additional replica for ``sid`` in the background; it
        serves only after :meth:`_promote_warming` sees it ready."""
        h = self._new_handle(sid)
        h.spawn()
        self.warming[sid].append(h)
        _log.info(
            "shard %d: warming replica %d (worker %d)", sid, h.replica, h.pid
        )
        return h

    def _promote_warming(self) -> int:
        """Move every warmed-up replica into the dispatch set (non-
        blocking); a replica that died warming is discarded."""
        promoted = 0
        for sid, group in enumerate(self.warming):
            still = []
            for h in group:
                try:
                    info = h.poll_ready()
                except WorkerCrash:
                    _log.warning(
                        "shard %d: replica %d died warming; discarded",
                        sid, h.replica,
                    )
                    h.kill()
                    h.clean_stale_segments()
                    continue
                if info is None:
                    still.append(h)
                else:
                    self.replicas[sid].append(h)
                    promoted += 1
                    _log.info(
                        "shard %d: replica %d promoted (cache %s)",
                        sid, h.replica, info["cache_status"],
                    )
            self.warming[sid] = still
        return promoted

    def retire_replica(self, sid: int, *, handle: WorkerHandle | None = None) -> int:
        """Drain-retire one replica of ``sid``: it leaves the dispatch set
        first (no new chunks), then drains and closes — in-flight work, if
        any, completes inside :meth:`WorkerHandle.close`'s graceful path.
        Returns the retired worker's pid.  Refuses to drop the last
        replica of a shard."""
        group = self.replicas[sid]
        if len(group) <= 1:
            raise ValueError(f"shard {sid} has only one replica; cannot retire")
        if handle is None:
            # Prefer an idle replica; fall back to the least-loaded one.
            handle = min(group[1:], key=lambda h: h.inflight)
        group.remove(handle)
        pid = handle.pid
        # Out of the dispatch set, no new chunks arrive; wait for already-
        # sent ones to be collected so close()'s ack cannot interleave with
        # a pending query reply on the same pipe (FIFO per connection).
        deadline = time.monotonic() + 60.0
        while handle.inflight > 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        handle.close()
        _log.info("shard %d: replica %d (worker %s) retired", sid, handle.replica, pid)
        return int(pid)

    # ------------------------------------------------------------------ #
    # dispatch

    def _chunks(self, local: np.ndarray) -> list[np.ndarray]:
        step = max(1, int(self.dispatch_rows))
        return [local[i : i + step] for i in range(0, local.shape[0], step)]

    def _least_loaded(self, sid: int) -> WorkerHandle:
        return min(self.replicas[sid], key=lambda h: h.inflight)

    def _send_chunk(
        self,
        sid: int,
        chunk: np.ndarray,
        candidates: list[WorkerHandle] | None = None,
    ) -> tuple[WorkerHandle, float]:
        """Send one chunk to the least-loaded replica of ``sid`` (or of
        ``candidates``), restarting through at most one crash; returns
        ``(handle, t_send)``."""
        h = (
            min(candidates, key=lambda c: c.inflight)
            if candidates
            else self._least_loaded(sid)
        )
        try:
            h.send_request("query", chunk)
        except WorkerCrash as exc:
            _log.warning("shard %d replica %d: %s", sid, h.replica, exc)
            self._restart(h)
            h.send_request("query", chunk)
        return h, time.perf_counter()

    def _collect_chunk(
        self,
        sid: int,
        h: WorkerHandle,
        chunk: np.ndarray,
        t_send: float,
        expected_epoch: int | None,
    ) -> np.ndarray:
        """Collect one chunk's reply (FIFO per handle), enforcing the
        per-leg epoch guard and recording the chunk's queue wait."""
        try:
            payload = h.recv_response()
        except WorkerCrash as exc:
            _log.warning("shard %d replica %d: %s", sid, h.replica, exc)
            self._restart(h)
            payload = h.call("query", chunk)
        if expected_epoch is not None and (
            int(payload.get("epoch", expected_epoch)) != int(expected_epoch)
        ):
            _log.warning(
                "shard %d replica %d: answered from weights epoch %s, "
                "expected %d; restarting",
                sid, h.replica, payload.get("epoch"), expected_epoch,
            )
            self._restart(h)
            payload = h.call("query", chunk)
            if int(payload.get("epoch", -1)) != int(expected_epoch):
                raise RuntimeError(
                    f"shard {sid} replica {h.replica} still at weights epoch "
                    f"{payload.get('epoch')} != {expected_epoch} after restart"
                )
        wait_ms = max(
            0.0,
            (time.perf_counter() - t_send - float(payload.get("wall_s", 0.0)))
            * 1e3,
        )
        self._wait.record(wait_ms)
        self._shard_wait[sid].record(wait_ms)
        return h.fetch_rows(payload)

    def query_rows_many(
        self,
        requests: list[tuple[int, np.ndarray]],
        expected_epoch: int | None = None,
    ) -> dict[int, np.ndarray]:
        """Leg-1 fan-out with replication: each shard's row group is split
        into :attr:`dispatch_rows`-row chunks and the chunks are spread
        over that shard's replicas, least-loaded first, with **at most one
        outstanding chunk per replica**.  The cap is a data-integrity
        invariant, not a tuning choice: a worker reuses one arena block
        per connection, so a second chunk queued behind an uncollected
        reply could overwrite rows the supervisor has not fetched yet.
        Replies are collected in send order — each collect fetches the
        rows out of the arena immediately, frees that replica, and hands
        it the shard's next waiting chunk, so all replicas of a hot shard
        relax concurrently for the whole batch.  Results are reassembled
        in request row order; because every replica holds the identical
        augmentation, the assembled rows are bit-identical to the
        unreplicated fleet's.
        """
        waiting: dict[int, deque[tuple[np.ndarray, int]]] = {}
        sizes: dict[int, int] = {}
        for sid, local in requests:
            local = np.asarray(local, dtype=np.int64)
            sizes[sid] = local.shape[0]
            offset = 0
            q = waiting.setdefault(sid, deque())
            for chunk in self._chunks(local):
                q.append((chunk, offset))
                offset += chunk.shape[0]
        busy: set[WorkerHandle] = set()
        inflight: deque[tuple[int, WorkerHandle, np.ndarray, int, float]] = deque()

        def pump(sid: int) -> None:
            q = waiting[sid]
            while q:
                idle = [h for h in self.replicas[sid] if h not in busy]
                if not idle:
                    return
                chunk, offset = q.popleft()
                h, t_send = self._send_chunk(sid, chunk, idle)
                busy.add(h)
                inflight.append((sid, h, chunk, offset, t_send))

        for sid in waiting:
            pump(sid)
        out: dict[int, np.ndarray] = {}
        while inflight:
            sid, h, chunk, offset, t_send = inflight.popleft()
            rows = self._collect_chunk(sid, h, chunk, t_send, expected_epoch)
            busy.discard(h)
            if sid not in out:
                out[sid] = np.empty((sizes[sid], rows.shape[1]), dtype=rows.dtype)
            out[sid][offset : offset + chunk.shape[0]] = rows
            pump(sid)
        self.queries_served += 1
        self.rows_served += sum(sizes.values())
        self._maybe_autoscale()
        return out

    def boundary_matrices(self, expected_epoch: int | None = None) -> list[np.ndarray]:
        """Every shard's boundary-row matrix, computed on replica 0 (all
        replicas hold the identical augmentation)."""
        out = []
        for sid in range(self.plan.k):
            h = self.replicas[sid][0]
            try:
                payload = h.call("boundary")
            except WorkerCrash as exc:
                _log.warning("shard %d replica %d: %s", sid, h.replica, exc)
                self._restart(h)
                payload = h.call("boundary")
            if expected_epoch is not None and (
                int(payload.get("epoch", expected_epoch)) != int(expected_epoch)
            ):
                self._restart(h)
                payload = h.call("boundary")
                if int(payload.get("epoch", -1)) != int(expected_epoch):
                    raise RuntimeError(
                        f"shard {sid} still at weights epoch "
                        f"{payload.get('epoch')} != {expected_epoch} after restart"
                    )
            out.append(h.fetch_rows(payload))
        return out

    # ------------------------------------------------------------------ #
    # autoscale

    def _hottest_shard(self) -> int:
        """Shard to scale next: worst recent queue-wait p99, depth as the
        tie-break."""
        return max(
            range(self.plan.k),
            key=lambda sid: (
                self._shard_wait[sid].percentile(0.99),
                sum(h.inflight for h in self.replicas[sid]),
            ),
        )

    def _maybe_autoscale(self) -> dict[str, Any] | None:
        """One autoscale decision, taken synchronously after each batch
        (no background thread: deterministic, and the measurement window
        is exactly the traffic since the last decision).  Returns the
        action taken, if any."""
        if self.autoscale_target_p99_ms <= 0:
            return None
        self._promote_warming()
        now = time.monotonic()
        if now - self._last_scale < self.cooldown_s or len(self._wait) == 0:
            return None
        p99 = self._wait.percentile(0.99)
        action: dict[str, Any] | None = None
        if p99 > self.autoscale_target_p99_ms:
            sid = self._hottest_shard()
            count = len(self.replicas[sid]) + len(self.warming[sid])
            if count < self.max_replicas:
                self.spawn_replica(sid)
                self.scale_ups += 1
                action = {"action": "scale_up", "shard": sid, "p99_ms": p99}
                _log.info(
                    "autoscale: queue-wait p99 %.1fms > %.1fms target; "
                    "scaling shard %d to %d replicas",
                    p99, self.autoscale_target_p99_ms, sid, count + 1,
                )
        elif p99 < self.autoscale_target_p99_ms / 4:
            for sid, group in enumerate(self.replicas):
                if len(group) > self.base_replicas and not self.warming[sid]:
                    idle = [h for h in group[1:] if h.inflight == 0]
                    if idle:
                        self.retire_replica(sid, handle=idle[-1])
                        self.scale_downs += 1
                        action = {
                            "action": "scale_down", "shard": sid, "p99_ms": p99,
                        }
                        break
        if action is not None:
            self._last_scale = now
            self._wait.clear()
            for w in self._shard_wait:
                w.clear()
        return action

    # ------------------------------------------------------------------ #
    # reweight

    def reweight(
        self,
        shard_weights: list[np.ndarray],
        epoch: int,
        dirty: list[np.ndarray | None] | None = None,
    ) -> list[dict[str, Any]]:
        """Broadcast a reweight to *every* replica of every shard.

        Ordering is the crash-safety invariant: (1) warming replicas are
        killed — they are mid-build at the old weights and respawning one
        later is cheaper than racing it; (2) the new weights + epoch are
        stamped into every handle's respawn payload and the pool's own
        :attr:`_shard_weights`, so any replica that crashes at any point
        from here on is rebuilt already at the new weights; (3) requests
        are all sent, then all collected (the pool's flip time is its
        slowest replica); (4) every survivor must report the agreed epoch.
        """
        epoch = int(epoch)
        for sid in range(self.plan.k):
            for h in self.warming[sid]:
                _log.info(
                    "shard %d: killing warming replica %d for reweight",
                    sid, h.replica,
                )
                h.kill()
                h.clean_stale_segments()
            self.warming[sid] = []
        for sid, w in enumerate(shard_weights):
            w = np.asarray(w)
            self._shard_weights[sid] = w
            for h in self.replicas[sid]:
                h.set_weights(w, epoch)
        self._epoch = epoch
        sent: list[WorkerHandle] = []
        for sid, w in enumerate(shard_weights):
            arg = {
                "weight": np.asarray(w),
                "epoch": epoch,
                "dirty": None if dirty is None else dirty[sid],
            }
            for h in self.replicas[sid]:
                try:
                    h.send_request("reweight", arg)
                    sent.append(h)
                except WorkerCrash as exc:
                    _log.warning("shard %d replica %d: %s", sid, h.replica, exc)
                    self._restart(h)  # respawn already serves the epoch
        results: dict[tuple[int, int], dict[str, Any]] = {}
        for h in sent:
            key = (h.shard_id, h.replica)
            try:
                results[key] = h.recv_response()
            except WorkerCrash as exc:
                _log.warning("shard %d replica %d: %s", h.shard_id, h.replica, exc)
                self._restart(h)
                results[key] = {"epoch": epoch, "respawned": True}
        bad = [k for k, o in results.items() if int(o.get("epoch", -1)) != epoch]
        if bad:
            raise RuntimeError(
                f"replicas {bad} did not reach weights epoch {epoch}"
            )
        # Per-shard summaries in shard order, mirroring the fleet's shape.
        return [
            results.get((sid, self.replicas[sid][0].replica),
                        {"epoch": epoch, "respawned": True})
            for sid in range(self.plan.k)
        ]

    # ------------------------------------------------------------------ #
    # ServingBackend verbs

    def submit(
        self, requests: list[tuple[int, np.ndarray]]
    ) -> tuple[dict[int, np.ndarray], dict[str, Any]]:
        """Answer one batch of ``(shard_id, local_sources)`` requests;
        returns ``(rows_by_shard, info)``."""
        t0 = time.perf_counter()
        rows = self.query_rows_many(requests, expected_epoch=self._epoch)
        info = {
            "rows": int(sum(r.shape[0] for r in rows.values())),
            "shards": len(rows),
            "wall_s": time.perf_counter() - t0,
        }
        return rows, info

    def query(self, requests: list[tuple[int, np.ndarray]]) -> dict[int, np.ndarray]:
        """:meth:`submit` without the info record."""
        return self.submit(requests)[0]

    def health_check(self) -> dict[str, Any]:
        """Ping every active replica; dead ones are restarted on the spot."""
        restarted = []
        for sid, group in enumerate(self.replicas):
            for h in group:
                try:
                    h.call("ping", timeout=30.0)
                except (WorkerCrash, RuntimeError):
                    self._restart(h)
                    restarted.append((sid, h.replica))
        return {
            "backend": "replicated",
            "alive": sum(len(g) for g in self.replicas),
            "restarted": restarted,
            "restarts_total": self.restarts_total,
        }

    def stats(self) -> dict[str, Any]:
        """Canonical serving stats plus the per-shard replica breakdown.

        Per-replica engine counters come from the non-blocking
        :meth:`~repro.shard.worker.WorkerHandle.try_stats` probe — a busy
        or crashed replica is reported at its last-known counters with
        ``stale: true``, never waited on.
        """
        per_shard = []
        for sid, group in enumerate(self.replicas):
            workers = []
            for h in group:
                probed = h.try_stats()
                s = dict(probed) if probed is not None else (
                    dict(h.last_stats) if h.last_stats else {"shard": sid}
                )
                s.update(
                    stale=probed is None,
                    replica=h.replica,
                    queue_depth=h.inflight,
                    pid=h.pid,
                    restarts=h.restarts,
                )
                workers.append(s)
            per_shard.append({
                "shard": sid,
                "replicas": len(group),
                "warming": len(self.warming[sid]),
                "queue_depth": sum(h.inflight for h in group),
                "queue_wait_ms": self._shard_wait[sid].summary(),
                "workers": workers,
            })
        base = serving_stats(
            backend="replicated",
            workers=sum(len(g) for g in self.replicas),
            queue_depth=sum(s["queue_depth"] for s in per_shard),
            queue_wait_ms=self._wait.summary(),
            weights_epoch=self._epoch,
            queries_served=self.queries_served,
            rows_served=self.rows_served,
            per_shard=per_shard,
        )
        base.update(
            base_replicas=self.base_replicas,
            max_replicas=self.max_replicas,
            autoscale_target_p99_ms=self.autoscale_target_p99_ms,
            scale_ups=self.scale_ups,
            scale_downs=self.scale_downs,
            restarts_total=self.restarts_total,
        )
        return base

    def close(self) -> None:
        """Drain the pool: every replica (warming ones included) closes its
        engine + arena and is reaped; idempotent."""
        if self._closed:
            return
        self._closed = True
        for sid in range(self.plan.k):
            for h in self.warming[sid]:
                h.kill()
                h.clean_stale_segments()
            self.warming[sid] = []
            for h in self.replicas[sid]:
                h.close()
        _log.info(
            "replica pool: drained %d workers (%d restarts, %d up / %d down)",
            sum(len(g) for g in self.replicas),
            self.restarts_total, self.scale_ups, self.scale_downs,
        )

    def __enter__(self) -> "ReplicaPool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: drain the pool."""
        self.close()
