"""Fleet supervision: spawn, health-check, restart, and drain shard workers.

:class:`ShardFleet` owns one :class:`~repro.shard.worker.WorkerHandle` per
shard of a :class:`~repro.shard.partition.ShardPlan`.  Its lifecycle jobs:

* **spawn** — all workers start concurrently, so the fleet's build time is
  the *slowest shard*, not the sum; with ``pin=True`` workers are assigned
  CPUs round-robin over this process's affinity mask before they build, so
  first-touch places each shard's pages on its CPU's NUMA node.
* **health-check / restart** — a worker that dies (crash op, OOM kill,
  bug) is detected on the next call or ping; the supervisor sweeps the
  dead worker's shm segments and respawns it.  Because shard builds go
  through the content-addressed augmentation cache, a respawn over the
  same shard plan is a warm start (load, not rebuild) whenever the fleet
  config enables the cache.
* **fan-out** — :meth:`query_rows_many` sends every shard request before
  collecting any response, so shard work overlaps across processes; a
  request lost to a crash is retried exactly once on the restarted worker.
* **drain** — :meth:`close` asks each worker to close its engine and
  arena, reaps the process, and sweeps anything a non-compliant worker
  left in ``/dev/shm``.
"""

from __future__ import annotations

import logging
import os
import time
from typing import Any

import numpy as np

from ..core.config import OracleConfig
from .engine import shard_build_config
from .partition import ShardPlan
from .worker import WorkerCrash, WorkerHandle

__all__ = ["ShardFleet"]

_log = logging.getLogger(__name__)


def _affinity_cpus() -> list[int]:
    """CPUs this process may run on (pinning pool), best effort."""
    if hasattr(os, "sched_getaffinity"):
        return sorted(os.sched_getaffinity(0))
    return list(range(os.cpu_count() or 1))  # pragma: no cover - non-Linux


class ShardFleet:
    """One supervised worker process per shard of a plan.

    Parameters
    ----------
    plan:
        The shard plan to serve.
    config:
        Fleet :class:`~repro.core.config.OracleConfig`; per-shard build
        knobs are derived via
        :func:`~repro.shard.engine.shard_build_config` before shipping to
        workers.
    pin:
        Pin each worker to one CPU (round-robin over the supervisor's
        affinity mask).
    log_level:
        Worker-process log level (defaults to the supervisor's effective
        level for the ``repro`` logger).
    """

    def __init__(
        self,
        plan: ShardPlan,
        config: OracleConfig | None = None,
        *,
        pin: bool = False,
        log_level: int | None = None,
    ) -> None:
        self.plan = plan
        self.config = shard_build_config(config)
        self.pin = bool(pin)
        cpus = _affinity_cpus() if self.pin else []
        if log_level is None:
            log_level = logging.getLogger("repro").getEffectiveLevel()
        self.handles: list[WorkerHandle] = [
            WorkerHandle(
                shard.id,
                shard.graph,
                shard.tree,
                shard.boundary_local,
                self.config,
                pin_cpu=cpus[i % len(cpus)] if cpus else None,
                log_level=log_level,
            )
            for i, shard in enumerate(plan.shards)
        ]
        self._started = False
        self._closed = False
        self.restarts_total = 0

    @property
    def k(self) -> int:
        """Number of shard workers."""
        return len(self.handles)

    # ------------------------------------------------------------------ #
    # lifecycle

    def start(self) -> None:
        """Spawn every worker, then wait for all builds (cache-warm when
        the store has the shard's augmentation)."""
        if self._started:
            return
        t0 = time.perf_counter()
        for h in self.handles:
            h.spawn()
        for h in self.handles:
            info = h.wait_ready()
            _log.info(
                "shard %d: worker %d ready in %.3fs (cache %s, pinned cpu %s)",
                h.shard_id, info["pid"], info["build_s"],
                info["cache_status"], info["pinned_cpu"],
            )
        self._started = True
        _log.info("fleet: %d workers up in %.3fs", self.k, time.perf_counter() - t0)

    def restart(self, shard_id: int) -> None:
        """Respawn one worker: reap the corpse, sweep its stale shm
        segments, spawn + wait ready (warm via the augmentation cache)."""
        h = self.handles[shard_id]
        _log.warning(
            "shard %d: restarting worker %s (restart #%d)",
            shard_id, h.pid, h.restarts + 1,
        )
        h.kill()
        swept = h.clean_stale_segments()
        h.spawn()
        info = h.wait_ready()
        h.restarts += 1
        self.restarts_total += 1
        _log.warning(
            "shard %d: worker %d restarted in %.3fs (cache %s, swept %d segment(s))",
            shard_id, info["pid"], info["build_s"], info["cache_status"], len(swept),
        )

    def _call_with_retry(self, shard_id: int, op: str, arg: Any = None) -> Any:
        """One worker round trip, retried exactly once across a restart."""
        try:
            return self.handles[shard_id].call(op, arg)
        except WorkerCrash as exc:
            _log.warning("shard %d: %s", shard_id, exc)
            self.restart(shard_id)
            return self.handles[shard_id].call(op, arg)

    # ------------------------------------------------------------------ #
    # fleet operations

    def _check_epoch(self, sid: int, payload: dict, expected: int | None) -> dict:
        """Per-leg epoch guard: a worker answering from a different weights
        epoch than the router expects gets one restart (the respawn payload
        carries the agreed weights + epoch) and one resend; a second
        disagreement is an error, never a silently mixed batch."""
        if expected is None or int(payload.get("epoch", expected)) == int(expected):
            return payload
        _log.warning(
            "shard %d: answered from weights epoch %s, expected %d; restarting",
            sid, payload.get("epoch"), expected,
        )
        self.restart(sid)
        return payload  # caller resends; the retry is per-op

    def boundary_matrices(self, expected_epoch: int | None = None) -> list[np.ndarray]:
        """Every shard's boundary-row matrix ``(|B(t)|, n_t)``, id order
        (computed in the workers, copied out of their arenas).
        ``expected_epoch`` enables the per-leg epoch guard."""
        out = []
        for h in self.handles:
            payload = self._call_with_retry(h.shard_id, "boundary")
            if expected_epoch is not None and (
                int(payload.get("epoch", expected_epoch)) != int(expected_epoch)
            ):
                self._check_epoch(h.shard_id, payload, expected_epoch)
                payload = self.handles[h.shard_id].call("boundary")
                if int(payload.get("epoch", -1)) != int(expected_epoch):
                    raise RuntimeError(
                        f"shard {h.shard_id} still at weights epoch "
                        f"{payload.get('epoch')} != {expected_epoch} after restart"
                    )
            out.append(h.fetch_rows(payload))
        return out

    def query_rows_many(
        self,
        requests: list[tuple[int, np.ndarray]],
        expected_epoch: int | None = None,
    ) -> dict[int, np.ndarray]:
        """Leg-1 fan-out: local distance rows per ``(shard_id, local
        sources)`` request.

        All requests are sent before any response is collected, so shards
        relax concurrently; a worker that died takes one restart + resend.
        With ``expected_epoch``, a row block computed at any other weights
        epoch is rejected — restarted and re-asked once, then a hard error
        — so one batch never mixes distances from two epochs.
        """
        sent: dict[int, np.ndarray] = {}
        for sid, local in requests:
            local = np.asarray(local, dtype=np.int64)
            sent[sid] = local
            try:
                self.handles[sid].send_request("query", local)
            except WorkerCrash as exc:
                _log.warning("shard %d: %s", sid, exc)
                self.restart(sid)
                self.handles[sid].send_request("query", local)
        out: dict[int, np.ndarray] = {}
        for sid, local in sent.items():
            h = self.handles[sid]
            try:
                payload = h.recv_response()
            except WorkerCrash as exc:
                _log.warning("shard %d: %s", sid, exc)
                self.restart(sid)
                payload = self.handles[sid].call("query", local)
            if expected_epoch is not None and (
                int(payload.get("epoch", expected_epoch)) != int(expected_epoch)
            ):
                self._check_epoch(sid, payload, expected_epoch)
                payload = self.handles[sid].call("query", local)
                if int(payload.get("epoch", -1)) != int(expected_epoch):
                    raise RuntimeError(
                        f"shard {sid} still at weights epoch "
                        f"{payload.get('epoch')} != {expected_epoch} after restart"
                    )
            out[sid] = h.fetch_rows(payload)
        return out

    def reweight(
        self,
        shard_weights: list[np.ndarray],
        epoch: int,
        dirty: list[np.ndarray | None] | None = None,
    ) -> list[dict[str, Any]]:
        """Broadcast a reweight to every worker: shard ``i`` hot-swaps to
        ``shard_weights[i]`` (its local edge order) at the fleet-agreed
        ``epoch``; ``dirty[i]`` optionally names the shard-local edge ids
        that changed (sparse replay in the worker).

        Respawn payloads are updated *before* any request goes out, so a
        worker that crashes at any point during the broadcast is rebuilt
        already at the new weights and epoch — the retry (or the next
        query) cannot resurrect the old ones.  All requests are sent
        before any response is collected, so shards reweight concurrently;
        the fleet's flip time is the slowest shard, not the sum.
        """
        epoch = int(epoch)
        for h, w in zip(self.handles, shard_weights):
            h.set_weights(np.asarray(w), epoch)
        args = [
            {"weight": np.asarray(w),
             "epoch": epoch,
             "dirty": None if dirty is None else dirty[i]}
            for i, w in enumerate(shard_weights)
        ]
        sent: list[int] = []
        for h, arg in zip(self.handles, args):
            try:
                h.send_request("reweight", arg)
                sent.append(h.shard_id)
            except WorkerCrash as exc:
                _log.warning("shard %d: %s", h.shard_id, exc)
                self.restart(h.shard_id)  # respawn already serves the epoch
        out: list[dict[str, Any]] = [
            {"epoch": epoch, "respawned": True} for _ in self.handles
        ]
        for sid in sent:
            h = self.handles[sid]
            try:
                out[sid] = h.recv_response()
            except WorkerCrash as exc:
                _log.warning("shard %d: %s", sid, exc)
                self.restart(sid)
                out[sid] = {"epoch": epoch, "respawned": True}
        bad = [i for i, o in enumerate(out) if int(o.get("epoch", -1)) != epoch]
        if bad:
            raise RuntimeError(
                f"shards {bad} did not reach weights epoch {epoch}: "
                f"{[out[i] for i in bad]}"
            )
        return out

    def health_check(self) -> dict[str, Any]:
        """Ping every worker; dead ones are restarted on the spot."""
        restarted = []
        for h in self.handles:
            try:
                h.call("ping", timeout=30.0)
            except (WorkerCrash, RuntimeError):
                self.restart(h.shard_id)
                restarted.append(h.shard_id)
        return {
            "backend": "process",
            "alive": self.k,
            "restarted": restarted,
            "restarts_total": self.restarts_total,
        }

    def stats(self) -> list[dict[str, Any]]:
        """Per-shard serving counters, annotated with process telemetry.

        Never blocks on (or restarts) a busy or crashed worker: the probe
        is :meth:`~repro.shard.worker.WorkerHandle.try_stats`, and a worker
        that cannot answer right now is reported at its last-known counters
        with ``stale: true`` — so a dispatcher ranking workers by depth
        degrades to slightly old data instead of stalling the whole
        aggregation behind one corpse (the crash is still repaired by the
        next query's retry path or :meth:`health_check`).
        """
        out = []
        for h in self.handles:
            probed = h.try_stats()
            stale = probed is None
            if stale:
                s = dict(h.last_stats) if h.last_stats else {"shard": h.shard_id}
            else:
                s = dict(probed)  # copy: last_stats stays telemetry-free
            s.update(
                stale=stale,
                queue_depth=h.inflight,
                pid=h.pid,
                restarts=h.restarts,
                pinned_cpu=(h.ready_info or {}).get("pinned_cpu"),
            )
            out.append(s)
        return out

    def close(self) -> None:
        """Drain the fleet: every worker closes its engine + arena and is
        reaped; stale segments of any unclean death are swept (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for h in self.handles:
            h.close()
        _log.info("fleet: drained %d workers (%d restarts)", self.k, self.restarts_total)

    def __enter__(self) -> "ShardFleet":
        """Context-manager entry: the fleet itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: drain the fleet."""
        self.close()
