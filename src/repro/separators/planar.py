"""Planar separators: BFS-level cuts with a fundamental-cycle fallback.

Paper §6 uses the Gazit–Miller parallel planar separator algorithm purely as
a black box producing a k^0.5-separator decomposition.  We substitute the
classic Lipton–Tarjan construction (DESIGN.md §5):

1. **BFS-level phase** — BFS the subgraph from a root; interior BFS levels
   always have nonempty below/above sides (skeleton edges never skip a
   level), so any of them is a valid separator.  If some level is
   simultaneously small (≤ ``c·√k``) and balanced (each side ≤ 2k/3), take
   it.
2. **Fundamental-cycle phase** — otherwise, take the small levels
   ``l₀ < l₁`` sandwiching the middle third, and search the BFS tree's
   non-tree edges inside the band for a fundamental cycle (tree path + one
   edge) whose union with the two rings balances the middle.  Lipton–Tarjan
   guarantee an O(√n) such cycle exists in triangulated planar graphs; our
   inputs are near-triangulated (grids, Delaunay), and balance is verified
   explicitly with fallback to the best BFS level, so the output is always
   a *correct* separator whose measured size
   :mod:`repro.separators.quality` reports.

Connectivity handling and the progress guarantee live in
:mod:`repro.separators.common`.
"""

from __future__ import annotations

import numpy as np

from ..core.digraph import WeightedDigraph
from ..core.septree import SeparatorFn, SeparatorTree, build_separator_tree
from .bfs_levels import bfs_levels
from .common import BALANCE, component_aware, rest_components

__all__ = ["planar_separator_fn", "decompose_planar"]


def _balance_of(sub: WeightedDigraph, sep: np.ndarray) -> float:
    _, largest = rest_components(sub, sep)
    return largest / sub.n if sub.n else 0.0


def _best_bfs_level(level: np.ndarray, k: int) -> tuple[np.ndarray, float]:
    """Smallest *interior* level set keeping both sides ≤ 2k/3 if possible;
    otherwise the interior level nearest the median vertex.  Interior means
    both sides nonempty, which guarantees the recursion progresses."""
    max_lv = int(level.max())
    counts = np.bincount(level, minlength=max_lv + 1)
    below = np.cumsum(counts) - counts
    above = k - below - counts
    interior = (below > 0) & (above > 0) & (counts > 0)
    if not interior.any():
        # Depth ≤ 1 BFS (star-like): no interior level exists; signal the
        # caller to fall through to the common fallback.
        return np.empty(0, dtype=np.int64), np.inf
    balanced = interior & (below <= BALANCE * k) & (above <= BALANCE * k)
    pool = balanced if balanced.any() else interior
    sizes = np.where(pool, counts, np.iinfo(np.int64).max)
    choice = int(np.argmin(sizes))
    return np.nonzero(level == choice)[0], float(counts[choice])


def _fundamental_cycle_candidates(
    sub: WeightedDigraph,
    level: np.ndarray,
    parent: np.ndarray,
    band_mask: np.ndarray,
    *,
    max_candidates: int,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Fundamental cycles (vertex arrays) of non-tree skeleton edges with
    both endpoints inside the band."""
    su, sv = sub.src, sub.dst
    mask = band_mask[su] & band_mask[sv] & (parent[sv] != su) & (parent[su] != sv) & (su < sv)
    cand = np.nonzero(mask)[0]
    if cand.size == 0:
        return []
    if cand.size > max_candidates:
        cand = rng.choice(cand, size=max_candidates, replace=False)
    cycles = []
    for e in cand.tolist():
        u, v = int(su[e]), int(sv[e])
        pu, pv = [u], [v]
        a, b = u, v
        while a != b:
            if level[a] >= level[b]:
                a = int(parent[a])
                pu.append(a)
            else:
                b = int(parent[b])
                pv.append(b)
        cycles.append(np.unique(np.array(pu + pv, dtype=np.int64)))
    return cycles


def planar_separator_fn(
    *,
    size_factor: float = 1.5,
    max_cycle_candidates: int = 64,
    seed: int = 0,
) -> SeparatorFn:
    """Separator oracle for planar (and near-planar) subgraphs."""

    def core(sub: WeightedDigraph, global_vertices: np.ndarray) -> np.ndarray:
        k = sub.n
        level, parent = bfs_levels(sub, 0)
        level_sep, level_size = _best_bfs_level(level, k)
        if level_sep.size == 0:
            return level_sep  # common.ensure_progress takes over
        target = size_factor * np.sqrt(k)
        level_balance = _balance_of(sub, level_sep)
        if level_size <= target and level_balance <= BALANCE + 1e-9:
            return level_sep
        # Fundamental-cycle phase over the middle band.
        counts_lv = np.bincount(level)
        cum = np.cumsum(counts_lv)
        l0 = int(np.searchsorted(cum, k / 3))
        l1 = max(l0, int(np.searchsorted(cum, 2 * k / 3)))
        band_mask = (level >= l0) & (level <= l1)
        rng = np.random.default_rng(seed)
        best, best_score = level_sep, (level_size, level_balance)
        rings = np.nonzero((level == l0) | (level == l1))[0]
        for cyc in _fundamental_cycle_candidates(
            sub, level, parent, band_mask, max_candidates=max_cycle_candidates, rng=rng
        ):
            sep = np.union1d(cyc, rings)
            bal = _balance_of(sub, sep)
            score = (float(sep.shape[0]), bal)
            if bal <= BALANCE + 1e-9 and score < best_score:
                best, best_score = sep, score
        # Last competitor: a spectral sweep cut — on irregular planar
        # graphs it often beats thick BFS rings (Spielman–Teng: planar
        # bounded-degree graphs have O(√n) spectral cuts).
        from .spectral import spectral_separator_fn

        spectral_sep = spectral_separator_fn(seed=seed)(sub, global_vertices)
        if spectral_sep.size:
            bal = _balance_of(sub, spectral_sep)
            score = (float(spectral_sep.shape[0]), bal)
            if bal <= BALANCE + 1e-9 and score < best_score:
                best, best_score = spectral_sep, score
        return best

    return component_aware(core)


def decompose_planar(
    graph: WeightedDigraph,
    *,
    leaf_size: int = 8,
    full_separator_inclusion: bool = True,
    seed: int = 0,
) -> SeparatorTree:
    """Separator decomposition of a planar graph (μ = 1/2 in practice)."""
    return build_separator_tree(
        graph,
        planar_separator_fn(seed=seed),
        leaf_size=leaf_size,
        full_separator_inclusion=full_separator_inclusion,
    )
