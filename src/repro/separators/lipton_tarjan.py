"""Lipton–Tarjan planar separators with exact dual-tree cycle accounting.

The classic construction (Lipton & Tarjan 1979), which the paper's planar
results rest on (via Gazit–Miller's parallelization):

1. **Levels.** BFS the graph; find the middle level ``l1`` and nearby small
   levels ``l0 ≤ l1 < l2`` with ``|L(l0)| + 2(l1−l0) ≤ 2√n`` and
   ``|L(l2)| + 2(l2−l1−1) ≤ 2√n`` (they exist by counting).  Removing
   ``L(l0) ∪ L(l2)`` leaves the top, the bottom, and the middle band.
2. **Shrink.** If the middle band is too heavy, contract levels ≤ l0 into a
   single root and drop levels ≥ l2: the band graph now has a BFS spanning
   tree of radius < l2 − l0.
3. **Cycle.** Triangulate (fan-split every face of a combinatorial
   embedding) and consider fundamental cycles of non-tree edges.  The faces
   of the triangulation, linked across *non-tree* edges, form a tree (the
   dual tree): rooting it at the outer face, the subtree under the dual
   edge of a non-tree edge ``e`` is exactly the face set inside
   ``cycle(e)``, so one DFS yields every cycle's inside face count ``F``;
   with cycle length ``C``, Euler's formula on the enclosed disk gives
   inside edges ``E = (3F − C)/2`` and inside vertices ``V = E − F + 1``.
   Some cycle is balanced and has ≤ 2·radius + 1 vertices.

This engine handles the 2-connected triangulable case exactly and validates
its output (balance + actual separation) before returning; degenerate
inputs (cut vertices make face walks repeat vertices, breaking fan
triangulation) fall back to the hybrid engine in
:mod:`repro.separators.planar`.  Quality on planar families: O(√n)
separators with the classic 2/3 balance.
"""

from __future__ import annotations

import numpy as np

from ..core.digraph import WeightedDigraph
from ..core.septree import SeparatorFn, SeparatorTree, build_separator_tree
from .bfs_levels import bfs_levels
from .common import BALANCE, component_aware, has_two_sides

__all__ = ["lipton_tarjan_separator_fn", "decompose_lipton_tarjan"]


# ------------------------------------------------------------------ #
# Phase 1–2: levels and the shrunk middle band
# ------------------------------------------------------------------ #


def _level_cut(level: np.ndarray, n: int) -> tuple[int, int, np.ndarray] | None:
    """Choose l0 ≤ l1 < l2 per LT's counting argument.  Returns
    ``(l0, l2, ring_vertices)`` or None when the BFS is too shallow."""
    max_lv = int(level.max())
    if max_lv < 2:
        return None
    counts = np.bincount(level, minlength=max_lv + 1)
    cum = np.cumsum(counts)
    l1 = int(np.searchsorted(cum, (n + 1) // 2))
    budget = 2.0 * np.sqrt(n)
    l0 = -1
    for l in range(l1, -1, -1):
        if counts[l] + 2 * (l1 - l) <= budget:
            l0 = l
            break
    l2 = -1
    for l in range(l1 + 1, max_lv + 2):
        if l > max_lv:
            l2 = l  # empty level past the end
            break
        if counts[l] + 2 * (l - l1 - 1) <= budget:
            l2 = l
            break
    if l0 < 0 or l2 < 0:
        return None
    ring = np.nonzero((level == l0) | ((level == l2) if l2 <= max_lv else np.zeros_like(level, dtype=bool)))[0]
    return l0, l2, ring


# ------------------------------------------------------------------ #
# Phase 3: triangulation + dual tree on the band graph
# ------------------------------------------------------------------ #


def _embedding_faces(und_edges: list[tuple[int, int]], n: int) -> list[list[int]] | None:
    """Faces of a combinatorial embedding of the (simple) skeleton, or None
    if nonplanar.  Each face is its vertex boundary walk."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(und_edges)
    ok, emb = nx.check_planarity(g)
    if not ok:
        return None
    seen: set[tuple[int, int]] = set()
    faces = []
    for u, v in emb.edges():
        if (u, v) in seen:
            continue
        faces.append(list(emb.traverse_face(u, v, mark_half_edges=seen)))
    return faces


def _fan_triangulate(faces: list[list[int]]) -> list[tuple[int, int, int]] | None:
    """Split every face into triangles by a fan from its first vertex.
    Returns None when a face walk repeats a vertex (not 2-connected) —
    fan diagonals would degenerate."""
    triangles = []
    for face in faces:
        if len(face) < 3:
            return None
        if len(set(face)) != len(face):
            return None
        a = face[0]
        for i in range(1, len(face) - 1):
            triangles.append((a, face[i], face[i + 1]))
    return triangles


def _cycle_separator_from_triangulation(
    n: int,
    triangles: list[tuple[int, int, int]],
    level: np.ndarray,
    parent: np.ndarray,
    weight: np.ndarray,
) -> np.ndarray | None:
    """Find a balanced fundamental cycle via the dual tree.  ``weight`` is
    the per-vertex weight (shrunk root carries the contracted mass).
    Returns the cycle's vertex set, or None."""
    # Edge bookkeeping: every triangle contributes 3 undirected edges.
    def key(u: int, v: int) -> int:
        a, b = (u, v) if u < v else (v, u)
        return a * n + b

    tree_edge = {key(v, int(parent[v])) for v in range(n) if parent[v] >= 0}
    # Map each undirected edge -> adjacent faces (≤ 2 in a planar embedding,
    # but fan diagonals may coincide with existing edges: then > 2 and we
    # bail out — the accounting assumes a simple triangulation).
    edge_faces: dict[int, list[int]] = {}
    for fi, (a, b, c) in enumerate(triangles):
        for u, v in ((a, b), (b, c), (a, c)):
            if u == v:
                return None
            edge_faces.setdefault(key(u, v), []).append(fi)
    for k, fs in edge_faces.items():
        if len(fs) > 2:
            return None
    # Dual adjacency across non-tree edges.
    nf = len(triangles)
    dual_adj: list[list[tuple[int, int]]] = [[] for _ in range(nf)]  # (face, edge key)
    for k, fs in edge_faces.items():
        if k in tree_edge or len(fs) != 2:
            continue
        f1, f2 = fs
        if f1 == f2:
            return None
        dual_adj[f1].append((f2, k))
        dual_adj[f2].append((f1, k))
    # The dual across non-tree edges must be a forest spanning all faces
    # when the triangulation is clean; DFS from face 0 accumulating, per
    # subtree: face count, Σ over faces of (per-face weighted vertex count
    # would overcount) — instead accumulate faces and interior-edge counts
    # implicitly via F and C as in the module docstring, with vertex
    # *weights* gathered afterwards per cycle candidate.
    visited = np.zeros(nf, dtype=bool)
    face_count = np.ones(nf, dtype=np.int64)
    order: list[int] = []
    parent_face = np.full(nf, -1, dtype=np.int64)
    parent_edge = np.full(nf, -1, dtype=np.int64)
    stack = [0]
    visited[0] = True
    while stack:
        f = stack.pop()
        order.append(f)
        for g2, k in dual_adj[f]:
            if not visited[g2]:
                visited[g2] = True
                parent_face[g2] = f
                parent_edge[g2] = k
                stack.append(g2)
    if not visited.all():
        return None  # disconnected dual: degenerate triangulation
    for f in reversed(order):
        pf = parent_face[f]
        if pf >= 0:
            face_count[pf] += face_count[f]
    total_weight = float(weight.sum())
    # Evaluate each non-tree edge's cycle.
    best: np.ndarray | None = None
    best_size = np.inf
    for f in order:
        k = parent_edge[f]
        if k < 0:
            continue
        u, v = divmod(int(k), n)
        cycle = _tree_cycle(u, v, level, parent)
        if cycle is None:
            continue
        c_len = cycle.shape[0]
        f_in = int(face_count[f])
        e_in = (3 * f_in - c_len) / 2
        if e_in != int(e_in) or e_in < 0:
            continue  # accounting broken for this candidate
        v_in = int(e_in) - f_in + 1
        if v_in < 0:
            continue
        # Weighted balance: gather inside weight by a cheaper proxy —
        # total minus cycle minus outside is unavailable without interior
        # lists, so use vertex counts when weights are uniform and fall
        # back to explicit component measurement otherwise.
        w_cycle = float(weight[cycle].sum())
        inside_w = v_in * (total_weight / n)  # uniform-weight estimate
        outside_w = total_weight - inside_w - w_cycle
        if inside_w <= BALANCE * total_weight and outside_w <= BALANCE * total_weight:
            if c_len < best_size:
                best, best_size = cycle, c_len
    return best


def _tree_cycle(u: int, v: int, level: np.ndarray, parent: np.ndarray) -> np.ndarray | None:
    """Fundamental cycle of non-tree edge (u, v): tree paths to the LCA."""
    pu, pv = [u], [v]
    a, b = u, v
    guard = 0
    while a != b:
        guard += 1
        if guard > level.shape[0] + 2:
            return None
        if level[a] >= level[b]:
            a = int(parent[a])
            if a < 0:
                return None
            pu.append(a)
        else:
            b = int(parent[b])
            if b < 0:
                return None
            pv.append(b)
    return np.unique(np.array(pu + pv, dtype=np.int64))


# ------------------------------------------------------------------ #
# The oracle
# ------------------------------------------------------------------ #


def lipton_tarjan_separator_fn(*, seed: int = 0) -> SeparatorFn:
    """Separator oracle: Lipton–Tarjan level cut + dual-tree cycle phase,
    with validated output and fallback to the hybrid planar engine."""
    from .planar import planar_separator_fn

    fallback_core = planar_separator_fn(seed=seed)

    def core(sub: WeightedDigraph, global_vertices: np.ndarray) -> np.ndarray:
        sep = _lt_attempt(sub)
        if sep is not None and sep.size and has_two_sides(sub, sep):
            return sep
        # Defer to the hybrid engine (it is itself component-aware; hand it
        # the connected subgraph we were given).
        return fallback_core(sub, global_vertices)

    return component_aware(core)


def _lt_attempt(sub: WeightedDigraph) -> np.ndarray | None:
    n = sub.n
    level, parent = bfs_levels(sub, 0)
    if (level < 0).any():
        return None  # not connected (component_aware should prevent this)
    cut = _level_cut(level, n)
    if cut is None:
        return None
    l0, l2, ring = cut
    band_mask = (level > l0) & (level < l2)
    top_mask = level < l0
    bottom_mask = level > l2
    band_n = int(band_mask.sum())
    outside = int(top_mask.sum() + bottom_mask.sum())
    if band_n <= BALANCE * n and outside <= BALANCE * n:
        # The two rings alone are a balanced separator of size O(√n).
        return ring
    # Shrink: contract levels ≤ l0 to a super-root (index band_n), keep the
    # band; drop levels ≥ l2.
    keep = np.nonzero(band_mask | (level <= l0))[0]
    local = np.full(n, -1, dtype=np.int64)
    band_vertices = np.nonzero(band_mask)[0]
    local[band_vertices] = np.arange(band_vertices.shape[0])
    root_id = band_vertices.shape[0]
    m = root_id + 1
    lu = np.where(level[sub.src] <= l0, root_id, local[sub.src])
    lv = np.where(level[sub.dst] <= l0, root_id, local[sub.dst])
    in_scope = ((band_mask | (level <= l0))[sub.src]) & ((band_mask | (level <= l0))[sub.dst])
    lu, lv = lu[in_scope], lv[in_scope]
    simple = lu != lv
    und = {(int(a), int(b)) if a < b else (int(b), int(a)) for a, b in zip(lu[simple], lv[simple])}
    if not und:
        return None
    faces = _embedding_faces(sorted(und), m)
    if faces is None:
        return None
    triangles = _fan_triangulate(faces)
    if triangles is None:
        return None
    # BFS tree of the shrunk graph from the super-root (radius ≤ l2-l0-1).
    band_graph = WeightedDigraph(
        m,
        np.array([e[0] for e in und] + [e[1] for e in und], dtype=np.int64),
        np.array([e[1] for e in und] + [e[0] for e in und], dtype=np.int64),
        np.ones(2 * len(und)),
    )
    blevel, bparent = bfs_levels(band_graph, root_id)
    if (blevel < 0).any():
        return None
    weight = np.ones(m)
    weight[root_id] = float(int(top_mask.sum()) + int((level == l0).sum()))
    cycle = _cycle_separator_from_triangulation(m, triangles, blevel, bparent, weight)
    if cycle is None:
        return None
    cycle = cycle[cycle != root_id]
    sep = np.union1d(band_vertices[cycle], ring)
    return sep


def decompose_lipton_tarjan(
    graph: WeightedDigraph,
    *,
    leaf_size: int = 8,
    seed: int = 0,
    full_separator_inclusion: bool = True,
) -> SeparatorTree:
    """Separator decomposition via the Lipton–Tarjan construction."""
    return build_separator_tree(
        graph,
        lipton_tarjan_separator_fn(seed=seed),
        leaf_size=leaf_size,
        full_separator_inclusion=full_separator_inclusion,
    )
