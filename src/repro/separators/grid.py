"""Separator decompositions for d-dimensional grid graphs (paper §1).

"An example of a family of graphs with a readily available separator
decomposition is d′-dimensional grid graphs ... there is a trivial
k^{(d−1)/d}-separator decomposition": cutting along the median hyperplane of
the widest axis removes O(k^{(d−1)/d}) vertices and splits the box in two.
Figure 1 of the paper is exactly this decomposition on the 9×9 grid, which
:func:`decompose_grid` regenerates.

The oracle works on arbitrary *subsets* of the grid (the recursion's vertex
sets are boxes fattened by previously-cut hyperplanes, once the separator is
included in both children), so it plugs into the generic
:func:`repro.core.septree.build_separator_tree` builder.
"""

from __future__ import annotations

import numpy as np

from ..core.digraph import WeightedDigraph
from ..core.septree import SeparatorFn, SeparatorTree, build_separator_tree
from .common import component_aware

__all__ = ["grid_separator_fn", "decompose_grid", "grid_mu"]


def grid_mu(shape: tuple[int, ...]) -> float:
    """The μ of the family: (d−1)/d over axes with non-constant width."""
    d = sum(1 for s in shape if s > 1)
    return 0.0 if d <= 1 else (d - 1) / d


def grid_separator_fn(shape: tuple[int, ...]) -> SeparatorFn:
    """Median-hyperplane separator oracle for subsets of the ``shape`` grid.

    Picks the axis of the largest coordinate extent in the current vertex
    set and returns every vertex lying on the median hyperplane of that
    axis.  Grid edges are unit steps, so the hyperplane is a separator of
    any induced subgraph of the grid.
    """
    shape = tuple(int(s) for s in shape)

    def core(sub: WeightedDigraph, global_vertices: np.ndarray) -> np.ndarray:
        coords = np.stack(np.unravel_index(global_vertices, shape), axis=1)
        extents = coords.max(axis=0) - coords.min(axis=0)
        axis = int(np.argmax(extents))
        if extents[axis] == 0:
            # Degenerate: no axis to cut (single column); cut the lone cell
            # in the middle of the lexicographic order instead.
            return np.array([sub.n // 2], dtype=np.int64)
        vals = np.sort(coords[:, axis])
        cut = int(vals[vals.shape[0] // 2])
        # Never cut at the extreme value — that would leave one side empty
        # and the child equal to V ∖ (empty) ∪ S, stalling the recursion.
        lo, hi = int(vals[0]), int(vals[-1])
        cut = min(max(cut, lo + 1), hi) if hi > lo else cut
        return np.nonzero(coords[:, axis] == cut)[0]

    # The hyperplane cut can fail on degenerate boxes (e.g. a 2x2 block has
    # no hyperplane separator at all); component_aware verifies progress and
    # substitutes the neighborhood fallback there.
    return component_aware(core)


def decompose_grid(
    graph: WeightedDigraph,
    shape: tuple[int, ...],
    *,
    leaf_size: int = 8,
    full_separator_inclusion: bool = True,
) -> SeparatorTree:
    """Separator decomposition tree of a graph laid out on the ``shape``
    grid (the graph must be a subgraph of the grid's skeleton)."""
    expected = int(np.prod(shape))
    if graph.n != expected:
        raise ValueError(f"graph has {graph.n} vertices, shape {shape} implies {expected}")
    return build_separator_tree(
        graph,
        grid_separator_fn(shape),
        leaf_size=leaf_size,
        full_separator_inclusion=full_separator_inclusion,
    )
