"""Multilevel (METIS-style) vertex separators.

The general-purpose engine for large sparse graphs where per-level spectral
solves get expensive: coarsen the skeleton by heavy-edge matching until it
is small, bisect the coarsest graph (weighted Fiedler sweep), then project
the partition back up, refining the boundary greedily at every level.  The
vertex separator is the smaller endpoint set of the final cut, as in the
spectral engine.

This is the standard nested-dissection workhorse (George; Karypis–Kumar);
the paper takes the decomposition as given (comment (iv)), so any engine
producing small balanced separators slots in.  Quality on planar/grid
inputs matches the spectral engine at a fraction of the cost for large n
(see test_separators_multilevel / the T1 benches accept either engine).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.digraph import WeightedDigraph
from ..core.septree import SeparatorFn, SeparatorTree, build_separator_tree
from .common import BALANCE, component_aware, has_two_sides

__all__ = ["multilevel_separator_fn", "decompose_multilevel"]


@dataclass
class _Level:
    """One coarsening level: edge arrays (undirected, deduplicated, with
    multiplicities), vertex weights, and the fine→coarse map."""

    n: int
    eu: np.ndarray
    ev: np.ndarray
    emult: np.ndarray
    vweight: np.ndarray
    fine_to_coarse: np.ndarray | None  # None at the finest level


def _undirected_edges(g: WeightedDigraph) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deduplicated undirected skeleton edges with multiplicities."""
    u = np.minimum(g.src, g.dst)
    v = np.maximum(g.src, g.dst)
    keep = u != v
    key = u[keep] * g.n + v[keep]
    uniq, counts = np.unique(key, return_counts=True)
    return (uniq // g.n).astype(np.int64), (uniq % g.n).astype(np.int64), counts.astype(np.float64)


def _heavy_edge_matching(level: _Level, rng: np.random.Generator) -> np.ndarray:
    """Greedy heavy-edge matching: visit vertices in random order, match to
    the heaviest unmatched neighbor.  Returns the fine→coarse map."""
    n = level.n
    # Adjacency in CSR form over the undirected edges (both directions).
    src = np.concatenate([level.eu, level.ev])
    dst = np.concatenate([level.ev, level.eu])
    wgt = np.concatenate([level.emult, level.emult])
    order = np.argsort(src, kind="stable")
    src_s, dst_s, w_s = src[order], dst[order], wgt[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src_s, minlength=n), out=indptr[1:])
    match = np.full(n, -1, dtype=np.int64)
    for v in rng.permutation(n).tolist():
        if match[v] >= 0:
            continue
        lo, hi = indptr[v], indptr[v + 1]
        nbrs = dst_s[lo:hi]
        ws = w_s[lo:hi]
        free = match[nbrs] < 0
        if not free.any():
            match[v] = v  # stays single
            continue
        cand = nbrs[free]
        best = cand[int(np.argmax(ws[free]))]
        match[v] = best
        match[best] = v
    # Coarse ids: one per matched pair / singleton.
    coarse = np.full(n, -1, dtype=np.int64)
    nxt = 0
    for v in range(n):
        if coarse[v] >= 0:
            continue
        coarse[v] = nxt
        if match[v] != v and match[v] >= 0:
            coarse[match[v]] = nxt
        nxt += 1
    return coarse


def _coarsen(level: _Level, coarse: np.ndarray) -> _Level:
    cn = int(coarse.max()) + 1
    cu = coarse[level.eu]
    cv = coarse[level.ev]
    u = np.minimum(cu, cv)
    v = np.maximum(cu, cv)
    keep = u != v
    key = u[keep] * cn + v[keep]
    uniq, inverse = np.unique(key, return_inverse=True)
    mult = np.zeros(uniq.shape[0])
    np.add.at(mult, inverse, level.emult[keep])
    vweight = np.zeros(cn)
    np.add.at(vweight, coarse, level.vweight)
    return _Level(
        n=cn,
        eu=(uniq // cn).astype(np.int64),
        ev=(uniq % cn).astype(np.int64),
        emult=mult,
        vweight=vweight,
        fine_to_coarse=coarse,
    )


def _weighted_fiedler_bisect(level: _Level, rng: np.random.Generator) -> np.ndarray:
    """Balanced bisection of the coarsest level: Fiedler sweep by vertex
    weight.  Returns a boolean side-A mask."""
    n = level.n
    if n <= 2:
        mask = np.zeros(n, dtype=bool)
        mask[: max(1, n // 2)] = True
        return mask
    import scipy.sparse as sp

    rows = np.concatenate([level.eu, level.ev])
    cols = np.concatenate([level.ev, level.eu])
    data = np.concatenate([level.emult, level.emult])
    a = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    deg = np.asarray(a.sum(axis=1)).ravel()
    lap = sp.diags(deg) - a
    try:
        if n <= 600:
            _, vecs = np.linalg.eigh(lap.toarray())
            fied = vecs[:, 1]
        else:
            from scipy.sparse.linalg import eigsh

            _, vecs = eigsh(lap, k=2, sigma=-1e-4, which="LM", maxiter=5000)
            fied = vecs[:, 1]
    except Exception:  # pragma: no cover - solver hiccup
        fied = rng.standard_normal(n)
    order = np.argsort(fied, kind="stable")
    cum = np.cumsum(level.vweight[order])
    total = cum[-1]
    split = int(np.searchsorted(cum, total / 2.0)) + 1
    split = min(max(split, 1), n - 1)
    mask = np.zeros(n, dtype=bool)
    mask[order[:split]] = True
    return mask


def _refine(level: _Level, in_a: np.ndarray, passes: int = 4) -> np.ndarray:
    """Greedy boundary refinement: move a vertex across the cut when it
    reduces the cut multiplicity and keeps vertex-weight balance."""
    n = level.n
    src = np.concatenate([level.eu, level.ev])
    dst = np.concatenate([level.ev, level.eu])
    wgt = np.concatenate([level.emult, level.emult])
    order = np.argsort(src, kind="stable")
    src_s, dst_s, w_s = src[order], dst[order], wgt[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src_s, minlength=n), out=indptr[1:])
    total = level.vweight.sum()
    wa = float(level.vweight[in_a].sum())
    in_a = in_a.copy()
    for _ in range(passes):
        moved = False
        # Gains: (cut edges incident) − (internal edges incident).
        boundary = np.unique(
            np.concatenate([src_s[in_a[src_s] != in_a[dst_s]],
                            dst_s[in_a[src_s] != in_a[dst_s]]])
        ) if src_s.size else np.empty(0, dtype=np.int64)
        for v in boundary.tolist():
            lo, hi = indptr[v], indptr[v + 1]
            cross = in_a[dst_s[lo:hi]] != in_a[v]
            gain = float(w_s[lo:hi][cross].sum() - w_s[lo:hi][~cross].sum())
            if gain <= 0:
                continue
            new_wa = wa + (level.vweight[v] if not in_a[v] else -level.vweight[v])
            if not ((1 - BALANCE) * total <= new_wa <= BALANCE * total):
                continue
            in_a[v] = not in_a[v]
            wa = new_wa
            moved = True
        if not moved:
            break
    return in_a


def _vertex_separator_from_cut(g: WeightedDigraph, in_a: np.ndarray) -> np.ndarray:
    cross = in_a[g.src] != in_a[g.dst]
    if not cross.any():
        return np.empty(0, dtype=np.int64)
    a_side = np.union1d(g.src[cross & in_a[g.src]], g.dst[cross & in_a[g.dst]])
    b_side = np.union1d(g.src[cross & ~in_a[g.src]], g.dst[cross & ~in_a[g.dst]])
    return a_side if a_side.shape[0] <= b_side.shape[0] else b_side


def multilevel_separator_fn(
    *, coarsest: int = 80, max_levels: int = 20, seed: int = 0
) -> SeparatorFn:
    """Separator oracle: multilevel edge bisection → vertex separator."""

    def core(sub: WeightedDigraph, global_vertices: np.ndarray) -> np.ndarray:
        rng = np.random.default_rng(seed + sub.n)
        eu, ev, mult = _undirected_edges(sub)
        levels = [
            _Level(
                n=sub.n, eu=eu, ev=ev, emult=mult,
                vweight=np.ones(sub.n), fine_to_coarse=None,
            )
        ]
        while levels[-1].n > coarsest and len(levels) < max_levels:
            coarse_map = _heavy_edge_matching(levels[-1], rng)
            nxt = _coarsen(levels[-1], coarse_map)
            if nxt.n >= levels[-1].n:  # matching stalled (e.g. clique)
                break
            levels.append(nxt)
        in_a = _weighted_fiedler_bisect(levels[-1], rng)
        in_a = _refine(levels[-1], in_a)
        # Project back up, refining each level.
        for lvl in reversed(levels[1:]):
            fine = lvl.fine_to_coarse
            in_a = in_a[fine]
            # After projection, in_a indexes the *finer* level.
            finer_idx = levels.index(lvl) - 1
            in_a = _refine(levels[finer_idx], in_a)
        sep = _vertex_separator_from_cut(sub, in_a)
        if sep.size and has_two_sides(sub, sep):
            return sep
        return np.empty(0, dtype=np.int64)  # common fallback takes over

    return component_aware(core)


def decompose_multilevel(
    graph: WeightedDigraph,
    *,
    leaf_size: int = 8,
    coarsest: int = 80,
    seed: int = 0,
    full_separator_inclusion: bool = True,
) -> SeparatorTree:
    """Separator decomposition via multilevel nested dissection."""
    return build_separator_tree(
        graph,
        multilevel_separator_fn(coarsest=coarsest, seed=seed),
        leaf_size=leaf_size,
        full_separator_inclusion=full_separator_inclusion,
    )
