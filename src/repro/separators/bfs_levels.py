"""BFS level structures on the undirected skeleton — shared by the planar
separator engines (Lipton–Tarjan's first phase is a BFS level argument)."""

from __future__ import annotations

import numpy as np

from ..core.digraph import WeightedDigraph

__all__ = ["bfs_levels", "largest_component", "connected_component_labels"]


def connected_component_labels(g: WeightedDigraph) -> tuple[int, np.ndarray]:
    """Connected components of the undirected skeleton."""
    import scipy.sparse as sp
    from scipy.sparse.csgraph import connected_components

    adj = sp.csr_matrix(
        (np.ones(g.m), (g.src, g.dst)), shape=(g.n, g.n)
    )
    return connected_components(adj, directed=False)


def largest_component(g: WeightedDigraph) -> np.ndarray:
    """Vertex ids of the largest undirected component."""
    ncomp, labels = connected_component_labels(g)
    if ncomp <= 1:
        return np.arange(g.n)
    counts = np.bincount(labels)
    return np.nonzero(labels == int(np.argmax(counts)))[0]


def bfs_levels(g: WeightedDigraph, root: int) -> tuple[np.ndarray, np.ndarray]:
    """``(level, parent)`` of a BFS over the undirected skeleton from
    ``root``; unreached vertices get level −1 / parent −1."""
    skel = g.skeleton
    indptr, indices = skel.indptr, skel.indices
    level = np.full(g.n, -1, dtype=np.int64)
    parent = np.full(g.n, -1, dtype=np.int64)
    level[root] = 0
    frontier = np.array([root], dtype=np.int64)
    d = 0
    while frontier.size:
        d += 1
        # Gather all neighbors of the frontier at once.
        chunks = [indices[indptr[u] : indptr[u + 1]] for u in frontier.tolist()]
        owners = [np.full(c.shape[0], u, dtype=np.int64) for u, c in zip(frontier.tolist(), chunks)]
        if not chunks:
            break
        nbrs = np.concatenate(chunks)
        own = np.concatenate(owners)
        fresh = level[nbrs] < 0
        nbrs, own = nbrs[fresh], own[fresh]
        # First writer wins for parents; duplicates collapse via unique.
        uniq, first = np.unique(nbrs, return_index=True)
        level[uniq] = d
        parent[uniq] = own[first]
        frontier = uniq
    return level, parent
