"""Decomposition quality metrics — which μ a tree actually achieved.

Paper §5 assumes |S(t)| = O(|V(t)|^μ), geometric child shrinkage, and O(1)
leaves.  Experiments must report the decomposition they actually ran on, so
this module fits μ̂ by least squares on log |S(t)| vs log |V(t)| over
internal nodes, and summarizes balance and height.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.digraph import WeightedDigraph
from ..core.septree import SeparatorTree

__all__ = [
    "DecompositionQuality",
    "assess",
    "best_first_pass",
    "eplus_score",
    "separability_score",
]


@dataclass(frozen=True)
class DecompositionQuality:
    n: int
    num_nodes: int
    height: int
    max_leaf_size: int
    mu_hat: float
    mu_intercept: float
    max_separator: int
    worst_balance: float
    height_over_log2n: float

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"n={self.n} nodes={self.num_nodes} height={self.height} "
            f"(={self.height_over_log2n:.2f}·log₂n) μ̂={self.mu_hat:.3f} "
            f"max|S|={self.max_separator} worst-balance={self.worst_balance:.3f} "
            f"max-leaf={self.max_leaf_size}"
        )


def assess(tree: SeparatorTree) -> DecompositionQuality:
    """Measure the tree against the §5 assumptions."""
    sizes, seps, balances = [], [], []
    for t in tree.nodes:
        if t.is_leaf:
            continue
        sizes.append(t.size)
        seps.append(max(1, t.separator.shape[0]))
        kid_sizes = [tree.nodes[c].size for c in t.children]
        balances.append(max(kid_sizes) / t.size if kid_sizes else 0.0)
    if sizes:
        x = np.log(np.asarray(sizes, dtype=np.float64))
        y = np.log(np.asarray(seps, dtype=np.float64))
        if np.ptp(x) > 1e-9:
            mu, intercept = np.polyfit(x, y, 1)
        else:
            mu, intercept = 0.0, float(y.mean())
    else:
        mu, intercept = 0.0, 0.0
    log2n = max(1.0, np.log2(max(2, tree.n)))
    return DecompositionQuality(
        n=tree.n,
        num_nodes=len(tree.nodes),
        height=tree.height,
        max_leaf_size=tree.max_leaf_size(),
        mu_hat=float(mu),
        mu_intercept=float(intercept),
        max_separator=int(max(seps)) if seps else 0,
        worst_balance=float(max(balances)) if balances else 0.0,
        height_over_log2n=tree.height / log2n,
    )


def eplus_score(tree: SeparatorTree) -> int:
    """Σ_t (|S(t)|² + |B(t)|²) — the clique terms of |E⁺| (§3.2:
    E_t = B(t)×B(t) ∪ S(t)×S(t)), the cost the flow refiner exists to
    shrink.  A cheap tree-only proxy for the real |E⁺|; lower is better."""
    return int(
        sum(
            int(t.separator.shape[0]) ** 2 + int(t.boundary.shape[0]) ** 2
            for t in tree.nodes
        )
    )


def separability_score(tree: SeparatorTree) -> float:
    """How separator-friendly the graph looks through this tree, in
    ``[0, 1]``: ``1 − min(1, eplus_score / n²)``.

    A good decomposition (|S(t)| ≪ |V(t)|) keeps the clique terms
    near-linear, so the score approaches 1; an expander or dense digraph
    forces Θ(n)-size top separators, the quadratic terms dominate n², and
    the score collapses toward 0.  ``OracleConfig.approx_gate`` compares
    against this value to decide exact-E⁺ vs hopset in ``mode="auto"``."""
    n = max(1, tree.n)
    return float(1.0 - min(1.0, eplus_score(tree) / float(n * n)))


def best_first_pass(
    graph: WeightedDigraph,
    *,
    leaf_size: int = 8,
    engines: tuple[str, ...] = ("spectral", "multilevel"),
) -> tuple[str, SeparatorTree]:
    """Build one tree per candidate engine and keep the cheapest by
    :func:`eplus_score`.  Engines that fail on this graph are skipped; if
    every candidate fails, the last error propagates.

    The winning tree carries the full decision on ``tree.selection`` —
    per-engine scores, failures, and why the winner won — so the choice is
    observable downstream (``Augmentation.stats()["separators"]`` and the
    server ``stats`` RPC) instead of silently discarded."""
    from . import decompose

    best: tuple[str, SeparatorTree] | None = None
    best_score = 0
    last_error: Exception | None = None
    candidates: list[dict] = []
    for name in engines:
        try:
            tree = decompose(graph, name, leaf_size=leaf_size)
        except Exception as exc:  # noqa: BLE001 — any engine may reject a family
            last_error = exc
            candidates.append(
                {"engine": name, "error": f"{type(exc).__name__}: {exc}"}
            )
            continue
        score = eplus_score(tree)
        candidates.append(
            {
                "engine": name,
                "eplus_score": score,
                "separability": separability_score(tree),
            }
        )
        if best is None or score < best_score:
            best, best_score = (name, tree), score
    if best is None:
        raise last_error if last_error is not None else ValueError("no engines given")
    name, tree = best
    tree.selection = {
        "chosen": name,
        "why": (
            f"lowest eplus_score ({best_score}) among "
            f"{len(engines)} first-pass engine(s)"
        ),
        "candidates": candidates,
    }
    return best
