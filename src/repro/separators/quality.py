"""Decomposition quality metrics — which μ a tree actually achieved.

Paper §5 assumes |S(t)| = O(|V(t)|^μ), geometric child shrinkage, and O(1)
leaves.  Experiments must report the decomposition they actually ran on, so
this module fits μ̂ by least squares on log |S(t)| vs log |V(t)| over
internal nodes, and summarizes balance and height.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.septree import SeparatorTree

__all__ = ["DecompositionQuality", "assess"]


@dataclass(frozen=True)
class DecompositionQuality:
    n: int
    num_nodes: int
    height: int
    max_leaf_size: int
    mu_hat: float
    mu_intercept: float
    max_separator: int
    worst_balance: float
    height_over_log2n: float

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"n={self.n} nodes={self.num_nodes} height={self.height} "
            f"(={self.height_over_log2n:.2f}·log₂n) μ̂={self.mu_hat:.3f} "
            f"max|S|={self.max_separator} worst-balance={self.worst_balance:.3f} "
            f"max-leaf={self.max_leaf_size}"
        )


def assess(tree: SeparatorTree) -> DecompositionQuality:
    """Measure the tree against the §5 assumptions."""
    sizes, seps, balances = [], [], []
    for t in tree.nodes:
        if t.is_leaf:
            continue
        sizes.append(t.size)
        seps.append(max(1, t.separator.shape[0]))
        kid_sizes = [tree.nodes[c].size for c in t.children]
        balances.append(max(kid_sizes) / t.size if kid_sizes else 0.0)
    if sizes:
        x = np.log(np.asarray(sizes, dtype=np.float64))
        y = np.log(np.asarray(seps, dtype=np.float64))
        if np.ptp(x) > 1e-9:
            mu, intercept = np.polyfit(x, y, 1)
        else:
            mu, intercept = 0.0, float(y.mean())
    else:
        mu, intercept = 0.0, 0.0
    log2n = max(1.0, np.log2(max(2, tree.n)))
    return DecompositionQuality(
        n=tree.n,
        num_nodes=len(tree.nodes),
        height=tree.height,
        max_leaf_size=tree.max_leaf_size(),
        mu_hat=float(mu),
        mu_intercept=float(intercept),
        max_separator=int(max(seps)) if seps else 0,
        worst_balance=float(max(balances)) if balances else 0.0,
        height_over_log2n=tree.height / log2n,
    )
