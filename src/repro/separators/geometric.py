"""Geometric (Miller–Teng–Vavasis style) sphere separators (paper §1).

"r-overlap graphs embedded in d dimensions have a separator bound of
O(r^{1/d} n^{(d−1)/d}) and these separators can be computed by a randomized
algorithm in polylogarithmic time using linear work."  The full MTV
algorithm lifts the points to the sphere and samples great circles through
an approximate centerpoint; we implement the practical core of the idea:

* center the points at the coordinate-wise median (a centerpoint
  approximation);
* sample random radii between the 30th and 70th distance percentiles (and
  random sphere centers jittered around the median);
* for each candidate sphere, the *vertex* separator is the nearer endpoint
  of every edge crossing the sphere — removing those kills all crossing
  edges by construction, so correctness never depends on the geometry;
* keep the smallest candidate that balances.

On overlap/Delaunay graphs the crossing edges of a balanced sphere number
O(n^{(d−1)/d}), which :mod:`repro.separators.quality` verifies empirically.
"""

from __future__ import annotations

import numpy as np

from ..core.digraph import WeightedDigraph
from ..core.septree import SeparatorFn, SeparatorTree, build_separator_tree
from .common import BALANCE as _BALANCE
from .common import component_aware

__all__ = ["geometric_separator_fn", "decompose_geometric"]


def _sphere_candidate(
    sub: WeightedDigraph, pts: np.ndarray, center: np.ndarray, radius: float
) -> tuple[np.ndarray, float] | None:
    """Vertex separator induced by one sphere, plus its balance, or None
    when one side is empty."""
    d = np.linalg.norm(pts - center, axis=1)
    inside = d < radius
    cross = inside[sub.src] != inside[sub.dst]
    sep_mask = np.zeros(sub.n, dtype=bool)
    if cross.any():
        # Nearer endpoint of each crossing edge.
        du = np.abs(d[sub.src[cross]] - radius)
        dv = np.abs(d[sub.dst[cross]] - radius)
        pick_u = du <= dv
        sep_mask[sub.src[cross][pick_u]] = True
        sep_mask[sub.dst[cross][~pick_u]] = True
    sep = np.nonzero(sep_mask)[0]
    side_a = int((inside & ~sep_mask).sum())
    side_b = int((~inside & ~sep_mask).sum())
    if side_a == 0 or side_b == 0:
        return None
    balance = max(side_a, side_b) / sub.n
    return sep, balance


def geometric_separator_fn(
    points: np.ndarray, *, samples: int = 12, seed: int = 0
) -> SeparatorFn:
    """Separator oracle for a graph whose vertex ``i`` sits at
    ``points[i]``."""
    points = np.asarray(points, dtype=np.float64)

    def core(sub: WeightedDigraph, global_vertices: np.ndarray) -> np.ndarray:
        pts = points[global_vertices]
        center = np.median(pts, axis=0)
        dists = np.linalg.norm(pts - center, axis=1)
        r_lo, r_hi = np.quantile(dists, [0.3, 0.7])
        rng = np.random.default_rng(seed + sub.n)
        spread = np.maximum(1e-12, pts.std(axis=0))
        best: np.ndarray | None = None
        for i in range(samples):
            radius = float(rng.uniform(r_lo, max(r_hi, r_lo + 1e-12)))
            jitter = rng.normal(0.0, 0.05, size=center.shape) * spread if i else 0.0
            out = _sphere_candidate(sub, pts, center + jitter, radius)
            if out is None:
                continue
            sep, balance = out
            if balance > _BALANCE + 1e-9 or sep.size == 0:
                continue
            if best is None or sep.shape[0] < best.shape[0]:
                best = sep
        if best is None:
            # Geometry failed to balance (e.g. collinear points); fall back
            # to splitting at the median of the widest coordinate axis.
            axis = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
            order = np.argsort(pts[:, axis], kind="stable")
            in_a = np.zeros(sub.n, dtype=bool)
            in_a[order[: sub.n // 2]] = True
            cross = in_a[sub.src] != in_a[sub.dst]
            best = np.unique(
                np.concatenate([sub.src[cross & in_a[sub.src]], sub.dst[cross & in_a[sub.dst]]])
            )
        return best

    return component_aware(core)


def decompose_geometric(
    graph: WeightedDigraph,
    points: np.ndarray,
    *,
    leaf_size: int = 8,
    samples: int = 12,
    seed: int = 0,
    full_separator_inclusion: bool = True,
) -> SeparatorTree:
    """Separator decomposition of a geometric (overlap/Delaunay) graph."""
    return build_separator_tree(
        graph,
        geometric_separator_fn(points, samples=samples, seed=seed),
        leaf_size=leaf_size,
        full_separator_inclusion=full_separator_inclusion,
    )
