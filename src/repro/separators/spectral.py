"""Spectral (Fiedler-vector) vertex separators — the general-purpose engine.

The paper takes the decomposition as *input* (comment (iv)); for graph
families without a closed-form oracle we use spectral bisection, which on
bounded-degree planar graphs yields O(√n) edge cuts (Spielman–Teng), turned
into vertex separators by taking the smaller endpoint set of the cut edges.

The sweep cut scans thresholds of the Fiedler vector and keeps the cheapest
candidate whose removal actually splits the subgraph (progress and
disconnected-input handling come from :mod:`repro.separators.common`).
"""

from __future__ import annotations

import numpy as np

from ..core.digraph import WeightedDigraph
from ..core.septree import SeparatorFn, SeparatorTree, build_separator_tree
from .common import BALANCE, component_aware, has_two_sides

__all__ = ["fiedler_vector", "spectral_separator_fn", "decompose_spectral"]


def fiedler_vector(g: WeightedDigraph, *, dense_cutoff: int = 512, seed: int = 0) -> np.ndarray:
    """Eigenvector of the second-smallest Laplacian eigenvalue of the
    skeleton (connected input assumed; callers pass one component)."""
    import scipy.sparse as sp

    rows = np.concatenate([g.src, g.dst])
    cols = np.concatenate([g.dst, g.src])
    a = sp.coo_matrix((np.ones(rows.shape[0]), (rows, cols)), shape=(g.n, g.n)).tocsr()
    a = (a > 0).astype(np.float64)
    deg = np.asarray(a.sum(axis=1)).ravel()
    lap = sp.diags(deg) - a
    if g.n <= dense_cutoff:
        _, vecs = np.linalg.eigh(lap.toarray())
        return vecs[:, 1]
    from scipy.sparse.linalg import eigsh

    try:
        _, vecs = eigsh(lap, k=2, sigma=-1e-4, which="LM", maxiter=5000)
        return vecs[:, 1]
    except Exception:
        # Robust fallback: LOBPCG with a deterministic random start,
        # deflating the constant vector.
        from scipy.sparse.linalg import lobpcg

        rng = np.random.default_rng(seed)
        x = rng.standard_normal((g.n, 2))
        x[:, 0] = 1.0
        vals, vecs = lobpcg(lap, x, largest=False, maxiter=2000, tol=1e-6)
        order = np.argsort(vals)
        return vecs[:, order[1]]


def _vertex_separator_from_cut(g: WeightedDigraph, in_a: np.ndarray) -> np.ndarray:
    """Smaller endpoint set of the edges crossing the (A, B) vertex split."""
    cross = in_a[g.src] != in_a[g.dst]
    if not cross.any():
        return np.empty(0, dtype=np.int64)
    a_side = np.union1d(g.src[cross & in_a[g.src]], g.dst[cross & in_a[g.dst]])
    b_side = np.union1d(g.src[cross & ~in_a[g.src]], g.dst[cross & ~in_a[g.dst]])
    return a_side if a_side.shape[0] <= b_side.shape[0] else b_side


def spectral_separator_fn(*, dense_cutoff: int = 512, seed: int = 0) -> SeparatorFn:
    """Separator oracle: sweep cut of the Fiedler vector, then vertex cover
    of the crossing edges."""

    def core(sub: WeightedDigraph, global_vertices: np.ndarray) -> np.ndarray:
        fied = fiedler_vector(sub, dense_cutoff=dense_cutoff, seed=seed)
        order = np.argsort(fied, kind="stable")
        n = sub.n
        lo = max(1, int(np.floor(n * (1 - BALANCE))))
        hi = min(n - 1, int(np.ceil(n * BALANCE)))
        candidates = np.unique(np.linspace(lo, hi, num=min(17, max(1, hi - lo + 1)), dtype=np.int64))
        best: np.ndarray | None = None
        for split in candidates.tolist():
            in_a = np.zeros(n, dtype=bool)
            in_a[order[:split]] = True
            sep = _vertex_separator_from_cut(sub, in_a)
            if sep.size == 0 or (best is not None and sep.shape[0] >= best.shape[0]):
                continue
            if has_two_sides(sub, sep):
                best = sep
        if best is None:
            return np.empty(0, dtype=np.int64)  # common fallback takes over
        return best

    return component_aware(core)


def decompose_spectral(
    graph: WeightedDigraph,
    *,
    leaf_size: int = 8,
    dense_cutoff: int = 512,
    seed: int = 0,
    full_separator_inclusion: bool = True,
) -> SeparatorTree:
    """Separator decomposition of an arbitrary sparse graph via spectral
    nested dissection."""
    return build_separator_tree(
        graph,
        spectral_separator_fn(dense_cutoff=dense_cutoff, seed=seed),
        leaf_size=leaf_size,
        full_separator_inclusion=full_separator_inclusion,
    )
