"""Separator oracles and decomposition builders — one engine per family the
paper names, plus the flow refiner that post-processes any of them.

Registered engines (``decompose(graph, engine=...)``):

- ``spectral`` — Fiedler-vector sweep cuts; the general-purpose default
  (``auto`` is an alias for it).
- ``planar`` — Lipton–Tarjan-style BFS-level cuts for (near-)planar inputs.
- ``treewidth`` — min-degree elimination bags for tree-like graphs.
- ``multilevel`` — coarsen/cut/uncoarsen with local refinement.
- ``lipton_tarjan`` — the textbook fundamental-cycle planar separator.
- ``flow`` — max-flow min-vertex-cut refinement of the best first-pass
  engine (:mod:`repro.separators.quality` picks it); smallest |S(t)|, at
  extra build cost.

``grid`` and ``geometric`` also exist but need extra arguments (the grid
shape, the point coordinates) — call :func:`repro.separators.grid.
decompose_grid` / :func:`repro.separators.geometric.decompose_geometric`
directly.  Every builder accepts a plain :data:`~repro.core.septree.
SeparatorFn` callable too, via :func:`repro.core.septree.
build_separator_tree`.
"""

from __future__ import annotations

import importlib

from ..core.digraph import WeightedDigraph
from ..core.septree import SeparatorTree

__all__ = ["available_engines", "decompose", "resolve_engine"]

#: engine name → (module, decompose-function attribute).  Modules import
#: lazily so e.g. the spectral path never pays for the multilevel machinery.
_ENGINE_MODULES: dict[str, tuple[str, str]] = {
    "spectral": ("repro.separators.spectral", "decompose_spectral"),
    "planar": ("repro.separators.planar", "decompose_planar"),
    "treewidth": ("repro.separators.treewidth", "decompose_treewidth"),
    "multilevel": ("repro.separators.multilevel", "decompose_multilevel"),
    "lipton_tarjan": ("repro.separators.lipton_tarjan", "decompose_lipton_tarjan"),
    "flow": ("repro.separators.flow", "decompose_flow"),
}

_ALIASES = {None: "spectral", "auto": "spectral"}


def available_engines() -> tuple[str, ...]:
    """Names accepted by :func:`decompose` (aliases excluded)."""
    return tuple(sorted(_ENGINE_MODULES))


def _engine_error(name: object) -> ValueError:
    """A helpful error for an unknown engine name: lists every registered
    engine plus the extra-argument families (same pattern as the kernel
    dispatcher's ``_kernel_error``)."""
    have = ", ".join(available_engines())
    return ValueError(
        f"unknown separator engine {name!r}; registered engines: {have} "
        f"('auto' aliases spectral; 'grid' and 'geometric' need shape/point "
        f"arguments — call their decompose_* directly; a SeparatorFn "
        f"callable is also accepted)"
    )


def resolve_engine(name: str | None):
    """The ``decompose_*`` callable for an engine name (or alias)."""
    name = _ALIASES.get(name, name)
    try:
        module, attr = _ENGINE_MODULES[name]
    except (KeyError, TypeError):
        raise _engine_error(name) from None
    return getattr(importlib.import_module(module), attr)


def decompose(
    graph: WeightedDigraph,
    engine: str | None = "auto",
    *,
    leaf_size: int = 8,
    **kwargs,
) -> SeparatorTree:
    """Build a separator tree with the named engine."""
    return resolve_engine(engine)(graph, leaf_size=leaf_size, **kwargs)
