"""Separator oracles and decomposition builders for every family the paper
names: grids, planar, spectral, multilevel, treewidth, geometric."""
