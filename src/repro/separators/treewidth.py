"""Separator decompositions from tree decompositions (paper §1).

"Other examples are bounded tree-width graphs with a tree decomposition
(see Robertson and Seymour)": a graph of treewidth ``w`` has balanced
separators of size ``w + 1`` — any *centroid bag* of a tree decomposition
splits the graph so no component exceeds half the remaining vertices, giving
a k⁰-separator decomposition (μ = 0, the cheapest row of Table 1).

We compute tree decompositions with networkx's min-degree / min-fill-in
heuristics (exact treewidth is NP-hard; the heuristic width only affects the
constant in |S|) and pick the bag minimizing the largest remaining
component by direct evaluation.
"""

from __future__ import annotations

import numpy as np

from ..core.digraph import WeightedDigraph
from ..core.septree import SeparatorFn, SeparatorTree, build_separator_tree
from .common import component_aware

__all__ = ["treewidth_separator_fn", "decompose_treewidth", "tree_decomposition_width"]


def tree_decomposition_width(g: WeightedDigraph, heuristic: str = "min_degree") -> int:
    """Width of the heuristic tree decomposition of ``g``'s skeleton."""
    width, _ = _tree_decomposition(g, heuristic)
    return width


def _tree_decomposition(g: WeightedDigraph, heuristic: str):
    import networkx as nx
    from networkx.algorithms.approximation import treewidth_min_degree, treewidth_min_fill_in

    und = nx.Graph()
    und.add_nodes_from(range(g.n))
    und.add_edges_from(zip(g.src.tolist(), g.dst.tolist()))
    fn = treewidth_min_degree if heuristic == "min_degree" else treewidth_min_fill_in
    return fn(und)


def _centroid_bag(sub: WeightedDigraph, bags: list[np.ndarray]) -> np.ndarray:
    """The bag whose removal minimizes the largest remaining component."""
    import scipy.sparse as sp
    from scipy.sparse.csgraph import connected_components

    best_bag = bags[0]
    best_score = np.inf
    for bag in bags:
        keep = np.ones(sub.n, dtype=bool)
        keep[bag] = False
        mask = keep[sub.src] & keep[sub.dst]
        adj = sp.csr_matrix(
            (np.ones(int(mask.sum())), (sub.src[mask], sub.dst[mask])), shape=(sub.n, sub.n)
        )
        _, labels = connected_components(adj, directed=False)
        rest = np.nonzero(keep)[0]
        score = float(np.bincount(labels[rest]).max()) if rest.size else 0.0
        if score < best_score:
            best_bag, best_score = bag, score
        if best_score <= sub.n / 2:
            # A half-balanced centroid bag always exists; first hit is fine.
            break
    return best_bag


def treewidth_separator_fn(*, heuristic: str = "min_degree") -> SeparatorFn:
    """Separator oracle: centroid bag of a heuristic tree decomposition of
    the current subgraph."""

    def core(sub: WeightedDigraph, global_vertices: np.ndarray) -> np.ndarray:
        _, decomp = _tree_decomposition(sub, heuristic)
        bags = [np.array(sorted(b), dtype=np.int64) for b in decomp.nodes]
        if not bags:
            return np.array([0], dtype=np.int64)
        return _centroid_bag(sub, bags)

    return component_aware(core)


def decompose_treewidth(
    graph: WeightedDigraph,
    *,
    leaf_size: int = 8,
    heuristic: str = "min_degree",
    full_separator_inclusion: bool = True,
) -> SeparatorTree:
    """Separator decomposition via centroid bags (μ ≈ 0 for bounded
    treewidth families)."""
    return build_separator_tree(
        graph,
        treewidth_separator_fn(heuristic=heuristic),
        leaf_size=leaf_size,
        full_separator_inclusion=full_separator_inclusion,
    )
