"""Flow-based separator refinement — minimum vertex cuts on the frontier.

Every cost in the pipeline (|E⁺|, preprocessing work, spine size, per-query
min-plus volume) is quadratic in separator sizes, yet the first-pass engines
stop at their first balanced cut.  This module re-solves each tree node's
cut as a minimum *vertex* cut via the classic split-node max-flow
construction: every vertex ``v`` becomes an arc ``in_v → out_v`` whose
capacity is 1 when ``v`` may join the separator and ∞ when it is pinned to
a side, and every skeleton edge ``{u, w}`` becomes the pair of ∞-capacity
arcs ``out_u → in_w`` / ``out_w → in_u``.  By max-flow/min-cut the saturated
unit arcs of a maximum flow are a minimum vertex cut between the two sides.

The flow is *constrained to the frontier*: only the proposed separator and
its immediate skeleton neighborhood ``S ∪ N(S)`` get unit capacity, while
everything deeper inside either side is pinned (∞).  That caps the max-flow
iterations at |S| (every augmenting path crosses a unit arc of the old
separator) and bounds how far the refined cut can drift — balance is then
enforced explicitly: a refined cut that violates the builder's α-bound, or
a refined tree that fails the full verifier, falls back to the unrefined
proposal/tree.  The solver is pure numpy (level-synchronous BFS augmenting,
Dinic-style unit bottlenecks); networkx is only ever a test oracle.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..core.digraph import WeightedDigraph
from ..core.septree import (
    DecompositionError,
    InseparableSubgraph,
    SeparatorFn,
    SeparatorTree,
    SepTreeNode,
    split_components,
)
from .common import has_two_sides

__all__ = [
    "DEFAULT_REFINE_MAX_NODES",
    "min_vertex_cut",
    "refine_cut",
    "flow_separator_fn",
    "refine_tree",
    "decompose_flow",
    "new_refinement_record",
]

#: Auto-skip threshold: nodes whose subgraph exceeds this many vertices keep
#: their unrefined cut (``OracleConfig.refine_max_nodes`` overrides it).
DEFAULT_REFINE_MAX_NODES = 20_000

#: "Infinite" arc capacity — larger than any achievable flow (≤ n).
_INF = np.int64(1) << np.int64(60)


def new_refinement_record() -> dict:
    """A fresh mutable stats record threaded through the refinement pass."""
    return {
        "engine": "flow",
        "nodes_refined": 0,
        "nodes_unchanged": 0,
        "nodes_skipped": 0,
        "nodes_rebalanced": 0,
        "nodes_free": 0,
        "sep_before": 0,
        "sep_after": 0,
        "flow_wall_s": 0.0,
        "wall_s": 0.0,
        "fallback": None,
    }


# ------------------------------------------------------------------ #
# The numpy max-flow solver
# ------------------------------------------------------------------ #


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[i], starts[i]+counts[i])`` without a loop."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    reps = np.repeat(np.arange(starts.shape[0]), counts)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    return starts[reps] + offsets


class _FlowNetwork:
    """Residual network in the paired-arc representation (``rev = i ^ 1``)
    with a CSR index by tail node for the vectorized BFS."""

    def __init__(self, n_nodes: int, tails: np.ndarray, heads: np.ndarray, caps: np.ndarray):
        m = tails.shape[0]
        self.n_nodes = n_nodes
        self.tail = np.empty(2 * m, dtype=np.int64)
        self.head = np.empty(2 * m, dtype=np.int64)
        self.cap = np.empty(2 * m, dtype=np.int64)
        self.tail[0::2], self.head[0::2], self.cap[0::2] = tails, heads, caps
        self.tail[1::2], self.head[1::2], self.cap[1::2] = heads, tails, 0
        self.order = np.argsort(self.tail, kind="stable")
        counts = np.bincount(self.tail, minlength=n_nodes)
        self.indptr = np.zeros(n_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=self.indptr[1:])

    def bfs(self, source: int, sink: int) -> tuple[np.ndarray, bool]:
        """Level-synchronous BFS over residual arcs; returns the parent-arc
        array (−2 at the source, −1 unreached) and whether the sink was hit."""
        parent = np.full(self.n_nodes, -1, dtype=np.int64)
        parent[source] = -2
        frontier = np.array([source], dtype=np.int64)
        while frontier.size:
            starts = self.indptr[frontier]
            counts = self.indptr[frontier + 1] - starts
            slots = _expand_ranges(starts, counts)
            if slots.size == 0:
                break
            arcs = self.order[slots]
            arcs = arcs[self.cap[arcs] > 0]
            heads = self.head[arcs]
            fresh = parent[heads] == -1
            arcs, heads = arcs[fresh], heads[fresh]
            if heads.size == 0:
                break
            uheads, first = np.unique(heads, return_index=True)
            parent[uheads] = arcs[first]
            if parent[sink] != -1:
                return parent, True
            frontier = uheads
        return parent, False

    def augment(self, parent: np.ndarray, sink: int) -> int:
        """Push the bottleneck along the parent-arc path into the residual."""
        path = []
        node = sink
        while True:
            a = parent[node]
            if a == -2:
                break
            path.append(a)
            node = self.tail[a]
        arcs = np.asarray(path, dtype=np.int64)
        bottleneck = int(self.cap[arcs].min())
        self.cap[arcs] -= bottleneck
        self.cap[arcs ^ 1] += bottleneck
        return bottleneck


def min_vertex_cut(
    sub: WeightedDigraph,
    side_a: np.ndarray,
    side_b: np.ndarray,
    candidates: np.ndarray,
) -> np.ndarray:
    """Minimum vertex cut (local indices, a subset of ``candidates``)
    disconnecting ``side_a`` from ``side_b`` in the skeleton of ``sub``.

    Split-node construction: vertex ``v`` is the arc ``v → n+v`` with
    capacity 1 for candidates and ∞ for everything else; each skeleton edge
    contributes the two ∞ arcs ``out_u → in_w`` and ``out_w → in_u``; a
    super-source feeds every ``side_a`` in-node and every ``side_b``
    out-node drains into the super-sink.  After the max flow, the cut is
    the candidates whose in-node is residual-reachable from the source but
    whose out-node is not.

    ``side_a``/``side_b``/``candidates`` must be disjoint; the cut value
    never exceeds the number of candidate vertices every a→b path crosses.
    """
    n = sub.n
    side_a = np.asarray(side_a, dtype=np.int64)
    side_b = np.asarray(side_b, dtype=np.int64)
    candidates = np.unique(np.asarray(candidates, dtype=np.int64))
    if side_a.size == 0 or side_b.size == 0:
        return np.empty(0, dtype=np.int64)
    source, sink = 2 * n, 2 * n + 1
    split_caps = np.full(n, _INF, dtype=np.int64)
    split_caps[candidates] = 1
    tails = [np.arange(n, dtype=np.int64), n + sub.src, n + sub.dst,
             np.full(side_a.shape[0], source, dtype=np.int64), n + side_b]
    heads = [n + np.arange(n, dtype=np.int64), sub.dst, sub.src,
             side_a, np.full(side_b.shape[0], sink, dtype=np.int64)]
    caps = [split_caps] + [
        np.full(a.shape[0], _INF, dtype=np.int64) for a in tails[1:]
    ]
    net = _FlowNetwork(
        2 * n + 2, np.concatenate(tails), np.concatenate(heads), np.concatenate(caps)
    )
    limit = candidates.shape[0] + 1
    for _ in range(limit):
        parent, found = net.bfs(source, sink)
        if not found:
            break
        net.augment(parent, sink)
    else:  # pragma: no cover - the frontier cap makes this unreachable
        raise RuntimeError("max-flow exceeded the candidate bound")
    reached = parent != -1
    return candidates[reached[candidates] & ~reached[n + candidates]]


# ------------------------------------------------------------------ #
# Cut refinement
# ------------------------------------------------------------------ #


def _frontier_candidates(
    sub: WeightedDigraph, proposal: np.ndarray, hops: int = 1
) -> np.ndarray:
    """The ``hops``-hop skeleton neighborhood of the proposal — the zone the
    refined cut may occupy (``hops=1`` → ``S ∪ N(S)``)."""
    zone = np.zeros(sub.n, dtype=bool)
    zone[proposal] = True
    for _ in range(hops):
        grown = zone.copy()
        grown[sub.dst[zone[sub.src]]] = True
        grown[sub.src[zone[sub.dst]]] = True
        zone = grown
    return np.nonzero(zone)[0]


def refine_cut(
    sub: WeightedDigraph,
    proposal: np.ndarray,
    *,
    alpha: float = 0.95,
    max_nodes: int = DEFAULT_REFINE_MAX_NODES,
    hops: int = 1,
    record: dict | None = None,
) -> np.ndarray:
    """A separator of ``sub`` at most as large as ``proposal``.

    Runs :func:`min_vertex_cut` between the two sides induced by the
    proposal, with candidates on the frontier ``S ∪ N(S)`` (retried with
    ``S`` alone when a side has no interior beyond the frontier).  The
    refined cut is accepted only when it is strictly smaller, still splits
    the subgraph, and keeps every child within the builder's α-balance
    bound — otherwise the proposal comes back unchanged (the fallback rule).
    """
    rec = record if record is not None else new_refinement_record()
    proposal = np.unique(np.asarray(proposal, dtype=np.int64))
    if proposal.size == 0:
        return proposal
    if sub.n > max_nodes:
        rec["nodes_skipped"] += 1
        return proposal
    t0 = time.perf_counter()
    try:
        side_a, side_b = split_components(sub, proposal)
    except DecompositionError:
        return proposal  # a non-progressing proposal is the caller's problem
    if side_a.size == 0 or side_b.size == 0:
        return proposal
    candidates = _frontier_candidates(sub, proposal, hops)
    in_cand = np.zeros(sub.n, dtype=bool)
    in_cand[candidates] = True
    term_a, term_b = side_a[~in_cand[side_a]], side_b[~in_cand[side_b]]
    if term_a.size == 0 or term_b.size == 0:
        # A side lies entirely on the frontier: pin the sides, cut within S.
        candidates, term_a, term_b = proposal, side_a, side_b
    cut = min_vertex_cut(sub, term_a, term_b, candidates)
    rec["flow_wall_s"] += time.perf_counter() - t0
    rec["sep_before"] += int(proposal.shape[0])
    if cut.shape[0] >= proposal.shape[0]:
        rec["nodes_unchanged"] += 1
        rec["sep_after"] += int(proposal.shape[0])
        return proposal
    try:
        v1, v2 = split_components(sub, cut)
    except DecompositionError:
        rec["nodes_rebalanced"] += 1
        rec["sep_after"] += int(proposal.shape[0])
        return proposal
    # Builder bound with full separator inclusion: |side ∪ C| ≤ α·n + |C|.
    if v1.size == 0 or v2.size == 0 or max(v1.size, v2.size) > alpha * sub.n:
        rec["nodes_rebalanced"] += 1
        rec["sep_after"] += int(proposal.shape[0])
        return proposal
    rec["nodes_refined"] += 1
    rec["sep_after"] += int(cut.shape[0])
    return cut


def flow_separator_fn(
    base: SeparatorFn | None = None,
    *,
    alpha: float = 0.95,
    max_nodes: int = DEFAULT_REFINE_MAX_NODES,
    record: dict | None = None,
) -> SeparatorFn:
    """A separator oracle that refines ``base``'s cuts through the flow
    solver (``base=None`` → the spectral engine)."""
    if base is None:
        from .spectral import spectral_separator_fn

        base = spectral_separator_fn()

    def fn(sub: WeightedDigraph, global_vertices: np.ndarray) -> np.ndarray:
        proposal = np.unique(np.asarray(base(sub, global_vertices), dtype=np.int64))
        return refine_cut(
            sub, proposal, alpha=alpha, max_nodes=max_nodes, record=record
        )

    return fn


# ------------------------------------------------------------------ #
# Whole-tree refinement (template replay)
# ------------------------------------------------------------------ #


def _contained_in(verts: np.ndarray, superset: np.ndarray) -> bool:
    """Whether sorted ``verts`` ⊆ sorted ``superset``."""
    if verts.shape[0] > superset.shape[0]:
        return False
    pos = np.searchsorted(superset, verts)
    if pos.size and pos[-1] >= superset.shape[0]:
        return False
    return bool(np.array_equal(superset[pos], verts))


def _refine_pass(
    graph: WeightedDigraph,
    tree: SeparatorTree,
    *,
    alpha: float,
    max_nodes: int,
    base_fn: SeparatorFn,
    leaf_size: int | None,
    hops: int,
    record: dict,
) -> SeparatorTree | None:
    """One template-replay rebuild of ``tree`` with every node's cut
    flow-refined inside its ``hops``-hop frontier zone.

    The recursion *replays the template*: as long as a node's vertex set is
    contained in a template node, the template separator (intersected with
    the current vertices) is the proposal the flow solver shrinks.  A node
    that drifts outside the template (or whose template proposal no longer
    splits it) falls back to ``base_fn`` and is still flow-refined.  The
    finished tree must pass the full structural verifier; any violation —
    or any construction failure — returns ``None``, with the reason in
    ``record["fallback"]``.
    """
    free_leaf_size = max(1, int(leaf_size) if leaf_size else tree.max_leaf_size())
    nodes: list[SepTreeNode] = []
    # Work stack of (parent, level, vertices, boundary, template idx | -1).
    stack: list[tuple[int, int, np.ndarray, np.ndarray, int]] = [
        (-1, 0, np.arange(graph.n, dtype=np.int64), np.empty(0, dtype=np.int64), 0)
    ]
    try:
        while stack:
            parent, level, verts, boundary, tidx = stack.pop()
            idx = len(nodes)
            if parent >= 0:
                p = nodes[parent]
                p.children = p.children + (idx,)
            tnode = tree.nodes[tidx] if tidx >= 0 else None
            # A drifted vertex set can shrink far below its template node —
            # stop at the leaf threshold regardless of what the template says.
            is_leaf = verts.shape[0] <= free_leaf_size or (
                tnode is not None and tnode.is_leaf
            )
            if is_leaf:
                nodes.append(SepTreeNode(
                    idx=idx, level=level, parent=parent, vertices=verts,
                    separator=np.empty(0, dtype=np.int64), boundary=boundary,
                ))
                continue
            sub, mapping = graph.induced_subgraph(verts)
            proposal = np.empty(0, dtype=np.int64)
            if tnode is not None:
                prop_global = np.intersect1d(tnode.separator, mapping, assume_unique=True)
                proposal = np.searchsorted(mapping, prop_global)
            if proposal.size == 0 or not has_two_sides(sub, proposal):
                try:
                    proposal = np.unique(
                        np.asarray(base_fn(sub, mapping), dtype=np.int64)
                    )
                except (DecompositionError, InseparableSubgraph):
                    nodes.append(SepTreeNode(  # oversized leaf, as the builder
                        idx=idx, level=level, parent=parent, vertices=verts,
                        separator=np.empty(0, dtype=np.int64), boundary=boundary,
                    ))
                    continue
                except Exception as exc:
                    # An engine crash on a drifted subgraph must not take the
                    # whole build down — it demotes this pass to a fallback.
                    raise DecompositionError(
                        f"base engine failed on node {idx}: {exc!r}"
                    ) from exc
                record["nodes_free"] += 1
                tnode, tidx = None, -1
            refined = refine_cut(
                sub, proposal, alpha=alpha, max_nodes=max_nodes, hops=hops,
                record=record,
            )
            v1_local, v2_local = split_components(sub, refined)
            sep_global = mapping[refined]
            nodes.append(SepTreeNode(
                idx=idx, level=level, parent=parent, vertices=verts,
                separator=sep_global, boundary=boundary,
            ))
            new_pool = np.union1d(sep_global, boundary)
            template_kids = (
                [tree.nodes[c] for c in tnode.children] if tnode is not None else []
            )
            for side_local in (v1_local, v2_local):
                child_verts = np.union1d(mapping[side_local], sep_global)
                if child_verts.shape[0] >= verts.shape[0]:
                    raise DecompositionError(
                        f"refined node {idx}: child does not shrink"
                    )
                if child_verts.shape[0] > alpha * verts.shape[0] + sep_global.shape[0]:
                    raise DecompositionError(
                        f"refined node {idx}: unbalanced split "
                        f"({child_verts.shape[0]} of {verts.shape[0]})"
                    )
                child_tidx = -1
                for kid in template_kids:
                    if _contained_in(child_verts, kid.vertices):
                        child_tidx = kid.idx
                        break
                child_boundary = np.intersect1d(
                    new_pool, child_verts, assume_unique=True
                )
                stack.append((idx, level + 1, child_verts, child_boundary, child_tidx))
        refined_tree = SeparatorTree(nodes, graph.n)
    except (DecompositionError, InseparableSubgraph) as exc:
        record["fallback"] = f"construction: {exc}"
        return None
    problems = refined_tree.validate(graph, strict=False)
    if problems:
        record["fallback"] = f"verifier: {problems[0]}"
        return None
    return refined_tree


def refine_tree(
    graph: WeightedDigraph,
    tree: SeparatorTree,
    *,
    alpha: float = 0.95,
    max_nodes: int = DEFAULT_REFINE_MAX_NODES,
    base_fn: SeparatorFn | None = None,
    leaf_size: int | None = None,
    hop_sweep: tuple[int, ...] = (1, 2),
) -> tuple[SeparatorTree, dict]:
    """Flow-refine every cut of ``tree``, keeping the result only when it
    is a *global* improvement.

    Runs one :func:`_refine_pass` per frontier width in ``hop_sweep`` (the
    tight ``S ∪ N(S)`` zone finds different optima than the wider two-hop
    zone — neither dominates across graph families) and scores each
    finished tree with :func:`~repro.separators.quality.eplus_score`, the
    Σ(|S|² + |B|²) clique proxy for |E⁺|.  Locally smaller cuts can steer
    the recursion into globally *worse* trees, so the best-scoring
    candidate replaces the input only when it strictly beats it; otherwise
    the original tree comes back with ``record["fallback"]`` saying why.

    Returns ``(tree, record)``; the record also lands on the refined tree's
    ``refinement`` attribute so build stats can surface it.
    """
    from .quality import eplus_score

    t_start = time.perf_counter()
    record = new_refinement_record()
    record["max_nodes"] = int(max_nodes)
    if all(t.is_leaf for t in tree.nodes):
        record["wall_s"] = time.perf_counter() - t_start
        return tree, record
    if base_fn is None:
        from .spectral import spectral_separator_fn

        base_fn = spectral_separator_fn()
    score0 = eplus_score(tree)
    record["score_before"] = score0
    attempts: list[dict] = []
    best: tuple[int, SeparatorTree, dict, int] | None = None
    for hops in hop_sweep:
        rec = new_refinement_record()
        cand = _refine_pass(
            graph, tree, alpha=alpha, max_nodes=max_nodes, base_fn=base_fn,
            leaf_size=leaf_size, hops=hops, record=rec,
        )
        if cand is None:
            attempts.append({"hops": hops, "fallback": rec["fallback"]})
            continue
        score = eplus_score(cand)
        attempts.append({"hops": hops, "score": score})
        if best is None or score < best[0]:
            best = (score, cand, rec, hops)
    record["attempts"] = attempts
    if best is None or best[0] >= score0:
        record["fallback"] = (
            "score: no pass beat the unrefined tree"
            if best is not None
            else "; ".join(a["fallback"] for a in attempts)
        )
        record["wall_s"] = time.perf_counter() - t_start
        return tree, record
    score, refined_tree, rec, hops = best
    for key in (
        "nodes_refined", "nodes_unchanged", "nodes_skipped",
        "nodes_rebalanced", "nodes_free", "sep_before", "sep_after",
        "flow_wall_s",
    ):
        record[key] = rec[key]
    record["hops"] = hops
    record["score_after"] = score
    record["sep_total_before"] = int(tree.separator_sizes().sum())
    record["sep_total_after"] = int(refined_tree.separator_sizes().sum())
    record["wall_s"] = time.perf_counter() - t_start
    refined_tree.refinement = record
    return refined_tree, record


def decompose_flow(
    graph: WeightedDigraph,
    *,
    leaf_size: int = 8,
    alpha: float = 0.95,
    max_nodes: int = DEFAULT_REFINE_MAX_NODES,
    engines: tuple[str, ...] = ("spectral", "multilevel"),
) -> SeparatorTree:
    """The standalone ``separator="flow"`` engine: build first-pass trees
    with the candidate ``engines``, keep the one :func:`~repro.separators.
    quality.best_first_pass` scores cheapest, and flow-refine it."""
    from .quality import best_first_pass

    name, first = best_first_pass(graph, leaf_size=leaf_size, engines=engines)
    refined, rec = refine_tree(
        graph, first, alpha=alpha, max_nodes=max_nodes, leaf_size=leaf_size
    )
    rec["first_pass"] = name
    if refined.refinement is None:  # fallback returned the first-pass tree
        refined.refinement = rec
    if refined.selection is None:  # carry the engine decision onto the result
        refined.selection = first.selection
    return refined
