"""Shared machinery for separator oracles.

Every engine needs the same scaffolding:

* *component awareness* — a disconnected subgraph whose largest component is
  already balanced needs no separator at all (the empty set splits it);
  otherwise the engine should separate inside the largest component;
* *progress guarantee* — a set ``S`` only makes the recursion shrink when
  ``sub ∖ S`` has at least two connected components (otherwise one child
  equals the whole subgraph).  :func:`ensure_progress` verifies this and
  falls back to a neighborhood separator (``N(v)`` of a minimum-degree
  vertex isolates ``{v}`` from the rest) before giving up with a clear
  error — which is the *correct* outcome for graphs that admit no separator
  at all (e.g. cliques, per the paper's §1 definition).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.digraph import WeightedDigraph
from ..core.septree import DecompositionError, InseparableSubgraph, SeparatorFn
from .bfs_levels import connected_component_labels

__all__ = [
    "BALANCE",
    "rest_components",
    "has_two_sides",
    "neighborhood_separator",
    "ensure_progress",
    "component_aware",
]

#: Default balance target: no side above two thirds.
BALANCE = 2.0 / 3.0


def rest_components(sub: WeightedDigraph, sep_local: np.ndarray) -> tuple[int, int]:
    """``(number of components, largest component size)`` of ``sub ∖ S``."""
    import scipy.sparse as sp
    from scipy.sparse.csgraph import connected_components

    keep = np.ones(sub.n, dtype=bool)
    keep[sep_local] = False
    rest = np.nonzero(keep)[0]
    if rest.size == 0:
        return 0, 0
    mask = keep[sub.src] & keep[sub.dst]
    adj = sp.csr_matrix(
        (np.ones(int(mask.sum())), (sub.src[mask], sub.dst[mask])), shape=(sub.n, sub.n)
    )
    _, labels = connected_components(adj, directed=False)
    counts = np.bincount(labels[rest])
    counts = counts[counts > 0]
    return int(counts.shape[0]), int(counts.max())


def has_two_sides(sub: WeightedDigraph, sep_local: np.ndarray) -> bool:
    """Whether removing ``S`` leaves ≥2 components (recursion progress)."""
    ncomp, _ = rest_components(sub, sep_local)
    return ncomp >= 2


def neighborhood_separator(sub: WeightedDigraph) -> np.ndarray:
    """``N(v)`` of a minimum-skeleton-degree vertex: isolates ``{v}`` from
    everything outside ``N[v]`` — the last-resort separator (very
    unbalanced, but always progresses when the graph is not complete)."""
    skel = sub.skeleton
    degrees = np.diff(skel.indptr)
    v = int(np.argmin(degrees))
    sep = np.unique(skel.neighbors(v))
    sep = sep[sep != v]
    if sep.shape[0] + 1 >= sub.n:
        # The min-degree closed neighborhood covers everything ⟺ the
        # skeleton is complete ⟺ no separator exists (paper §1 definition).
        raise InseparableSubgraph(sub.n)
    return sep


def ensure_progress(sub: WeightedDigraph, sep_local: np.ndarray) -> np.ndarray:
    """Return ``sep_local`` if it genuinely splits ``sub``, otherwise the
    neighborhood fallback (or raise when even that cannot progress)."""
    if sep_local.size and has_two_sides(sub, sep_local):
        return sep_local
    fallback = neighborhood_separator(sub)
    if has_two_sides(sub, fallback):
        return fallback
    raise DecompositionError(
        f"no progressing separator found for subgraph of size {sub.n}"
    )


def component_aware(core: Callable[[WeightedDigraph, np.ndarray], np.ndarray]) -> SeparatorFn:
    """Wrap a connected-case oracle with the disconnected-graph protocol:

    * largest component already ≤ BALANCE · n → empty separator;
    * otherwise run ``core`` on the largest component and lift its local
      indices back, then verify progress.
    """

    def fn(sub: WeightedDigraph, global_vertices: np.ndarray) -> np.ndarray:
        ncomp, labels = connected_component_labels(sub)
        counts = np.bincount(labels, minlength=ncomp)
        big = int(np.argmax(counts))
        if ncomp > 1 and counts[big] <= BALANCE * sub.n:
            return np.empty(0, dtype=np.int64)
        if ncomp > 1:
            comp = np.nonzero(labels == big)[0]
            inner, _ = sub.induced_subgraph(comp)
            sep = comp[ensure_progress(inner, core(inner, global_vertices[comp]))]
            return sep  # progress inside the component implies progress here
        return ensure_progress(sub, core(sub, global_vertices))

    return fn
