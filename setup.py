"""Setup shim.

Kept alongside pyproject.toml so editable installs work on offline hosts
without the ``wheel`` package (pip's legacy ``setup.py develop`` path):

    pip install -e . --no-use-pep517 --no-build-isolation --no-deps
"""

from setuptools import setup

setup()
