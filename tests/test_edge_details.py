"""Focused unit tests for behaviors not pinned elsewhere: exact phase-mask
membership in the schedule, quality fitting on crafted trees, multilevel
refinement mechanics, io failure paths, executor error propagation, and
extreme leaf sizes."""

import numpy as np
import pytest

from repro import ShortestPathOracle
from repro.core.digraph import WeightedDigraph
from repro.core.leaves_up import augment_leaves_up
from repro.core.scheduler import build_schedule
from repro.separators.grid import decompose_grid
from repro.separators.spectral import decompose_spectral
from repro.workloads.generators import grid_digraph
from tests.conftest import assert_distances_equal, reference_apsp


class TestScheduleMasks:
    """The §3.2 filters, checked against hand-derived membership."""

    @pytest.fixture
    def setup(self, grid7):
        g, tree = grid7
        aug = augment_leaves_up(g, tree, keep_node_distances=False)
        schedule = build_schedule(aug)
        src, dst, w, is_aug = aug.combined_edges()
        lv = tree.vertex_level
        return aug, schedule, src, dst, lv

    def test_desc_same_contains_exactly_level_pairs(self, setup):
        aug, schedule, src, dst, lv = setup
        d_g = aug.tree.height
        # Find the desc-same phase for the top level.
        idx = schedule.labels.index(f"desc-same-{d_g}")
        relaxer = schedule.relaxers[idx]
        want = int(((lv[src] == d_g) & (lv[dst] == d_g)).sum())
        assert relaxer.m == want

    def test_desc_drop_excludes_undefined(self, setup):
        aug, schedule, src, dst, lv = setup
        d_g = aug.tree.height
        idx = schedule.labels.index(f"desc-drop-{d_g}")
        relaxer = schedule.relaxers[idx]
        want = int(((lv[src] == d_g) & (lv[dst] >= 0) & (lv[dst] < d_g)).sum())
        assert relaxer.m == want

    def test_asc_rise_membership(self, setup):
        aug, schedule, src, dst, lv = setup
        idx = schedule.labels.index("asc-rise-0")
        relaxer = schedule.relaxers[idx]
        want = int(((lv[src] == 0) & (lv[dst] > 0)).sum())
        assert relaxer.m == want

    def test_prefix_phases_scan_only_original(self, setup):
        aug, schedule, src, dst, lv = setup
        if aug.ell:
            assert schedule.relaxers[0].m == aug.graph.m


class TestQualityFit:
    def test_mu_fit_on_crafted_tree(self):
        """Craft nodes with |S| = |V|^0.5 exactly; the fit must recover 0.5."""
        from repro.core.septree import SeparatorTree, SepTreeNode

        nodes = [SepTreeNode(
            idx=0, level=0, parent=-1,
            vertices=np.arange(1024), separator=np.arange(32),
            boundary=np.empty(0, dtype=np.int64), children=(1, 2),
        )]
        sizes = [(1, 1, 512, 23), (2, 1, 512, 23), (3, 2, 256, 16), (4, 2, 256, 16)]
        for idx, level, size, sep in sizes:
            nodes.append(SepTreeNode(
                idx=idx, level=level, parent=0 if level == 1 else 1,
                vertices=np.arange(size), separator=np.arange(sep),
                boundary=np.empty(0, dtype=np.int64),
                children=(3, 4) if idx == 1 else (),
            ))
        nodes[0].children = (1, 2)
        from repro.separators.quality import assess

        tree = SeparatorTree.__new__(SeparatorTree)
        tree.nodes = nodes
        tree.n = 1024
        tree.height = 2
        q = assess(tree)
        assert abs(q.mu_hat - 0.5) < 0.05


class TestMultilevelRefinement:
    def test_refine_moves_obvious_vertex(self):
        from repro.separators.multilevel import _Level, _refine

        # Path 0-1-2-3-4-5 with vertex 1 stranded on side B between two
        # A-vertices: flipping it removes two cut edges (gain +2) while
        # keeping the 1/3..2/3 balance.
        level = _Level(
            n=6,
            eu=np.arange(5),
            ev=np.arange(1, 6),
            emult=np.ones(5),
            vweight=np.ones(6),
            fine_to_coarse=None,
        )
        in_a = np.array([True, False, True, True, False, False])
        before = (in_a[level.eu] != in_a[level.ev]).sum()
        out = _refine(level, in_a)
        after = (out[level.eu] != out[level.ev]).sum()
        # Greedy refinement strictly improved the cut (order-dependent local
        # optimum, so we assert improvement, not the global minimum) while
        # keeping the 1/3–2/3 balance.
        assert after < before
        assert 2 <= out.sum() <= 4


class TestIOErrors:
    def test_load_graph_rejects_wrong_kind(self, tmp_path, grid7):
        from repro.io import load_tree, save_graph

        g, _ = grid7
        save_graph(tmp_path / "g.npz", g)
        with pytest.raises(ValueError):
            load_tree(tmp_path / "g.npz")

    def test_load_augmentation_rejects_graph_file(self, tmp_path, grid7):
        from repro.io import load_augmentation, save_graph

        g, _ = grid7
        save_graph(tmp_path / "g.npz", g)
        with pytest.raises(ValueError):
            load_augmentation(tmp_path / "g.npz")


def _boom(payload):
    raise RuntimeError("worker exploded")


class TestExecutorErrors:
    @pytest.mark.parametrize(
        "spec",
        [
            "serial",
            "thread:2",
            pytest.param("process:2", marks=pytest.mark.multiproc),
            pytest.param("shm:2", marks=pytest.mark.multiproc),
        ],
    )
    def test_worker_exception_propagates(self, spec):
        from repro.pram.executor import get_executor

        exe = get_executor(spec)
        try:
            with pytest.raises(RuntimeError):
                exe.map(_boom, [1, 2])
        finally:
            exe.close()


class TestExtremeLeafSizes:
    def test_leaf_size_one(self, rng):
        """Minimal leaves: even with leaf_size=1 a leaf can hold an interior
        vertex plus one boundary vertex (full-S inclusion), so ℓ ≤ 1; the
        schedule must stay exact with the tiny prefix."""
        g = grid_digraph((5, 5), rng)
        tree = decompose_grid(g, (5, 5), leaf_size=1)
        aug = augment_leaves_up(g, tree, keep_node_distances=False)
        schedule = build_schedule(aug)
        assert aug.ell <= 1
        from repro.core.sssp import sssp_scheduled

        got = sssp_scheduled(aug, list(range(g.n)), schedule=schedule)
        assert_distances_equal(got, reference_apsp(g))

    def test_leaf_size_covers_whole_graph(self, rng):
        g = grid_digraph((4, 4), rng)
        oracle = ShortestPathOracle.build(g, separator="spectral", leaf_size=100)
        assert oracle.tree.root.is_leaf
        assert_distances_equal(oracle.distances(0), reference_apsp(g)[0])


class TestCombinedEdges:
    def test_flags_and_order(self, grid7):
        g, tree = grid7
        aug = augment_leaves_up(g, tree, keep_node_distances=False)
        src, dst, w, is_aug = aug.combined_edges()
        assert np.array_equal(src[: g.m], g.src)
        assert not is_aug[: g.m].any() and is_aug[g.m :].all()
        assert np.array_equal(w[g.m :], aug.weight)
