"""Zero-copy shared-memory plane: arena unit tests, backend equivalence
(bit-equal augmentations across serial/thread/process/shm on two semirings,
with negative weights and negative cycles), and /dev/shm leak checks.

Pool-spawning tests carry the ``multiproc`` marker; the default fast lane
(``-m "not multiproc"``) still exercises the arena itself in-process.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import assert_distances_equal, reference_apsp
from repro.core.augment import NegativeCycleDetected
from repro.core.doubling import augment_doubling
from repro.core.doubling_shared import augment_doubling_shared
from repro.core.leaves_up import augment_leaves_up
from repro.core.semiring import BOOLEAN
from repro.core.sssp import sssp_scheduled
from repro.pram.shm import ArrayRef, ShmArena, as_array, orphaned_segments, resolve
from repro.separators.grid import decompose_grid
from repro.workloads.generators import grid_digraph

BUILDERS = {
    "leaves_up": augment_leaves_up,
    "doubling": augment_doubling,
    "doubling_shared": augment_doubling_shared,
}


@pytest.fixture(params=list(BUILDERS))
def build(request):
    return BUILDERS[request.param]


class TestShmArena:
    def test_publish_roundtrip(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((13, 7))
        with ShmArena() as arena:
            ref = arena.publish(a)
            assert isinstance(ref, ArrayRef)
            assert ref.shape == (13, 7) and np.dtype(ref.dtype) == a.dtype
            view = as_array(ref)
            assert np.array_equal(view, a)
            # The view aliases the segment, not the source array.
            assert not np.shares_memory(view, a)
        assert orphaned_segments() == []

    def test_alloc_alignment_and_write_through(self):
        with ShmArena() as arena:
            refs = [arena.alloc((3, 3), np.float64) for _ in range(5)]
            for i, (ref, view) in enumerate(refs):
                assert ref.offset % 64 == 0
                view[...] = i
            for i, (ref, _) in enumerate(refs):
                assert (as_array(ref) == i).all()

    def test_alloc_int_shape_and_bool_dtype(self):
        with ShmArena() as arena:
            ref, view = arena.alloc(10, bool)
            view[...] = True
            assert ref.shape == (10,) and as_array(ref).all()

    def test_publish_non_contiguous(self):
        a = np.arange(24.0).reshape(4, 6)[:, ::2]
        with ShmArena() as arena:
            assert np.array_equal(as_array(arena.publish(a)), a)

    def test_grows_across_segments(self):
        with ShmArena(chunk_bytes=4096) as arena:
            refs = [arena.publish(np.arange(1024.0)) for _ in range(4)]
            assert len(arena.segment_names) >= 4
            for r in refs:
                assert np.array_equal(as_array(r), np.arange(1024.0))
        assert orphaned_segments() == []

    def test_oversized_array_gets_own_segment(self):
        big = np.ones(5000, dtype=np.float64)  # > chunk_bytes
        with ShmArena(chunk_bytes=4096) as arena:
            assert np.array_equal(as_array(arena.publish(big)), big)
        assert orphaned_segments() == []

    def test_resolve_recurses_containers(self):
        with ShmArena() as arena:
            a = np.arange(6.0)
            ref = arena.publish(a)
            payload = {"x": ref, "nested": [(ref, 1), {"y": ref}], "z": "s"}
            out = resolve(payload)
            assert np.array_equal(out["x"], a)
            assert np.array_equal(out["nested"][0][0], a)
            assert out["nested"][0][1] == 1
            assert np.array_equal(out["nested"][1]["y"], a)
            assert out["z"] == "s"

    def test_close_is_idempotent_and_unlinks(self):
        arena = ShmArena()
        arena.publish(np.ones(3))
        names = list(arena.segment_names)
        assert names
        arena.close()
        arena.close()
        assert orphaned_segments() == []
        for name in names:
            with pytest.raises(FileNotFoundError):
                as_array(ArrayRef(name, 0, (3,), "float64"))

    def test_allocated_bytes_monotone(self):
        with ShmArena() as arena:
            b0 = arena.allocated_bytes
            arena.publish(np.ones(100))
            assert arena.allocated_bytes >= b0 + 800


@pytest.mark.multiproc
class TestShmBackendEquivalence:
    """shm:N must reproduce the serial augmentation bit for bit."""

    def test_min_plus_negative_weights(self, grid6_negative, build):
        g, tree = grid6_negative
        base = build(g, tree, keep_node_distances=True)
        alt = build(g, tree, executor="shm:2", keep_node_distances=True)
        assert np.array_equal(base.src, alt.src)
        assert np.array_equal(base.dst, alt.dst)
        assert np.array_equal(base.weight, alt.weight)
        assert base.leaf_diameters == alt.leaf_diameters
        for idx, nd in base.node_distances.items():
            assert np.array_equal(nd.vertices, alt.node_distances[idx].vertices)
            assert np.array_equal(nd.matrix, alt.node_distances[idx].matrix)
        assert orphaned_segments() == []
        assert_distances_equal(sssp_scheduled(alt, [0, 7]), reference_apsp(g)[[0, 7]])

    def test_boolean_semiring(self, grid7, build):
        g, tree = grid7
        base = build(g, tree, BOOLEAN, keep_node_distances=False)
        alt = build(g, tree, BOOLEAN, executor="shm:2", keep_node_distances=False)
        assert np.array_equal(base.src, alt.src)
        assert np.array_equal(base.dst, alt.dst)
        assert np.array_equal(base.weight, alt.weight)
        assert orphaned_segments() == []

    def test_negative_cycle_detected_and_no_leak(self, build):
        g = grid_digraph((4, 4), None)
        g = g.with_extra_edges([0, 1], [1, 0], [-3.0, 1.0])
        tree = decompose_grid(g, (4, 4), leaf_size=4)
        with pytest.raises(NegativeCycleDetected):
            build(g, tree, executor="shm:2")
        assert orphaned_segments() == []

    def test_process_backend_still_matches(self, grid6_negative):
        g, tree = grid6_negative
        base = augment_leaves_up(g, tree)
        alt = augment_leaves_up(g, tree, executor="process:2")
        assert np.array_equal(base.weight, alt.weight)


def _touch(payload):
    return float(np.asarray(payload["a"]).sum())


def _explode(payload):
    raise RuntimeError("worker crashed mid-task")


@pytest.mark.multiproc
class TestShmLifecycle:
    def test_descriptor_payloads_resolve_in_workers(self):
        from repro.pram.executor import get_executor

        exe = get_executor("shm:2")
        try:
            with ShmArena() as arena:
                ref = arena.publish(np.arange(10.0))
                got = exe.map(_touch, [{"a": ref}, {"a": ref}])
            assert got == [45.0, 45.0]
        finally:
            exe.close()
        assert orphaned_segments() == []

    def test_no_leak_after_worker_crash(self):
        from repro.pram.executor import get_executor

        exe = get_executor("shm:2")
        try:
            with ShmArena() as arena:
                ref = arena.publish(np.ones(8))
                with pytest.raises(RuntimeError):
                    exe.map(_explode, [{"a": ref}])
        finally:
            exe.close()
        assert orphaned_segments() == []
