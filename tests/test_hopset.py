"""Tests for the hopset-based (1+ε) approximate-distance subsystem
(:mod:`repro.hopset`): construction invariants, the d ≤ d̂ ≤ (1+ε)·d
property against networkx across families/ε/weight dtypes, the auto-mode
gate on separator quality, cache-key separation, persistence and reweight
round-trips, the serving surface (ApproxEngine, server stats RPC, CLI),
and the exact-mode bit-identity guard.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import augmentation_key
from repro.core.api import ShortestPathOracle
from repro.core.config import OracleConfig
from repro.core.digraph import WeightedDigraph
from repro.core.semiring import MIN_PLUS, SEMIRINGS
from repro.hopset import (
    ApproxEngine,
    HopsetAugmentation,
    build_hopset,
    default_hop_budget,
    hop_cap_for,
    replay_hopset,
)
from repro.kernels.bellman_ford import bellman_ford
from repro.kernels.dijkstra import dijkstra
from repro.separators.grid import decompose_grid
from repro.workloads.generators import (
    expander_digraph,
    gnm_digraph,
    grid_digraph,
)


def _int_weighted(g: WeightedDigraph, rng) -> WeightedDigraph:
    """Same skeleton, uniform integer weights in [1, 10] (stored float64)."""
    w = rng.integers(1, 11, size=g.m).astype(np.float64)
    return WeightedDigraph(g.n, g.src, g.dst, w)


def _exact_distances(g: WeightedDigraph, sources) -> np.ndarray:
    return bellman_ford(g, sources)


def _mu_family(n: int, mu: float, rng):
    from repro.workloads.synthetic import separator_programmable_family

    g, _ = separator_programmable_family(n, mu, rng)
    return g


class TestConstruction:
    def test_scales_are_nested_with_doubling_budgets(self, rng):
        g = expander_digraph(240, rng, degree=6)
        h = build_hopset(g, eps=0.1, seed=3)
        assert len(h.pivots) == len(h.budgets) >= 1
        for coarse, fine in zip(h.pivots[1:], h.pivots[:-1]):
            assert np.isin(coarse, fine).all(), "scales must be nested"
            assert coarse.shape[0] <= fine.shape[0]
        for k0, k1 in zip(h.budgets, h.budgets[1:]):
            assert k1 == min(2 * k0, g.n)
        assert h.hop_cap == hop_cap_for(g.n, h.beta)
        assert h.size == h.src.shape[0] == h.dst.shape[0] == h.weight.shape[0]

    def test_shortcuts_never_underestimate(self, rng):
        """Soundness: every emitted shortcut weight ≥ the true distance
        (hop-limited exact, then rounded *up*) — this is what makes
        d̂ ≥ d deterministic, not just whp."""
        g = expander_digraph(150, rng, degree=5)
        h = build_hopset(g, eps=0.5, seed=1)
        exact = _exact_distances(g, np.unique(h.src))
        row = {int(s): i for i, s in enumerate(np.unique(h.src))}
        true = np.array([exact[row[int(s)], int(d)] for s, d in zip(h.src, h.dst)])
        assert (h.weight >= true - 1e-9).all()

    def test_eps_zero_disables_rounding(self, rng):
        g = expander_digraph(100, rng, degree=5)
        h = build_hopset(g, eps=0.0, seed=0)
        assert not h.rounded

    def test_negative_weights_disable_rounding(self, rng):
        from repro.workloads.generators import apply_potential_weights

        g = apply_potential_weights(grid_digraph((8, 8), rng), rng)
        h = build_hopset(g, eps=0.1, seed=0)
        assert not h.rounded  # multiplicative rounding is undefined below 0

    def test_hop_budget_and_cap_helpers(self):
        assert default_hop_budget(4) >= 4
        for n, k in ((100, 10), (1000, 40), (7, 7)):
            cap = hop_cap_for(n, k)
            assert 1 <= cap <= n + 1

    def test_determinism(self, rng):
        """Same (graph, eps, seed) → bit-identical hopset; the seed is part
        of the cache key precisely because it pins the pivot sample."""
        g = expander_digraph(120, rng, degree=5)
        a = build_hopset(g, eps=0.1, seed=7)
        b = build_hopset(g, eps=0.1, seed=7)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.dst, b.dst)
        assert np.array_equal(a.weight, b.weight)
        for pa, pb in zip(a.pivots, b.pivots):
            assert np.array_equal(pa, pb)


class TestErrorBound:
    """The subsystem's contract: d(u,v) ≤ d̂(u,v) ≤ (1+ε)·d(u,v), verified
    against networkx as the independent baseline."""

    FAMILIES = ("expander", "dense", "mu")

    @pytest.mark.parametrize("eps", [0.5, 0.1])
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("dtype", ["float", "int"])
    def test_bound_vs_networkx(self, eps, family, dtype, rng):
        nx = pytest.importorskip("networkx")
        if family == "expander":
            g = expander_digraph(160, rng, degree=5)
        elif family == "dense":
            g = gnm_digraph(140, 1800, rng)
        else:
            g = _mu_family(160, 0.8, rng)
        if dtype == "int":
            g = _int_weighted(g, rng)
        oracle = ShortestPathOracle.build(g, mode="approx", eps=eps)
        assert oracle.augmentation.method == "hopset"
        sources = rng.choice(g.n, size=4, replace=False)
        approx = oracle.distances(sources)
        gx = g.to_networkx()
        for i, s in enumerate(sources):
            lengths = nx.single_source_bellman_ford_path_length(gx, int(s))
            exact = np.full(g.n, np.inf)
            for v, d in lengths.items():
                exact[v] = d
            got = approx[i]
            assert (np.isinf(exact) == np.isinf(got)).all(), "reachability must match"
            fin = np.isfinite(exact)
            assert (got[fin] >= exact[fin] - 1e-9).all(), "d̂ must never underestimate"
            assert (got[fin] <= (1.0 + eps) * exact[fin] + 1e-9).all(), (
                f"(1+ε) bound violated: max ratio "
                f"{np.max(got[fin] / np.maximum(exact[fin], 1e-300)):.4f}"
            )

    def test_scheduled_matches_naive(self, rng):
        """The HopSchedule (frontier-pruned capped Bellman–Ford) and the
        naive engine must produce bit-identical distances on G∪H."""
        g = expander_digraph(150, rng, degree=5)
        oracle = ShortestPathOracle.build(g, mode="approx", eps=0.1)
        srcs = [0, 17, 42]
        assert np.array_equal(
            oracle.distances(srcs, engine="scheduled"),
            oracle.distances(srcs, engine="naive"),
        )


class TestExactModeGuard:
    def test_default_build_is_exact_and_bit_stable(self, grid7):
        """mode defaults to 'exact' and produces the same artifact (and the
        same distances) as a build that never heard of the hopset kwargs."""
        g, tree = grid7
        plain = ShortestPathOracle.build(g, tree)
        explicit = ShortestPathOracle.build(g, tree, mode="exact", eps=0.3)
        assert plain.augmentation.method == explicit.augmentation.method == "leaves_up"
        assert not isinstance(plain.augmentation, HopsetAugmentation)
        assert np.array_equal(plain.augmentation.weight, explicit.augmentation.weight)
        assert np.array_equal(plain.distances([0, 5]), explicit.distances([0, 5]))
        assert np.allclose(plain.distances(0), dijkstra(g, 0))
        assert plain.stats()["mode"] == "exact"

    def test_exact_cache_key_ignores_hopset_knobs(self, grid7):
        """Regression (satellite 2): exact-mode keys must be bit-stable
        against every key minted before the hopset subsystem existed —
        eps/beta/seed feed the hash only when mode != 'exact'."""
        g, tree = grid7
        legacy = augmentation_key(g, tree, MIN_PLUS, "leaves_up")
        assert legacy == augmentation_key(
            g, tree, MIN_PLUS, "leaves_up",
            mode="exact", eps=0.7, hopset_beta=9, hopset_seed=5,
        )

    def test_approx_keys_split_on_eps_beta_seed_mode(self, grid7):
        g, tree = grid7
        base = augmentation_key(g, tree, MIN_PLUS, "hopset", mode="approx", eps=0.1)
        assert base != augmentation_key(g, tree, MIN_PLUS, "hopset", mode="approx", eps=0.2)
        assert base != augmentation_key(
            g, tree, MIN_PLUS, "hopset", mode="approx", eps=0.1, hopset_beta=16
        )
        assert base != augmentation_key(
            g, tree, MIN_PLUS, "hopset", mode="approx", eps=0.1, hopset_seed=1
        )
        assert base != augmentation_key(g, tree, MIN_PLUS, "hopset")  # exact-form key


class TestAutoGate:
    def test_expander_routes_to_hopset_with_decision_record(self, rng):
        g = expander_digraph(220, rng, degree=6)
        oracle = ShortestPathOracle.build(g, mode="auto")
        assert oracle.augmentation.method == "hopset"
        sel = oracle.stats()["separators"]["selection"]
        decision = sel["mode_decision"]
        assert decision["mode"] == "approx"
        assert "why" in decision and "gate" in decision
        # Satellite 1: the per-engine scoring that informed the choice.
        if decision.get("candidates") is not None:
            assert all("engine" in c for c in decision["candidates"])

    def test_grid_stays_exact_with_decision_record(self, rng):
        g = grid_digraph((14, 14), rng)
        oracle = ShortestPathOracle.build(g, mode="auto")
        assert oracle.augmentation.method != "hopset"
        decision = oracle.stats()["separators"]["selection"]["mode_decision"]
        assert decision["mode"] == "exact"
        assert decision["separability"] >= decision["gate"]

    def test_gate_knob_flips_the_decision(self, rng):
        g = grid_digraph((12, 12), rng)
        cfg = OracleConfig().replace(mode="auto", approx_gate=1.0)
        oracle = ShortestPathOracle.build(g, config=cfg)
        assert oracle.augmentation.method == "hopset"  # nothing scores ≥ 1.0

    def test_separability_score_calibration(self, rng):
        from repro.separators.quality import separability_score

        g = grid_digraph((14, 14), rng)
        tree = decompose_grid(g, (14, 14), leaf_size=8)
        assert separability_score(tree) > 0.5
        from repro.separators.quality import best_first_pass

        ge = expander_digraph(220, rng, degree=6)
        _, bad = best_first_pass(ge, leaf_size=8)
        assert separability_score(bad) < 0.5  # E⁺ blows up quadratically


class TestConfigAndErrors:
    def test_unknown_mode_names_valid_modes(self):
        with pytest.raises(ValueError) as ei:
            OracleConfig(mode="bogus")
        msg = str(ei.value)
        for mode in ("exact", "approx", "auto"):
            assert mode in msg
        assert "bogus" in msg

    def test_eps_and_gate_validation(self):
        with pytest.raises(ValueError):
            OracleConfig(eps=-0.1)
        with pytest.raises(ValueError):
            OracleConfig(approx_gate=1.5)
        with pytest.raises(ValueError):
            OracleConfig(hopset_beta=-1)

    def test_method_registry_rejects_hopset(self):
        """'hopset' is an artifact method, not a build method — cfg.method
        must never accept it (load() maps it to mode='approx' instead)."""
        with pytest.raises(ValueError):
            OracleConfig(method="hopset")

    def test_shard_fleet_refuses_hopset(self, rng):
        g = expander_digraph(100, rng, degree=5)
        oracle = ShortestPathOracle.build(g, mode="approx", eps=0.5)
        with pytest.raises(ValueError, match="hopset"):
            oracle.shard_fleet(2)

    def test_semiring_gate(self, rng):
        g = expander_digraph(80, rng, degree=4)
        with pytest.raises(ValueError, match="min-plus"):
            build_hopset(g, SEMIRINGS["boolean"])


class TestServing:
    def test_query_engine_is_approx_engine(self, rng):
        g = expander_digraph(140, rng, degree=5)
        oracle = ShortestPathOracle.build(g, mode="approx", eps=0.1)
        with oracle.query_engine(OracleConfig().replace(executor="serial")) as eng:
            assert isinstance(eng, ApproxEngine)
            got = eng.query([3, 9])
            stats = eng.stats()
        assert np.array_equal(got, oracle.distances([3, 9]))
        assert stats["approx"] is True
        assert stats["mode"] == "approx"
        assert stats["eps"] == pytest.approx(0.1)
        assert stats["hopset_edges"] == oracle.augmentation.size
        assert stats["hop_cap"] == oracle.augmentation.diameter_bound

    def test_approx_engine_rejects_exact_augmentation(self, grid7):
        g, tree = grid7
        oracle = ShortestPathOracle.build(g, tree)
        with pytest.raises(TypeError):
            ApproxEngine(oracle.augmentation, OracleConfig())

    def test_server_stats_expose_mode_and_eps(self, rng, tmp_path):
        from repro.server import OracleClient
        from tests.test_server import SERIAL, serving

        g = expander_digraph(120, rng, degree=5)
        oracle = ShortestPathOracle.build(g, mode="approx", eps=0.25)
        exact = _exact_distances(g, [5])
        with serving(oracle, tmp_path, engine_cfg=SERIAL) as (sock, _):
            with OracleClient(sock) as c:
                d = c.distances(5)
                stats = c.stats()
        assert stats["mode"] == "approx"
        assert stats["eps"] == pytest.approx(0.25)
        assert stats["engine"]["approx"] is True
        assert stats["separators"]["selection"]["mode_decision"]["mode"] == "approx"
        fin = np.isfinite(exact[0])
        assert (d[fin] >= exact[0][fin] - 1e-9).all()
        assert (d[fin] <= 1.25 * exact[0][fin] + 1e-9).all()

    def test_server_stats_exact_mode(self, grid7, tmp_path):
        from repro.server import OracleClient
        from tests.test_server import SERIAL, serving

        g, tree = grid7
        oracle = ShortestPathOracle.build(g, tree)
        with serving(oracle, tmp_path, engine_cfg=SERIAL) as (sock, _):
            with OracleClient(sock) as c:
                stats = c.stats()
        assert stats["mode"] == "exact"
        assert stats["eps"] is None


class TestPersistenceAndCache:
    def test_save_load_round_trip(self, rng, tmp_path):
        g = expander_digraph(130, rng, degree=5)
        oracle = ShortestPathOracle.build(g, mode="approx", eps=0.2)
        want = oracle.distances([1, 2, 3])
        path = tmp_path / "approx.npz"
        oracle.save(path)
        loaded = ShortestPathOracle.load(path)
        aug = loaded.augmentation
        assert isinstance(aug, HopsetAugmentation)
        assert aug.method == "hopset"
        assert aug.eps == pytest.approx(0.2)
        assert aug.hopset is not None
        assert aug.hopset.hop_cap == oracle.augmentation.hopset.hop_cap
        assert len(aug.hopset.pivots) == len(oracle.augmentation.hopset.pivots)
        for a, b in zip(aug.hopset.pivots, oracle.augmentation.hopset.pivots):
            assert np.array_equal(a, b)
        assert loaded.config.mode == "approx"
        assert np.array_equal(loaded.distances([1, 2, 3]), want)

    def test_build_cache_round_trip(self, rng, tmp_path):
        g = expander_digraph(120, rng, degree=5)
        cfg = OracleConfig().replace(
            mode="approx", eps=0.1, cache="readwrite", cache_dir=str(tmp_path)
        )
        miss = ShortestPathOracle.build(g, config=cfg)
        assert miss.cache_info["status"] in ("miss", "stored")
        hit = ShortestPathOracle.build(g, config=cfg)
        assert hit.cache_info["status"] == "hit"
        assert np.array_equal(hit.distances([0, 4]), miss.distances([0, 4]))
        assert isinstance(hit.augmentation, HopsetAugmentation)


class TestReweight:
    def test_replay_preserves_bound_and_pivots(self, rng):
        g = expander_digraph(140, rng, degree=5)
        oracle = ShortestPathOracle.build(g, mode="approx", eps=0.1)
        w2 = g.weight * 1.5
        swapped = oracle.with_new_weights(w2)
        assert swapped.augmentation.method == "hopset"
        assert (
            swapped.augmentation.weights_epoch
            == oracle.augmentation.weights_epoch + 1
        )
        assert swapped.cache_info.get("status") == "reweight"
        for a, b in zip(
            swapped.augmentation.hopset.pivots, oracle.augmentation.hopset.pivots
        ):
            assert np.array_equal(a, b), "replay must reuse the pivot sample"
        g2 = WeightedDigraph(g.n, g.src, g.dst, w2)
        exact = _exact_distances(g2, [7])
        got = swapped.distances([7])[0]
        fin = np.isfinite(exact[0])
        assert (got[fin] >= exact[0][fin] - 1e-9).all()
        assert (got[fin] <= 1.1 * exact[0][fin] + 1e-9).all()

    def test_replay_hopset_direct(self, rng):
        g = expander_digraph(110, rng, degree=5)
        prior = build_hopset(g, eps=0.2, seed=4)
        g2 = WeightedDigraph(g.n, g.src, g.dst, g.weight * 2.0)
        replayed = replay_hopset(g2, prior)
        assert replayed.eps == prior.eps
        assert replayed.seed == prior.seed
        for a, b in zip(replayed.pivots, prior.pivots):
            assert np.array_equal(a, b)

    def test_incremental_requires_same_skeleton(self, rng):
        g = expander_digraph(100, rng, degree=5)
        oracle = ShortestPathOracle.build(g, mode="approx", eps=0.2)
        g2 = expander_digraph(100, np.random.default_rng(999), degree=5)
        with pytest.raises(ValueError):
            oracle.with_new_weights(graph=g2, reweight="incremental")


class TestCLI:
    def test_stats_prints_mode_eps_and_size(self, capsys):
        from repro.cli import main

        rc = main([
            "stats", "--family", "expander", "--n", "150",
            "--mode", "approx", "--eps", "0.5", "--sources", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mode=approx" in out
        assert "eps=0.5" in out
        assert "hopset_edges=" in out

    def test_unknown_mode_error_reaches_cli(self):
        from repro.cli import main

        with pytest.raises(ValueError) as ei:
            main(["stats", "--family", "grid", "--n", "49", "--mode", "bogus"])
        assert "valid modes: exact, approx, auto" in str(ei.value)
