"""Property-based integration tests: on random graphs of several families,
the full pipeline (decompose → augment → schedule → query) must agree with
independent references — the strongest form of invariants I1–I5."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.digraph import WeightedDigraph
from repro.core.doubling import augment_doubling
from repro.core.leaves_up import augment_leaves_up
from repro.core.scheduler import build_schedule
from repro.core.sssp import measured_diameter, sssp_scheduled
from repro.kernels.floyd_warshall import floyd_warshall
from repro.separators.spectral import decompose_spectral
from repro.workloads.generators import grid_digraph
from repro.separators.grid import decompose_grid

SLOW = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def random_digraphs(draw):
    """Sparse random digraphs, sometimes with (cycle-safe) negative weights,
    sometimes disconnected."""
    n = draw(st.integers(min_value=2, max_value=28))
    m = draw(st.integers(min_value=0, max_value=4 * n))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    negative = draw(st.booleans())
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src != dst
    w = rng.uniform(0.5, 9.5, size=int(keep.sum()))
    g = WeightedDigraph(n, src[keep], dst[keep], w)
    if negative:
        p = rng.uniform(0, 4, size=n)
        g = WeightedDigraph(n, g.src, g.dst, g.weight + p[g.src] - p[g.dst])
    return g


@settings(**SLOW)
@given(random_digraphs(), st.sampled_from(["leaves_up", "doubling"]))
def test_pipeline_exact_on_random_digraphs(g, method):
    tree = decompose_spectral(g, leaf_size=4)
    tree.validate(g)
    build = augment_leaves_up if method == "leaves_up" else augment_doubling
    aug = build(g, tree, keep_node_distances=False)
    ref = floyd_warshall(g.dense_weights())
    got = sssp_scheduled(aug, list(range(g.n)))
    both_inf = np.isinf(got) & np.isinf(ref)
    assert (both_inf | np.isclose(got, ref, atol=1e-8)).all()
    assert measured_diameter(aug) <= aug.diameter_bound


@settings(**SLOW)
@given(st.integers(min_value=2, max_value=6), st.integers(min_value=2, max_value=6),
       st.integers(min_value=0, max_value=2**32 - 1))
def test_pipeline_exact_on_random_grids(rows, cols, seed):
    rng = np.random.default_rng(seed)
    g = grid_digraph((rows, cols), rng)
    tree = decompose_grid(g, (rows, cols), leaf_size=3)
    a1 = augment_leaves_up(g, tree, keep_node_distances=False)
    a2 = augment_doubling(g, tree, keep_node_distances=False)
    # I3: the two algorithms agree edge-for-edge.
    assert np.array_equal(a1.src, a2.src)
    assert np.allclose(a1.weight, a2.weight)
    # I1/I5 on a sample of sources.
    ref = floyd_warshall(g.dense_weights())
    srcs = list(range(0, g.n, max(1, g.n // 5)))
    got = sssp_scheduled(a1, srcs)
    assert np.allclose(got, ref[srcs])


@settings(**SLOW)
@given(random_digraphs())
def test_schedule_work_invariant(g):
    """I10 on arbitrary graphs: every E⁺ edge is scanned at most twice in
    the middle phases."""
    tree = decompose_spectral(g, leaf_size=4)
    aug = augment_leaves_up(g, tree, keep_node_distances=False)
    schedule = build_schedule(aug)
    if aug.size:
        assert schedule.aug_edge_phase_counts.max() <= 2
    assert schedule.num_phases == 2 * aug.ell + 4 * tree.height + 1


@settings(**SLOW)
@given(random_digraphs())
def test_semiring_variants_on_random_digraphs(g):
    """Bottleneck and minimax algebras stay exact on arbitrary sparse
    digraphs (not just grids)."""
    from repro.core.leaves_up import dense_semiring_weights
    from repro.core.semiring import MAX_MIN, MIN_MAX

    tree = decompose_spectral(g, leaf_size=4)
    for sr in (MAX_MIN, MIN_MAX):
        aug = augment_leaves_up(g, tree, sr, keep_node_distances=False)
        got = sssp_scheduled(aug, list(range(g.n)))
        ref = floyd_warshall(dense_semiring_weights(g, sr), sr)
        assert np.allclose(got, ref)


def test_one_way_grid_unreachable_pairs(rng=np.random.default_rng(5)):
    """Min-plus on a one-orientation grid: plenty of infinite distances,
    which the schedule must preserve exactly."""
    from repro.core.digraph import WeightedDigraph

    base = grid_digraph((8, 8), rng)
    key = np.minimum(base.src, base.dst) * base.n + np.maximum(base.src, base.dst)
    order = np.argsort(key, kind="stable")
    keep = np.zeros(base.m, dtype=bool)
    keep[order[0::2]] = True  # one orientation per undirected edge
    g = WeightedDigraph(base.n, base.src[keep], base.dst[keep], base.weight[keep])
    tree = decompose_grid(g, (8, 8), leaf_size=4)
    aug = augment_leaves_up(g, tree, keep_node_distances=False)
    got = sssp_scheduled(aug, list(range(g.n)))
    ref = floyd_warshall(g.dense_weights())
    both_inf = np.isinf(got) & np.isinf(ref)
    assert (both_inf | np.isclose(got, ref)).all()
    assert np.isinf(ref).any()  # the scenario is non-trivial
