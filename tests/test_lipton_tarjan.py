"""Tests for the Lipton–Tarjan planar separator engine."""

import numpy as np
import pytest

from repro import ShortestPathOracle
from repro.core.digraph import WeightedDigraph
from repro.separators.common import has_two_sides
from repro.separators.lipton_tarjan import (
    _fan_triangulate,
    _level_cut,
    _lt_attempt,
    _tree_cycle,
    decompose_lipton_tarjan,
)
from repro.separators.quality import assess
from repro.workloads.generators import delaunay_digraph, grid_digraph
from tests.conftest import assert_distances_equal, reference_apsp


class TestPhases:
    def test_level_cut_budget(self):
        # 100 vertices spread over 10 equal levels of 10: budget 2√100 = 20.
        level = np.repeat(np.arange(10), 10)
        out = _level_cut(level, 100)
        assert out is not None
        l0, l2, ring = out
        counts = np.bincount(level)
        assert counts[l0] + 2 * (4 - l0) <= 20  # the LT inequality at l1=4
        assert l0 <= 4 < l2

    def test_level_cut_shallow_returns_none(self):
        assert _level_cut(np.array([0, 1, 1]), 3) is None

    def test_fan_triangulate(self):
        tris = _fan_triangulate([[0, 1, 2, 3]])
        assert tris == [(0, 1, 2), (0, 2, 3)]

    def test_fan_triangulate_rejects_repeats(self):
        assert _fan_triangulate([[0, 1, 0, 2]]) is None
        assert _fan_triangulate([[0, 1]]) is None

    def test_tree_cycle(self):
        # Path tree 0-1-2-3 plus non-tree edge (0, 3).
        parent = np.array([-1, 0, 1, 2])
        level = np.array([0, 1, 2, 3])
        cyc = _tree_cycle(0, 3, level, parent)
        assert cyc.tolist() == [0, 1, 2, 3]


class TestAttempt:
    def test_delaunay_direct_attempt(self, rng):
        g, _ = delaunay_digraph(500, rng)
        sep = _lt_attempt(g)
        if sep is not None:  # triangulation-degenerate inputs may bail
            assert sep.shape[0] <= 8 * np.sqrt(g.n)
            assert has_two_sides(g, sep)

    def test_attempt_validates_or_bails(self, rng):
        """On any planar input the attempt either yields a real separator
        or None — never a bogus set."""
        for n in (150, 300):
            g, _ = delaunay_digraph(n, rng)
            sep = _lt_attempt(g)
            if sep is not None:
                assert has_two_sides(g, sep)


class TestEngine:
    def test_grid_decomposition(self, rng):
        g = grid_digraph((16, 16), rng)
        tree = decompose_lipton_tarjan(g)
        tree.validate(g)
        q = assess(tree)
        assert q.mu_hat < 0.8

    def test_delaunay_decomposition(self, rng):
        g, _ = delaunay_digraph(300, rng)
        tree = decompose_lipton_tarjan(g)
        tree.validate(g)

    def test_distances_exact_through_oracle(self, rng):
        g, _ = delaunay_digraph(150, rng)
        oracle = ShortestPathOracle.build(g, separator="lipton_tarjan")
        ref = reference_apsp(g)
        assert_distances_equal(oracle.distances([0, 75, 149]), ref[[0, 75, 149]])

    def test_disconnected_input(self, rng):
        a = grid_digraph((5, 5), rng)
        g = WeightedDigraph(
            50,
            np.concatenate([a.src, a.src + 25]),
            np.concatenate([a.dst, a.dst + 25]),
            np.concatenate([a.weight, a.weight]),
        )
        tree = decompose_lipton_tarjan(g, leaf_size=4)
        tree.validate(g)
