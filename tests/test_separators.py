"""Tests for all separator engines and the shared progress machinery."""

import numpy as np
import pytest

from repro.core.digraph import WeightedDigraph
from repro.core.septree import DecompositionError
from repro.separators.bfs_levels import bfs_levels, largest_component
from repro.separators.common import (
    component_aware,
    ensure_progress,
    has_two_sides,
    neighborhood_separator,
    rest_components,
)
from repro.separators.geometric import decompose_geometric
from repro.separators.planar import decompose_planar
from repro.separators.quality import assess
from repro.separators.spectral import decompose_spectral, fiedler_vector
from repro.separators.treewidth import decompose_treewidth, tree_decomposition_width
from repro.workloads.generators import (
    delaunay_digraph,
    grid_digraph,
    overlap_digraph,
    random_tree_digraph,
)


class TestBfsLevels:
    def test_levels_on_path(self):
        g = WeightedDigraph(4, [0, 1, 2], [1, 2, 3], np.ones(3))
        level, parent = bfs_levels(g, 0)
        assert level.tolist() == [0, 1, 2, 3]
        assert parent.tolist() == [-1, 0, 1, 2]

    def test_unreached_marked(self):
        g = WeightedDigraph(3, [0], [1], [1.0])
        level, _ = bfs_levels(g, 0)
        assert level[2] == -1

    def test_largest_component(self):
        g = WeightedDigraph(5, [0, 1, 3], [1, 2, 4], np.ones(3))
        assert largest_component(g).tolist() == [0, 1, 2]


class TestCommon:
    def test_rest_components(self):
        g = grid_digraph((3, 3), None)
        ncomp, largest = rest_components(g, np.array([1, 4, 7]))  # middle column
        assert ncomp == 2 and largest == 3

    def test_has_two_sides_false_for_corner(self):
        g = grid_digraph((3, 3), None)
        assert not has_two_sides(g, np.array([0]))

    def test_neighborhood_separator_star(self):
        # Star: center 0; N(leaf) = {0} separates that leaf from the rest.
        n = 6
        g = WeightedDigraph(n, [0] * 5 + list(range(1, 6)), list(range(1, 6)) + [0] * 5,
                            np.ones(10))
        sep = neighborhood_separator(g)
        assert sep.tolist() == [0]
        assert has_two_sides(g, sep)

    def test_neighborhood_separator_clique_signals_inseparable(self):
        from repro.core.septree import InseparableSubgraph

        n = 5
        src = [i for i in range(n) for j in range(n) if i != j]
        dst = [j for i in range(n) for j in range(n) if i != j]
        g = WeightedDigraph(n, src, dst, np.ones(len(src)))
        with pytest.raises(InseparableSubgraph):
            neighborhood_separator(g)

    def test_clique_becomes_oversized_leaf(self):
        """A K6 has no separator (paper §1 definition): the builder must
        fall back to an oversized leaf and the pipeline must stay exact."""
        from repro.core.leaves_up import augment_leaves_up
        from repro.core.sssp import sssp_scheduled
        from repro.kernels.floyd_warshall import floyd_warshall

        n = 6
        src = [i for i in range(n) for j in range(n) if i != j]
        dst = [j for i in range(n) for j in range(n) if i != j]
        rng = np.random.default_rng(0)
        g = WeightedDigraph(n, src, dst, rng.uniform(1, 5, len(src)))
        tree = decompose_spectral(g, leaf_size=3)
        assert len(tree.nodes) == 1 and tree.root.is_leaf
        aug = augment_leaves_up(g, tree)
        got = sssp_scheduled(aug, list(range(n)))
        assert np.allclose(got, floyd_warshall(g.dense_weights()))

    def test_ensure_progress_passthrough(self):
        g = grid_digraph((3, 3), None)
        sep = np.array([1, 4, 7])
        assert ensure_progress(g, sep) is sep

    def test_component_aware_empty_on_balanced_disconnect(self):
        g = WeightedDigraph(6, [0, 1, 3, 4], [1, 2, 4, 5], np.ones(4))

        def never(sub, gv):  # should not be called
            raise AssertionError("core called on balanced disconnected input")

        sep = component_aware(never)(g, np.arange(6))
        assert sep.size == 0


class TestEngines:
    def test_planar_on_delaunay(self, rng):
        g, _ = delaunay_digraph(200, rng)
        tree = decompose_planar(g, leaf_size=8)
        tree.validate(g)
        q = assess(tree)
        assert q.mu_hat < 0.85  # sublinear separators
        assert q.height_over_log2n < 3.0

    def test_spectral_on_grid_is_sqrt(self, rng):
        g = grid_digraph((16, 16), rng)
        tree = decompose_spectral(g, leaf_size=8)
        tree.validate(g)
        q = assess(tree)
        assert 0.3 < q.mu_hat < 0.75

    def test_geometric_on_overlap(self, rng):
        g, pts = overlap_digraph(250, rng, degree_target=7.0)
        tree = decompose_geometric(g, pts, leaf_size=8)
        tree.validate(g)

    def test_treewidth_on_tree_gives_tiny_separators(self, rng):
        g = random_tree_digraph(100, rng)
        assert tree_decomposition_width(g) == 1
        tree = decompose_treewidth(g, leaf_size=4)
        tree.validate(g)
        q = assess(tree)
        assert q.max_separator <= 2

    def test_fiedler_vector_signs_split_barbell(self):
        # Two triangles joined by one edge: Fiedler vector separates them.
        src = [0, 1, 2, 3, 4, 5, 2]
        dst = [1, 2, 0, 4, 5, 3, 3]
        g = WeightedDigraph(6, src + dst, dst + src, np.ones(14))
        f = fiedler_vector(g)
        left = set(np.nonzero(f < np.median(f))[0].tolist())
        assert left in ({0, 1, 2}, {3, 4, 5})

    def test_engines_handle_disconnected_input(self, rng):
        a = grid_digraph((4, 4), rng)
        # Two disjoint 4x4 grids in one vertex space.
        g = WeightedDigraph(
            32,
            np.concatenate([a.src, a.src + 16]),
            np.concatenate([a.dst, a.dst + 16]),
            np.concatenate([a.weight, a.weight]),
        )
        for build in (decompose_spectral, decompose_planar):
            tree = build(g, leaf_size=4)
            tree.validate(g)


class TestQuality:
    def test_assess_reports_sane_numbers(self, grid7):
        g, tree = grid7
        q = assess(tree)
        assert q.n == g.n
        assert q.num_nodes == len(tree.nodes)
        assert q.max_leaf_size <= 4
        assert 0 < q.worst_balance <= 1.0
        assert "μ̂" in q.summary()

    def test_single_leaf_tree(self, rng):
        g = grid_digraph((2, 2), rng)
        from repro.separators.grid import decompose_grid

        tree = decompose_grid(g, (2, 2), leaf_size=8)
        q = assess(tree)
        assert q.num_nodes == 1 and q.mu_hat == 0.0
