"""Tests for the consolidated pipeline validator and the batch-query API."""

import numpy as np
import pytest

from repro import ShortestPathOracle
from repro.core.leaves_up import augment_leaves_up
from repro.core.validation import validate_pipeline
from repro.separators.grid import decompose_grid
from repro.workloads.generators import apply_potential_weights, grid_digraph
from tests.conftest import reference_apsp


class TestValidatePipeline:
    def test_healthy_build_passes_everything(self, grid7):
        g, tree = grid7
        aug = augment_leaves_up(g, tree, keep_node_distances=False)
        report = validate_pipeline(aug)
        assert report.ok, report.summary()
        # Small graph: the exhaustive checks ran.
        assert "exhaustive all-pairs == Floyd-Warshall" in report.checks
        assert "ok]" in report.summary()

    def test_negative_weights_pass(self, grid6_negative):
        g, tree = grid6_negative
        aug = augment_leaves_up(g, tree, keep_node_distances=False)
        assert validate_pipeline(aug).ok

    def test_corruption_is_caught_not_raised(self, grid7):
        g, tree = grid7
        aug = augment_leaves_up(g, tree, keep_node_distances=False)
        aug.weight[int(np.argmax(aug.weight))] -= 100.0
        rng = np.random.default_rng(0)
        report = validate_pipeline(aug, edge_sample=aug.size, rng=rng)
        assert not report.ok
        assert not report.checks["E+ soundness & scheduled completeness"]
        assert "FAIL" in report.summary()

    def test_exhaustive_skipped_above_cutoff(self, grid7):
        g, tree = grid7
        aug = augment_leaves_up(g, tree, keep_node_distances=False)
        report = validate_pipeline(aug, exhaustive_cutoff=10)
        assert "exhaustive all-pairs == Floyd-Warshall" not in report.checks
        assert report.ok

    def test_rejects_boolean(self, grid7):
        from repro.core.reach import reachability_augmentation

        g, tree = grid7
        aug = reachability_augmentation(g, tree)
        with pytest.raises(ValueError):
            validate_pipeline(aug)

    def test_oracle_facade_hook(self, grid7):
        g, tree = grid7
        oracle = ShortestPathOracle.build(g, tree)
        assert oracle.validate().ok


class TestBatchQueries:
    @pytest.fixture
    def oracle(self, grid7):
        g, tree = grid7
        return ShortestPathOracle.build(g, tree)

    def test_distance_matrix(self, oracle):
        ref = reference_apsp(oracle.graph)
        sub = oracle.distance_matrix([0, 10], [5, 6, 7])
        assert sub.shape == (2, 3)
        assert np.allclose(sub, ref[np.ix_([0, 10], [5, 6, 7])])

    def test_nearest_source_assignment(self, oracle):
        ref = reference_apsp(oracle.graph)
        srcs = [0, 24, 48]
        assigned, dist = oracle.nearest_source(srcs)
        want = ref[srcs].min(axis=0)
        assert np.allclose(dist, want)
        for v in range(oracle.graph.n):
            assert np.isclose(ref[assigned[v], v], dist[v])

    def test_nearest_source_unreachable(self, rng):
        from repro.core.digraph import WeightedDigraph
        from repro.separators.spectral import decompose_spectral

        # Directed line: nothing reaches vertex 0 except itself.
        g = WeightedDigraph(4, [0, 1, 2], [1, 2, 3], np.ones(3))
        oracle = ShortestPathOracle.build(g, decompose_spectral(g, leaf_size=2))
        assigned, dist = oracle.nearest_source([1])
        assert assigned[0] == -1 and np.isinf(dist[0])
        assert assigned[3] == 1 and dist[3] == 2.0
