"""Unit tests for the weighted digraph substrate."""

import numpy as np
import pytest

from repro.core.digraph import WeightedDigraph


def test_basic_construction():
    g = WeightedDigraph(3, [0, 1], [1, 2], [2.5, 1.0])
    assert g.n == 3 and g.m == 2
    assert g.weight.dtype == np.float64


def test_unit_weights_default():
    g = WeightedDigraph(3, [0, 1], [1, 2])
    assert (g.weight == 1.0).all()


def test_rejects_out_of_range_vertices():
    with pytest.raises(ValueError):
        WeightedDigraph(2, [0, 1], [1, 2])
    with pytest.raises(ValueError):
        WeightedDigraph(2, [-1], [0])


def test_rejects_mismatched_arrays():
    with pytest.raises(ValueError):
        WeightedDigraph(3, [0, 1], [1])
    with pytest.raises(ValueError):
        WeightedDigraph(3, [0, 1], [1, 2], [1.0])


def test_from_edges_mixed_tuples():
    g = WeightedDigraph.from_edges(3, [(0, 1), (1, 2, 5.0)])
    assert g.m == 2
    assert g.weight.tolist() == [1.0, 5.0]


def test_out_in_adjacency(tiny_line):
    g = tiny_line
    assert g.out_adj.neighbors(0).tolist() == [1]
    assert g.out_adj.neighbor_weights(1).tolist() == [2.0]
    assert g.in_adj.neighbors(3).tolist() == [2]
    assert g.out_adj.degree(3) == 0
    assert g.in_adj.degree(0) == 0


def test_skeleton_is_symmetric(tiny_line):
    sk = tiny_line.skeleton
    # Every directed edge appears in both orientations in the skeleton.
    assert sk.degree(0) == 1 and sk.degree(1) == 2
    assert set(sk.neighbors(1).tolist()) == {0, 2}


def test_dense_weights_parallel_edges_take_min():
    g = WeightedDigraph(2, [0, 0], [1, 1], [5.0, 3.0])
    w = g.dense_weights()
    assert w[0, 1] == 3.0
    assert w[0, 0] == 0.0 and w[1, 0] == np.inf


def test_induced_subgraph_relabeling():
    g = WeightedDigraph(5, [0, 1, 3, 4], [1, 3, 4, 0], [1, 2, 3, 4])
    sub, mapping = g.induced_subgraph(np.array([1, 3, 4]))
    assert mapping.tolist() == [1, 3, 4]
    assert sub.n == 3 and sub.m == 2  # edges 1->3 and 3->4 survive
    # Local edges use local ids.
    assert set(zip(sub.src.tolist(), sub.dst.tolist())) == {(0, 1), (1, 2)}


def test_reverse_swaps_endpoints(tiny_line):
    r = tiny_line.reverse()
    assert r.out_adj.neighbors(3).tolist() == [2]
    assert r.out_adj.degree(0) == 0


def test_with_extra_edges(tiny_line):
    g2 = tiny_line.with_extra_edges([3], [0], [9.0])
    assert g2.m == tiny_line.m + 1
    assert g2.weight[-1] == 9.0
    # Original untouched.
    assert tiny_line.m == 3


def test_networkx_roundtrip(tiny_line):
    nxg = tiny_line.to_networkx()
    back = WeightedDigraph.from_networkx(nxg)
    assert back.n == tiny_line.n and back.m == tiny_line.m
    assert np.allclose(back.dense_weights(), tiny_line.dense_weights())


def test_from_networkx_undirected_doubles_edges():
    import networkx as nx

    und = nx.Graph()
    und.add_nodes_from(range(3))
    und.add_edge(0, 1, weight=2.0)
    g = WeightedDigraph.from_networkx(und)
    assert g.m == 2
    w = g.dense_weights()
    assert w[0, 1] == 2.0 and w[1, 0] == 2.0


def test_from_dense_roundtrip(rng):
    a = np.full((4, 4), np.inf)
    np.fill_diagonal(a, 0.0)
    a[0, 2] = 1.5
    a[3, 1] = -2.0
    g = WeightedDigraph.from_dense(a)
    assert g.m == 2
    assert np.allclose(g.dense_weights(), a)


def test_to_scipy_csr_min_collapses_parallel():
    g = WeightedDigraph(2, [0, 0], [1, 1], [5.0, 3.0])
    m = g.to_scipy_csr()
    assert m[0, 1] == 3.0


def test_edge_membership():
    g = WeightedDigraph(4, [0, 1, 2], [1, 2, 3], [1, 1, 1])
    mask = g.edge_membership(np.array([0, 1, 2]))
    assert mask.tolist() == [True, True, False]


def test_has_negative_weights(tiny_line):
    assert not tiny_line.has_negative_weights()
    g = WeightedDigraph(2, [0], [1], [-1.0])
    assert g.has_negative_weights()
