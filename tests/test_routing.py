"""Tests for the recursive k-pair distance oracle (paper §6 routing-table
analog)."""

import numpy as np
import pytest

from repro.apps.routing import DistanceOracle
from repro.core.leaves_up import augment_leaves_up
from repro.core.semiring import BOOLEAN
from repro.separators.grid import decompose_grid
from repro.separators.spectral import decompose_spectral
from repro.workloads.generators import (
    apply_potential_weights,
    delaunay_digraph,
    grid_digraph,
)
from tests.conftest import reference_apsp


class TestDistanceOracle:
    @pytest.mark.parametrize("method", ["leaves_up", "doubling"])
    def test_all_pairs_small_grid(self, rng, method):
        g = grid_digraph((6, 6), rng)
        tree = decompose_grid(g, (6, 6), leaf_size=4)
        oracle = DistanceOracle.build(g, tree, method=method)
        ref = reference_apsp(g)
        for u in range(g.n):
            for v in range(g.n):
                assert np.isclose(oracle.distance(u, v), ref[u, v])

    def test_negative_weights(self, grid6_negative):
        g, tree = grid6_negative
        oracle = DistanceOracle.build(g, tree)
        ref = reference_apsp(g)
        rng = np.random.default_rng(0)
        for _ in range(150):
            u, v = int(rng.integers(g.n)), int(rng.integers(g.n))
            assert np.isclose(oracle.distance(u, v), ref[u, v])

    def test_unreachable_pairs(self, rng):
        from repro.core.digraph import WeightedDigraph

        # Two disjoint directed lines.
        g = WeightedDigraph(8, [0, 1, 2, 4, 5, 6], [1, 2, 3, 5, 6, 7], np.ones(6))
        tree = decompose_spectral(g, leaf_size=3)
        oracle = DistanceOracle.build(g, tree)
        assert oracle.distance(0, 3) == 3.0
        assert np.isinf(oracle.distance(0, 4))
        assert np.isinf(oracle.distance(3, 0))  # directed line, no way back

    def test_batch_pairs(self, delaunay80):
        g, tree, _ = delaunay80
        oracle = DistanceOracle.build(g, tree)
        ref = reference_apsp(g)
        rng = np.random.default_rng(4)
        pairs = [(int(rng.integers(g.n)), int(rng.integers(g.n))) for _ in range(100)]
        got = oracle.distances(pairs)
        want = np.array([ref[u, v] for u, v in pairs])
        both_inf = np.isinf(got) & np.isinf(want)
        assert (both_inf | np.isclose(got, want)).all()

    def test_boolean_semiring_pairs(self, rng):
        from repro.workloads.generators import gnm_digraph

        g = gnm_digraph(40, 70, rng)
        tree = decompose_spectral(g, leaf_size=4)
        oracle = DistanceOracle.build(g, tree, semiring=BOOLEAN)
        import networkx as nx

        nxg = g.to_networkx()
        for u in (0, 5, 17):
            desc = nx.descendants(nxg, u)
            for v in (1, 20, 39):
                want = v in desc or v == u
                assert bool(oracle.distance(u, v)) == want

    def test_requires_kept_matrices(self, grid7):
        g, tree = grid7
        aug = augment_leaves_up(g, tree, keep_node_distances=False)
        with pytest.raises(ValueError):
            DistanceOracle(aug)

    def test_self_distance_is_zero(self, grid7):
        g, tree = grid7
        oracle = DistanceOracle.build(g, tree)
        for v in (0, 24, 48):
            assert oracle.distance(v, v) == 0.0


class TestPathExtraction:
    def test_paths_are_optimal(self, grid6_negative):
        from repro.core.paths import path_weight

        g, tree = grid6_negative
        oracle = DistanceOracle.build(g, tree)
        ref = reference_apsp(g)
        rng = np.random.default_rng(1)
        for _ in range(60):
            u, v = int(rng.integers(g.n)), int(rng.integers(g.n))
            p = oracle.path(u, v)
            assert p is not None and p[0] == u and p[-1] == v
            assert np.isclose(path_weight(g, p), ref[u, v])

    def test_unreachable_returns_none(self):
        from repro.core.digraph import WeightedDigraph

        g = WeightedDigraph(4, [0, 1], [1, 2], np.ones(2))
        tree = decompose_spectral(g, leaf_size=2)
        oracle = DistanceOracle.build(g, tree)
        assert oracle.path(0, 3) is None
        assert oracle.path(2, 0) is None

    def test_trivial_path(self, grid7):
        g, tree = grid7
        oracle = DistanceOracle.build(g, tree)
        assert oracle.path(5, 5) == [5]

    def test_zero_weight_edges_terminate(self):
        from repro.core.digraph import WeightedDigraph
        from repro.core.paths import path_weight

        # Zero 2-cycle next to the optimal route.
        g = WeightedDigraph(4, [0, 1, 2, 1, 3], [1, 2, 1, 3, 0], [1.0, 0.0, 0.0, 1.0, 5.0])
        tree = decompose_spectral(g, leaf_size=2)
        oracle = DistanceOracle.build(g, tree)
        p = oracle.path(0, 3)
        assert p is not None
        assert np.isclose(path_weight(g, p), 2.0)

    def test_rejects_boolean_semiring(self, rng):
        from repro.core.semiring import BOOLEAN
        from repro.workloads.generators import gnm_digraph

        g = gnm_digraph(30, 60, rng)
        tree = decompose_spectral(g, leaf_size=4)
        oracle = DistanceOracle.build(g, tree, semiring=BOOLEAN)
        with pytest.raises(ValueError):
            oracle.path(0, 1)
