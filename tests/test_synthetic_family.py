"""Tests for the separator-programmable synthetic family."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.leaves_up import augment_leaves_up
from repro.core.sssp import measured_diameter, sssp_scheduled
from repro.separators.quality import assess
from repro.workloads.synthetic import separator_programmable_family
from tests.conftest import assert_distances_equal, reference_apsp


class TestConstruction:
    @pytest.mark.parametrize("mu", [0.0, 1 / 3, 0.5, 0.75])
    def test_tree_is_valid_decomposition(self, rng, mu):
        g, tree = separator_programmable_family(250, mu, rng)
        tree.validate(g)

    @pytest.mark.parametrize("mu", [0.2, 1 / 3, 0.5, 0.7])
    def test_measured_mu_tracks_programmed(self, rng, mu):
        g, tree = separator_programmable_family(600, mu, rng)
        q = assess(tree)
        assert abs(q.mu_hat - mu) < 0.12, q.summary()

    def test_separator_sizes_formula(self, rng):
        g, tree = separator_programmable_family(400, 0.5, rng)
        for t in tree.nodes:
            if t.is_leaf:
                continue
            k = t.size
            assert t.separator.shape[0] == min(k - 2, max(1, int(round(k ** 0.5))))

    def test_rejects_bad_mu(self, rng):
        with pytest.raises(ValueError):
            separator_programmable_family(100, 1.0, rng)
        with pytest.raises(ValueError):
            separator_programmable_family(0, 0.5, rng)

    def test_connected_enough(self, rng):
        """The leaf spanning structure plus boundary hooks keeps most of
        the graph mutually reachable."""
        g, tree = separator_programmable_family(300, 0.5, rng)
        ref = reference_apsp(g)
        assert np.isfinite(ref).mean() > 0.9


class TestPipeline:
    @pytest.mark.parametrize("mu", [0.0, 1 / 3, 0.5, 0.75])
    def test_distances_exact(self, rng, mu):
        g, tree = separator_programmable_family(200, mu, rng)
        aug = augment_leaves_up(g, tree, keep_node_distances=False)
        got = sssp_scheduled(aug, list(range(0, g.n, 17)))
        ref = reference_apsp(g)[list(range(0, g.n, 17))]
        assert_distances_equal(got, ref)

    @pytest.mark.parametrize("mu", [1 / 3, 0.6])
    def test_diameter_bound(self, rng, mu):
        g, tree = separator_programmable_family(200, mu, rng)
        aug = augment_leaves_up(g, tree, keep_node_distances=False)
        assert measured_diameter(aug) <= aug.diameter_bound


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=20, max_value=200),
    st.floats(min_value=0.0, max_value=0.85),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_family_property(n, mu, seed):
    """For any (n, μ, seed): the emitted tree validates against the emitted
    graph and the pipeline answers one source exactly."""
    from repro.kernels.floyd_warshall import floyd_warshall

    rng = np.random.default_rng(seed)
    g, tree = separator_programmable_family(n, mu, rng)
    tree.validate(g)
    aug = augment_leaves_up(g, tree, keep_node_distances=False)
    got = sssp_scheduled(aug, 0)
    ref = floyd_warshall(g.dense_weights())[0]
    both_inf = np.isinf(got) & np.isinf(ref)
    assert (both_inf | np.isclose(got, ref)).all()
