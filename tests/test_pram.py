"""Tests for the PRAM work/depth ledger, primitives, and executors."""

import numpy as np
import pytest

from repro.pram.executor import ProcessExecutor, SerialExecutor, ThreadExecutor, get_executor
from repro.pram.machine import NULL_LEDGER, Ledger, log2ceil
from repro.pram.primitives import (
    list_rank,
    pairwise_min,
    parallel_reduce,
    pointer_jump_roots,
    prefix_sum,
)


class TestLedger:
    def test_sequential_charges_add(self):
        led = Ledger()
        led.charge(10, 2, label="a")
        led.charge(5, 3, label="a")
        assert led.work == 15 and led.depth == 5
        assert led.breakdown()["a"]["calls"] == 2

    def test_parallel_region_brent(self):
        led = Ledger()
        with led.parallel("phase") as region:
            b1, b2 = region.branch(), region.branch()
            b1.charge(100, 7)
            b2.charge(50, 9)
        assert led.work == 150  # sum of work
        assert led.depth == 9  # max of depth

    def test_nested_parallel(self):
        led = Ledger()
        with led.parallel() as outer:
            b = outer.branch()
            with b.parallel() as inner:
                inner.branch().charge(1, 1)
                inner.branch().charge(1, 5)
        assert led.work == 2 and led.depth == 5

    def test_merge_parallel(self):
        led = Ledger()
        b1, b2 = Ledger(), Ledger()
        b1.charge(3, 1, label="x")
        b2.charge(4, 2, label="x")
        led.merge_parallel([b1, b2], label="lvl")
        assert led.work == 7 and led.depth == 2
        assert led.breakdown()["x"]["work"] == 7

    def test_null_ledger_ignores(self):
        before = (NULL_LEDGER.work, NULL_LEDGER.depth)
        NULL_LEDGER.charge(1e9, 1e9)
        assert (NULL_LEDGER.work, NULL_LEDGER.depth) == before
        assert NULL_LEDGER.spawn() is NULL_LEDGER

    def test_log2ceil(self):
        assert log2ceil(1) == 1 and log2ceil(2) == 1
        assert log2ceil(8) == 3 and log2ceil(9) == 4


class TestPrimitives:
    def test_reduce_charges_linear_work_log_depth(self):
        led = Ledger()
        total = parallel_reduce(np.arange(16), ledger=led)
        assert total == 120
        assert led.work == 16 and led.depth == 4

    def test_prefix_sum_exclusive(self):
        led = Ledger()
        out = prefix_sum(np.array([3, 1, 4, 1]), ledger=led)
        assert out.tolist() == [0, 3, 4, 8]
        assert led.work == 8  # 2n for up+down sweep

    def test_pairwise_min_depth_one(self):
        led = Ledger()
        out = pairwise_min(np.array([1.0, 5.0]), np.array([2.0, 2.0]), ledger=led)
        assert out.tolist() == [1.0, 2.0]
        assert led.depth == 1

    def test_pointer_jump_roots(self):
        # Forest: 0->0 (root), 1->0, 2->1, 3->3 (root), 4->3.
        parent = np.array([0, 0, 1, 3, 3])
        roots = pointer_jump_roots(parent)
        assert roots.tolist() == [0, 0, 0, 3, 3]

    def test_list_rank(self):
        # Two lists: 0->1->2->end; 3->end.
        nxt = np.array([1, 2, -1, -1])
        rank = list_rank(nxt)
        assert rank.tolist() == [2, 1, 0, 0]


def _square(x):
    return x * x


class TestExecutors:
    @pytest.mark.parametrize("exe", [SerialExecutor(), ThreadExecutor(2)])
    def test_map_preserves_order(self, exe):
        assert exe.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]
        exe.close()

    @pytest.mark.multiproc
    def test_process_executor(self):
        exe = ProcessExecutor(2)
        try:
            assert exe.map(_square, [3, 5]) == [9, 25]
        finally:
            exe.close()

    @pytest.mark.multiproc
    def test_shm_executor_spec(self):
        from repro.pram.executor import ShmExecutor

        exe = get_executor("shm:2")
        try:
            assert isinstance(exe, ShmExecutor)
            assert exe.workers == 2 and exe.uses_shared_memory
            assert exe.map(_square, [3, 5]) == [9, 25]
        finally:
            exe.close()

    def test_get_executor_specs(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        t = get_executor("thread:2")
        assert isinstance(t, ThreadExecutor) and t.workers == 2
        t.close()
        assert isinstance(get_executor(None), SerialExecutor)
        with pytest.raises(ValueError):
            get_executor("gpu")

    def test_get_executor_passthrough(self):
        exe = SerialExecutor()
        assert get_executor(exe) is exe


class TestBrentSimulation:
    def test_curve_shape(self):
        from repro.pram.simulation import brent_curve

        led = Ledger()
        led.charge(work=1e6, depth=100.0)
        curve = brent_curve(led)
        assert curve.parallelism == 1e6 / 100.0
        # Monotone nonincreasing time, speedup approaching parallelism.
        assert (np.diff(curve.time) <= 1e-9).all()
        assert curve.speedup[-1] <= curve.parallelism + 1.0
        assert curve.speedup[0] == pytest.approx(1.0)

    def test_saturation(self):
        from repro.pram.simulation import brent_curve

        led = Ledger()
        led.charge(work=1e6, depth=100.0)
        curve = brent_curve(led, processors=[1, 10, 100, 1000, 10000, 100000])
        p_half = curve.saturation_processors(0.5)
        # Half of 10,000x parallelism needs ~10,000 processors (Brent).
        assert 1000 <= p_half <= 100000

    def test_requires_work(self):
        from repro.pram.simulation import brent_curve

        with pytest.raises(ValueError):
            brent_curve(Ledger())

    def test_on_real_pipeline(self, rng):
        from repro.core.leaves_up import augment_leaves_up
        from repro.pram.simulation import brent_curve
        from repro.separators.grid import decompose_grid
        from repro.workloads.generators import grid_digraph

        g = grid_digraph((10, 10), rng)
        tree = decompose_grid(g, (10, 10), leaf_size=4)
        led = Ledger()
        augment_leaves_up(g, tree, ledger=led, keep_node_distances=False)
        curve = brent_curve(led)
        assert curve.parallelism > 10  # plenty of model parallelism


class TestPramModel:
    def test_crcw_flattens_reduction_depth(self):
        from repro.pram.machine import pram_model, reduce_depth, set_pram_model

        assert pram_model() == "EREW"
        assert reduce_depth(1024) == 10
        try:
            set_pram_model("CRCW")
            assert reduce_depth(1024) == 1.0
        finally:
            set_pram_model("EREW")

    def test_invalid_model_rejected(self):
        from repro.pram.machine import set_pram_model

        with pytest.raises(ValueError):
            set_pram_model("QUANTUM")

    def test_model_changes_measured_depth(self, rng):
        from repro.core.leaves_up import augment_leaves_up
        from repro.pram.machine import set_pram_model
        from repro.separators.grid import decompose_grid
        from repro.workloads.generators import grid_digraph

        g = grid_digraph((8, 8), rng)
        tree = decompose_grid(g, (8, 8), leaf_size=4)
        led_erew = Ledger()
        augment_leaves_up(g, tree, ledger=led_erew, keep_node_distances=False)
        try:
            set_pram_model("CRCW")
            led_crcw = Ledger()
            augment_leaves_up(g, tree, ledger=led_crcw, keep_node_distances=False)
        finally:
            set_pram_model("EREW")
        assert led_crcw.depth < led_erew.depth
        assert led_crcw.work == led_erew.work  # work is model-independent
