"""Tests for the right-shortcut machinery of Theorem 3.1's proof (Fig. 2),
including property-based checks over arbitrary level sequences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shortcuts import is_bitonic_with_pairs, right_shortcut, shortcut_chain


class TestRightShortcut:
    def test_rule_i_same_level_plateau(self):
        # levels: 2 3 2 — rule (i): furthest same-level with no dip.
        assert right_shortcut(np.array([2, 3, 2]), 0) == 2

    def test_rule_i_takes_furthest(self):
        assert right_shortcut(np.array([1, 2, 1, 3, 1, 0]), 0) == 4

    def test_rule_ii_first_drop(self):
        # No same-level repetition; next lower level is the shortcut.
        assert right_shortcut(np.array([2, 3, 1]), 0) == 2

    def test_rule_iii_rise(self):
        # All later levels higher: rise to the furthest valid target.
        assert right_shortcut(np.array([0, 3, 2]), 0) == 2

    def test_undefined_treated_as_infinity(self):
        # -1 (undefined) never blocks a plateau.
        assert right_shortcut(np.array([2, -1, 2]), 0) == 2

    def test_requires_labeled_start(self):
        with pytest.raises(ValueError):
            right_shortcut(np.array([-1, 2]), 0)


class TestChain:
    def test_empty_when_unlabeled(self):
        assert shortcut_chain(np.array([-1, -1])) == []

    def test_single_label(self):
        assert shortcut_chain(np.array([-1, 3, -1])) == [1]

    def test_descend_then_ascend(self):
        levels = np.array([3, 2, 1, 0, 1, 2, 3])
        chain = shortcut_chain(levels)
        assert chain[0] == 0 and chain[-1] == 6
        assert is_bitonic_with_pairs([levels[i] for i in chain])

    def test_monotone_descent(self):
        levels = np.array([5, 4, 3, 2, 1, 0])
        chain = shortcut_chain(levels)
        assert chain == [0, 1, 2, 3, 4, 5]

    def test_bound_on_grid_walk(self, grid7):
        g, tree = grid7
        rng = np.random.default_rng(5)
        # Random walks through the grid.
        for _ in range(20):
            walk = [int(rng.integers(g.n))]
            adj = g.out_adj
            for _ in range(40):
                nbrs = adj.neighbors(walk[-1])
                if nbrs.size == 0:
                    break
                walk.append(int(nbrs[rng.integers(nbrs.size)]))
            levels = tree.vertex_level[np.array(walk)]
            chain = shortcut_chain(levels)
            if not chain:
                continue
            assert len(chain) - 1 <= 4 * tree.height + 1
            assert is_bitonic_with_pairs([levels[i] for i in chain])


@settings(max_examples=300, deadline=None)
@given(st.lists(st.integers(min_value=-1, max_value=6), min_size=1, max_size=40))
def test_chain_properties_hold_for_any_level_sequence(levels):
    """For every level sequence (with d_G = max level): the chain exists,
    progresses strictly, ends at the last labeled index, is bitonic with
    ≤2-runs, and obeys the 4·d_G + 1 length bound."""
    arr = np.array(levels)
    chain = shortcut_chain(arr)
    labeled = np.nonzero(arr >= 0)[0]
    if labeled.size == 0:
        assert chain == []
        return
    assert chain[0] == labeled[0] and chain[-1] == labeled[-1]
    assert all(a < b for a, b in zip(chain, chain[1:]))
    chain_levels = [int(arr[i]) for i in chain]
    assert is_bitonic_with_pairs(chain_levels)
    d_g = int(arr.max())
    assert len(chain) - 1 <= 4 * d_g + 1


class TestBitonicChecker:
    def test_accepts_valley(self):
        assert is_bitonic_with_pairs([3, 2, 2, 1, 1, 2, 3])

    def test_rejects_three_run(self):
        assert not is_bitonic_with_pairs([2, 2, 2])

    def test_rejects_second_descent(self):
        assert not is_bitonic_with_pairs([2, 1, 2, 1])

    def test_empty_and_single(self):
        assert is_bitonic_with_pairs([])
        assert is_bitonic_with_pairs([5])
