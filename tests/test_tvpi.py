"""Tests for the two-variable linear-inequality application (paper §1,
Cohen–Megiddo)."""

import numpy as np
import pytest

from repro.apps.tvpi import (
    DifferenceConstraint,
    UTVPIConstraint,
    difference_graph,
    double_tree,
    interaction_graph,
    solve_difference_system,
    solve_utvpi_system,
    utvpi_graph,
)
from repro.core.negcycle import cycle_weight
from repro.separators.spectral import decompose_spectral


def grid_difference_system(side, rng, lo=0.5, hi=2.0):
    cons = []
    for r in range(side):
        for c in range(side):
            v = r * side + c
            for w in ((v, v + 1) if c + 1 < side else ()) , ((v, v + side) if r + 1 < side else ()):
                if w:
                    a, b = w
                    cons.append(DifferenceConstraint(a, b, float(rng.uniform(lo, hi))))
                    cons.append(DifferenceConstraint(b, a, float(rng.uniform(lo, hi))))
    return side * side, cons


class TestDifference:
    def test_feasible_solution_satisfies_all(self, rng):
        n, cons = grid_difference_system(6, rng)
        res = solve_difference_system(n, cons)
        assert res.feasible
        assert res.check(cons)

    def test_infeasible_certificate(self, rng):
        n, cons = grid_difference_system(4, rng)
        cons = cons + [DifferenceConstraint(0, 1, -9.0), DifferenceConstraint(1, 0, -9.0)]
        res = solve_difference_system(n, cons)
        assert not res.feasible and res.solution is None
        g = difference_graph(n, cons)
        assert cycle_weight(g, res.certificate) < 0

    def test_tight_chain(self):
        # x1 <= x0 + 1, x2 <= x1 + 1, x0 <= x2 - 2 forces equality: feasible.
        cons = [
            DifferenceConstraint(0, 1, 1.0),
            DifferenceConstraint(1, 2, 1.0),
            DifferenceConstraint(2, 0, -2.0),
        ]
        res = solve_difference_system(3, cons)
        assert res.feasible and res.check(cons)
        x = res.solution
        assert np.isclose(x[1] - x[0], 1.0) and np.isclose(x[2] - x[1], 1.0)

    def test_barely_infeasible(self):
        cons = [
            DifferenceConstraint(0, 1, 1.0),
            DifferenceConstraint(1, 0, -1.5),
        ]
        assert not solve_difference_system(2, cons).feasible

    def test_with_explicit_tree(self, rng):
        n, cons = grid_difference_system(5, rng)
        g = difference_graph(n, cons)
        tree = decompose_spectral(g, leaf_size=4)
        res = solve_difference_system(n, cons, tree)
        assert res.feasible and res.check(cons)


class TestUTVPI:
    def test_mixed_system(self):
        cons = [
            UTVPIConstraint(1, 0, 1, 1, 4.0),     # x0 + x1 <= 4
            UTVPIConstraint(-1, 0, -1, 1, -4.0),  # x0 + x1 >= 4 (tight)
            UTVPIConstraint(1, 0, -1, 1, 0.0),    # x0 <= x1
            UTVPIConstraint(-1, 0, 1, 1, 0.0),    # x1 <= x0
        ]
        res = solve_utvpi_system(2, cons)
        assert res.feasible and res.check(cons)
        assert np.isclose(res.solution[0] + res.solution[1], 4.0)
        assert np.isclose(res.solution[0], res.solution[1])

    def test_unary_bounds(self):
        cons = [
            UTVPIConstraint(1, 0, 0, -1, 3.0),   # x0 <= 3
            UTVPIConstraint(-1, 0, 0, -1, -3.0), # x0 >= 3
        ]
        res = solve_utvpi_system(1, cons)
        assert res.feasible and np.isclose(res.solution[0], 3.0)

    def test_infeasible_sum(self):
        cons = [
            UTVPIConstraint(1, 0, 1, 1, 1.0),
            UTVPIConstraint(-1, 0, 0, -1, -1.0),  # x0 >= 1
            UTVPIConstraint(-1, 1, 0, -1, -1.0),  # x1 >= 1
        ]
        res = solve_utvpi_system(2, cons)
        assert not res.feasible

    def test_invalid_coefficients_raise(self):
        with pytest.raises(ValueError):
            UTVPIConstraint(2, 0, 1, 1, 0.0)
        with pytest.raises(ValueError):
            UTVPIConstraint(1, 0, 3, 1, 0.0)

    def test_doubled_graph_structure(self):
        cons = [UTVPIConstraint(1, 0, 1, 1, 2.0)]
        g = utvpi_graph(2, cons)
        assert g.n == 4 and g.m == 2

    def test_double_tree_valid(self, rng):
        n, cons = grid_difference_system(4, rng)
        base = interaction_graph(n, cons)
        tree = decompose_spectral(base, leaf_size=4)
        lifted = double_tree(tree)
        assert lifted.n == 2 * tree.n
        assert lifted.height == tree.height
        # Lifted tree is structurally valid for the doubled UTVPI graph of a
        # same-interaction system.
        ucons = [UTVPIConstraint(1, c.i, -1, c.j, c.c) for c in cons]
        ug = utvpi_graph(n, ucons)
        lifted.validate(ug)


class TestInteractionGraph:
    def test_skips_unary(self):
        cons = [UTVPIConstraint(1, 0, 0, -1, 1.0), UTVPIConstraint(1, 0, 1, 1, 1.0)]
        g = interaction_graph(2, cons)
        assert g.m == 2  # one undirected pair, both orientations
