"""Tests for the SCC / condensation substrate."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.digraph import WeightedDigraph
from repro.core.scc import (
    condensation,
    condensation_closure,
    reachability_via_condensation,
    strongly_connected_components,
)
from repro.workloads.generators import gnm_digraph, grid_digraph


def scipy_scc(g):
    import scipy.sparse as sp
    from scipy.sparse.csgraph import connected_components

    adj = sp.csr_matrix((np.ones(g.m), (g.src, g.dst)), shape=(g.n, g.n))
    return connected_components(adj, directed=True, connection="strong")


class TestTarjan:
    def test_cycle_is_one_component(self):
        g = WeightedDigraph(4, [0, 1, 2, 3], [1, 2, 3, 0], np.ones(4))
        ncomp, labels = strongly_connected_components(g)
        assert ncomp == 1 and np.unique(labels).size == 1

    def test_dag_has_singletons(self, tiny_line):
        ncomp, labels = strongly_connected_components(tiny_line)
        assert ncomp == 4
        assert np.unique(labels).size == 4

    def test_matches_scipy_on_random(self, rng):
        for _ in range(10):
            g = gnm_digraph(60, 150, rng)
            n1, l1 = strongly_connected_components(g)
            n2, l2 = scipy_scc(g)
            assert n1 == n2
            # Same partition (labels up to renaming).
            for c in range(n1):
                members = np.nonzero(l1 == c)[0]
                assert np.unique(l2[members]).size == 1

    def test_labels_reverse_topological(self, rng):
        g = gnm_digraph(50, 120, rng)
        ncomp, labels, ds, dd = condensation(g)
        # Every condensation edge descends in label.
        assert (labels[g.src][labels[g.src] != labels[g.dst]] >
                labels[g.dst][labels[g.src] != labels[g.dst]]).all()
        assert (ds > dd).all()

    def test_bidirected_grid_single_component(self, rng):
        g = grid_digraph((5, 5), rng)
        ncomp, _ = strongly_connected_components(g)
        assert ncomp == 1


class TestClosure:
    def test_line_dag(self, tiny_line):
        ncomp, labels, ds, dd = condensation(tiny_line)
        clo = condensation_closure(ncomp, ds, dd)
        # Component of vertex 0 reaches all others.
        c0 = labels[0]
        assert clo[c0].sum() == 4

    def test_reachability_matches_networkx(self, rng):
        import networkx as nx

        g = gnm_digraph(80, 200, rng)
        got = reachability_via_condensation(g, [0, 17, 55])
        nxg = g.to_networkx()
        for i, s in enumerate((0, 17, 55)):
            want = np.zeros(g.n, dtype=bool)
            want[list(nx.descendants(nxg, s))] = True
            want[s] = True  # sources are reflexively marked
            assert np.array_equal(got[i], want)

    def test_source_always_marked(self):
        g = WeightedDigraph(2, [0, 0], [1, 0], np.ones(2))
        got = reachability_via_condensation(g, [0, 1])
        assert got[0, 0] and got[1, 1]  # sources are reflexively marked
        assert got[0, 1] and not got[1, 0]

    def test_matches_separator_reachability(self, rng):
        """The condensation fast path and the paper's boolean E⁺ agree."""
        from repro.core.reach import reachability_augmentation, reachable_from
        from repro.separators.spectral import decompose_spectral

        g = gnm_digraph(70, 130, rng)
        tree = decompose_spectral(g, leaf_size=6)
        aug = reachability_augmentation(g, tree)
        srcs = [0, 10, 42]
        assert np.array_equal(
            reachable_from(aug, srcs), reachability_via_condensation(g, srcs)
        )


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=1, max_value=30),
       st.integers(min_value=0, max_value=90))
def test_scc_partition_property(seed, n, m):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    g = WeightedDigraph(n, src, dst, np.ones(m))
    n1, l1 = strongly_connected_components(g)
    n2, l2 = scipy_scc(g)
    assert n1 == n2
    # Mutual-reachability equivalence: same-component iff scipy says so.
    same1 = l1[:, None] == l1[None, :]
    same2 = l2[:, None] == l2[None, :]
    assert np.array_equal(same1, same2)
