"""Tests for the multilevel (METIS-style) separator engine."""

import numpy as np
import pytest

from repro import ShortestPathOracle
from repro.core.digraph import WeightedDigraph
from repro.separators.multilevel import (
    _coarsen,
    _heavy_edge_matching,
    _Level,
    _undirected_edges,
    decompose_multilevel,
    multilevel_separator_fn,
)
from repro.separators.quality import assess
from repro.workloads.generators import delaunay_digraph, gnm_digraph, grid_digraph
from tests.conftest import assert_distances_equal, reference_apsp


def _level_of(g):
    eu, ev, mult = _undirected_edges(g)
    return _Level(n=g.n, eu=eu, ev=ev, emult=mult, vweight=np.ones(g.n), fine_to_coarse=None)


class TestCoarsening:
    def test_undirected_edges_dedup(self):
        g = WeightedDigraph(3, [0, 1, 0, 1], [1, 0, 2, 2], np.ones(4))
        eu, ev, mult = _undirected_edges(g)
        assert eu.tolist() == [0, 0, 1]
        assert ev.tolist() == [1, 2, 2]
        assert mult.tolist() == [2.0, 1.0, 1.0]

    def test_matching_is_a_matching(self, rng):
        g = grid_digraph((8, 8), rng)
        level = _level_of(g)
        coarse = _heavy_edge_matching(level, rng)
        # Each coarse id has at most 2 fine vertices.
        counts = np.bincount(coarse)
        assert counts.max() <= 2
        assert coarse.min() == 0 and coarse.max() == counts.shape[0] - 1

    def test_coarsen_preserves_total_vertex_weight(self, rng):
        g = grid_digraph((8, 8), rng)
        level = _level_of(g)
        coarse = _heavy_edge_matching(level, rng)
        nxt = _coarsen(level, coarse)
        assert np.isclose(nxt.vweight.sum(), level.vweight.sum())
        assert nxt.n < level.n

    def test_coarsen_aggregates_multiplicity(self):
        # Two parallel fine edges collapsing onto one coarse edge.
        g = WeightedDigraph(4, [0, 1, 2, 3], [1, 0, 3, 2], np.ones(4))
        level = _level_of(g)
        coarse = np.array([0, 0, 1, 1])  # pair (0,1) and (2,3)
        nxt = _coarsen(level, coarse)
        assert nxt.n == 2 and nxt.eu.size == 0  # no cross edges here

    def test_matching_stall_on_clique_handled(self, rng):
        # K6: matching works (3 pairs), coarse K3, then the oracle's
        # component_aware wrapper ends with InseparableSubgraph → leaf.
        n = 6
        src = [i for i in range(n) for j in range(n) if i != j]
        dst = [j for i in range(n) for j in range(n) if i != j]
        g = WeightedDigraph(n, src, dst, np.ones(len(src)))
        tree = decompose_multilevel(g, leaf_size=3)
        assert tree.root.is_leaf  # no separator exists


class TestEngine:
    def test_grid_quality(self, rng):
        g = grid_digraph((20, 20), rng)
        tree = decompose_multilevel(g)
        tree.validate(g)
        q = assess(tree)
        assert q.mu_hat < 0.8
        assert q.height_over_log2n < 2.5

    def test_delaunay_quality(self, rng):
        g, _ = delaunay_digraph(300, rng)
        tree = decompose_multilevel(g)
        tree.validate(g)
        assert assess(tree).mu_hat < 0.8

    def test_distances_exact_through_oracle(self, rng):
        g, _ = delaunay_digraph(120, rng)
        oracle = ShortestPathOracle.build(g, separator="multilevel")
        ref = reference_apsp(g)
        assert_distances_equal(oracle.distances([0, 60, 119]), ref[[0, 60, 119]])

    def test_sparse_random_graph(self, rng):
        g = gnm_digraph(150, 300, rng)
        tree = decompose_multilevel(g, leaf_size=6)
        tree.validate(g)

    def test_disconnected_input(self, rng):
        a = grid_digraph((5, 5), rng)
        g = WeightedDigraph(
            50,
            np.concatenate([a.src, a.src + 25]),
            np.concatenate([a.dst, a.dst + 25]),
            np.concatenate([a.weight, a.weight]),
        )
        tree = decompose_multilevel(g, leaf_size=4)
        tree.validate(g)

    def test_seed_determinism(self, rng):
        g, _ = delaunay_digraph(150, rng)
        t1 = decompose_multilevel(g, seed=7)
        t2 = decompose_multilevel(g, seed=7)
        assert len(t1.nodes) == len(t2.nodes)
        for a, b in zip(t1.nodes, t2.nodes):
            assert np.array_equal(a.vertices, b.vertices)
            assert np.array_equal(a.separator, b.separator)
