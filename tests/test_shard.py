"""Unit and equivalence tests of the separator-sharded fleet (fast lane).

Everything here runs the *inline* backend (K warm engines in-process, no
worker processes) so it belongs to the blocking tier-1 suite; the process
backend — workers, crash/restart, pinning, serving — is exercised under
the ``multiproc`` marker in ``test_shard_fleet.py``.

Bit-identity discipline: tests asserting ``np.array_equal`` use integer
edge weights, where float arithmetic is exact and the three-leg route
evaluates the same sums as the direct engine; float-weight tests assert
allclose plus identical ∞ masks (DESIGN.md §8).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import OracleConfig, ShortestPathOracle, WeightedDigraph
from repro.separators.grid import decompose_grid
from repro.separators.spectral import decompose_spectral
from repro.shard import ShardRouter, extract_subtree, make_shard_plan
from repro.shard.engine import shard_build_config
from repro.workloads.generators import grid_digraph


def integer_grid(side: int, seed: int = 0, *, negative: bool = False):
    """A ``side×side`` grid digraph with integer weights (and, optionally,
    integer potential-shifted negative weights that keep all cycles
    non-negative), plus its grid decomposition."""
    rng = np.random.default_rng(seed)
    g = grid_digraph((side, side), rng)
    w = np.round(g.weight * 8.0).astype(np.float64)
    if negative:
        p = rng.integers(0, 12, size=g.n).astype(np.float64)
        w = w + p[g.src] - p[g.dst]  # potential transform: no negative cycles
    g = WeightedDigraph(g.n, g.src, g.dst, w)
    tree = decompose_grid(g, (side, side), leaf_size=4)
    return g, tree


# ------------------------------------------------------------------ #
# Shard plans
# ------------------------------------------------------------------ #


class TestShardPlan:
    def test_invariants_grid(self):
        g, tree = integer_grid(10)
        for k in (2, 3, 4, 6):
            plan = make_shard_plan(g, tree, k)  # _verify_plan runs inside
            assert plan.k >= 2
            assert plan.home.min() >= 0
            # interiors partition V \ spine
            interiors = np.concatenate([s.interior for s in plan.shards])
            assert len(np.unique(interiors)) == len(interiors)
            assert len(interiors) + len(plan.spine) == g.n
            # spine_index is a bijection onto 0..|spine|-1
            assert np.array_equal(
                np.sort(plan.spine_index[plan.spine]), np.arange(len(plan.spine))
            )

    def test_k1_single_shard_empty_spine(self):
        g, tree = integer_grid(6)
        plan = make_shard_plan(g, tree, 1)
        assert plan.k == 1
        assert plan.spine.size == 0
        assert plan.shards[0].n == g.n
        assert plan.shards[0].boundary.size == 0

    def test_home_points_to_containing_shard(self):
        g, tree = integer_grid(8)
        plan = make_shard_plan(g, tree, 4)
        for v in range(g.n):
            shard = plan.shards[plan.home[v]]
            assert v in shard.vertices

    def test_large_k_saturates(self):
        g, tree = integer_grid(6)
        plan = make_shard_plan(g, tree, 10_000)
        assert plan.k <= len(tree.nodes)

    def test_k_zero_rejected(self):
        g, tree = integer_grid(6)
        with pytest.raises(ValueError, match="k must be"):
            make_shard_plan(g, tree, 0)

    def test_tree_graph_mismatch_rejected(self):
        g, tree = integer_grid(6)
        other = WeightedDigraph(5, [0], [1], [1.0])
        with pytest.raises(ValueError, match="vertex count"):
            make_shard_plan(other, tree, 2)

    def test_fingerprint_keyed_by_weights_and_cut(self):
        g, tree = integer_grid(8)
        a = make_shard_plan(g, tree, 2)
        assert a.fingerprint() == make_shard_plan(g, tree, 2).fingerprint()
        assert a.fingerprint() != make_shard_plan(g, tree, 4).fingerprint()
        g2 = WeightedDigraph(g.n, g.src, g.dst, g.weight + 1.0)
        assert a.fingerprint() != make_shard_plan(g2, tree, 2).fingerprint()

    def test_extract_subtree_recomputes_boundaries(self):
        g, tree = integer_grid(8)
        plan = make_shard_plan(g, tree, 3)
        for shard in plan.shards:
            sub = shard.tree
            assert sub.n == shard.n
            assert sub.nodes[0].boundary.size == 0  # local root: B = ∅
            for t in sub.nodes:
                if t.parent >= 0:
                    p = sub.nodes[t.parent]
                    want = np.intersect1d(
                        np.union1d(p.separator, p.boundary), t.vertices
                    )
                    assert np.array_equal(np.sort(t.boundary), want)
            # the extracted subtree must be a valid decomposition of the
            # shard's own subgraph
            sub.validate(shard.graph)

    def test_stats_shape(self):
        g, tree = integer_grid(8)
        plan = make_shard_plan(g, tree, 2)
        s = plan.stats()
        assert s["k"] == plan.k
        assert sum(len(sh.interior) for sh in plan.shards) + s["spine_vertices"] == g.n
        assert len(s["shard_sizes"]) == plan.k


def test_extract_subtree_of_root_is_whole_tree():
    g, tree = integer_grid(6)
    sub = extract_subtree(tree, 0, np.arange(g.n))
    assert sub.n == tree.n
    assert len(sub.nodes) == len(tree.nodes)
    sub.validate(g)


# ------------------------------------------------------------------ #
# Inline router equivalence
# ------------------------------------------------------------------ #


SOURCES = [0, 3, 17, 31]


class TestInlineRouterEquivalence:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_bit_identical_integer_weights(self, k):
        g, tree = integer_grid(10, seed=1)
        oracle = ShortestPathOracle.build(g, tree)
        srcs = list(range(0, g.n, 7))
        want = oracle.distances(srcs)
        with ShardRouter(g, tree, k=k, backend="inline") as r:
            got = r.query(srcs)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("k", [2, 4])
    def test_bit_identical_negative_integer_weights(self, k):
        g, tree = integer_grid(9, seed=3, negative=True)
        assert (g.weight < 0).any()
        oracle = ShortestPathOracle.build(g, tree)
        srcs = list(range(0, g.n, 5))
        want = oracle.distances(srcs)
        with ShardRouter(g, tree, k=k, backend="inline") as r:
            got = r.query(srcs)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("k", [2, 4])
    def test_unreachable_rows_exact_inf(self, k):
        # A forward-only directed path: everything before a source is
        # unreachable, so rows carry genuine ∞ blocks through all 3 legs.
        n = 48
        rng = np.random.default_rng(11)
        w = rng.integers(1, 9, size=n - 1).astype(np.float64)
        g = WeightedDigraph(n, np.arange(n - 1), np.arange(1, n), w)
        tree = decompose_spectral(g, leaf_size=4)
        oracle = ShortestPathOracle.build(g, tree)
        srcs = [0, 13, 29, 47]
        want = oracle.distances(srcs)
        assert np.isinf(want).any()
        with ShardRouter(g, tree, k=k, backend="inline") as r:
            got = r.query(srcs)
        assert np.array_equal(got, want)

    def test_float_weights_allclose_same_inf_mask(self, grid6_negative):
        g, tree = grid6_negative
        oracle = ShortestPathOracle.build(g, tree)
        srcs = list(range(0, g.n, 3))
        want = oracle.distances(srcs)
        with ShardRouter(g, tree, k=4, backend="inline") as r:
            got = r.query(srcs)
        assert np.array_equal(np.isinf(got), np.isinf(want))
        mask = np.isfinite(want)
        assert np.allclose(got[mask], want[mask], atol=1e-9)

    def test_boolean_semiring_reachability(self):
        g, tree = integer_grid(8, seed=5)
        cfg = OracleConfig(semiring="boolean")
        oracle = ShortestPathOracle.build(g, tree, config=cfg)
        srcs = [0, 20, 45]
        want = oracle.distances(srcs)
        with ShardRouter(g, tree, cfg, k=3, backend="inline") as r:
            got = r.query(srcs)
        assert got.dtype == want.dtype == np.dtype(bool)
        assert np.array_equal(got, want)

    def test_spine_vertices_as_sources(self):
        g, tree = integer_grid(10, seed=7)
        oracle = ShortestPathOracle.build(g, tree)
        with ShardRouter(g, tree, k=4, backend="inline") as r:
            assert r.plan.spine.size > 0
            srcs = r.plan.spine[:: max(1, r.plan.spine.size // 6)].tolist()
            got = r.query(srcs)
        assert np.array_equal(got, oracle.distances(srcs))

    def test_single_int_source_shape(self):
        g, tree = integer_grid(8)
        oracle = ShortestPathOracle.build(g, tree)
        with ShardRouter(g, tree, k=2, backend="inline") as r:
            got = r.query(9)
            assert got.shape == (g.n,)
            assert np.array_equal(got, oracle.distances(9))


# ------------------------------------------------------------------ #
# Router protocol surface
# ------------------------------------------------------------------ #


class TestRouterProtocol:
    def test_submit_info_and_stats(self):
        g, tree = integer_grid(8)
        with ShardRouter(g, tree, k=2, backend="inline") as r:
            dist, info = r.submit([0, 1, 60])
            assert dist.shape == (3, g.n)
            assert info["rows"] == 3
            assert 1 <= info["shards"] <= 2
            assert info["wall_s"] > 0
            s = r.stats()
            assert s["engine"] == "sharded"
            assert s["backend"] == "inline"
            assert s["workers"] == r.plan.k
            assert len(s["shards"]) == r.plan.k
            assert s["spine"]["vertices"] == r.plan.spine.size
            assert s["last_batch"]["rows"] == 3
            assert r.health_check()["backend"] == "inline"

    def test_closed_router_rejects_queries(self):
        g, tree = integer_grid(6)
        r = ShardRouter(g, tree, k=2, backend="inline")
        r.close()
        r.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            r.query(0)

    def test_bad_backend_rejected(self):
        g, tree = integer_grid(6)
        with pytest.raises(ValueError, match="backend"):
            ShardRouter(g, tree, k=2, backend="carrier-pigeon")

    def test_router_honors_config_fields(self):
        g, tree = integer_grid(8)
        cfg = OracleConfig(shards=4, shard_backend="inline")
        with ShardRouter(g, tree, cfg) as r:
            assert r.plan.k == 4
            assert r.backend == "inline"

    def test_oracle_shard_fleet_entry_point(self):
        g, tree = integer_grid(8)
        oracle = ShortestPathOracle.build(g, tree)
        with oracle.shard_fleet(2, backend="inline") as r:
            assert isinstance(r, ShardRouter)
            assert np.array_equal(r.query([0, 5]), oracle.distances([0, 5]))


# ------------------------------------------------------------------ #
# Config plumbing
# ------------------------------------------------------------------ #


class TestShardConfig:
    def test_new_knobs_validate(self):
        with pytest.raises(ValueError, match="shards"):
            OracleConfig(shards=-1)
        with pytest.raises(ValueError, match="shard_backend"):
            OracleConfig(shard_backend="inproc")
        cfg = OracleConfig(shards=4, shard_backend="inline", shard_pin=True)
        back = OracleConfig.from_dict(cfg.to_dict())
        assert (back.shards, back.shard_backend, back.shard_pin) == (4, "inline", True)

    def test_shard_build_config_downgrades(self):
        cfg = OracleConfig(
            executor="shm:4", shards=8, shard_pin=True, cache="readwrite",
            row_cache=64, validate=True,
        )
        sub = shard_build_config(cfg)
        assert sub.executor == "serial"
        assert sub.shards == 0 and not sub.shard_pin  # no recursive sharding
        assert sub.row_cache == 0 and not sub.validate
        assert sub.cache == "readwrite"  # warm-respawn path preserved
