"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.core.negcycle import has_negative_cycle
from repro.workloads.generators import (
    apply_potential_weights,
    delaunay_digraph,
    gnm_digraph,
    grid_digraph,
    overlap_digraph,
    path_digraph,
    random_tree_digraph,
)


class TestGrid:
    def test_2d_edge_count(self):
        g = grid_digraph((4, 5), None)
        assert g.n == 20
        # 4*(5-1) + 5*(4-1) undirected lattice edges, both orientations.
        assert g.m == 2 * (4 * 4 + 5 * 3)

    def test_3d_edge_count(self):
        g = grid_digraph((3, 3, 3), None)
        assert g.n == 27 and g.m == 2 * 3 * (2 * 3 * 3)

    def test_unit_weights_without_rng(self):
        g = grid_digraph((3, 3), None)
        assert (g.weight == 1.0).all()

    def test_symmetric_weights(self, rng):
        g = grid_digraph((4, 4), rng, symmetric_weights=True)
        w = g.dense_weights()
        assert np.allclose(w, w.T)

    def test_asymmetric_by_default(self, rng):
        g = grid_digraph((4, 4), rng)
        w = g.dense_weights()
        assert not np.allclose(np.where(np.isfinite(w), w, 0),
                               np.where(np.isfinite(w.T), w.T, 0))

    def test_degenerate_axis(self):
        g = grid_digraph((5, 1), None)
        assert g.m == 2 * 4  # just a path


class TestPotentialTrick:
    def test_creates_negatives_but_no_cycles(self, rng):
        g = apply_potential_weights(grid_digraph((6, 6), rng), rng, scale=8.0)
        assert g.has_negative_weights()
        assert not has_negative_cycle(g)

    def test_preserves_distance_structure(self, rng):
        """Reweighting shifts every u→v distance by p[u] − p[v], so shortest
        path trees are unchanged."""
        from repro.kernels.floyd_warshall import floyd_warshall

        base = grid_digraph((4, 4), rng)
        rng2 = np.random.default_rng(42)
        rew = apply_potential_weights(base, rng2)
        d0 = floyd_warshall(base.dense_weights())
        d1 = floyd_warshall(rew.dense_weights())
        # d1[u,v] - d0[u,v] must equal p[u]-p[v]: check consistency via
        # triangle combinations (without knowing p).
        delta = d1 - d0
        finite = np.isfinite(d0)
        for u, v, w in [(0, 5, 12), (3, 7, 9)]:
            assert np.isclose(delta[u, v] + delta[v, w], delta[u, w])


class TestOtherFamilies:
    def test_path(self, rng):
        g = path_digraph(10, rng)
        assert g.n == 10 and g.m == 18

    def test_tree_is_connected_acyclic(self, rng):
        g = random_tree_digraph(40, rng)
        assert g.m == 2 * 39
        import networkx as nx

        und = nx.Graph(zip(g.src.tolist(), g.dst.tolist()))
        assert nx.is_connected(und) and und.number_of_edges() == 39

    def test_gnm_no_self_loops(self, rng):
        g = gnm_digraph(30, 100, rng)
        assert (g.src != g.dst).all()

    def test_delaunay_planar_and_connected(self, rng):
        g, pts = delaunay_digraph(100, rng)
        assert pts.shape == (100, 2)
        from repro.planar.embedding import planar_embedding

        planar_embedding(g)  # Delaunay triangulations are planar
        import networkx as nx

        assert nx.is_connected(nx.Graph(zip(g.src.tolist(), g.dst.tolist())))

    def test_delaunay_euclidean_weights(self, rng):
        g, pts = delaunay_digraph(50, rng)
        # Each weight equals the endpoint distance.
        d = np.linalg.norm(pts[g.src] - pts[g.dst], axis=1)
        assert np.allclose(g.weight, d)

    def test_overlap_degree_scale(self, rng):
        g, pts = overlap_digraph(300, rng, degree_target=6.0)
        avg_deg = g.m / g.n
        assert 2.0 < avg_deg < 14.0

    def test_overlap_3d(self, rng):
        g, pts = overlap_digraph(200, rng, dim=3, degree_target=8.0)
        assert pts.shape == (200, 3)
