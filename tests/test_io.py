"""Tests for .npz persistence of graphs, trees and augmentations."""

import numpy as np
import pytest

from repro.core.leaves_up import augment_leaves_up
from repro.core.scheduler import build_schedule
from repro.core.sssp import sssp_scheduled
from repro.io import (
    load_augmentation,
    load_graph,
    load_tree,
    save_augmentation,
    save_graph,
    save_tree,
)
from tests.conftest import assert_distances_equal, reference_apsp


class TestGraphIO:
    def test_roundtrip(self, grid7, tmp_path):
        g, _ = grid7
        p = tmp_path / "g.npz"
        save_graph(p, g)
        back = load_graph(p)
        assert back.n == g.n
        assert np.array_equal(back.src, g.src)
        assert np.array_equal(back.weight, g.weight)

    def test_kind_check(self, grid7, tmp_path):
        g, tree = grid7
        p = tmp_path / "t.npz"
        save_tree(p, tree)
        with pytest.raises(ValueError):
            load_graph(p)


class TestTreeIO:
    def test_roundtrip_preserves_structure(self, grid7, tmp_path):
        g, tree = grid7
        p = tmp_path / "t.npz"
        save_tree(p, tree)
        back = load_tree(p)
        assert back.n == tree.n and back.height == tree.height
        assert len(back.nodes) == len(tree.nodes)
        for a, b in zip(tree.nodes, back.nodes):
            assert np.array_equal(a.vertices, b.vertices)
            assert np.array_equal(a.separator, b.separator)
            assert np.array_equal(a.boundary, b.boundary)
            assert a.children == b.children and a.parent == b.parent
        back.validate(g)

    def test_reloaded_tree_drives_pipeline(self, grid7, tmp_path):
        """Comment (iv) operationalized: decompose once, store, reuse."""
        g, tree = grid7
        p = tmp_path / "t.npz"
        save_tree(p, tree)
        back = load_tree(p)
        aug = augment_leaves_up(g, back, keep_node_distances=False)
        got = sssp_scheduled(aug, [0, 24])
        assert_distances_equal(got, reference_apsp(g)[[0, 24]])

    def test_vertex_levels_recomputed(self, grid7, tmp_path):
        g, tree = grid7
        p = tmp_path / "t.npz"
        save_tree(p, tree)
        back = load_tree(p)
        assert np.array_equal(back.vertex_level, tree.vertex_level)
        assert np.array_equal(back.vertex_node, tree.vertex_node)


class TestAugmentationIO:
    def test_roundtrip_answers_queries(self, grid6_negative, tmp_path):
        g, tree = grid6_negative
        aug = augment_leaves_up(g, tree, keep_node_distances=False)
        p = tmp_path / "aug.npz"
        save_augmentation(p, aug)
        back = load_augmentation(p)
        assert back.method == aug.method
        assert back.size == aug.size
        assert back.diameter_bound == aug.diameter_bound
        sched = build_schedule(back)
        got = sssp_scheduled(back, list(range(g.n)), schedule=sched)
        assert_distances_equal(got, reference_apsp(g))

    def test_boolean_augmentation_roundtrip(self, grid7, tmp_path):
        from repro.core.reach import reachability_augmentation, reachable_from

        g, tree = grid7
        aug = reachability_augmentation(g, tree)
        p = tmp_path / "baug.npz"
        save_augmentation(p, aug)
        back = load_augmentation(p)
        assert back.semiring.name == "boolean"
        assert np.array_equal(reachable_from(back, [0]), reachable_from(aug, [0]))


class TestOracleSaveLoad:
    def test_facade_roundtrip(self, grid6_negative, tmp_path):
        from repro import ShortestPathOracle

        g, tree = grid6_negative
        oracle = ShortestPathOracle.build(g, tree)
        oracle.save(tmp_path / "oracle.npz")
        back = ShortestPathOracle.load(tmp_path / "oracle.npz")
        assert back.diameter_bound == oracle.diameter_bound
        assert np.array_equal(back.distances([0, 20]), oracle.distances([0, 20]))
