"""Tests for .npz persistence of graphs, trees and augmentations."""

import numpy as np
import pytest

from repro.core.leaves_up import augment_leaves_up
from repro.core.scheduler import build_schedule
from repro.core.sssp import sssp_scheduled
from repro.io import (
    load_augmentation,
    load_graph,
    load_tree,
    save_augmentation,
    save_graph,
    save_tree,
)
from tests.conftest import assert_distances_equal, reference_apsp


class TestGraphIO:
    def test_roundtrip(self, grid7, tmp_path):
        g, _ = grid7
        p = tmp_path / "g.npz"
        save_graph(p, g)
        back = load_graph(p)
        assert back.n == g.n
        assert np.array_equal(back.src, g.src)
        assert np.array_equal(back.weight, g.weight)

    def test_kind_check(self, grid7, tmp_path):
        g, tree = grid7
        p = tmp_path / "t.npz"
        save_tree(p, tree)
        with pytest.raises(ValueError):
            load_graph(p)


class TestTreeIO:
    def test_roundtrip_preserves_structure(self, grid7, tmp_path):
        g, tree = grid7
        p = tmp_path / "t.npz"
        save_tree(p, tree)
        back = load_tree(p)
        assert back.n == tree.n and back.height == tree.height
        assert len(back.nodes) == len(tree.nodes)
        for a, b in zip(tree.nodes, back.nodes):
            assert np.array_equal(a.vertices, b.vertices)
            assert np.array_equal(a.separator, b.separator)
            assert np.array_equal(a.boundary, b.boundary)
            assert a.children == b.children and a.parent == b.parent
        back.validate(g)

    def test_reloaded_tree_drives_pipeline(self, grid7, tmp_path):
        """Comment (iv) operationalized: decompose once, store, reuse."""
        g, tree = grid7
        p = tmp_path / "t.npz"
        save_tree(p, tree)
        back = load_tree(p)
        aug = augment_leaves_up(g, back, keep_node_distances=False)
        got = sssp_scheduled(aug, [0, 24])
        assert_distances_equal(got, reference_apsp(g)[[0, 24]])

    def test_vertex_levels_recomputed(self, grid7, tmp_path):
        g, tree = grid7
        p = tmp_path / "t.npz"
        save_tree(p, tree)
        back = load_tree(p)
        assert np.array_equal(back.vertex_level, tree.vertex_level)
        assert np.array_equal(back.vertex_node, tree.vertex_node)


class TestAugmentationIO:
    def test_roundtrip_answers_queries(self, grid6_negative, tmp_path):
        g, tree = grid6_negative
        aug = augment_leaves_up(g, tree, keep_node_distances=False)
        p = tmp_path / "aug.npz"
        save_augmentation(p, aug)
        back = load_augmentation(p)
        assert back.method == aug.method
        assert back.size == aug.size
        assert back.diameter_bound == aug.diameter_bound
        sched = build_schedule(back)
        got = sssp_scheduled(back, list(range(g.n)), schedule=sched)
        assert_distances_equal(got, reference_apsp(g))

    def test_boolean_augmentation_roundtrip(self, grid7, tmp_path):
        from repro.core.reach import reachability_augmentation, reachable_from

        g, tree = grid7
        aug = reachability_augmentation(g, tree)
        p = tmp_path / "baug.npz"
        save_augmentation(p, aug)
        back = load_augmentation(p)
        assert back.semiring.name == "boolean"
        assert np.array_equal(reachable_from(back, [0]), reachable_from(aug, [0]))


class TestEdgeCaseRoundTrips:
    def test_zero_edge_graph(self, tmp_path):
        """A graph with no edges round-trips: empty arrays, empty E⁺,
        all-unreachable distances."""
        from repro.core.digraph import WeightedDigraph
        from repro.separators.spectral import decompose_spectral

        g = WeightedDigraph(6, [], [], [])
        tree = decompose_spectral(g, leaf_size=2)
        aug = augment_leaves_up(g, tree, keep_node_distances=False)
        p = tmp_path / "empty.npz"
        save_augmentation(p, aug)
        back = load_augmentation(p)
        assert back.size == 0 and back.graph.m == 0
        got = sssp_scheduled(back, [0])
        assert got[0, 0] == 0.0 and np.isinf(got[0, 1:]).all()

    def test_negative_weights_exact(self, grid6_negative, tmp_path):
        """Negative weights survive bit-exactly (no lossy encode)."""
        g, tree = grid6_negative
        assert (g.weight < 0).any()  # the fixture really is negative
        aug = augment_leaves_up(g, tree, keep_node_distances=False)
        p = tmp_path / "neg.npz"
        save_augmentation(p, aug)
        back = load_augmentation(p)
        assert np.array_equal(back.graph.weight, g.weight)
        assert np.array_equal(back.weight, aug.weight)

    def test_single_leaf_tree(self, tmp_path):
        """A decomposition that is one leaf (no separators, empty E⁺)."""
        from repro.separators.grid import decompose_grid
        from repro.workloads.generators import grid_digraph

        g = grid_digraph((2, 2), np.random.default_rng(0))
        tree = decompose_grid(g, (2, 2), leaf_size=8)
        assert len(tree.nodes) == 1
        save_tree(tmp_path / "leaf.npz", tree)
        back = load_tree(tmp_path / "leaf.npz")
        assert len(back.nodes) == 1 and back.nodes[0].children == ()
        aug = augment_leaves_up(g, back, keep_node_distances=False)
        assert aug.size == 0
        save_augmentation(tmp_path / "leaf_aug.npz", aug)
        got = sssp_scheduled(load_augmentation(tmp_path / "leaf_aug.npz"), [0])
        assert_distances_equal(got, reference_apsp(g)[[0]])


class TestOracleSaveLoad:
    def test_facade_roundtrip(self, grid6_negative, tmp_path):
        from repro import ShortestPathOracle

        g, tree = grid6_negative
        oracle = ShortestPathOracle.build(g, tree)
        oracle.save(tmp_path / "oracle.npz")
        back = ShortestPathOracle.load(tmp_path / "oracle.npz")
        assert back.diameter_bound == oracle.diameter_bound
        assert np.array_equal(back.distances([0, 20]), oracle.distances([0, 20]))

    def test_roundtrip_preserves_build_config(self, grid7, tmp_path):
        """save → load → query_engine keeps the build's kernel/executor —
        the format-2 ``config_json`` header (earlier formats silently
        reverted a loaded oracle to default knobs)."""
        from repro import ShortestPathOracle
        from repro.core.config import OracleConfig

        g, tree = grid7
        cfg = OracleConfig(kernel="blocked", executor="thread:2", source_block=16)
        oracle = ShortestPathOracle.build(g, tree, config=cfg)
        oracle.save(tmp_path / "oracle.npz")
        back = ShortestPathOracle.load(tmp_path / "oracle.npz")
        assert back.config.kernel == "blocked"
        assert back.config.executor == "thread:2"
        assert back.config.source_block == 16
        with back.query_engine(OracleConfig(executor="serial")) as eng:
            got = eng.query([0, 11])
        assert np.array_equal(got, oracle.distances([0, 11]))

    def test_legacy_archive_defaults_config(self, grid7, tmp_path):
        """An archive without the config header loads with default knobs."""
        from repro import ShortestPathOracle

        g, tree = grid7
        aug = augment_leaves_up(g, tree, keep_node_distances=False)
        p = tmp_path / "legacy.npz"
        save_augmentation(p, aug)  # no config= → header omits config_json
        back = ShortestPathOracle.load(p)
        assert back.config.kernel is None
        assert np.array_equal(back.distances(0), sssp_scheduled(aug, [0])[0])

    def test_future_format_refused(self, grid7, tmp_path):
        import numpy as _np

        from repro.io import AUG_FORMAT_VERSION

        g, tree = grid7
        aug = augment_leaves_up(g, tree, keep_node_distances=False)
        p = tmp_path / "future.npz"
        save_augmentation(p, aug)
        with np.load(p, allow_pickle=False) as z:
            payload = {k: z[k] for k in z.files}
        payload["version"] = _np.int64(AUG_FORMAT_VERSION + 1)
        _np.savez_compressed(p, **payload)
        with pytest.raises(ValueError, match="format"):
            load_augmentation(p)
