"""Tests for the extension features: augmentation self-verification with
failure injection, decomposition reuse across weight/direction changes
(paper comment iv), shortest-path forests, and edge-case graphs."""

import numpy as np
import pytest

from repro import ShortestPathOracle
from repro.core.digraph import WeightedDigraph
from repro.core.leaves_up import augment_leaves_up
from repro.core.paths import path_weight, reconstruct_path
from repro.separators.grid import decompose_grid
from repro.separators.spectral import decompose_spectral
from repro.workloads.generators import apply_potential_weights, grid_digraph
from tests.conftest import assert_distances_equal, reference_apsp


class TestVerifyEdges:
    def test_healthy_augmentation_verifies(self, grid7):
        g, tree = grid7
        aug = augment_leaves_up(g, tree)
        assert aug.verify_edges() < 1e-9

    def test_detects_injected_underestimate(self, grid7):
        """Failure injection: corrupt one E⁺ weight downward — the
        soundness check must report a positive deviation."""
        g, tree = grid7
        aug = augment_leaves_up(g, tree)
        victim = int(np.argmax(aug.weight))
        aug.weight[victim] -= 50.0
        rng = np.random.default_rng(0)
        # Sample every edge so the victim is included.
        assert aug.verify_edges(sample_size=aug.size, rng=rng) > 10.0

    def test_detects_injected_overestimate(self, rng):
        """An inflated shortcut that queries rely on shows up via the
        completeness (scheduled-query vs Bellman–Ford) check.  Needs a graph
        whose diameter exceeds what the schedule's few full-E phases can
        heal, hence 16×16 rather than the small fixture."""
        g = grid_digraph((16, 16), rng)
        tree = decompose_grid(g, (16, 16), leaf_size=4)
        aug = augment_leaves_up(g, tree)
        aug.weight += 25.0  # inflate everything: shortcuts become useless
        assert aug.verify_edges(sample_size=8) > 1.0

    def test_empty_augmentation(self, rng):
        g = grid_digraph((2, 2), rng)
        tree = decompose_grid(g, (2, 2), leaf_size=8)
        aug = augment_leaves_up(g, tree)
        assert aug.verify_edges() < 1e-9

    def test_zero_edge_graph(self):
        """No edges at all: E⁺ is empty and verification is trivially 0."""
        g = WeightedDigraph(6, [], [], [])
        tree = decompose_spectral(g, leaf_size=2)
        aug = augment_leaves_up(g, tree)
        assert aug.verify_edges() == 0.0

    def test_reuses_cached_schedule(self, grid7, monkeypatch):
        """verify_edges must use the augmentation's cached schedule, not
        compile a fresh one per call (the recompile dominated the check)."""
        import repro.core.scheduler as scheduler

        g, tree = grid7
        aug = augment_leaves_up(g, tree)
        aug.schedule()  # populate the cache

        def boom(_aug):
            raise AssertionError("schedule was rebuilt")

        monkeypatch.setattr(scheduler, "build_schedule", boom)
        assert aug.verify_edges() < 1e-9


class TestDecompositionReuse:
    def test_reweighting_reuses_tree(self, grid7, rng):
        g, tree = grid7
        oracle = ShortestPathOracle.build(g, tree)
        new_w = rng.uniform(1.0, 5.0, size=g.m)
        fresh = oracle.with_new_weights(new_w)
        assert fresh.tree is tree
        g2 = WeightedDigraph(g.n, g.src, g.dst, new_w)
        assert_distances_equal(fresh.distances([0, 11]), reference_apsp(g2)[[0, 11]])

    def test_direction_flip_reuses_tree(self, grid7):
        """Reversing every edge keeps the skeleton, so the tree is valid."""
        g, tree = grid7
        oracle = ShortestPathOracle.build(g, tree)
        rev = oracle.with_new_weights(graph=g.reverse())
        ref = reference_apsp(g)
        # dist_rev(u, v) == dist(v, u).
        got = rev.distances(5)
        assert_distances_equal(got, ref[:, 5])

    def test_negative_reweighting(self, grid7, rng):
        g, tree = grid7
        oracle = ShortestPathOracle.build(g, tree)
        g_neg = apply_potential_weights(g, rng)
        fresh = oracle.with_new_weights(g_neg.weight)
        assert_distances_equal(fresh.distances(0), reference_apsp(g_neg)[0])

    def test_argument_validation(self, grid7):
        g, tree = grid7
        oracle = ShortestPathOracle.build(g, tree)
        with pytest.raises(ValueError):
            oracle.with_new_weights()
        with pytest.raises(ValueError):
            oracle.with_new_weights(g.weight, graph=g)


class TestShortestPathForest:
    def test_forest_rows_match_single_trees(self, grid7):
        g, tree = grid7
        oracle = ShortestPathOracle.build(g, tree)
        srcs = [0, 24, 48]
        forest = oracle.shortest_path_forest(srcs)
        assert forest.shape == (3, g.n)
        ref = reference_apsp(g)
        for i, s in enumerate(srcs):
            for v in (7, 30, 44):
                p = reconstruct_path(forest[i], s, v)
                assert p is not None
                assert np.isclose(path_weight(g, p), ref[s, v])


class TestEdgeCaseGraphs:
    def test_positive_self_loops_ignored(self, rng):
        g = grid_digraph((4, 4), rng)
        g = g.with_extra_edges([3, 7], [3, 7], [2.0, 0.5])
        tree = decompose_grid(g, (4, 4), leaf_size=4)
        aug = augment_leaves_up(g, tree)
        from repro.core.sssp import sssp_scheduled

        assert_distances_equal(sssp_scheduled(aug, list(range(g.n))), reference_apsp(g))

    def test_zero_weight_edges(self, rng):
        g = grid_digraph((4, 4), rng)
        w = g.weight.copy()
        w[::3] = 0.0
        g = WeightedDigraph(g.n, g.src, g.dst, w)
        tree = decompose_grid(g, (4, 4), leaf_size=4)
        oracle = ShortestPathOracle.build(g, tree)
        assert_distances_equal(oracle.distances(0), reference_apsp(g)[0])

    def test_heavy_parallel_edges(self, rng):
        g = grid_digraph((4, 4), rng)
        # Duplicate every edge with random alternative weights.
        g = g.with_extra_edges(g.src, g.dst, rng.uniform(0.1, 20.0, g.m))
        tree = decompose_grid(g, (4, 4), leaf_size=4)
        oracle = ShortestPathOracle.build(g, tree)
        assert_distances_equal(oracle.distances(3), reference_apsp(g)[3])

    def test_single_vertex_graph(self):
        g = WeightedDigraph(1, [], [], [])
        tree = decompose_spectral(g, leaf_size=4)
        oracle = ShortestPathOracle.build(g, tree)
        assert oracle.distances(0).tolist() == [0.0]

    def test_two_vertices_one_edge(self):
        g = WeightedDigraph(2, [0], [1], [3.5])
        tree = decompose_spectral(g, leaf_size=1)
        oracle = ShortestPathOracle.build(g, tree)
        d = oracle.distances(0)
        assert d[1] == 3.5 and np.isinf(oracle.distances(1)[0])

    def test_isolated_vertices(self, rng):
        g = WeightedDigraph(6, [0, 1], [1, 2], [1.0, 2.0])  # 3,4,5 isolated
        tree = decompose_spectral(g, leaf_size=2)
        oracle = ShortestPathOracle.build(g, tree)
        d = oracle.distances(0)
        assert d[2] == 3.0 and np.isinf(d[3:]).all()
