"""Tests for the Remark 4.4 shared-pairing doubling variant."""

import numpy as np
import pytest

from repro import ShortestPathOracle
from repro.core.doubling_shared import SharedEdgeTable, augment_doubling_shared
from repro.core.leaves_up import augment_leaves_up
from repro.core.augment import NegativeCycleDetected
from repro.core.semiring import BOOLEAN, MIN_PLUS
from repro.core.sssp import measured_diameter, sssp_scheduled
from repro.separators.grid import decompose_grid
from repro.separators.spectral import decompose_spectral
from repro.workloads.generators import (
    apply_potential_weights,
    delaunay_digraph,
    gnm_digraph,
    grid_digraph,
)
from tests.conftest import assert_distances_equal, reference_apsp


class TestSharedTable:
    def test_dedup_eliminates_redundancy(self, grid7):
        g, tree = grid7
        table = SharedEdgeTable(g, tree, MIN_PLUS)
        assert table.distinct_pair_count() < table.redundant_pair_count()
        # Diagonal pairs carry 1̄.
        diag = table.src == table.dst
        assert (table.weights[diag] == 0.0).all()

    def test_original_edges_absorbed(self, tiny_line):
        tree = decompose_spectral(tiny_line, leaf_size=2)
        table = SharedEdgeTable(tiny_line, tree, MIN_PLUS)
        # Any original edge whose endpoints share a block must carry ≤ its
        # weight.
        for u, v, w in zip(tiny_line.src, tiny_line.dst, tiny_line.weight):
            key = int(u) * tiny_line.n + int(v)
            pos = np.searchsorted(table.keys, key)
            if pos < table.keys.shape[0] and table.keys[pos] == key:
                assert table.weights[pos] <= w + 1e-12


class TestAugmentDoublingShared:
    @pytest.mark.parametrize("negative", [False, True])
    def test_queries_exact(self, rng, negative):
        g = grid_digraph((7, 7), rng)
        if negative:
            g = apply_potential_weights(g, rng)
        tree = decompose_grid(g, (7, 7), leaf_size=4)
        aug = augment_doubling_shared(g, tree, keep_node_distances=False)
        got = sssp_scheduled(aug, list(range(g.n)))
        assert_distances_equal(got, reference_apsp(g))

    def test_diameter_bound_holds(self, grid7):
        g, tree = grid7
        aug = augment_doubling_shared(g, tree, keep_node_distances=False)
        assert measured_diameter(aug) <= aug.diameter_bound

    def test_weights_sound_and_at_most_standard(self, grid7):
        """dist_G ≤ shared weight ≤ per-node weight on every common edge."""
        g, tree = grid7
        shared = augment_doubling_shared(g, tree, keep_node_distances=False)
        std = augment_leaves_up(g, tree, keep_node_distances=False)
        ref = reference_apsp(g)
        assert (shared.weight >= ref[shared.src, shared.dst] - 1e-9).all()
        std_map = {
            (int(s), int(d)): w
            for s, d, w in zip(std.src.tolist(), std.dst.tolist(), std.weight.tolist())
        }
        for s, d, w in zip(shared.src.tolist(), shared.dst.tolist(), shared.weight.tolist()):
            if (s, d) in std_map:
                assert w <= std_map[(s, d)] + 1e-9

    def test_same_edge_set_as_standard(self, grid7):
        g, tree = grid7
        shared = augment_doubling_shared(g, tree, keep_node_distances=False)
        std = augment_leaves_up(g, tree, keep_node_distances=False)
        # Finite-weight pairs coincide (weights may differ — tighter).
        assert np.array_equal(shared.src, std.src)
        assert np.array_equal(shared.dst, std.dst)

    def test_negative_cycle_detected(self):
        g = grid_digraph((4, 4), None)
        g = g.with_extra_edges([0, 1], [1, 0], [-3.0, 1.0])
        tree = decompose_grid(g, (4, 4), leaf_size=4)
        with pytest.raises(NegativeCycleDetected):
            augment_doubling_shared(g, tree)

    def test_boolean_semiring(self, rng):
        g = gnm_digraph(50, 90, rng)
        tree = decompose_spectral(g, leaf_size=4)
        aug = augment_doubling_shared(g, tree, BOOLEAN, keep_node_distances=False)
        got = sssp_scheduled(aug, [0, 10])
        import networkx as nx

        nxg = g.to_networkx()
        for i, s in enumerate((0, 10)):
            want = np.zeros(g.n, dtype=bool)
            want[list(nx.descendants(nxg, s))] = True
            want[s] = got[i, s]
            assert np.array_equal(got[i], want)

    def test_through_oracle_facade(self, delaunay80):
        g, tree, _ = delaunay80
        oracle = ShortestPathOracle.build(g, tree, method="doubling_shared")
        assert_distances_equal(oracle.distances([0, 40]), reference_apsp(g)[[0, 40]])
        # Reuse keeps the method.
        rng = np.random.default_rng(1)
        fresh = oracle.with_new_weights(rng.uniform(1, 5, g.m))
        assert fresh.augmentation.method == "doubling_shared"

    def test_routing_oracle_on_shared_matrices(self, grid7):
        """Node matrices from the shared table are within-G(t) upper bounds
        that the recursive DistanceOracle still answers exactly with, since
        every query path it composes is a real G-walk and the certified
        pairs are tight enough."""
        from repro.apps.routing import DistanceOracle

        g, tree = grid7
        aug = augment_doubling_shared(g, tree, keep_node_distances=True)
        oracle = DistanceOracle(aug)
        ref = reference_apsp(g)
        rng = np.random.default_rng(2)
        for _ in range(150):
            u, v = int(rng.integers(g.n)), int(rng.integers(g.n))
            assert np.isclose(oracle.distance(u, v), ref[u, v])
