"""Tests for the reachability specialization (I6) and the non-min-plus path
algebras (I9 — paper comment (iii))."""

import numpy as np
import pytest

from repro.core.doubling import augment_doubling
from repro.core.leaves_up import augment_leaves_up, dense_semiring_weights
from repro.core.reach import reachability_augmentation, reachable_from, transitive_closure
from repro.core.semiring import MAX_MIN, MIN_MAX
from repro.core.sssp import sssp_scheduled
from repro.kernels.floyd_warshall import floyd_warshall
from repro.workloads.generators import gnm_digraph, grid_digraph
from repro.separators.grid import decompose_grid
from repro.separators.spectral import decompose_spectral


def networkx_closure(g):
    import networkx as nx

    nxg = g.to_networkx()
    out = np.zeros((g.n, g.n), dtype=bool)
    for u in range(g.n):
        for v in nx.descendants(nxg, u):
            out[u, v] = True
    np.fill_diagonal(out, True)
    return out


class TestReachability:
    @pytest.mark.parametrize("method", ["leaves_up", "doubling"])
    def test_closure_sparse_random(self, rng, method):
        g = gnm_digraph(70, 140, rng)
        tree = decompose_spectral(g, leaf_size=6)
        clo = transitive_closure(g, tree, method=method)
        assert np.array_equal(clo, networkx_closure(g))

    def test_reachable_from_subset(self, rng):
        g = gnm_digraph(50, 90, rng)
        tree = decompose_spectral(g, leaf_size=6)
        aug = reachability_augmentation(g, tree)
        got = reachable_from(aug, [0, 13])
        want = networkx_closure(g)
        want_rows = want[[0, 13]].copy()
        # reachable_from does not force reflexivity.
        want_rows[0, 0] = got[0, 0]
        want_rows[1, 13] = got[1, 13]
        assert np.array_equal(got, want_rows)

    def test_rejects_weighted_augmentation(self, grid7):
        g, tree = grid7
        aug = augment_leaves_up(g, tree)
        with pytest.raises(ValueError):
            reachable_from(aug, [0])

    def test_one_way_edges(self):
        """Directionality is respected (reachability is not symmetric)."""
        from repro.core.digraph import WeightedDigraph

        # 4-cycle oriented one way inside a 2x2 grid shape.
        g = WeightedDigraph(4, [0, 1, 3, 2], [1, 3, 2, 0], np.ones(4))
        tree = decompose_spectral(g, leaf_size=2)
        clo = transitive_closure(g, tree)
        assert clo.all()  # a directed cycle reaches everything


class TestPathAlgebras:
    """I9: bottleneck (max-min) and minimax (min-max) via the same engine."""

    @pytest.mark.parametrize("build", [augment_leaves_up, augment_doubling],
                             ids=["leaves_up", "doubling"])
    @pytest.mark.parametrize("sr", [MAX_MIN, MIN_MAX], ids=lambda s: s.name)
    def test_matches_generalized_fw(self, rng, build, sr):
        g = grid_digraph((5, 5), rng)
        tree = decompose_grid(g, (5, 5), leaf_size=4)
        aug = build(g, tree, sr, keep_node_distances=False)
        got = sssp_scheduled(aug, list(range(g.n)))
        ref = floyd_warshall(dense_semiring_weights(g, sr), sr)
        assert np.allclose(got, ref)

    def test_widest_path_semantics(self):
        """max-min really computes the widest-path capacity."""
        from repro.core.digraph import WeightedDigraph

        # 0->1->2 with capacities 10 and 3; plus direct 0->2 capacity 5.
        g = WeightedDigraph(3, [0, 1, 0], [1, 2, 2], [10.0, 3.0, 5.0])
        ref = floyd_warshall(dense_semiring_weights(g, MAX_MIN), MAX_MIN)
        assert ref[0, 2] == 5.0  # direct link beats the 3-capacity route

    def test_minimax_semantics(self):
        from repro.core.digraph import WeightedDigraph

        # Minimize the largest edge on the way: route 0->1->2 (max 4) beats
        # direct 0->2 (max 9).
        g = WeightedDigraph(3, [0, 1, 0], [1, 2, 2], [4.0, 2.0, 9.0])
        ref = floyd_warshall(dense_semiring_weights(g, MIN_MAX), MIN_MAX)
        assert ref[0, 2] == 4.0
