"""Tests for the dense kernels: semiring matmul, Floyd–Warshall, boolean
closure, and their ledger accounting."""

import numpy as np
import pytest

from repro.core.digraph import WeightedDigraph
from repro.core.semiring import BOOLEAN, MAX_MIN, MIN_PLUS
from repro.kernels.boolmat import bool_closure, bool_matmul, charged_omega, set_charged_omega
from repro.kernels.floyd_warshall import (
    expand_via_path,
    floyd_warshall,
    floyd_warshall_with_parents,
)
from repro.kernels.minplus import (
    hop_limited_product,
    semiring_closure,
    semiring_matmul,
    semiring_square,
)
from repro.pram.machine import Ledger


def brute_minplus(a, b):
    l, k = a.shape
    m = b.shape[1]
    out = np.full((l, m), np.inf)
    for i in range(l):
        for j in range(m):
            out[i, j] = (a[i, :] + b[:, j]).min()
    return out


class TestSemiringMatmul:
    def test_matches_bruteforce(self, rng):
        a = rng.uniform(0, 10, (5, 7))
        b = rng.uniform(0, 10, (7, 4))
        assert np.allclose(semiring_matmul(a, b), brute_minplus(a, b))

    def test_with_infinities(self):
        a = np.array([[np.inf, 1.0]])
        b = np.array([[0.0], [2.0]])
        assert semiring_matmul(a, b)[0, 0] == 3.0

    def test_blocked_equals_unblocked(self, rng):
        a = rng.uniform(0, 10, (20, 20))
        full = semiring_matmul(a, a)
        tiny_blocks = semiring_matmul(a, a, budget=40)  # forces many row blocks
        assert np.allclose(full, tiny_blocks)

    def test_accumulate_into_out(self, rng):
        a = rng.uniform(0, 10, (4, 4))
        out = np.full((4, 4), 1.0)
        res = semiring_matmul(a, a, out=out, accumulate=True)
        assert res is out
        assert (out <= 1.0 + 1e-12).all()

    def test_boolean_fast_path(self):
        a = np.array([[True, False], [False, False]])
        b = np.array([[False, True], [True, False]])
        assert semiring_matmul(a, b, BOOLEAN).tolist() == [[False, True], [False, False]]

    def test_boolean_256_common_neighbors(self):
        """Regression: a uint8 witness-count GEMM accumulates mod 256, so a
        pair with exactly 256 common neighbors silently tested as
        unreachable.  The count must be held in an exact accumulator."""
        k = 256
        a = np.ones((1, k), dtype=bool)
        b = np.ones((k, 1), dtype=bool)
        for kernel in ("reference", "blocked", "pruned"):
            assert semiring_matmul(a, b, BOOLEAN, kernel=kernel)[0, 0], kernel
        # ... and any multiple of 256 among decoys.
        a_wide = np.zeros((3, 512), dtype=bool)
        a_wide[0, :256] = True  # 256 witnesses
        a_wide[1, :1] = True  # 1 witness
        b_wide = np.ones((512, 2), dtype=bool)
        b_wide[:, 1] = False
        got = semiring_matmul(a_wide, b_wide, BOOLEAN)
        assert got.tolist() == [[True, False], [True, False], [False, False]]

    def test_max_min_widest_path(self):
        # widest 2-hop path 0->1->2: min(4, 7) = 4
        a = np.array([[-np.inf, 4.0, -np.inf], [-np.inf, -np.inf, 7.0], [-np.inf] * 3])
        two = semiring_matmul(a, a, MAX_MIN)
        assert two[0, 2] == 4.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            semiring_matmul(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_ledger_charges_cubic_work(self):
        led = Ledger()
        a = np.zeros((4, 5))
        b = np.zeros((5, 6))
        semiring_matmul(a, b, ledger=led)
        assert led.work == 4 * 5 * 6

    def test_square_and_closure(self):
        w = np.array([[0.0, 1.0, np.inf], [np.inf, 0.0, 1.0], [np.inf, np.inf, 0.0]])
        s = semiring_square(w.copy())
        assert s[0, 2] == 2.0
        c = semiring_closure(
            np.array([[np.inf, 1.0, np.inf], [np.inf, np.inf, 1.0], [np.inf] * 3])
        )
        assert c[0, 2] == 2.0 and c[0, 0] == 0.0

    def test_hop_limited(self):
        w = np.full((4, 4), np.inf)
        for i in range(3):
            w[i, i + 1] = 1.0
        h2 = hop_limited_product(w, 2)
        assert h2[0, 2] == 2.0 and h2[0, 3] == np.inf
        h3 = hop_limited_product(w, 3)
        assert h3[0, 3] == 3.0
        with pytest.raises(ValueError):
            hop_limited_product(w, 0)


class TestFloydWarshall:
    def test_matches_networkx(self, rng):
        import networkx as nx

        g = WeightedDigraph(6, rng.integers(0, 6, 20), rng.integers(0, 6, 20),
                            rng.uniform(1, 5, 20))
        d = floyd_warshall(g.dense_weights())
        ref = dict(nx.all_pairs_bellman_ford_path_length(g.to_networkx()))
        for u in range(6):
            for v in range(6):
                want = ref.get(u, {}).get(v, np.inf)
                assert np.isclose(d[u, v], want) or (np.isinf(d[u, v]) and np.isinf(want))

    def test_negative_weights_no_cycle(self):
        w = np.array([[0.0, 5.0, np.inf], [np.inf, 0.0, -2.0], [np.inf, np.inf, 0.0]])
        d = floyd_warshall(w)
        assert d[0, 2] == 3.0

    def test_negative_cycle_shows_on_diagonal(self):
        w = np.array([[0.0, 1.0], [np.inf, 0.0]])
        w[1, 0] = -2.0
        d = floyd_warshall(w)
        assert d[0, 0] < 0

    def test_copy_semantics(self):
        w = np.array([[0.0, 1.0], [1.0, 0.0]])
        d = floyd_warshall(w, copy=True)
        assert d is not w
        d2 = floyd_warshall(w, copy=False)
        assert d2 is w

    def test_parents_reconstruct_optimal_path(self, rng):
        g = WeightedDigraph(7, rng.integers(0, 7, 25), rng.integers(0, 7, 25),
                            rng.uniform(1, 9, 25))
        w = g.dense_weights()
        d, via = floyd_warshall_with_parents(w)
        for u in range(7):
            for v in range(7):
                if u == v or np.isinf(d[u, v]):
                    continue
                path = expand_via_path(via, u, v)
                assert path[0] == u and path[-1] == v
                total = sum(w[a, b] for a, b in zip(path, path[1:]))
                assert np.isclose(total, d[u, v])

    def test_boolean_dispatches_to_closure(self):
        w = np.array([[False, True, False], [False, False, True], [False, False, False]])
        d = floyd_warshall(w, BOOLEAN)
        assert d[0, 2] and d[0, 0]  # reflexive closure


class TestBoolMat:
    def test_matmul(self):
        a = np.array([[True, False]])
        b = np.array([[False, True], [True, True]])
        assert bool_matmul(a, b).tolist() == [[False, True]]

    def test_closure_path(self):
        a = np.zeros((4, 4), dtype=bool)
        a[0, 1] = a[1, 2] = a[2, 3] = True
        c = bool_closure(a)
        assert c[0, 3] and not c[3, 0]
        assert c.diagonal().all()

    def test_omega_setting(self):
        old = charged_omega()
        try:
            set_charged_omega(2.37)
            led = Ledger()
            bool_matmul(np.zeros((8, 8), dtype=bool), np.zeros((8, 8), dtype=bool), ledger=led)
            assert np.isclose(led.work, 8 ** 2.37)
            with pytest.raises(ValueError):
                set_charged_omega(1.5)
        finally:
            set_charged_omega(old)

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            bool_matmul(np.zeros((2, 3), dtype=bool), np.zeros((2, 3), dtype=bool))


class TestFloydWarshallHops:
    def test_hops_matches_bellman_ford_diameter(self, rng):
        from repro.kernels.bellman_ford import min_weight_diameter
        from repro.kernels.floyd_warshall import min_weight_diameter_dense
        from repro.workloads.generators import apply_potential_weights, grid_digraph

        for negative in (False, True):
            g = grid_digraph((4, 4), rng)
            if negative:
                g = apply_potential_weights(g, rng)
            assert min_weight_diameter_dense(g.dense_weights()) == min_weight_diameter(g)

    def test_hops_prefers_fewest_edges_among_ties(self):
        from repro.kernels.floyd_warshall import floyd_warshall_with_hops

        # 0->2 direct weight 2 ties with 0->1->2 (1+1): min hops must be 1.
        w = np.full((3, 3), np.inf)
        np.fill_diagonal(w, 0.0)
        w[0, 1] = w[1, 2] = 1.0
        w[0, 2] = 2.0
        d, hops = floyd_warshall_with_hops(w)
        assert d[0, 2] == 2.0 and hops[0, 2] == 1

    def test_unreachable_hops_infinite(self):
        from repro.kernels.floyd_warshall import floyd_warshall_with_hops

        w = np.full((2, 2), np.inf)
        np.fill_diagonal(w, 0.0)
        _, hops = floyd_warshall_with_hops(w)
        assert np.isinf(hops[0, 1]) and hops[0, 0] == 0
