"""Large-scale integration scenarios: the whole pipeline on instances an
order of magnitude bigger than the unit tests, with sampled verification
(full references would dominate the runtime)."""

import numpy as np
import pytest

from repro import ShortestPathOracle
from repro.core.sssp import sssp_scheduled
from repro.kernels.dijkstra import dijkstra
from repro.kernels.johnson import johnson
from repro.separators.grid import decompose_grid
from repro.separators.multilevel import decompose_multilevel
from repro.separators.quality import assess
from repro.workloads.generators import (
    apply_potential_weights,
    delaunay_digraph,
    grid_digraph,
)


@pytest.mark.slow
class TestLargeGrid:
    def test_64x64_end_to_end(self, rng):
        g = grid_digraph((64, 64), rng)
        tree = decompose_grid(g, (64, 64))
        oracle = ShortestPathOracle.build(g, tree)
        q = assess(tree)
        assert q.height_over_log2n < 1.5
        assert 0.3 < q.mu_hat < 0.7
        srcs = rng.integers(0, g.n, size=4)
        got = oracle.distances(srcs)
        for i, s in enumerate(srcs.tolist()):
            assert np.allclose(got[i], dijkstra(g, int(s)))
        # Diameter bound is polylog-sized while diam(G) is Θ(√n).
        assert oracle.diameter_bound < 80

    def test_48x48_negative_weights(self, rng):
        g = apply_potential_weights(grid_digraph((48, 48), rng), rng)
        tree = decompose_grid(g, (48, 48))
        oracle = ShortestPathOracle.build(g, tree, method="doubling_shared")
        srcs = [0, 1000, 2303]
        assert np.allclose(oracle.distances(srcs), johnson(g, srcs), atol=1e-7)


@pytest.mark.slow
class TestLargeDelaunay:
    def test_1500_vertices_multilevel(self, rng):
        g, _ = delaunay_digraph(1500, rng)
        tree = decompose_multilevel(g)
        oracle = ShortestPathOracle.build(g, tree)
        srcs = rng.integers(0, g.n, size=3)
        got = oracle.distances(srcs)
        for i, s in enumerate(srcs.tolist()):
            assert np.allclose(got[i], dijkstra(g, int(s)))
        # The per-source schedule beats naive BF structurally.
        from repro.pram.machine import Ledger

        ls, ln = Ledger(), Ledger()
        sssp_scheduled(oracle.augmentation, [0], schedule=oracle.schedule, ledger=ls)
        from repro.core.sssp import sssp_naive

        sssp_naive(oracle.augmentation, [0], ledger=ln)
        assert ls.work < ln.work


@pytest.mark.slow
class TestLargeScenario:
    def test_persist_and_requery(self, rng, tmp_path):
        """Full life cycle: decompose, persist, reload in a 'new session',
        reweight, requery — the comment-(iv) workflow at scale."""
        from repro.io import load_tree, save_tree

        g = grid_digraph((40, 40), rng)
        tree = decompose_grid(g, (40, 40))
        save_tree(tmp_path / "tree.npz", tree)

        tree2 = load_tree(tmp_path / "tree.npz")
        oracle = ShortestPathOracle.build(g, tree2)
        d1 = oracle.distances(7)
        assert np.allclose(d1, dijkstra(g, 7))

        new_w = rng.uniform(0.5, 3.0, size=g.m)
        fresh = oracle.with_new_weights(new_w)
        from repro.core.digraph import WeightedDigraph

        g2 = WeightedDigraph(g.n, g.src, g.dst, new_w)
        assert np.allclose(fresh.distances(7), dijkstra(g2, 7))
