"""Tests for incremental reweighting and the epoch hot-swap serving path.

Paper comment (iv): the separator decomposition — and with it the E⁺
*structure* — depends only on the unweighted skeleton.
:meth:`ShortestPathOracle.with_new_weights` exploits this by replaying the
retained build provenance (:class:`repro.core.reweight.ReweightPlan`) as a
weight-only leaves-up sweep; the property asserted throughout this file is
that the replay is **bit-identical** to a cold rebuild — same E⁺ arrays,
same served distances — dense and sparse, across semirings, including
negative weights and +inf deltas, on grids and on the programmable-μ
multilevel family.  The serving half (QueryEngine generations, router /
fleet epochs, server RPC) is covered at the bottom.
"""

import importlib.util
import os

import numpy as np
import pytest

from repro import ShortestPathOracle
from repro.core.augment import Augmentation, NegativeCycleDetected
from repro.core.config import OracleConfig
from repro.core.query import QueryEngine
from repro.separators.grid import decompose_grid
from repro.workloads.generators import apply_potential_weights, grid_digraph
from repro.workloads.synthetic import separator_programmable_family


def _reweighted_graph(g, weight):
    return type(g)(g.n, g.src, g.dst, np.asarray(weight, dtype=g.weight.dtype))


def _assert_bit_identical(got: ShortestPathOracle, cold: ShortestPathOracle, srcs):
    """The replay's E⁺ and its served distances equal the cold rebuild's,
    to the bit (the sweep replays the exact builder kernels)."""
    a, b = got.augmentation, cold.augmentation
    assert np.array_equal(a.src, b.src)
    assert np.array_equal(a.dst, b.dst)
    assert np.array_equal(a.weight, b.weight)
    assert np.array_equal(got.distances(srcs), cold.distances(srcs))


@pytest.fixture
def grid10(rng):
    g = grid_digraph((10, 10), rng)
    tree = decompose_grid(g, (10, 10), leaf_size=4)
    return g, tree


class TestBitIdentityDense:
    def test_minplus_float(self, rng, grid10):
        g, tree = grid10
        oracle = ShortestPathOracle.build(g, tree, method="leaves_up")
        w2 = rng.uniform(0.5, 20.0, size=g.m)
        got = oracle.with_new_weights(w2)
        cold = ShortestPathOracle.build(_reweighted_graph(g, w2), tree, method="leaves_up")
        _assert_bit_identical(got, cold, [0, 17, 55, 99])
        assert got.augmentation.weights_epoch == 1
        assert got.cache_info["status"] == "reweight"

    def test_minplus_negative_weights(self, rng, grid10):
        g, tree = grid10
        oracle = ShortestPathOracle.build(g, tree, method="leaves_up")
        gn = apply_potential_weights(g, rng)  # negative but cycle-free
        assert (gn.weight < 0).any()
        got = oracle.with_new_weights(gn.weight)
        cold = ShortestPathOracle.build(gn, tree, method="leaves_up")
        _assert_bit_identical(got, cold, [0, 42, 99])

    def test_minplus_integer_valued(self, rng, grid10):
        g, tree = grid10
        oracle = ShortestPathOracle.build(g, tree, method="leaves_up")
        w2 = np.round(g.weight * 7.0) + 1.0
        got = oracle.with_new_weights(w2)
        cold = ShortestPathOracle.build(_reweighted_graph(g, w2), tree, method="leaves_up")
        _assert_bit_identical(got, cold, list(range(0, 100, 9)))

    def test_boolean_semiring(self, rng, grid10):
        """Boolean reachability: reweighting toggles edge presence (zero
        weight = absent under the bool cast)."""
        g, tree = grid10
        cfg = OracleConfig(method="leaves_up", semiring="boolean")
        oracle = ShortestPathOracle.build(g, tree, config=cfg)
        w2 = (rng.uniform(size=g.m) < 0.6).astype(np.float64)
        got = oracle.with_new_weights(w2)
        cold = ShortestPathOracle.build(_reweighted_graph(g, w2), tree, config=cfg)
        _assert_bit_identical(got, cold, [0, 31, 99])

    def test_maxmin_semiring(self, rng, grid10):
        g, tree = grid10
        cfg = OracleConfig(method="leaves_up", semiring="max-min")
        oracle = ShortestPathOracle.build(g, tree, config=cfg)
        w2 = rng.uniform(0.0, 100.0, size=g.m)
        got = oracle.with_new_weights(w2)
        cold = ShortestPathOracle.build(_reweighted_graph(g, w2), tree, config=cfg)
        _assert_bit_identical(got, cold, [0, 50, 99])

    @pytest.mark.parametrize("mu", [0.35, 0.6])
    def test_mu_family(self, rng, mu):
        """The programmable-μ multilevel family: deep trees, chained
        boundaries — the replay must agree there too, not just on grids."""
        g, tree = separator_programmable_family(260, mu, rng)
        oracle = ShortestPathOracle.build(g, tree, method="leaves_up")
        w2 = rng.uniform(1.0, 10.0, size=g.m)
        got = oracle.with_new_weights(w2)
        cold = ShortestPathOracle.build(_reweighted_graph(g, w2), tree, method="leaves_up")
        _assert_bit_identical(got, cold, [0, g.n // 2, g.n - 1])

    def test_reverse_graph(self, rng, grid10):
        """``graph=`` accepts any same-skeleton graph — the reverse
        orientation goes through the rebuild fallback (src/dst change)."""
        g, tree = grid10
        oracle = ShortestPathOracle.build(g, tree, method="leaves_up")
        got = oracle.with_new_weights(graph=g.reverse())
        cold = ShortestPathOracle.build(g.reverse(), tree, method="leaves_up")
        assert np.array_equal(got.distances([0, 9]), cold.distances([0, 9]))


class TestBitIdentitySparse:
    def test_sparse_delta_on_lineage(self, rng, grid10):
        """A 1%-edge delta on an oracle produced by a reweight takes the
        restricted root-path sweep and still matches a cold rebuild."""
        g, tree = grid10
        base = ShortestPathOracle.build(g, tree, method="leaves_up")
        w1 = rng.uniform(1.0, 9.0, size=g.m)
        o1 = base.with_new_weights(w1)  # o1 carries the retained heap
        dirty = rng.choice(g.m, size=max(2, g.m // 100), replace=False)
        w2 = w1.copy()
        w2[dirty] = rng.uniform(1.0, 9.0, size=dirty.size)
        got = o1.with_new_weights(weight_delta=(dirty, w2[dirty]))
        cold = ShortestPathOracle.build(_reweighted_graph(g, w2), tree, method="leaves_up")
        _assert_bit_identical(got, cold, [0, 33, 66, 99])
        assert got.augmentation.weights_epoch == 2

    def test_dict_delta_and_idempotence(self, rng, grid10):
        """Deltas are absolute assignments — replaying the same delta is a
        no-op (the property the client/server retry policy relies on)."""
        g, tree = grid10
        base = ShortestPathOracle.build(g, tree, method="leaves_up")
        o1 = base.with_new_weights(rng.uniform(1.0, 9.0, size=g.m))
        delta = {3: 42.0, 17: 0.5}
        o2 = o1.with_new_weights(weight_delta=delta)
        o3 = o2.with_new_weights(weight_delta=delta)
        assert np.array_equal(o2.graph.weight, o3.graph.weight)
        assert np.array_equal(o2.distances([0, 50]), o3.distances([0, 50]))

    def test_inf_delta_disconnects(self, rng, grid10):
        """Setting edges to +inf (min-plus 0̄) must reproduce the cold
        rebuild's +inf rows exactly — deleted edges, possibly unreachable
        vertices."""
        g, tree = grid10
        base = ShortestPathOracle.build(g, tree, method="leaves_up")
        o1 = base.with_new_weights(g.weight.copy())
        # Sever every edge out of vertex 0's corner neighborhood.
        dirty = np.nonzero((g.src == 0) | (g.dst == 0))[0]
        w2 = o1.graph.weight.copy()
        w2[dirty] = np.inf
        got = o1.with_new_weights(weight_delta=(dirty, w2[dirty]))
        cold = ShortestPathOracle.build(_reweighted_graph(g, w2), tree, method="leaves_up")
        _assert_bit_identical(got, cold, [0, 1, 99])
        assert np.isinf(got.distances([0])[0][1:]).all()

    def test_cold_ancestor_densifies_first_delta(self, rng, grid10):
        """A cold-built oracle has no retained heap — its first sparse
        delta silently runs the dense sweep and is still exact."""
        g, tree = grid10
        base = ShortestPathOracle.build(g, tree, method="leaves_up")
        assert getattr(base.augmentation, "_reweight_state", None) is None
        got = base.with_new_weights(weight_delta={5: 99.0})
        w2 = g.weight.copy()
        w2[5] = 99.0
        cold = ShortestPathOracle.build(_reweighted_graph(g, w2), tree, method="leaves_up")
        _assert_bit_identical(got, cold, [0, 99])
        # ... and the produced oracle now has the heap for real sparsity.
        assert getattr(got.augmentation, "_reweight_state", None) is not None

    def test_plan_shared_along_lineage(self, rng, grid10):
        g, tree = grid10
        base = ShortestPathOracle.build(g, tree, method="leaves_up")
        o1 = base.with_new_weights(rng.uniform(1.0, 5.0, size=g.m))
        o2 = o1.with_new_weights(rng.uniform(1.0, 5.0, size=g.m))
        assert base._reweight_plan is not None
        assert o1._reweight_plan is base._reweight_plan
        assert o2._reweight_plan is base._reweight_plan


class TestModesAndErrors:
    def test_incremental_requires_leaves_up(self, rng, grid10):
        g, tree = grid10
        oracle = ShortestPathOracle.build(g, tree, method="doubling")
        with pytest.raises(ValueError, match="incremental"):
            oracle.with_new_weights(g.weight * 2.0, reweight="incremental")

    def test_auto_falls_back_to_rebuild(self, rng, grid10):
        g, tree = grid10
        oracle = ShortestPathOracle.build(g, tree, method="doubling")
        w2 = np.round(g.weight * 3.0) + 1.0
        got = oracle.with_new_weights(w2)  # auto → rebuild, no raise
        cold = ShortestPathOracle.build(_reweighted_graph(g, w2), tree, method="doubling")
        assert np.array_equal(got.distances([0, 9]), cold.distances([0, 9]))
        assert got.augmentation.weights_epoch == 1

    def test_rebuild_mode_matches_incremental(self, rng, grid10):
        g, tree = grid10
        oracle = ShortestPathOracle.build(g, tree, method="leaves_up")
        w2 = rng.uniform(1.0, 9.0, size=g.m)
        inc = oracle.with_new_weights(w2, reweight="incremental")
        reb = oracle.with_new_weights(w2, reweight="rebuild")
        _assert_bit_identical(inc, reb, [0, 50, 99])

    def test_exactly_one_input(self, grid10):
        g, tree = grid10
        oracle = ShortestPathOracle.build(g, tree, method="leaves_up")
        with pytest.raises(ValueError):
            oracle.with_new_weights()
        with pytest.raises(ValueError):
            oracle.with_new_weights(g.weight, weight_delta={0: 1.0})

    def test_negative_cycle_raises_and_preserves_serving(self, rng, grid10):
        """A delta creating a negative cycle raises on both paths, and the
        base oracle keeps serving its old weights untouched."""
        g, tree = grid10
        oracle = ShortestPathOracle.build(g, tree, method="leaves_up")
        before = oracle.distances([0, 99])
        # Any reciprocal edge pair is a 2-cycle; make it very negative.
        pair = {(int(s), int(d)): i for i, (s, d) in enumerate(zip(g.src, g.dst))}
        cyc = next(
            (i, pair[(d, s)]) for (s, d), i in pair.items() if (d, s) in pair
        )
        w2 = g.weight.copy()
        w2[list(cyc)] = -50.0
        with pytest.raises(NegativeCycleDetected):
            oracle.with_new_weights(w2, reweight="incremental")
        with pytest.raises(NegativeCycleDetected):
            oracle.with_new_weights(w2, reweight="rebuild")
        assert np.array_equal(oracle.distances([0, 99]), before)


class TestValidateFlag:
    """Satellite (a): ``validate=True`` on the reweight path checks the
    shortcut *weights* only; the structural (tree) validation hides behind
    ``validate="full"``."""

    def test_validate_true_skips_structural(self, rng, grid10, monkeypatch):
        g, tree = grid10
        oracle = ShortestPathOracle.build(g, tree, method="leaves_up")
        called = []
        monkeypatch.setattr(
            type(tree), "validate",
            lambda self, graph, **kw: called.append("structural"),
        )
        oracle.with_new_weights(rng.uniform(1.0, 9.0, size=g.m), validate=True)
        assert called == []
        oracle.with_new_weights(rng.uniform(1.0, 9.0, size=g.m), validate="full")
        assert called == ["structural"]

    def test_validate_actually_runs_weight_check(self, rng, grid10, monkeypatch):
        """Regression: the weight check is live on the incremental path (a
        semiring-name mismatch once made it silently vacuous)."""
        g, tree = grid10
        oracle = ShortestPathOracle.build(g, tree, method="leaves_up")
        monkeypatch.setattr(Augmentation, "verify_edges", lambda self, *a, **k: 1.0)
        with pytest.raises(AssertionError, match="deviate"):
            oracle.with_new_weights(g.weight * 2.0, validate=True)

    def test_validate_passes_on_healthy_replay(self, rng, grid10):
        g, tree = grid10
        oracle = ShortestPathOracle.build(g, tree, method="leaves_up")
        got = oracle.with_new_weights(rng.uniform(1.0, 9.0, size=g.m), validate=True)
        assert got.augmentation.weights_epoch == 1


class TestEngineHotSwap:
    """Satellite (b) + the engine half of the tentpole: arena-generation
    flip, epoch counters, row-LRU invalidation accounting."""

    def test_flip_is_bit_identical_and_counts(self, rng, grid10):
        g, tree = grid10
        # shm executor: the arena generations (pspg<epoch> segments) are
        # observable; serial engines have no arena to flip.
        cfg = OracleConfig(method="leaves_up", executor="shm:2", row_cache=16)
        oracle = ShortestPathOracle.build(g, tree, config=cfg)
        eng = QueryEngine(oracle.augmentation, cfg)
        try:
            srcs = np.array([0, 17, 99])
            eng.query(srcs)  # warm the row LRU on epoch 0
            eng.query(srcs)
            w2 = rng.uniform(1.0, 9.0, size=g.m)
            o2 = oracle.with_new_weights(w2)
            old_segments = list(eng._arena.segment_names)
            assert all("g0" in s for s in old_segments)
            eng.reweight(o2.augmentation)
            assert all("g1" in s for s in eng._arena.segment_names)
            cold = ShortestPathOracle.build(
                _reweighted_graph(g, w2), tree, config=cfg
            )
            assert np.array_equal(eng.query(srcs), cold.distances(srcs))
            st = eng.stats()
            assert st["weights_epoch"] == 1
            assert st["reweights"] == 1
            assert st["row_cache"]["epoch_invalidations"] == 1
            assert st["row_cache"]["rows_epoch_dropped"] >= srcs.size
        finally:
            eng.close()
            oracle.close()

    def test_reweight_rejects_mismatched_augmentation(self, rng, grid10):
        g, tree = grid10
        cfg = OracleConfig(method="leaves_up", executor="serial")
        oracle = ShortestPathOracle.build(g, tree, config=cfg)
        eng = QueryEngine(oracle.augmentation, cfg)
        try:
            g_small = grid_digraph((4, 4), rng)
            tree_small = decompose_grid(g_small, (4, 4), leaf_size=4)
            other = ShortestPathOracle.build(g_small, tree_small, config=cfg)
            with pytest.raises(ValueError):
                eng.reweight(other.augmentation)
        finally:
            eng.close()
            oracle.close()


class TestRouterReweight:
    """Inline-backend fleet epoch flip (the process backend is exercised
    under the ``multiproc`` mark in ``TestFleetReweight``)."""

    def _integral(self, g):
        # Sharded legs recompose sums; integral weights keep float
        # arithmetic exact so bit-identity is well-defined.
        return _reweighted_graph(g, np.round(g.weight * 8.0) + 1.0)

    def test_inline_dense_and_sparse(self, rng, grid10):
        from repro.shard.router import ShardRouter

        g, tree = grid10
        g = self._integral(g)
        cfg = OracleConfig(method="leaves_up", cache="off")
        srcs = np.array([0, 13, 99])
        r = ShardRouter(g, tree, cfg, k=2, backend="inline")
        try:
            w2 = np.round(g.weight * 3.0) + 2.0
            assert r.reweight(w2)["weights_epoch"] == 1
            cold = ShardRouter(
                _reweighted_graph(g, w2), tree, cfg, k=2, backend="inline"
            )
            want = cold.query(srcs)
            cold.close()
            assert np.array_equal(r.query(srcs), want)
            dirty = np.array([0, 7, 200])
            w3 = w2.copy()
            w3[dirty] += 5.0
            assert r.reweight(w3, dirty=dirty)["weights_epoch"] == 2
            cold = ShardRouter(
                _reweighted_graph(g, w3), tree, cfg, k=2, backend="inline"
            )
            want = cold.query(srcs)
            cold.close()
            assert np.array_equal(r.query(srcs), want)
            st = r.stats()
            assert st["weights_epoch"] == 2 and st["reweights"] == 2
            assert all(s["weights_epoch"] == 2 for s in st["shards"])
        finally:
            r.close()

    def test_bad_weight_shape(self, rng, grid10):
        from repro.shard.router import ShardRouter

        g, tree = grid10
        r = ShardRouter(g, tree, OracleConfig(cache="off"), k=2, backend="inline")
        try:
            with pytest.raises(ValueError, match="shape"):
                r.reweight(np.ones(3))
        finally:
            r.close()


@pytest.mark.multiproc
class TestFleetReweight:
    def test_process_backend_epoch_flip_and_crash(self, rng, grid10):
        """Worker-process fleet: broadcast reweight, bit-identity, and a
        crash-before-reweight respawn that must land on the new epoch."""
        from repro.shard.router import ShardRouter
        from repro.shard.worker import WorkerCrash

        g, tree = grid10
        g = _reweighted_graph(g, np.round(g.weight * 8.0) + 1.0)
        cfg = OracleConfig(method="leaves_up", cache="off")
        srcs = np.array([0, 42, 99])
        w2 = np.round(g.weight * 2.0) + 3.0
        with ShardRouter(g, tree, cfg, k=2, backend="process") as r:
            with pytest.raises(WorkerCrash):
                r._fleet.handles[0].call("crash")
            assert r.reweight(w2)["weights_epoch"] == 1
            got = r.query(srcs)
            st = r.stats()
            assert all(s["weights_epoch"] == 1 for s in st["shards"])
        with ShardRouter(
            _reweighted_graph(g, w2), tree, cfg, k=2, backend="inline"
        ) as cold:
            assert np.array_equal(got, cold.query(srcs))


class TestLeakCheckerGenerations:
    """Satellite (e) support: the shm leak checker understands the
    per-generation arena tag (``pspg<epoch>_…``)."""

    @pytest.fixture
    def tool(self):
        path = os.path.join(
            os.path.dirname(__file__), "..", "tools", "check_shm_leaks.py"
        )
        spec = importlib.util.spec_from_file_location("check_shm_leaks", path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    @pytest.mark.parametrize(
        "name,shard,epoch",
        [
            ("psp_123_0af3", None, None),
            ("psps2_123_0af3", "2", None),
            ("pspg7_123_0af3", None, "7"),
            ("psps1g4_123_0af3", "1", "4"),
        ],
    )
    def test_segment_regex(self, tool, name, shard, epoch):
        m = tool._SEGMENT_RE.match(name)
        assert m is not None
        got_shard, got_epoch, pid = m.groups()
        assert (got_shard, got_epoch, pid) == (shard, epoch, "123")

    def test_describe_mentions_generation(self, tool):
        assert "epoch 7 generation" in tool.describe("pspg7_123_0af3")
        assert "shard 1 worker" in tool.describe("psps1g4_123_0af3")
        assert tool._SEGMENT_RE.match("notpsp_1_aa") is None
