"""Process-backend tests of the shard fleet (``multiproc`` lane).

Covers the seeded cross-``k`` equivalence property (bit-identical to the
direct engine on integer weights, including unreachable ∞ rows and
negative weights), worker crash → supervised restart (warm via the
augmentation cache) with stale-segment sweeping, CPU pinning, serving a
fleet behind :class:`~repro.server.OracleServer` via ``engine_factory``,
and the fleet-wide ``/dev/shm``-clean drain invariant.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time

import numpy as np
import pytest

from repro import OracleConfig, ShortestPathOracle, WeightedDigraph
from repro.core.protocols import SERVING_STATS_KEYS, ServingBackend
from repro.pram.shm import orphaned_segments
from repro.separators.grid import decompose_grid
from repro.server import OracleClient, OracleServer, ServerConfig
from repro.shard import ReplicaPool, ShardRouter
from repro.workloads.generators import grid_digraph

pytestmark = pytest.mark.multiproc


def integer_workload(side: int = 10, seed: int = 0, *, negative: bool = False):
    """Integer-weight grid (optionally potential-shifted negative) + tree."""
    rng = np.random.default_rng(seed)
    g = grid_digraph((side, side), rng)
    w = np.round(g.weight * 8.0).astype(np.float64)
    if negative:
        p = rng.integers(0, 12, size=g.n).astype(np.float64)
        w = w + p[g.src] - p[g.dst]
    g = WeightedDigraph(g.n, g.src, g.dst, w)
    return g, decompose_grid(g, (side, side), leaf_size=4)


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """Every fleet test must leave /dev/shm clean."""
    before = set(orphaned_segments())
    yield
    leaked = set(orphaned_segments()) - before
    assert not leaked, f"leaked segments: {sorted(leaked)}"


class TestProcessFleetEquivalence:
    @pytest.mark.parametrize("k", [2, 4])
    def test_seeded_property_bit_identical(self, k):
        """Satellite: distances (incl. ∞ rows and negative weights) are
        bit-identical across shard plans vs the direct engine."""
        rng = np.random.default_rng(k)
        g, tree = integer_workload(10, seed=k, negative=True)
        # make a few vertices unreachable: a forward-only tail appended to
        # the grid reaches nothing, so its columns go ∞ for most sources
        oracle = ShortestPathOracle.build(g, tree)
        srcs = np.unique(rng.integers(0, g.n, size=24))
        want = oracle.distances(srcs)
        with ShardRouter(g, tree, k=k, backend="process") as router:
            got = router.query(srcs)
            # repeat with a different batch to exercise warm workers
            srcs2 = np.unique(rng.integers(0, g.n, size=9))
            got2 = router.query(srcs2)
        assert np.array_equal(got, want)
        assert np.array_equal(got2, oracle.distances(srcs2))

    def test_unreachable_rows_process_backend(self):
        n = 40
        rng = np.random.default_rng(2)
        w = rng.integers(1, 9, size=n - 1).astype(np.float64)
        g = WeightedDigraph(n, np.arange(n - 1), np.arange(1, n), w)
        from repro.separators.spectral import decompose_spectral

        tree = decompose_spectral(g, leaf_size=4)
        oracle = ShortestPathOracle.build(g, tree)
        srcs = [0, 17, 39]
        want = oracle.distances(srcs)
        assert np.isinf(want).any()
        with ShardRouter(g, tree, k=2, backend="process") as router:
            assert np.array_equal(router.query(srcs), want)


class TestFleetSupervision:
    def test_crash_restart_is_warm_and_exact(self, tmp_path):
        g, tree = integer_workload(10, seed=1)
        oracle = ShortestPathOracle.build(g, tree)
        cfg = OracleConfig(cache="readwrite", cache_dir=str(tmp_path))
        srcs = list(range(0, g.n, 9))
        want = oracle.distances(srcs)
        with ShardRouter(g, tree, cfg, k=2, backend="process") as router:
            fleet = router._fleet
            assert np.array_equal(router.query(srcs), want)
            victim = fleet.handles[0]
            old_pid = victim.pid
            victim.send_request("crash")  # worker os._exit(1)s, no cleanup
            victim.process.join(10)
            assert not victim.alive
            # next batch detects the corpse, restarts, answers exactly
            assert np.array_equal(router.query(srcs), want)
            assert fleet.restarts_total == 1
            assert victim.pid != old_pid
            # respawn was warm: the shard augmentation came from the store
            assert victim.ready_info["cache_status"] == "hit"
            stats = router.stats()
            assert stats["shards"][0]["restarts"] == 1

    def test_health_check_restarts_dead_worker(self):
        g, tree = integer_workload(8, seed=2)
        with ShardRouter(g, tree, k=2, backend="process") as router:
            fleet = router._fleet
            fleet.handles[1].kill()
            report = fleet.health_check()
            assert report["restarted"] == [1]
            assert fleet.handles[1].alive

    def test_stats_not_blocked_by_crashed_worker(self):
        """Regression (satellite): ``stats`` on a fleet with a dead worker
        returns immediately with last-known counters + ``stale: true``
        instead of blocking on the corpse's pipe — and never restarts."""
        g, tree = integer_workload(8, seed=10)
        with ShardRouter(g, tree, k=2, backend="process") as router:
            fleet = router._fleet
            router.query([0, 3])
            live = fleet.stats()
            assert [s["stale"] for s in live] == [False, False]
            assert all("queue_depth" in s for s in live)
            fleet.handles[0].kill()
            t0 = time.perf_counter()
            snap = fleet.stats()
            elapsed = time.perf_counter() - t0
            assert elapsed < 5.0, f"stats blocked {elapsed:.1f}s on dead worker"
            assert snap[0]["stale"] is True
            assert snap[1]["stale"] is False
            # last-known engine counters survive from the earlier probe
            assert snap[0]["rows"] == live[0]["rows"]
            assert fleet.restarts_total == 0  # stats must never restart
            # the canonical router schema carries the marker through
            rstats = router.stats()
            for key in SERVING_STATS_KEYS:
                assert key in rstats, key
            assert rstats["per_shard"][0]["stale"] is True
            # restore for a clean drain (health_check owns restarts)
            assert fleet.health_check()["restarted"] == [0]

    def test_pinning_smoke(self):
        g, tree = integer_workload(8, seed=3)
        cpus = sorted(os.sched_getaffinity(0))
        with ShardRouter(g, tree, k=2, backend="process", pin=True) as router:
            oracle = ShortestPathOracle.build(g, tree)
            assert np.array_equal(router.query([0, 5]), oracle.distances([0, 5]))
            for i, shard_stats in enumerate(router.stats()["shards"]):
                assert shard_stats["pinned_cpu"] == cpus[i % len(cpus)]


class TestReplicaPool:
    """The replicated fleet tier (tentpole): lifecycle (spawn → warm
    respawn → drain-retire), skewed-workload bit-identity across replica
    counts, queue-wait-driven autoscale, and the epoch-guarded reweight
    broadcast under concurrent load."""

    def test_lifecycle_spawn_promote_crash_retire(self, tmp_path):
        g, tree = integer_workload(10, seed=6)
        oracle = ShortestPathOracle.build(g, tree)
        cfg = OracleConfig(
            replicas=2, max_replicas=3,
            cache="readwrite", cache_dir=str(tmp_path),
        )
        srcs = list(range(0, g.n, 7))
        want = oracle.distances(srcs)
        with ShardRouter(g, tree, cfg, k=2, backend="process") as router:
            pool = router._fleet
            assert isinstance(pool, ReplicaPool)
            assert isinstance(pool, ServingBackend)
            assert np.array_equal(router.query(srcs), want)
            # scale out: a background spawn warms from the augmentation
            # store and is promoted only once ready
            h = pool.spawn_replica(0)
            assert len(pool.replicas[0]) == 2  # not dispatchable yet
            for _ in range(600):
                if pool._promote_warming():
                    break
                time.sleep(0.05)
            else:
                pytest.fail("warming replica never became ready")
            assert len(pool.replicas[0]) == 3
            assert h.ready_info["cache_status"] == "hit"  # PR-4 warm path
            assert np.array_equal(router.query(srcs), want)
            # crash one replica: serving continues exactly, supervision
            # respawns it warm
            victim = pool.replicas[0][1]
            old_pid = victim.pid
            victim.send_request("crash")
            victim.process.join(10)
            assert np.array_equal(router.query(srcs), want)
            pool.health_check()
            assert pool.restarts_total >= 1
            assert victim.alive and victim.pid != old_pid
            assert victim.ready_info["cache_status"] == "hit"
            # drain-retire back to base; serving unaffected
            pool.retire_replica(0)
            assert len(pool.replicas[0]) == 2
            assert np.array_equal(router.query(srcs), want)
            # stats: canonical schema + per-shard replica breakdown
            snap = pool.stats()
            for key in SERVING_STATS_KEYS:
                assert key in snap, key
            assert snap["backend"] == "replicated"
            assert snap["workers"] == 4
            assert snap["per_shard"][0]["replicas"] == 2
            assert snap["per_shard"][0]["warming"] == 0
            assert len(snap["per_shard"][0]["workers"]) == 2

    @pytest.mark.parametrize("replicas", [1, 2, 3])
    def test_skewed_hot_shard_bit_identical(self, replicas):
        """Acceptance property: a 90%-hot-shard workload answers
        bit-identically to the direct engine for every replica count
        (replicas only add capacity, never change results)."""
        g, tree = integer_workload(10, seed=7, negative=True)
        oracle = ShortestPathOracle.build(g, tree)
        rng = np.random.default_rng(replicas)
        cfg = OracleConfig(replicas=replicas)
        with ShardRouter(g, tree, cfg, k=2, backend="process") as router:
            assert isinstance(router._fleet, ReplicaPool) == (replicas > 1)
            home = router.plan.home
            hot = np.flatnonzero(home == 0)
            cold = np.flatnonzero(home != 0)
            srcs = np.concatenate(
                [hot, rng.permutation(cold)[: max(1, hot.size // 9)]]
            )
            want = oracle.distances(srcs)
            got = router.query(srcs)
            got2 = router.query(srcs[:13])  # second batch on warm replicas
        assert np.array_equal(got, want)
        assert np.array_equal(got2, want[:13])

    def test_autoscale_up_then_down(self):
        g, tree = integer_workload(8, seed=8)
        oracle = ShortestPathOracle.build(g, tree)
        cfg = OracleConfig(replicas=1, max_replicas=2, autoscale_target_p99_ms=1e-3)
        srcs = np.arange(g.n)
        want = oracle.distances(srcs)
        with ShardRouter(g, tree, cfg, k=2, backend="process") as router:
            pool = router._fleet
            assert pool.base_replicas == 1 and pool.max_replicas == 2
            pool.cooldown_s = 0.0
            pool.dispatch_rows = 4  # many chunks → measurable queue waits
            # any real queue wait beats the microscopic target → scale up
            assert np.array_equal(router.query(srcs), want)
            assert pool.scale_ups >= 1
            for _ in range(600):
                pool._promote_warming()
                if sum(len(grp) for grp in pool.replicas) == 3:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("autoscaled replica never promoted")
            assert np.array_equal(router.query(srcs), want)  # still exact
            # p99 now sits far below an enormous target → drain-retire
            # (the pre-flip batch may have started a second scale-up, so
            # loop until the pool is back at base size)
            pool.autoscale_target_p99_ms = 1e9
            for _ in range(100):
                assert np.array_equal(router.query(srcs[::5]), want[::5])
                total = sum(len(grp) for grp in pool.replicas) + sum(
                    len(grp) for grp in pool.warming
                )
                if pool.scale_downs >= 1 and total == 2:
                    break
                time.sleep(0.05)
            assert pool.scale_downs >= 1
            assert sum(len(grp) for grp in pool.replicas) == 2
            snap = pool.stats()
            assert snap["scale_ups"] >= 1 and snap["scale_downs"] >= 1
            assert snap["autoscale_target_p99_ms"] == 1e9

    def test_reweight_broadcast_under_concurrent_load(self):
        """Acceptance: reweight while queries hammer the pool — zero
        failed queries, every answer from a coherent epoch, and the flip
        lands on every replica."""
        g, tree = integer_workload(10, seed=9)
        oracle1 = ShortestPathOracle.build(g, tree)
        w2 = np.round(np.abs(g.weight)) + 3.0
        oracle2 = ShortestPathOracle.build(
            WeightedDigraph(g.n, g.src, g.dst, w2), tree
        )
        srcs = np.arange(0, g.n, 5)
        want1 = oracle1.distances(srcs)
        want2 = oracle2.distances(srcs)
        assert not np.array_equal(want1, want2)
        cfg = OracleConfig(replicas=2)
        with ShardRouter(g, tree, cfg, k=2, backend="process") as router:
            assert isinstance(router._fleet, ReplicaPool)
            errors: list = []
            stop = threading.Event()

            def hammer():
                try:
                    while not stop.is_set():
                        got = router.query(srcs)
                        if not (
                            np.array_equal(got, want1)
                            or np.array_equal(got, want2)
                        ):
                            errors.append("torn answer across epochs")
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(2)]
            for t in threads:
                t.start()
            time.sleep(0.2)
            res = router.reweight(w2)
            assert res["weights_epoch"] == 1
            time.sleep(0.3)
            stop.set()
            for t in threads:
                t.join(60)
            assert not errors, errors
            assert router.weights_epoch == 1
            assert router._fleet.weights_epoch == 1
            # every replica of every shard serves the new epoch
            for group in router._fleet.replicas:
                for h in group:
                    assert int(h.call("stats")["weights_epoch"]) == 1
            assert np.array_equal(router.query(srcs), want2)


class TestServedFleet:
    def test_server_over_fleet_with_engine_factory(self, tmp_path):
        g, tree = integer_workload(10, seed=4)
        oracle = ShortestPathOracle.build(g, tree)
        sock = str(tmp_path / "fleet.sock")
        server = OracleServer(
            oracle,
            OracleConfig(shards=2),
            ServerConfig(path=sock),
            engine_factory=lambda: oracle.shard_fleet(2, backend="process"),
        )
        loop = asyncio.new_event_loop()
        started = threading.Event()

        async def main():
            await server.start()
            started.set()
            await server.serve_forever()

        def run():
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(main())
            finally:
                loop.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert started.wait(120), "fleet server failed to start"
        try:
            assert isinstance(server.engine, ShardRouter)
            with OracleClient(sock, timeout=60.0) as client:
                srcs = [0, 9, 55, 90]
                got = client.distances(srcs)
                assert np.allclose(got, oracle.distances(srcs))
                stats = client.stats()
                assert stats["engine"]["engine"] == "sharded"
                assert stats["engine"]["workers"] == 2
                assert len(stats["engine"]["shards"]) == 2
                assert stats["engine"]["last_batch"]["rows"] == len(srcs)
        finally:
            loop.call_soon_threadsafe(server.request_shutdown)
            thread.join(60)
        assert not thread.is_alive(), "fleet server failed to stop"
        assert orphaned_segments() == []  # fleet drained with the server


def test_worker_close_is_graceful(tmp_path):
    """Direct WorkerHandle lifecycle: spawn → ready → query → close."""
    from repro.shard.partition import make_shard_plan
    from repro.shard.worker import WorkerHandle

    g, tree = integer_workload(8, seed=5)
    plan = make_shard_plan(g, tree, 2)
    shard = plan.shards[0]
    h = WorkerHandle(0, shard.graph, shard.tree, shard.boundary_local, OracleConfig())
    h.spawn()
    info = h.wait_ready()
    assert info["pid"] == h.pid
    payload = h.call("query", np.array([0, 1], dtype=np.int64))
    rows = h.fetch_rows(payload)
    assert rows.shape == (2, shard.n)
    with pytest.raises(RuntimeError, match="unknown worker op"):
        h.call("frobnicate")
    h.close()
    assert not h.alive
